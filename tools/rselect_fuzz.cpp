/**
 * @file
 * rselect-fuzz: deterministic fuzzing and differential-oracle driver.
 *
 * Two modes:
 *
 *  - Corpus mode (default): fuzz a consecutive range of seeds. Each
 *    seed maps to a random-program spec; each spec runs the full
 *    cross-selector differential check (transparency, conservation,
 *    region legality, record→replay round trip). Failures are
 *    shrunk and printed with a complete reproducer.
 *  - Spec mode (--spec): run one differential check for an explicit
 *    spec string, e.g. a reproducer printed by a previous run.
 *
 * --break-selector plants a deliberate selector bug (oracle
 * self-test); such runs are EXPECTED to report failures, and the
 * exit code still signals whether failures were found (0 = none,
 * 3 = found), so the caller asserts the direction it expects.
 *
 * --analyze additionally validates the static region-quality
 * predictions (rselect-analyze's bounds) against measured
 * unbounded-cache runs of every selector, after each seed's clean
 * differential. --interprocedural does the same for the
 * interprocedural layer: callee-set soundness, return-edge layout,
 * and duplication-growth bounds against the counted dynamic call
 * behaviour.
 *
 * Fault fuzzing (--fault-fuzz) pairs every seed with its own
 * deterministic fault plan and re-runs the whole oracle matrix under
 * injected faults — transparency and record→replay equality must
 * hold while translations fail and cache lines are invalidated.
 * --fault-spec instead applies one fixed plan to every seed.
 *
 * Chaos fuzzing (--tenants N --chaos-fuzz) pairs every seed with a
 * deterministic service-level chaos plan (tenant aborts, crashes
 * with warm restart, shard quarantines, memory-pressure squeezes)
 * and drives the chaos oracle: surviving tenants byte-identical to
 * their reference legs, restarted tenants to a fresh solo run from
 * the replay position, plus the arena and slice accounting
 * identities. Reproducers hold the chaos plan fixed (--chaos-spec).
 *
 * Exit codes: 0 = clean, 1 = runtime fault, 2 = usage error,
 * 3 = failures found.
 */

#include <cstdio>
#include <iterator>
#include <sstream>
#include <string>

#include "program/trace_io.hpp"
#include "service/selection_service.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"
#include "testing/fuzz_harness.hpp"
#include "testing/inter_check.hpp"
#include "testing/prediction_check.hpp"
#include "testing/random_program.hpp"
#include "testing/shrinker.hpp"

using namespace rsel;
using namespace rsel::testing;

namespace {

void
printFailure(const FuzzFailure &f)
{
    std::printf("FAILURE seed=%llu\n",
                static_cast<unsigned long long>(f.seed));
    std::printf("  spec:  %s\n", f.spec.toString().c_str());
    if (f.faults.armed())
        std::printf("  faults: %s\n", f.faults.toString().c_str());
    std::printf("  error: %s\n", f.error.c_str());
    if (f.shrunk) {
        std::printf("  shrunk spec:  %s\n",
                    f.shrunkSpec.toString().c_str());
        std::printf("  shrunk error: %s\n", f.shrunkError.c_str());
        std::printf("  shrunk program: %u blocks\n", f.shrunkBlocks);
    }
    std::printf("  repro: %s\n", f.cliLine.c_str());
    std::printf("  program:\n");
    // Indent the saveProgram text so reproducers stand out in logs.
    std::string line;
    for (const char c : f.reproProgram) {
        if (c == '\n') {
            std::printf("    %s\n", line.c_str());
            line.clear();
        } else {
            line += c;
        }
    }
    if (!line.empty())
        std::printf("    %s\n", line.c_str());
}

int
runSpecMode(const std::string &specText, BrokenMode broken,
            bool verify, bool shrink, bool analyze,
            bool interprocedural,
            const resilience::FaultPlan &faults)
{
    const GenSpec spec = GenSpec::parse(specText);
    DiffReport report = runDifferential(spec, broken, verify, faults);
    if (report.error.empty() && analyze)
        report.error = checkSpecPredictions(spec);
    if (report.error.empty() && interprocedural)
        report.error = checkSpecInterprocedural(spec);
    if (report.error.empty()) {
        std::printf("spec OK (%u blocks): %s\n", report.programBlocks,
                    spec.toString().c_str());
        return ExitOk;
    }
    FuzzFailure failure;
    failure.spec = spec;
    failure.error = report.error;
    failure.faults = faults;
    failure.shrunkSpec = spec;
    failure.shrunkError = report.error;
    failure.shrunkBlocks = report.programBlocks;
    // Static-prediction and interprocedural failures live outside
    // the differential predicate the shrinker replays; keep the
    // original spec.
    if (report.error.rfind("static-prediction:", 0) == 0 ||
        report.error.rfind("interprocedural:", 0) == 0)
        shrink = false;
    if (shrink) {
        const ShrinkOutcome shrunk =
            shrinkSpec(spec, broken, report.error, verify, faults);
        failure.shrunk = true;
        failure.shrunkSpec = shrunk.spec;
        failure.shrunkError = shrunk.error;
        failure.shrunkBlocks = shrunk.programBlocks;
    }
    std::ostringstream os;
    try {
        saveProgram(generateProgram(failure.shrunkSpec), os);
    } catch (const std::exception &e) {
        os << "<program generation failed: " << e.what() << ">";
    }
    failure.reproProgram = os.str();
    failure.cliLine = fuzzCliLine(failure.shrunkSpec, broken, verify,
                                  faults, analyze, interprocedural);
    printFailure(failure);
    return ExitVerifyFailure;
}

/**
 * Multi-tenant mode (--tenants N): replay each seed's spec through
 * the selection service with N tenants — every tenant runs the SAME
 * guest program, with the selector cycling through all shipped
 * algorithms — and assert each tenant's fingerprint is byte-equal
 * to the single-tenant path. Composes with --fault-fuzz (each
 * seed's derived plan is armed on every tenant) and --fault-spec.
 */
int
runTenantMode(const CliOptions &cli, BrokenMode broken,
              const resilience::FaultPlan &fixedFaults,
              bool faultFuzz)
{
    if (broken != BrokenMode::None)
        fatal("--break-selector is not supported with --tenants");
    const std::uint64_t tenants = cli.getUint("tenants");
    const bool oneSpec = !cli.get("spec").empty();
    const std::uint64_t seeds =
        oneSpec ? 1 : cli.getUint("seeds");
    const std::uint64_t startSeed = cli.getUint("start-seed");
    const bool chaosFuzz = cli.getBool("chaos-fuzz");
    service::ChaosPlan fixedChaos;
    if (!cli.get("chaos-spec").empty()) {
        if (chaosFuzz)
            fatal("--chaos-fuzz and --chaos-spec are mutually "
                  "exclusive");
        fixedChaos = service::ChaosPlan::parse(cli.get("chaos-spec"));
    }
    std::uint64_t failures = 0;

    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = startSeed + i;
        const GenSpec spec = oneSpec
                                 ? GenSpec::parse(cli.get("spec"))
                                 : GenSpec::fromSeed(seed);
        resilience::FaultPlan faults = fixedFaults;
        if (faultFuzz)
            faults = resilience::FaultPlan::fromSeed(seed);
        service::ChaosPlan chaos = fixedChaos;
        if (chaosFuzz)
            chaos = service::ChaosPlan::fromSeed(seed);

        service::ServiceConfig config;
        config.jobs =
            static_cast<std::size_t>(cli.getUint("jobs"));
        config.eventsOverride = cli.getUint("events");
        config.chaos = chaos;
        // The chaos oracle exercises the overload machine too: one
        // pressured slice degrades, shedding starts at three.
        config.overload.healthEnabled = chaos.armed();
        config.tenants.reserve(tenants);
        for (std::uint64_t t = 0; t < tenants; ++t) {
            service::TenantSpec tenant;
            tenant.name = "s" + std::to_string(seed) + "t" +
                          std::to_string(t);
            tenant.algo =
                allSelectors[t % std::size(allSelectors)];
            tenant.program = spec;
            tenant.faults = faults;
            config.tenants.push_back(tenant);
        }

        const std::string error =
            chaos.armed()
                ? service::verifyServiceChaos(config)
                : service::verifyServiceDeterminism(config);
        if (!error.empty()) {
            ++failures;
            std::printf("FAILURE seed=%llu (service mode, %llu "
                        "tenants)\n",
                        static_cast<unsigned long long>(seed),
                        static_cast<unsigned long long>(tenants));
            std::printf("  spec:  %s\n", spec.toString().c_str());
            if (faults.armed())
                std::printf("  faults: %s\n",
                            faults.toString().c_str());
            if (chaos.armed())
                std::printf("  chaos: %s\n",
                            chaos.toString().c_str());
            std::printf("  error: %s\n", error.c_str());
            // Reproducer holds the chaos plan FIXED (--chaos-spec),
            // so shrinking the program spec replays the exact fault
            // trajectory while the input shrinks around it.
            std::printf("  repro: rselect-fuzz --tenants %llu "
                        "--spec \"%s\"%s%s\n",
                        static_cast<unsigned long long>(tenants),
                        spec.toString().c_str(),
                        faults.armed()
                            ? (" --fault-spec \"" +
                               faults.toString() + "\"")
                                  .c_str()
                            : "",
                        chaos.armed()
                            ? (" --chaos-spec \"" +
                               chaos.toString() + "\"")
                                  .c_str()
                            : "");
        }
    }
    std::printf("fuzz (service mode%s): %llu seed%s x %llu tenants, "
                "%llu failure%s\n",
                chaosFuzz ? ", chaos" : "",
                static_cast<unsigned long long>(seeds),
                seeds == 1 ? "" : "s",
                static_cast<unsigned long long>(tenants),
                static_cast<unsigned long long>(failures),
                failures == 1 ? "" : "s");
    return failures == 0 ? ExitOk : ExitVerifyFailure;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("seeds", "25", "number of consecutive seeds to fuzz");
    cli.define("start-seed", "1", "first seed of the corpus");
    cli.define("jobs", "0",
               "worker threads (0 = hardware, 1 = serial)");
    cli.define("events", "0",
               "override events per run (0 = per-spec default)");
    cli.define("break-selector", "none",
               "plant a selector bug: none, disconnect, resubmit, "
               "alias, noncyclic");
    cli.define("spec", "",
               "run one explicit spec instead of a seed corpus");
    cli.define("verify", "false",
               "statically verify every emitted region "
               "(verify-on-submit)");
    cli.define("no-shrink", "false", "skip shrinking failing specs");
    cli.define("analyze", "false",
               "validate static region-quality predictions against "
               "measured unbounded-cache runs");
    cli.define("interprocedural", "false",
               "validate the interprocedural analysis (callee sets, "
               "return edges, duplication bounds) against counted "
               "dynamic call behaviour");
    cli.define("fault-fuzz", "false",
               "pair every seed with its own deterministic fault "
               "plan (FaultPlan::fromSeed)");
    cli.define("fault-spec", "",
               "apply one fixed fault plan to every seed (e.g. "
               "'f1,tfail=20,inval=50,seed=9')");
    cli.define("tenants", "0",
               "replay each spec through the multi-tenant service "
               "path with N tenants and assert fingerprint "
               "equality against the single-tenant path (0 = off)");
    cli.define("chaos-fuzz", "false",
               "pair every seed with its own deterministic "
               "service-level chaos plan (ChaosPlan::fromSeed; "
               "needs --tenants)");
    cli.define("chaos-spec", "",
               "apply one fixed chaos plan to every seed (e.g. "
               "'c1,crash=300,quar=200,seed=9'; needs --tenants)");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }

        const BrokenMode broken =
            parseBrokenMode(cli.get("break-selector"));
        const bool verify = cli.getBool("verify");
        const bool shrink = !cli.getBool("no-shrink");
        const bool analyze = cli.getBool("analyze");
        const bool interprocedural =
            cli.getBool("interprocedural");
        const bool faultFuzz = cli.getBool("fault-fuzz");
        resilience::FaultPlan faults;
        if (!cli.get("fault-spec").empty()) {
            if (faultFuzz)
                fatal("--fault-fuzz and --fault-spec are mutually "
                      "exclusive");
            faults = resilience::FaultPlan::parse(
                cli.get("fault-spec"));
        }

        if (cli.getUint("tenants") != 0)
            return runTenantMode(cli, broken, faults, faultFuzz);
        if (cli.getBool("chaos-fuzz") ||
            !cli.get("chaos-spec").empty())
            fatal("--chaos-fuzz/--chaos-spec need --tenants");

        if (!cli.get("spec").empty())
            return runSpecMode(cli.get("spec"), broken, verify,
                               shrink, analyze, interprocedural,
                               faults);

        FuzzOptions opts;
        opts.seeds = cli.getUint("seeds");
        opts.startSeed = cli.getUint("start-seed");
        opts.jobs = static_cast<std::size_t>(cli.getUint("jobs"));
        opts.events = cli.getUint("events");
        opts.broken = broken;
        opts.verify = verify;
        opts.shrink = shrink;
        opts.analyze = analyze;
        opts.interprocedural = interprocedural;
        opts.faultFuzz = faultFuzz;
        opts.faults = faults;

        const FuzzSummary summary = runFuzz(opts);
        std::printf("fuzz: %llu seeds (start %llu), %llu failure%s\n",
                    static_cast<unsigned long long>(summary.seedsRun),
                    static_cast<unsigned long long>(opts.startSeed),
                    static_cast<unsigned long long>(summary.failures),
                    summary.failures == 1 ? "" : "s");
        for (const FuzzFailure &f : summary.detail)
            printFailure(f);
        if (summary.failures >
            static_cast<std::uint64_t>(summary.detail.size()))
            std::printf("(%llu further failing seeds not detailed)\n",
                        static_cast<unsigned long long>(
                            summary.failures - summary.detail.size()));
        return summary.failures == 0 ? ExitOk : ExitVerifyFailure;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
