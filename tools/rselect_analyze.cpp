/**
 * @file
 * rselect-analyze: static region-quality predictor front end.
 *
 * Runs the dataflow-based pass suite (src/analysis/static_predictor)
 * over a program and prints the shared shape facts, the per-selector
 * predictions (sound bounds plus heuristic estimates), and the
 * machine-readable fact/lint diagnostics.
 *
 * Modes (first match wins):
 *
 *  - --self-test       compute genuine predictions for a hand-built
 *    loop program, demand they hold against measured runs of every
 *    selector, then plant one mis-prediction per bound kind and
 *    demand checkPrediction catches each. Exit 0 iff all caught.
 *  - --program FILE    analyze a saved program (trace_io format).
 *  - --spec 'SPEC'     generate the fuzz spec's program and analyze.
 *  - --workload NAME   analyze one synthetic workload, or all.
 *
 * --selector NAME restricts the prediction table to one selector.
 * --validate additionally measures every selector (unbounded cache,
 * fault-free) and checks the bounds; violations are red. --json
 * emits the whole report as JSON instead of tables (schema field
 * versions the layout).
 *
 * --interprocedural adds the call-graph layer: per-function
 * bottom-up summaries, the ranked inlining-opportunity table with
 * sound duplication-growth bounds, and (with --validate) the
 * dynamic-call ground-truth check of every sound claim.
 *
 * --list-passes prints every analyze pass name and exits;
 * --only=a,b / --skip=a,b filter which passes' diagnostics are
 * reported (parity with rselect-verify).
 *
 * Exit codes: 0 = clean (or self-test caught everything), 1 =
 * runtime fault, 2 = usage error, 3 = validation found a violated
 * bound (or self-test missed a planted bug).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/inline_opportunity.hpp"
#include "analysis/static_predictor.hpp"
#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "program/trace_io.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"
#include "support/table.hpp"
#include "testing/gen_spec.hpp"
#include "testing/inter_check.hpp"
#include "testing/prediction_check.hpp"
#include "testing/random_program.hpp"
#include "workloads/workloads.hpp"

using namespace rsel;

namespace {

/** Options shared by every analyze mode. */
struct AnalyzeOptions
{
    std::string selector; ///< restrict tables to one selector
    bool json = false;
    bool validate = false;
    bool interprocedural = false; ///< add the call-graph layer
    std::uint64_t events = 20000; ///< validation run length
    std::uint64_t seed = 1;       ///< validation executor seed
    /** --only: when non-empty, report only these passes. */
    std::vector<std::string> only;
    /** --skip: never report these passes (applied after only). */
    std::vector<std::string> skip;
};

/** True iff `pass` survives the --only/--skip filters. */
bool
passEnabled(const AnalyzeOptions &opts, const std::string &pass)
{
    if (!opts.only.empty() &&
        std::find(opts.only.begin(), opts.only.end(), pass) ==
            opts.only.end())
        return false;
    return std::find(opts.skip.begin(), opts.skip.end(), pass) ==
           opts.skip.end();
}

std::string
u64(std::uint64_t v)
{
    return std::to_string(v);
}

/** Minimal JSON string escape (names here are ASCII identifiers). */
std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out + "\"";
}

/** JSON layout version; bump when fields move or change meaning. */
constexpr int jsonSchemaVersion = 2;

void
emitInterJson(const Program &prog, const analysis::InterFacts &inf,
              const analysis::OpportunityReport &opp,
              const testing::InterValidation *ival, std::ostream &os)
{
    const analysis::CallGraph &cg = inf.callGraph;
    std::uint32_t reachable = 0, recursive = 0;
    for (const analysis::FuncSummary &s : inf.summaries) {
        if (cg.callReachable(s.func))
            ++reachable;
        if (s.recursive)
            ++recursive;
    }
    os << ",\n  \"interprocedural\": {"
       << "\"funcs\": " << inf.summaries.size()
       << ", \"callSites\": " << cg.sites.size()
       << ", \"callReachable\": " << reachable
       << ", \"recursive\": " << recursive
       << ", \"dataflowTransfers\": " << inf.dataflowTransfers
       << ", \"converged\": "
       << (inf.converged ? "true" : "false") << ",\n    \"functions\": [";
    for (std::size_t i = 0; i < inf.summaries.size(); ++i) {
        const analysis::FuncSummary &s = inf.summaries[i];
        os << (i == 0 ? "\n" : ",\n") << "      {\"name\": "
           << jsonStr(prog.functions()[s.func].name)
           << ", \"blocks\": " << s.blockCount
           << ", \"insts\": " << s.insts
           << ", \"maxLoopDepth\": " << s.maxLoopDepth
           << ", \"callSites\": " << s.callSites
           << ", \"fanIn\": " << s.fanIn
           << ", \"leaf\": " << (s.leaf ? "true" : "false")
           << ", \"recursive\": "
           << (s.recursive ? "true" : "false")
           << ", \"closureFuncs\": " << s.closureFuncs
           << ", \"closureInsts\": " << s.closureInsts << "}";
    }
    os << "\n    ],\n    \"opportunities\": [";
    for (std::size_t i = 0; i < opp.ranked.size(); ++i) {
        const analysis::InlineOpportunity &op = opp.ranked[i];
        os << (i == 0 ? "\n" : ",\n") << "      {\"block\": "
           << op.block << ", \"caller\": "
           << jsonStr(prog.functions()[op.caller].name)
           << ", \"loopDepth\": " << op.loopDepth
           << ", \"hotLoop\": " << (op.hotLoop ? "true" : "false")
           << ", \"smallLeafCallee\": "
           << (op.smallLeafCallee ? "true" : "false")
           << ", \"singleCallSite\": "
           << (op.singleCallSite ? "true" : "false")
           << ", \"returnRejoins\": "
           << (op.returnRejoins ? "true" : "false")
           << ", \"dupGrowthBoundInsts\": " << op.dupGrowthBoundInsts
           << ", \"score\": " << formatDouble(op.score, 2) << "}";
    }
    os << "\n    ]";
    if (ival != nullptr) {
        os << ",\n    \"validation\": {\"callTransfers\": "
           << ival->callTransfers
           << ", \"returnTransfers\": " << ival->returnTransfers
           << ", \"maxDynamicDepth\": " << ival->maxDynamicDepth
           << ", \"dynCalledFuncs\": " << ival->dynCalledFuncs
           << ", \"sitesExecuted\": " << ival->sitesExecuted
           << ", \"observedCalleeInsts\": "
           << ival->observedCalleeInsts
           << ", \"staticCalleeInsts\": " << ival->staticCalleeInsts
           << ", \"dupGrowthBoundInsts\": "
           << ival->dupGrowthBoundInsts
           << ", \"topQuartileCallShare\": "
           << formatDouble(ival->topQuartileCallShare, 2)
           << ", \"error\": " << jsonStr(ival->error) << "}";
    }
    os << "}";
}

void
emitJson(const analysis::StaticReport &rep, const Program &prog,
         const analysis::InterFacts *inf,
         const analysis::OpportunityReport *opp,
         const testing::InterValidation *ival,
         const testing::PredictionValidation *val,
         const AnalyzeOptions &opts, std::ostream &os)
{
    os << "{\n  \"schema\": " << jsonSchemaVersion
       << ",\n  \"program\": {"
       << "\"blocks\": " << rep.blockCount
       << ", \"reachableBlocks\": " << rep.reachableBlocks
       << ", \"staticInsts\": " << rep.staticInsts
       << ", \"reachableInsts\": " << rep.reachableInsts
       << ", \"loops\": " << rep.loopCount
       << ", \"maxLoopDepth\": " << rep.maxLoopDepth
       << ", \"innerLoops\": " << rep.innerLoops
       << ", \"innerLoopDupInsts\": " << rep.innerLoopDupInsts
       << ", \"unbiasedBranches\": " << rep.unbiasedBranches
       << ", \"unbiasedInLoops\": " << rep.unbiasedInLoops
       << ", \"frontierBlocks\": " << rep.frontierBlocks
       << ", \"tailDupEstInsts\": " << rep.tailDupEstInsts
       << ", \"cyclicBlocks\": " << rep.cyclicBlocks
       << ", \"crossFuncCycles\": " << rep.crossFuncCycles
       << ", \"maxSeparationFuncs\": " << rep.maxSeparationFuncs
       << ", \"dataflowTransfers\": " << rep.dataflowTransfers
       << "},\n  \"selectors\": [";
    bool first = true;
    for (const analysis::SelectorPrediction &p : rep.predictions) {
        if (!opts.selector.empty() && p.selector != opts.selector)
            continue;
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"selector\": " << jsonStr(p.selector)
           << ", \"entrances\": " << p.entranceCount
           << ", \"maxRegions\": " << p.maxRegions
           << ", \"maxSpanningRegions\": " << p.maxSpanningRegions
           << ", \"dupBoundInsts\": " << p.dupBoundInsts
           << ", \"expansionBoundInsts\": " << p.expansionBoundInsts
           << ", \"stubDensityMin\": " << p.stubDensityMin
           << ", \"stubDensityMax\": " << p.stubDensityMax
           << ", \"stubDensityEst\": " << p.stubDensityEst
           << ", \"spanningRatioEst\": " << p.spanningRatioEst;
        if (val != nullptr) {
            for (const testing::SelectorValidation &sv :
                 val->selectors) {
                if (sv.prediction.selector != p.selector)
                    continue;
                os << ", \"measured\": {\"regions\": "
                   << sv.measured.regionCount << ", \"spanning\": "
                   << sv.measured.spanningRegions
                   << ", \"duplicatedInsts\": "
                   << sv.measured.duplicatedInsts
                   << ", \"expansionInsts\": "
                   << sv.measured.expansionInsts
                   << ", \"exitStubs\": " << sv.measured.exitStubs
                   << "}, \"violations\": [";
                for (std::size_t i = 0; i < sv.violations.size(); ++i)
                    os << (i == 0 ? "" : ", ")
                       << jsonStr(sv.violations[i]);
                os << "]";
            }
        }
        os << "}";
    }
    os << "\n  ]";
    if (inf != nullptr && opp != nullptr)
        emitInterJson(prog, *inf, *opp, ival, os);
    os << "\n}\n";
}

void
printFactsTable(const analysis::StaticReport &rep,
                const std::string &what)
{
    Table table("Static program facts: " + what, {"fact", "value"});
    table.addRow({"blocks", u64(rep.blockCount)});
    table.addRow({"reachable blocks", u64(rep.reachableBlocks)});
    table.addRow({"static insts", u64(rep.staticInsts)});
    table.addRow({"reachable insts", u64(rep.reachableInsts)});
    table.addRow({"natural loops", u64(rep.loopCount)});
    table.addRow({"max loop depth", u64(rep.maxLoopDepth)});
    table.addRow({"inner loops", u64(rep.innerLoops)});
    table.addRow(
        {"inner-loop dup insts (est)", u64(rep.innerLoopDupInsts)});
    table.addRow({"unbiased branches", u64(rep.unbiasedBranches)});
    table.addRow({"unbiased in loops", u64(rep.unbiasedInLoops)});
    table.addRow({"frontier blocks", u64(rep.frontierBlocks)});
    table.addRow(
        {"tail-dup insts (est)", u64(rep.tailDupEstInsts)});
    table.addRow({"cyclic blocks", u64(rep.cyclicBlocks)});
    table.addRow({"cross-function cycles", u64(rep.crossFuncCycles)});
    table.addRow(
        {"max separation funcs", u64(rep.maxSeparationFuncs)});
    table.addSummaryRow(
        {"dataflow transfers", u64(rep.dataflowTransfers)});
    table.print(std::cout);
}

void
printPredictionTable(const analysis::StaticReport &rep,
                     const testing::PredictionValidation *val,
                     const AnalyzeOptions &opts)
{
    std::vector<std::string> headers = {
        "selector",  "entrances", "maxRegions", "maxSpanning",
        "dupBound",  "expBound",  "stubDens",   "stubDensEst",
        "spanEst"};
    if (val != nullptr)
        headers.push_back("measured");
    Table table("Per-selector predictions", headers);
    for (const analysis::SelectorPrediction &p : rep.predictions) {
        if (!opts.selector.empty() && p.selector != opts.selector)
            continue;
        std::vector<std::string> row = {
            p.selector,
            u64(p.entranceCount),
            u64(p.maxRegions),
            u64(p.maxSpanningRegions),
            u64(p.dupBoundInsts),
            u64(p.expansionBoundInsts),
            formatDouble(p.stubDensityMin, 2) + ".." +
                formatDouble(p.stubDensityMax, 2),
            formatDouble(p.stubDensityEst, 2),
            formatDouble(p.spanningRatioEst, 2)};
        if (val != nullptr) {
            std::string cell = "-";
            for (const testing::SelectorValidation &sv :
                 val->selectors)
                if (sv.prediction.selector == p.selector)
                    cell = sv.violations.empty()
                               ? u64(sv.measured.regionCount) +
                                     " regions OK"
                               : "VIOLATED: " + sv.violations.front();
            row.push_back(cell);
        }
        table.addRow(row);
    }
    table.print(std::cout);
}

std::string
yn(bool v)
{
    return v ? "yes" : "-";
}

void
printInterTables(const Program &prog,
                 const analysis::InterFacts &inf,
                 const analysis::OpportunityReport &opp,
                 const testing::InterValidation *ival,
                 const std::string &what)
{
    const analysis::CallGraph &cg = inf.callGraph;
    Table funcs("Interprocedural summaries: " + what,
                {"function", "blocks", "insts", "loopDepth",
                 "callSites", "fanIn", "leaf", "recursive",
                 "closureFuncs", "closureInsts"});
    for (const analysis::FuncSummary &s : inf.summaries)
        funcs.addRow({prog.functions()[s.func].name,
                      u64(s.blockCount), u64(s.insts),
                      u64(s.maxLoopDepth), u64(s.callSites),
                      u64(s.fanIn), yn(s.leaf), yn(s.recursive),
                      u64(s.closureFuncs), u64(s.closureInsts)});
    funcs.addSummaryRow(
        {"total", "-", "-", "-", u64(cg.sites.size()), "-", "-", "-",
         "-", u64(inf.dataflowTransfers)});
    funcs.print(std::cout);

    Table table("Inlining opportunities: " + what,
                {"rank", "block", "caller", "depth", "hot",
                 "smallLeaf", "single", "rejoin", "dupBound",
                 "score"});
    for (std::size_t i = 0; i < opp.ranked.size(); ++i) {
        const analysis::InlineOpportunity &op = opp.ranked[i];
        table.addRow({u64(i + 1), u64(op.block),
                      prog.functions()[op.caller].name,
                      u64(op.loopDepth), yn(op.hotLoop),
                      yn(op.smallLeafCallee), yn(op.singleCallSite),
                      yn(op.returnRejoins),
                      u64(op.dupGrowthBoundInsts),
                      formatDouble(op.score, 2)});
    }
    table.addSummaryRow(
        {"-", "-", "-", "-", u64(opp.hotLoopSites),
         u64(opp.smallLeafSites), u64(opp.singleCallSiteSites),
         u64(opp.rejoinSites), u64(opp.totalDupGrowthBoundInsts),
         "-"});
    table.print(std::cout);

    if (ival == nullptr)
        return;
    Table dyn("Dynamic call ground truth: " + what,
              {"fact", "value"});
    dyn.addRow({"call transfers", u64(ival->callTransfers)});
    dyn.addRow({"return transfers", u64(ival->returnTransfers)});
    dyn.addRow({"max dynamic depth", u64(ival->maxDynamicDepth)});
    dyn.addRow({"functions entered", u64(ival->dynCalledFuncs)});
    dyn.addRow({"sites executed", u64(ival->sitesExecuted)});
    dyn.addRow(
        {"observed callee insts", u64(ival->observedCalleeInsts)});
    dyn.addRow(
        {"static callee insts", u64(ival->staticCalleeInsts)});
    dyn.addRow(
        {"dup growth bound insts", u64(ival->dupGrowthBoundInsts)});
    dyn.addSummaryRow(
        {"top-quartile call share",
         formatDouble(ival->topQuartileCallShare, 2)});
    dyn.print(std::cout);
}

int
analyzeProgram(const Program &prog, const std::string &what,
               const AnalyzeOptions &opts)
{
    analysis::AnalysisManager mgr;
    const analysis::StaticReport rep =
        analysis::computeStaticReport(mgr, prog);

    testing::PredictionValidation val;
    const testing::PredictionValidation *valPtr = nullptr;
    if (opts.validate) {
        val = testing::validatePredictions(prog, opts.events,
                                           opts.seed);
        valPtr = &val;
    }

    const analysis::InterFacts *inf = nullptr;
    analysis::OpportunityReport opp;
    testing::InterValidation ival;
    const testing::InterValidation *ivalPtr = nullptr;
    if (opts.interprocedural) {
        inf = &mgr.interFacts(prog);
        opp = analysis::analyzeInlineOpportunities(*inf);
        if (opts.validate) {
            ival = testing::validateInterprocedural(
                prog, opts.events, opts.seed);
            ivalPtr = &ival;
        }
    }

    if (opts.json) {
        emitJson(rep, prog, inf, inf != nullptr ? &opp : nullptr,
                 ivalPtr, valPtr, opts, std::cout);
    } else {
        printFactsTable(rep, what);
        printPredictionTable(rep, valPtr, opts);
        if (inf != nullptr)
            printInterTables(prog, *inf, opp, ivalPtr, what);
        analysis::DiagnosticEngine all;
        analysis::emitStaticFacts(rep, prog, mgr.facts(prog), all);
        // Re-emit only the diagnostics of enabled passes
        // (--only/--skip); severity survives the copy.
        analysis::DiagnosticEngine diag;
        for (const analysis::Diagnostic &d : all.diagnostics()) {
            if (!passEnabled(opts, d.pass))
                continue;
            switch (d.severity) {
            case analysis::Severity::Error:
                diag.error(d.pass, d.object, d.message);
                break;
            case analysis::Severity::Warning:
                diag.warning(d.pass, d.object, d.message);
                break;
            case analysis::Severity::Note:
                diag.note(d.pass, d.object, d.message);
                break;
            }
        }
        diag.toTable("Static facts and lints: " + what)
            .print(std::cout);
    }
    if (valPtr != nullptr && !valPtr->error.empty()) {
        std::printf("%s: VALIDATION FAILED: %s\n", what.c_str(),
                    valPtr->error.c_str());
        return ExitVerifyFailure;
    }
    if (ivalPtr != nullptr && !ivalPtr->error.empty()) {
        std::printf("%s: VALIDATION FAILED: %s\n", what.c_str(),
                    ivalPtr->error.c_str());
        return ExitVerifyFailure;
    }
    if (!opts.json)
        std::printf("%s: analysis complete%s\n", what.c_str(),
                    opts.validate ? " (all bounds held)" : "");
    return ExitOk;
}

int
runProgramFile(const std::string &path, const AnalyzeOptions &opts)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open program file " + path);
    const Program prog = loadProgram(in);
    return analyzeProgram(prog, path, opts);
}

int
runSpec(const std::string &specText, const AnalyzeOptions &opts)
{
    testing::GenSpec spec = testing::GenSpec::parse(specText);
    spec.clamp();
    return analyzeProgram(testing::generateProgram(spec),
                          "spec " + spec.toString(), opts);
}

int
runWorkloads(const std::string &name, const AnalyzeOptions &opts)
{
    std::vector<const WorkloadInfo *> todo;
    if (name == "all") {
        for (const WorkloadInfo &w : workloadSuite())
            todo.push_back(&w);
    } else {
        const WorkloadInfo *w = findWorkload(name);
        if (w == nullptr)
            fatal("unknown workload " + name);
        todo.push_back(w);
    }
    int rc = ExitOk;
    for (const WorkloadInfo *w : todo)
        rc = std::max(rc, analyzeProgram(w->build(1),
                                         "workload " + w->name,
                                         opts));
    return rc;
}

/**
 * Self-test: the genuine predictions must hold against measured runs
 * of every selector, and one planted mis-prediction per bound kind
 * must be caught by checkPrediction. The rig is a loop program with
 * an unbiased branch, so every selector forms regions, conditional
 * exits produce stubs, and tail duplication copies the join block.
 */
Program
selfTestProgram()
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(4);
    (void)pb.block(3); // fall-through arm of the unbiased branch
    const BlockId c = pb.block(2);
    const BlockId d = pb.block(1);
    CondBehavior skip;
    skip.kind = CondBehavior::Kind::Bernoulli;
    skip.takenProbByPhase = {0.5};
    pb.condTo(a, c, skip);
    pb.loopTo(c, a, 10000, 10000);
    pb.halt(d);
    pb.setEntry(a);
    return pb.build();
}

/** One planted mis-prediction: tamper one bound, expect one check. */
struct PlantedMiss
{
    std::string kind; ///< checkPrediction message prefix expected
    /** Pick a selector this kind applies to; false = inapplicable. */
    bool (*applies)(const SimResult &res);
    /** Sabotage the prediction so the measured run violates it. */
    void (*tamper)(analysis::SelectorPrediction &p,
                   const SimResult &res);
};

int
runSelfTest()
{
    const Program prog = selfTestProgram();
    const testing::PredictionValidation val =
        testing::validatePredictions(prog, 40000, 1);

    // Leg 1: genuine predictions hold for every selector.
    if (!val.error.empty()) {
        std::printf("self-test genuine: FAILED: %s\n",
                    val.error.c_str());
        return ExitVerifyFailure;
    }
    std::printf("self-test genuine: all bounds held for %u "
                "selectors\n",
                static_cast<unsigned>(val.selectors.size()));

    // Leg 2: plant one mis-prediction per bound kind.
    const std::vector<PlantedMiss> misses = {
        {"max-regions",
         [](const SimResult &r) { return r.regionCount > 0; },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.maxRegions = r.regionCount - 1;
         }},
        {"spanning-bound",
         [](const SimResult &r) { return r.spanningRegions > 0; },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.maxSpanningRegions = r.spanningRegions - 1;
         }},
        {"dup-bound",
         [](const SimResult &r) { return r.duplicatedInsts > 0; },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.dupBoundInsts = r.duplicatedInsts - 1;
         }},
        {"expansion-bound",
         [](const SimResult &r) { return r.expansionInsts > 0; },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.expansionBoundInsts = r.expansionInsts - 1;
         }},
        {"stub-density-max",
         [](const SimResult &r) {
             return r.exitStubs > 0 && r.expansionInsts > 0;
         },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.stubDensityMax =
                 (static_cast<double>(r.exitStubs) - 0.5) /
                 static_cast<double>(r.expansionInsts);
         }},
        {"stub-density-min",
         [](const SimResult &r) { return r.expansionInsts > 0; },
         [](analysis::SelectorPrediction &p, const SimResult &r) {
             p.stubDensityMin =
                 (static_cast<double>(r.exitStubs) + 0.5) /
                 static_cast<double>(r.expansionInsts);
         }},
    };

    std::uint32_t caught = 0;
    for (const PlantedMiss &miss : misses) {
        const testing::SelectorValidation *victim = nullptr;
        for (const testing::SelectorValidation &sv : val.selectors)
            if (miss.applies(sv.measured)) {
                victim = &sv;
                break;
            }
        if (victim == nullptr) {
            std::printf("self-test %s: NOT caught (no selector "
                        "produced a nonzero measurement)\n",
                        miss.kind.c_str());
            continue;
        }
        analysis::SelectorPrediction bad = victim->prediction;
        miss.tamper(bad, victim->measured);
        const std::vector<std::string> violations =
            analysis::checkPrediction(bad, victim->measured);
        bool hit = false;
        for (const std::string &v : violations)
            if (v.rfind(miss.kind, 0) == 0)
                hit = true;
        if (hit) {
            ++caught;
            std::printf("self-test %s: caught (%s)\n",
                        miss.kind.c_str(),
                        victim->prediction.selector.c_str());
        } else {
            std::printf("self-test %s: NOT caught (%s reported %zu "
                        "other violations)\n",
                        miss.kind.c_str(),
                        victim->prediction.selector.c_str(),
                        violations.size());
        }
    }
    std::printf("analyze self-test: caught %u/%zu planted "
                "mis-predictions\n",
                caught, misses.size());
    return caught == misses.size() ? ExitOk : ExitVerifyFailure;
}

/** --list-passes: every analyze pass name, one per line. */
int
listPasses()
{
    std::printf("analyze passes:\n");
    for (const std::string &name : analysis::analyzePassNames())
        std::printf("  %s\n", name.c_str());
    return ExitOk;
}

/** Split a comma-separated pass list, validating every name. */
std::vector<std::string>
parsePassList(const std::string &flag, const std::string &value)
{
    const std::vector<std::string> &known =
        analysis::analyzePassNames();
    std::vector<std::string> names;
    std::string cur;
    const auto push = [&]() {
        if (cur.empty())
            return;
        if (std::find(known.begin(), known.end(), cur) == known.end())
            fatal("--" + flag + ": unknown analyze pass '" + cur +
                  "' (see --list-passes)");
        names.push_back(cur);
        cur.clear();
    };
    for (const char c : value) {
        if (c == ',')
            push();
        else
            cur += c;
    }
    push();
    return names;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("self-test", "false",
               "check genuine predictions hold and planted "
               "mis-predictions are caught");
    cli.define("program", "", "analyze a saved program file");
    cli.define("spec", "", "analyze the program of one fuzz spec");
    cli.define("workload", "",
               "analyze a synthetic workload by name, or all");
    cli.define("selector", "",
               "restrict the prediction table to one selector");
    cli.define("json", "false", "emit the report as JSON");
    cli.define("validate", "false",
               "measure every selector (unbounded cache) and check "
               "the bounds");
    cli.define("interprocedural", "false",
               "add the call-graph layer: function summaries, the "
               "ranked inlining-opportunity table, and (with "
               "--validate) the dynamic-call ground-truth check");
    cli.define("events", "20000", "events per validation run");
    cli.define("seed", "1", "executor seed for validation runs");
    cli.define("list-passes", "false",
               "print every analyze pass name and exit");
    cli.define("only", "",
               "report only these analyze passes (comma-separated)");
    cli.define("skip", "",
               "skip these analyze passes (comma-separated)");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }

        if (cli.getBool("list-passes"))
            return listPasses();

        AnalyzeOptions opts;
        opts.selector = cli.get("selector");
        opts.json = cli.getBool("json");
        opts.validate = cli.getBool("validate");
        opts.interprocedural = cli.getBool("interprocedural");
        opts.events = cli.getUint("events");
        opts.seed = cli.getUint("seed");
        if (!cli.get("only").empty())
            opts.only = parsePassList("only", cli.get("only"));
        if (!cli.get("skip").empty())
            opts.skip = parsePassList("skip", cli.get("skip"));
        if (!opts.selector.empty()) {
            bool known = false;
            for (const Algorithm algo : allSelectors)
                if (algorithmName(algo) == opts.selector)
                    known = true;
            if (!known)
                fatal("unknown selector " + opts.selector);
        }

        if (cli.getBool("self-test"))
            return runSelfTest();
        if (!cli.get("program").empty())
            return runProgramFile(cli.get("program"), opts);
        if (!cli.get("spec").empty())
            return runSpec(cli.get("spec"), opts);
        if (!cli.get("workload").empty())
            return runWorkloads(cli.get("workload"), opts);
        std::fputs(cli.usage(argv[0]).c_str(), stdout);
        return ExitUsageError;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
