/**
 * @file
 * rselect-serve: the multi-tenant selection service CLI.
 *
 * Runs N guest streams (tenants) concurrently over one shared,
 * sharded, bounded code cache and reports throughput, the global
 * hit rate and per-tenant metrics. Tenants come from a spec file
 * (--spec-file, one TenantSpec line per tenant) or are derived
 * deterministically from seeds (--tenants N --seed-base S).
 *
 *     rselect-serve --tenants 16 --cache-kb 64 --jobs 8
 *     rselect-serve --spec-file tenants.txt --json out.json
 *     rselect-serve --tenants 8 --fault-fuzz --verify-solo
 *     rselect-serve --tenants 8 --chaos-seed 7 --verify-solo
 *     rselect-serve --tenants 16 --max-inflight 4 --slice-budget 32
 *
 * The service's load-bearing contract: every tenant's result is
 * byte-identical to a solo single-tenant run of the same spec and
 * quota-derived cache limits, at any --jobs count, for every
 * selector, including under fault plans. --verify-solo re-runs each
 * tenant solo and compares fingerprints (exit 3 on divergence);
 * --self-test mismatch sabotages the comparison to prove the oracle
 * can fail.
 *
 * Exit codes: 0 = clean, 1 = runtime fault, 2 = usage error,
 * 3 = verification failure.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "service/selection_service.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"
#include "testing/differential.hpp"

using namespace rsel;
using namespace rsel::service;

namespace {

std::vector<TenantSpec>
buildTenants(const CliOptions &cli)
{
    std::vector<TenantSpec> tenants;
    if (!cli.get("spec-file").empty()) {
        std::ifstream in(cli.get("spec-file"));
        if (!in)
            fatal("cannot open tenant spec file '" +
                  cli.get("spec-file") + "'");
        tenants = loadTenantSpecs(in);
    } else {
        const std::uint64_t count = cli.getUint("tenants");
        if (count == 0)
            fatal("--tenants must be at least 1");
        const std::uint64_t base = cli.getUint("seed-base");
        tenants.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i)
            tenants.push_back(TenantSpec::fromSeed(base + i));
    }

    // Fault arming: one fixed plan for every tenant, or one derived
    // plan per tenant (seeded like the fuzz harness pairs seeds).
    if (!cli.get("fault-spec").empty()) {
        if (cli.getBool("fault-fuzz"))
            fatal("--fault-fuzz and --fault-spec are mutually "
                  "exclusive");
        const resilience::FaultPlan plan =
            resilience::FaultPlan::parse(cli.get("fault-spec"));
        for (TenantSpec &spec : tenants)
            spec.faults = plan;
    } else if (cli.getBool("fault-fuzz")) {
        const std::uint64_t base = cli.getUint("seed-base");
        for (std::size_t i = 0; i < tenants.size(); ++i)
            tenants[i].faults = resilience::FaultPlan::fromSeed(
                base + static_cast<std::uint64_t>(i));
    }
    return tenants;
}

ServiceConfig
buildConfig(const CliOptions &cli)
{
    ServiceConfig config;
    config.tenants = buildTenants(cli);
    config.jobs = static_cast<std::size_t>(cli.getUint("jobs"));
    config.cacheKb = cli.getUint("cache-kb");
    config.shards = static_cast<std::size_t>(cli.getUint("shards"));
    if (config.shards == 0)
        fatal("--shards must be at least 1");
    if (cli.get("policy") == "fifo")
        config.policy = CacheLimits::Policy::Fifo;
    else if (cli.get("policy") == "flush")
        config.policy = CacheLimits::Policy::FullFlush;
    else
        fatal("--policy must be 'flush' or 'fifo'");
    config.sliceEvents = cli.getUint("slice");
    config.eventsOverride = cli.getUint("events");

    // Chaos arming: one fixed plan (--chaos-spec, parse errors are
    // usage errors) or a seed-derived one (--chaos-seed).
    if (!cli.get("chaos-spec").empty()) {
        if (cli.getUint("chaos-seed") != 0)
            fatal("--chaos-spec and --chaos-seed are mutually "
                  "exclusive");
        config.chaos = ChaosPlan::parse(cli.get("chaos-spec"));
    } else if (cli.getUint("chaos-seed") != 0) {
        config.chaos =
            ChaosPlan::fromSeed(cli.getUint("chaos-seed"));
    }

    config.overload.maxInflight =
        static_cast<std::size_t>(cli.getUint("max-inflight"));
    config.overload.sliceBudget = cli.getUint("slice-budget");
    // The health machine engages whenever chaos or any overload
    // knob is in play; a plain service run keeps the PR-7 contract
    // (and its oracles) untouched.
    config.overload.healthEnabled =
        config.chaos.armed() || config.overload.maxInflight != 0 ||
        config.overload.sliceBudget != 0;
    return config;
}

/**
 * Oracle self-test: sabotage the solo leg of tenant 0 (different
 * executor seed) and demand the fingerprint comparison FAILS. A
 * comparison that cannot fail verifies nothing.
 */
int
runSelfTest(ServiceConfig config)
{
    const ServiceReport report = runService(config);
    TenantSpec sabotaged = config.tenants[0];
    sabotaged.program.execSeed += 1;
    const SimResult solo =
        soloTenantRun(sabotaged, tenantLimitsFor(config, sabotaged),
                      config.eventsOverride);
    if (report.tenants[0].fingerprint ==
        testing::resultFingerprint(solo)) {
        std::fprintf(stderr,
                     "self-test FAILED: sabotaged solo run still "
                     "matched the service fingerprint\n");
        return ExitRuntimeFault;
    }
    std::printf("self-test: sabotaged comparison diverged as "
                "expected\n");
    return ExitVerifyFailure;
}

/**
 * Chaos-oracle self-test: force a crash-everything plan, prove the
 * chaos oracle passes cleanly, then sabotage the restart oracle's
 * replay position by one event and demand divergence.
 */
int
runChaosSelfTest(ServiceConfig config)
{
    config.chaos = ChaosPlan::parse("c1,crash=1000,window=4");
    config.overload.healthEnabled = true;
    const std::string error = verifyServiceChaos(config);
    if (!error.empty()) {
        std::fprintf(stderr,
                     "self-test FAILED: chaos oracle did not pass "
                     "cleanly: %s\n",
                     error.c_str());
        return ExitRuntimeFault;
    }
    const ServiceReport report = runService(config);
    const TenantReport &tr = report.tenants[0];
    // One event past the true replay position: the fresh solo run
    // consumes one event fewer, so the fingerprints must differ.
    const TenantSpec &spec = config.tenants[0];
    const SimResult solo = soloTenantRun(
        spec, tenantLimitsFor(config, spec), config.eventsOverride,
        tr.chaos.restartFromEvent + 1);
    if (tr.fingerprint == testing::resultFingerprint(solo)) {
        std::fprintf(stderr,
                     "self-test FAILED: sabotaged replay position "
                     "still matched the service fingerprint\n");
        return ExitRuntimeFault;
    }
    std::printf("self-test: sabotaged chaos comparison diverged as "
                "expected\n");
    return ExitVerifyFailure;
}

void
printSummary(const ServiceConfig &config, const ServiceReport &report)
{
    std::printf("tenants: %zu, jobs: %zu, shards: %zu\n",
                report.tenants.size(), report.jobs,
                report.arena.shardCount);
    if (config.cacheKb > 0)
        std::printf("global cache: %llu KiB (quota %llu B/tenant)\n",
                    static_cast<unsigned long long>(config.cacheKb),
                    static_cast<unsigned long long>(
                        report.quotaBytes));
    else
        std::printf("global cache: unbounded (per-spec limits)\n");
    std::printf("events: %llu in %.3f s (%.0f events/s)\n",
                static_cast<unsigned long long>(report.totalEvents),
                report.seconds, report.eventsPerSec);
    std::printf("global hit rate: %.2f%%\n",
                report.globalHitRate * 100.0);
    std::printf("arena: high water %llu B, %llu admissions, "
                "%llu releases, %llu shard contentions\n",
                static_cast<unsigned long long>(
                    report.arena.highWaterBytes),
                static_cast<unsigned long long>(
                    report.arena.admissions),
                static_cast<unsigned long long>(
                    report.arena.releases),
                static_cast<unsigned long long>(
                    report.arena.shardContention));
    if (config.chaos.armed() || config.overload.enabled()) {
        std::printf("chaos: %llu aborts, %llu restarts, "
                    "%llu quarantines, %llu squeezes (%s)\n",
                    static_cast<unsigned long long>(
                        report.chaos.aborts),
                    static_cast<unsigned long long>(
                        report.chaos.restarts),
                    static_cast<unsigned long long>(
                        report.chaos.quarantines),
                    static_cast<unsigned long long>(
                        report.chaos.squeezes),
                    config.chaos.toString().c_str());
        std::printf("overload: %llu scheduled, %llu shed, "
                    "%llu completed, %llu blacklisted slices; "
                    "%llu degraded, %llu blacklisted tenants\n",
                    static_cast<unsigned long long>(
                        report.chaos.scheduledSlices),
                    static_cast<unsigned long long>(
                        report.chaos.shedSlices),
                    static_cast<unsigned long long>(
                        report.chaos.completedSlices),
                    static_cast<unsigned long long>(
                        report.chaos.blacklistedSlices),
                    static_cast<unsigned long long>(
                        report.chaos.degradedTenants),
                    static_cast<unsigned long long>(
                        report.chaos.blacklistedTenants));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("tenants", "4",
               "number of seed-derived tenants (ignored with "
               "--spec-file)");
    cli.define("seed-base", "1",
               "first seed of the derived tenant range");
    cli.define("spec-file", "",
               "tenant spec file: one TenantSpec line per tenant");
    cli.define("jobs", "0",
               "pool workers (0 = hardware concurrency, 1 = serial)");
    cli.define("cache-kb", "0",
               "global code-cache bound in KiB, partitioned "
               "equally across tenants (0 = unbounded)");
    cli.define("shards", "16", "arena shard count");
    cli.define("policy", "flush",
               "per-quota eviction policy: flush | fifo");
    cli.define("slice", "4096", "events per scheduling slice");
    cli.define("events", "0",
               "override every tenant's event budget (0 = per-spec)");
    cli.define("fault-spec", "",
               "arm one fixed fault plan on every tenant");
    cli.define("fault-fuzz", "false",
               "arm a per-tenant derived fault plan "
               "(FaultPlan::fromSeed)");
    cli.define("chaos-spec", "",
               "arm a fixed service-level chaos plan "
               "(\"c1,crash=300,quar=200,...\")");
    cli.define("chaos-seed", "0",
               "derive the chaos plan from a seed "
               "(ChaosPlan::fromSeed; 0 = off)");
    cli.define("max-inflight", "0",
               "bounded admission: tenants granted a slice per "
               "round (0 = unbounded)");
    cli.define("slice-budget", "0",
               "slices per tenant before degradation to "
               "interpretation (0 = no budget)");
    cli.define("json", "", "write the JSON report to this path");
    cli.define("verify-solo", "false",
               "re-run every tenant solo and compare fingerprints "
               "(exit 3 on divergence; chaos-aware when a chaos "
               "plan or overload knob is armed)");
    cli.define("self-test", "none",
               "oracle self-test: none | mismatch | chaos "
               "(sabotages a solo leg and expects exit 3)");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        const ServiceConfig config = buildConfig(cli);

        // A bare `--json` parses as the boolean "true", which would
        // silently become a report file named "true".
        if (cli.get("json") == "true")
            fatal("--json requires a path argument");

        if (cli.get("self-test") == "mismatch")
            return runSelfTest(config);
        if (cli.get("self-test") == "chaos")
            return runChaosSelfTest(config);
        if (cli.get("self-test") != "none")
            fatal("--self-test must be 'none', 'mismatch' or "
                  "'chaos'");

        if (cli.getBool("verify-solo")) {
            // Chaos or overload in play switches to the chaos
            // oracle: per-tenant reference legs picked by what
            // actually touched each tenant, plus the accounting
            // identities.
            const bool chaosAware =
                config.chaos.armed() || config.overload.enabled();
            const std::string error =
                chaosAware ? verifyServiceChaos(config)
                           : verifyServiceDeterminism(config);
            if (!error.empty()) {
                std::fprintf(stderr, "verify-solo FAILED: %s\n",
                             error.c_str());
                return ExitVerifyFailure;
            }
            std::printf("verify-solo: %zu tenants byte-identical "
                        "to their %s runs\n",
                        config.tenants.size(),
                        chaosAware ? "reference" : "solo");
        }

        const ServiceReport report = runService(config);
        printSummary(config, report);
        if (!cli.get("json").empty()) {
            std::ofstream out(cli.get("json"));
            if (!out)
                fatal("cannot write JSON report to '" +
                      cli.get("json") + "'");
            writeServiceReportJson(out, config, report);
            std::printf("json: %s\n", cli.get("json").c_str());
        }
        return ExitOk;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
