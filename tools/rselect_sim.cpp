/**
 * @file
 * rselect-sim: the general-purpose simulation driver.
 *
 * Runs any workload (or the whole suite) under any subset of the
 * shipped selection algorithms with fully exposed parameters, and
 * reports either a human-readable table or CSV for downstream
 * analysis.
 *
 *     rselect-sim --workload gcc --algos NET,LEI --events 2000000
 *     rselect-sim --csv --algos all > results.csv
 *     rselect-sim --workload mcf --cache-kb 8 --cache-policy fifo
 *
 * Sweeps run the (workload × algorithm) grid in parallel on a
 * thread pool (--jobs N; default = hardware concurrency, 1 = the
 * legacy serial path). Results are collected in grid order, so the
 * output is byte-identical at any job count.
 *
 * Trace-driven use (the Pin/DynamoRIO-style front door):
 *
 *     rselect-sim --workload gzip --save-program gzip.prog
 *     rselect-sim --workload gzip --record-trace gzip.trc --events 1000000
 *     rselect-sim --program gzip.prog --trace gzip.trc --algos LEI
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/diagnostics.hpp"
#include "program/trace_io.hpp"
#include "rselect.hpp"

using namespace rsel;

namespace {

/** Parse a comma-separated algorithm list ("all" = everything). */
std::vector<Algorithm>
parseAlgorithms(const std::string &spec)
{
    if (spec == "all") {
        return {allSelectors,
                allSelectors + std::size(allSelectors)};
    }
    if (spec == "paper") {
        return {allAlgorithms,
                allAlgorithms + std::size(allAlgorithms)};
    }
    std::vector<Algorithm> algos;
    std::stringstream ss(spec);
    std::string name;
    while (std::getline(ss, name, ',')) {
        bool found = false;
        for (Algorithm a : allSelectors) {
            if (algorithmName(a) == name) {
                algos.push_back(a);
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown algorithm '" + name +
                  "' (try NET, LEI, NET+comb, LEI+comb, Mojo, BOA, "
                  "WRS, paper, or all)");
    }
    if (algos.empty())
        fatal("no algorithms given");
    return algos;
}

void
printCsvHeader()
{
    std::cout
        << "workload,algorithm,events,total_insts,hit_rate,regions,"
           "expansion_insts,expansion_bytes,exit_stubs,"
           "region_transitions,region_executions,cycle_terminations,"
           "spanning_regions,cover_set_90,max_live_counters,"
           "observed_trace_bytes,exit_dominated_regions,"
           "exit_dominated_dup_insts,duplicated_insts,"
           "licm_capable_regions,dual_split_regions,"
           "cache_evictions,cache_regenerations\n";
}

void
printCsvRow(const SimResult &r)
{
    std::cout << r.workload << ',' << r.selector << ',' << r.events
              << ',' << r.totalInsts << ',' << r.hitRate() << ','
              << r.regionCount << ',' << r.expansionInsts << ','
              << r.expansionBytes << ',' << r.exitStubs << ','
              << r.regionTransitions << ',' << r.regionExecutions
              << ',' << r.cycleTerminations << ','
              << r.spanningRegions << ',' << r.coverSet90 << ','
              << r.maxLiveCounters << ','
              << r.peakObservedTraceBytes << ','
              << r.exitDominatedRegions << ','
              << r.exitDominatedDupInsts << ',' << r.duplicatedInsts
              << ',' << r.licmCapableRegions << ','
              << r.dualSplitRegions << ',' << r.cacheEvictions << ','
              << r.cacheRegenerations << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("workload", "all", "workload name, or 'all'");
    cli.define("algos", "paper",
               "comma-separated algorithms, 'paper', or 'all'");
    cli.define("events", "0", "events per run (0 = workload default)");
    cli.define("seed", "7", "executor seed");
    cli.define("build-seed", "42", "program-synthesis seed");
    cli.define("net-threshold", "50", "NET hot threshold");
    cli.define("lei-threshold", "35", "LEI cycle threshold");
    cli.define("buffer", "500", "LEI history-buffer capacity");
    cli.define("tprof", "15", "observed traces per entrance");
    cli.define("tmin", "5", "block occurrence threshold");
    cli.define("cache-kb", "0",
               "code-cache capacity in KiB (0 = unbounded)");
    cli.define("cache-policy", "flush",
               "bounded-cache policy: flush | fifo");
    cli.define("csv", "false", "emit CSV instead of tables");
    cli.define("jobs", "0",
               "parallel sweep workers (0 = hardware concurrency, "
               "1 = serial)");
    cli.define("save-program", "",
               "write the workload's program file and exit");
    cli.define("record-trace", "",
               "execute and record a trace file, then exit");
    cli.define("program", "",
               "load the guest program from a file instead of a "
               "built-in workload");
    cli.define("trace", "",
               "replay a recorded trace instead of executing "
               "(requires --program or --workload)");
    cli.define("fault-spec", "",
               "fault-injection plan (e.g. "
               "'f1,tfail=20,inval=50,seed=9'); empty = disarmed");
    cli.define("fault-seed", "0",
               "non-zero overrides the fault plan's own seed");
    cli.define("verify", "false",
               "statically verify every emitted region "
               "(verify-on-submit)");

    try {
        cli.parse(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return ExitUsageError;
    }
    if (cli.helpRequested()) {
        std::cout << cli.usage(argv[0]);
        return ExitOk;
    }

    try {
        const std::vector<Algorithm> algos =
            parseAlgorithms(cli.get("algos"));

        SimOptions opts;
        opts.seed = cli.getUint("seed");
        opts.net.hotThreshold =
            static_cast<std::uint32_t>(cli.getUint("net-threshold"));
        opts.lei.hotThreshold =
            static_cast<std::uint32_t>(cli.getUint("lei-threshold"));
        opts.lei.bufferCapacity =
            static_cast<std::size_t>(cli.getUint("buffer"));
        opts.net.profWindow = opts.lei.profWindow =
            static_cast<std::uint32_t>(cli.getUint("tprof"));
        opts.net.minOccur = opts.lei.minOccur =
            static_cast<std::uint32_t>(cli.getUint("tmin"));
        opts.cache.capacityBytes = cli.getUint("cache-kb") * 1024;
        opts.cache.policy = cli.get("cache-policy") == "fifo"
                                ? CacheLimits::Policy::Fifo
                                : CacheLimits::Policy::FullFlush;
        opts.maxEvents = cli.getUint("events");
        if (!cli.get("fault-spec").empty())
            opts.faults =
                resilience::FaultPlan::parse(cli.get("fault-spec"));
        opts.faultSeed = cli.getUint("fault-seed");
        opts.verifyRegions = cli.getBool("verify");

        // Trace-driven single-program modes.
        if (!cli.get("save-program").empty() ||
            !cli.get("record-trace").empty() ||
            !cli.get("program").empty() || !cli.get("trace").empty()) {
            Program prog = [&] {
                if (!cli.get("program").empty()) {
                    std::ifstream in(cli.get("program"));
                    if (!in)
                        fatal("cannot open " + cli.get("program"));
                    return loadProgram(in);
                }
                const WorkloadInfo *w =
                    findWorkload(cli.get("workload"));
                if (w == nullptr)
                    fatal("unknown workload '" + cli.get("workload") +
                          "' (trace modes need --workload or "
                          "--program)");
                return w->build(cli.getUint("build-seed"));
            }();

            if (!cli.get("save-program").empty()) {
                std::ofstream out(cli.get("save-program"));
                saveProgram(prog, out);
                std::cout << "wrote " << cli.get("save-program")
                          << '\n';
                return 0;
            }
            if (!cli.get("record-trace").empty()) {
                std::ofstream out(cli.get("record-trace"),
                                  std::ios::binary);
                TraceWriter writer(out, prog);
                Executor exec(prog, cli.getUint("seed"));
                const std::uint64_t events =
                    cli.getUint("events") != 0 ? cli.getUint("events")
                                               : 1'000'000;
                exec.run(events, writer);
                writer.finish();
                std::cout << "wrote " << writer.eventCount()
                          << " events to "
                          << cli.get("record-trace") << '\n';
                return 0;
            }
            if (!cli.get("trace").empty()) {
                const std::uint64_t replayEvents =
                    cli.getUint("events") != 0
                        ? cli.getUint("events")
                        : std::numeric_limits<std::uint64_t>::max();
                for (Algorithm algo : algos) {
                    // Each algorithm needs its own pass, so the
                    // stream is opened once per run.
                    std::ifstream run(cli.get("trace"),
                                      std::ios::binary);
                    if (!run)
                        fatal("cannot open " + cli.get("trace"));
                    TraceReplayer rp(prog, run);
                    DynOptSystem system(prog, opts.cache,
                                        opts.icache);
                    attachAlgorithm(system, algo, opts);
                    if (opts.verifyRegions)
                        system.enableVerifyOnSubmit();
                    system.armFaults(opts.faults, opts.faultSeed);
                    // Replay through the batched path: identical
                    // results (see batch_dispatch_test), one virtual
                    // call per EventBatch instead of per block.
                    const std::uint64_t n =
                        rp.runBatched(replayEvents, system);
                    SimResult r = system.finish();
                    std::cout << algorithmName(algo) << ": " << n
                              << " events, hit "
                              << formatPercent(r.hitRate(), 2) << ", "
                              << r.regionCount << " regions, cover90 "
                              << r.coverSet90 << ", transitions "
                              << r.regionTransitions << '\n';
                }
                return 0;
            }
        }

        std::vector<const WorkloadInfo *> workloads;
        if (cli.get("workload") == "all") {
            for (const WorkloadInfo &w : workloadSuite())
                workloads.push_back(&w);
        } else {
            const WorkloadInfo *w = findWorkload(cli.get("workload"));
            if (w == nullptr)
                fatal("unknown workload '" + cli.get("workload") +
                      "'");
            workloads.push_back(w);
        }

        const bool csv = cli.getBool("csv");
        if (csv)
            printCsvHeader();

        // Fan the (workload × algorithm) grid out over the pool;
        // results come back in grid order, so printing below is
        // identical to the old serial per-workload loop.
        const SweepRunner runner(
            static_cast<std::size_t>(cli.getUint("jobs")));
        const std::vector<SweepCell> grid = SweepRunner::makeGrid(
            workloads, algos, opts, cli.getUint("build-seed"));
        const std::vector<SimResult> all = runner.run(grid);

        for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
            const WorkloadInfo *w = workloads[wi];
            const auto *first = all.data() + wi * algos.size();
            const std::vector<SimResult> results(
                first, first + algos.size());
            if (csv) {
                for (const SimResult &r : results)
                    printCsvRow(r);
                continue;
            }

            std::vector<std::string> headers{"metric"};
            for (const SimResult &r : results)
                headers.push_back(r.selector);
            Table t("rselect-sim: " + w->name + " (" +
                        std::to_string(grid[wi * algos.size()]
                                           .opts.maxEvents) +
                        " events)",
                    headers);
            auto row = [&](const std::string &name, auto getter,
                           int decimals) {
                std::vector<std::string> cells{name};
                for (const SimResult &r : results)
                    cells.push_back(
                        formatDouble(getter(r), decimals));
                t.addRow(cells);
            };
            row("hit rate (%)",
                [](const SimResult &r) { return 100 * r.hitRate(); },
                2);
            row("regions",
                [](const SimResult &r) { return double(r.regionCount); },
                0);
            row("expansion (insts)",
                [](const SimResult &r) {
                    return double(r.expansionInsts);
                },
                0);
            row("exit stubs",
                [](const SimResult &r) { return double(r.exitStubs); },
                0);
            row("transitions",
                [](const SimResult &r) {
                    return double(r.regionTransitions);
                },
                0);
            row("90% cover set",
                [](const SimResult &r) { return double(r.coverSet90); },
                0);
            row("duplicated insts",
                [](const SimResult &r) {
                    return double(r.duplicatedInsts);
                },
                0);
            if (opts.cache.capacityBytes != 0) {
                row("cache evictions",
                    [](const SimResult &r) {
                        return double(r.cacheEvictions);
                    },
                    0);
                row("cache regenerations",
                    [](const SimResult &r) {
                        return double(r.cacheRegenerations);
                    },
                    0);
            }
            if (opts.faults.armed()) {
                row("faults injected",
                    [](const SimResult &r) {
                        return double(r.recovery.faultsInjected);
                    },
                    0);
                row("regions invalidated",
                    [](const SimResult &r) {
                        return double(r.recovery.regionsInvalidated);
                    },
                    0);
                row("retranslations",
                    [](const SimResult &r) {
                        return double(r.recovery.retranslations);
                    },
                    0);
                row("blacklisted entrances",
                    [](const SimResult &r) {
                        return double(
                            r.recovery.blacklistedEntrances);
                    },
                    0);
            }
            t.print(std::cout);
            std::cout << '\n';
        }
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return ExitUsageError;
    } catch (const analysis::VerifyError &e) {
        std::cerr << "verification failure: " << e.what() << '\n';
        return ExitVerifyFailure;
    } catch (const std::exception &e) {
        std::cerr << "runtime fault: " << e.what() << '\n';
        return ExitRuntimeFault;
    }
    return ExitOk;
}
