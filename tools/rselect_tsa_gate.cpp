/**
 * @file
 * rselect-tsa-gate: driver for the negative-compile battery of the
 * concurrency contract (tests/negative_compile/, docs/ANALYSIS.md).
 *
 * For every case file the gate compiles two legs:
 *
 *  - positive (no defines): the legal variant must compile clean —
 *    on a Clang host additionally under -Wthread-safety
 *    -Wthread-safety-beta promoted to errors, so the legal variants
 *    are themselves gate-clean;
 *  - negative (-DRSEL_TSA_NEGATIVE, Clang only): the violating
 *    variant must FAIL, and the compiler output must contain the
 *    case's `// TSA-EXPECT:` substring — failing for the intended
 *    reason, not by accident.
 *
 * On a non-Clang host the negative legs are skipped with a clear
 * message (Thread Safety Analysis is a Clang feature); the
 * `--positive-only` mode remains meaningful everywhere and keeps
 * the case files compiling in CI regardless of toolchain.
 *
 * `--self-test` proves the gate itself detects a non-failing case:
 * it reruns the battery with the violation define withheld, so
 * every negative leg compiles — and asserts the gate flags every
 * single one (mirroring rselect-verify's planted-bug self-tests).
 *
 * Exit codes: 0 = battery clean (or skipped: non-Clang host),
 * 1 = runtime fault, 2 = usage error, 3 = battery failure.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"

#ifndef RSEL_TSA_CASE_DIR
#define RSEL_TSA_CASE_DIR ""
#endif
#ifndef RSEL_TSA_INCLUDE_DIR
#define RSEL_TSA_INCLUDE_DIR ""
#endif
#ifndef RSEL_TSA_COMPILER
#define RSEL_TSA_COMPILER "c++"
#endif

using namespace rsel;

namespace {

struct CaseFile
{
    std::string path;
    std::string name;
    std::string expect; // TSA-EXPECT substring
};

struct LegResult
{
    bool compiled = false;
    std::string output;
};

/** Run `cmd`, capturing stdout+stderr and the exit status. */
LegResult
runCompiler(const std::string &cmd)
{
    LegResult result;
    FILE *pipe = ::popen((cmd + " 2>&1").c_str(), "r");
    if (pipe == nullptr)
        throw std::runtime_error("popen failed for: " + cmd);
    char buf[4096];
    while (std::fgets(buf, sizeof buf, pipe) != nullptr)
        result.output += buf;
    const int status = ::pclose(pipe);
    result.compiled = status == 0;
    return result;
}

/** True if `compiler --version` identifies a Clang. */
bool
isClang(const std::string &compiler)
{
    const LegResult probe =
        runCompiler("\"" + compiler + "\" --version");
    return probe.compiled &&
           probe.output.find("clang") != std::string::npos;
}

/** Parse the `// TSA-EXPECT: <substring>` header of a case file. */
std::string
parseExpect(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read case file: " + path);
    std::string line;
    const std::string tag = "// TSA-EXPECT:";
    while (std::getline(in, line)) {
        const std::size_t at = line.find(tag);
        if (at == std::string::npos)
            continue;
        std::string expect = line.substr(at + tag.size());
        const std::size_t first = expect.find_first_not_of(" \t");
        if (first != std::string::npos)
            expect = expect.substr(first);
        return expect;
    }
    fatal("case file has no TSA-EXPECT line: " + path);
}

std::vector<CaseFile>
collectCases(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        fatal("case directory does not exist: " + dir);
    std::vector<CaseFile> cases;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir)) {
        if (entry.path().extension() != ".cpp")
            continue;
        CaseFile c;
        c.path = entry.path().string();
        c.name = entry.path().stem().string();
        c.expect = parseExpect(c.path);
        cases.push_back(std::move(c));
    }
    std::sort(cases.begin(), cases.end(),
              [](const CaseFile &a, const CaseFile &b) {
                  return a.name < b.name;
              });
    if (cases.empty())
        fatal("no .cpp case files in: " + dir);
    return cases;
}

/** The flags that arm Thread Safety Analysis as errors. */
const char *const kTsaFlags =
    " -Wthread-safety -Wthread-safety-beta -Werror=thread-safety "
    "-Werror=thread-safety-beta";

std::string
baseCommand(const std::string &compiler, const std::string &include,
            const std::string &caseDir, const std::string &file)
{
    // -fsyntax-only: the battery proves what *compiles*, linking
    // adds nothing but a dependency on built libraries.
    return "\"" + compiler + "\" -std=c++20 -fsyntax-only -I \"" +
           include + "\" -I \"" + caseDir + "\" \"" + file + "\"";
}

int
runBattery(const std::vector<CaseFile> &cases,
           const std::string &compiler, const std::string &include,
           const std::string &caseDir, bool clang, bool positiveOnly,
           bool withholdDefine)
{
    std::size_t failures = 0;
    for (const CaseFile &c : cases) {
        const std::string base =
            baseCommand(compiler, include, caseDir, c.path);

        // Positive leg: the legal variant must always compile —
        // with TSA armed on Clang, so legal variants are gate-clean.
        const LegResult pos =
            runCompiler(clang ? base + kTsaFlags : base);
        if (!pos.compiled) {
            ++failures;
            std::printf("FAIL %s: positive leg did not compile\n",
                        c.name.c_str());
            std::fputs(pos.output.c_str(), stdout);
            continue;
        }
        if (positiveOnly) {
            std::printf("ok   %s (positive leg)\n", c.name.c_str());
            continue;
        }

        // Negative leg: must fail, for the declared reason. In
        // --self-test the violation define is withheld, so this leg
        // compiles and the gate must flag it. (Only --self-test
        // reaches here on a non-Clang host, where the TSA flags
        // would be rejected outright — hence the guard.)
        std::string neg = clang ? base + kTsaFlags : base;
        if (!withholdDefine)
            neg += " -DRSEL_TSA_NEGATIVE";
        const LegResult result = runCompiler(neg);
        if (result.compiled) {
            ++failures;
            std::printf("FAIL %s: negative leg compiled — the gate "
                        "does not reject this violation\n",
                        c.name.c_str());
            continue;
        }
        if (result.output.find(c.expect) == std::string::npos) {
            ++failures;
            std::printf("FAIL %s: negative leg failed, but not for "
                        "the declared reason (missing \"%s\")\n",
                        c.name.c_str(), c.expect.c_str());
            std::fputs(result.output.c_str(), stdout);
            continue;
        }
        std::printf("ok   %s (rejected: \"%s\")\n", c.name.c_str(),
                    c.expect.c_str());
    }

    if (withholdDefine) {
        // Self-test: every "failure" above is the gate correctly
        // flagging a case whose violation was withheld.
        const bool caught = failures == cases.size();
        std::printf("tsa-gate self-test: flagged %zu/%zu non-failing "
                    "cases%s\n",
                    failures, cases.size(),
                    caught ? "" : " — GATE IS BLIND");
        return caught ? ExitOk : ExitVerifyFailure;
    }
    std::printf("tsa-gate: %zu case%s, %zu failure%s%s\n",
                cases.size(), cases.size() == 1 ? "" : "s", failures,
                failures == 1 ? "" : "s",
                positiveOnly ? " (positive legs only)" : "");
    return failures == 0 ? ExitOk : ExitVerifyFailure;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("cases", RSEL_TSA_CASE_DIR,
               "directory of negative-compile case files");
    cli.define("include", RSEL_TSA_INCLUDE_DIR,
               "first-party include root (the src/ directory)");
    cli.define("compiler", RSEL_TSA_COMPILER,
               "C++ compiler to drive");
    cli.define("positive-only", "false",
               "compile only the legal variants (works on any "
               "compiler; keeps case files from rotting)");
    cli.define("self-test", "false",
               "withhold the violation define and assert the gate "
               "flags every case as non-failing");
    cli.define("list", "false",
               "list cases and expected diagnostics, then exit");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        if (!cli.positional().empty())
            fatal("unexpected positional argument: " +
                  cli.positional().front());

        const std::string caseDir = cli.get("cases");
        const std::string include = cli.get("include");
        const std::string compiler = cli.get("compiler");
        const bool positiveOnly = cli.getBool("positive-only");
        const bool selfTest = cli.getBool("self-test");
        if (caseDir.empty())
            fatal("--cases is required (no baked-in default)");
        if (include.empty())
            fatal("--include is required (no baked-in default)");

        const std::vector<CaseFile> cases = collectCases(caseDir);
        if (cli.getBool("list")) {
            for (const CaseFile &c : cases)
                std::printf("%-32s TSA-EXPECT: %s\n", c.name.c_str(),
                            c.expect.c_str());
            return ExitOk;
        }

        const bool clang = isClang(compiler);
        if (!clang && !positiveOnly && !selfTest) {
            std::printf(
                "tsa-gate: SKIPPED — host compiler is not Clang "
                "(%s); Thread Safety Analysis needs Clang.\n"
                "tsa-gate: run --positive-only to compile the legal "
                "variants, or configure the analyze preset with "
                "CXX=clang++ for the full battery.\n",
                compiler.c_str());
            return ExitOk;
        }
        if (selfTest)
            return runBattery(cases, compiler, include, caseDir,
                              clang, /*positiveOnly=*/false,
                              /*withholdDefine=*/true);
        return runBattery(cases, compiler, include, caseDir, clang,
                          positiveOnly, /*withholdDefine=*/false);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
