/**
 * @file
 * rselect-verify: static region/program verifier front end.
 *
 * Modes (first match wins):
 *
 *  - --self-test MODE  plant a known bug on a hand-built program
 *    and demand the verifier reject it by the expected named pass:
 *    region bugs (aliasing, disconnected, noncyclic) and program
 *    bugs (call-nonentry — a call whose target is not a function
 *    entry; ipa-unreachable — a function no call chain from the
 *    entry function reaches), or all. Exit 0 iff every planted bug
 *    was caught.
 *  - --program FILE    lint a saved program (trace_io text format).
 *  - --spec 'SPEC'     generate the fuzz spec's program and lint it.
 *  - --workload NAME   lint one synthetic workload, or all of them
 *    with NAME = all.
 *  - --corpus N        run the fuzz corpus programs of N consecutive
 *    seeds under every shipped selector with verify-on-submit: every
 *    emitted region passes the static RegionVerifier and the final
 *    cache passes the duplication accountant.
 *
 * --list-passes prints every program and region pass name and exits.
 * --only=a,b / --skip=a,b filter which program passes the lint modes
 * run (unknown names are a usage error).
 *
 * Diagnostics print as a support/table grid. Exit codes: 0 = clean
 * (or self-test caught), 1 = runtime fault, 2 = usage error,
 * 3 = error diagnostics (or self-test missed, or the corpus failed
 * verification).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/program_verifier.hpp"
#include "analysis/region_verifier.hpp"
#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "program/trace_io.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"
#include "testing/gen_spec.hpp"
#include "testing/random_program.hpp"
#include "workloads/workloads.hpp"

using namespace rsel;

namespace {

/** Print the diagnostics table; exit clean or verify-failure. */
int
report(const analysis::DiagnosticEngine &diag, const std::string &what)
{
    if (diag.empty()) {
        std::printf("%s: clean (no diagnostics)\n", what.c_str());
        return ExitOk;
    }
    diag.toTable("Verifier diagnostics: " + what).print(std::cout);
    std::printf("%s: %s\n", what.c_str(), diag.summary().c_str());
    return diag.hasErrors() ? ExitVerifyFailure : ExitOk;
}

/** Program-pass filter shared by every lint mode (--only/--skip). */
analysis::ProgramVerifyOptions gVerifyOpts;

int
lintProgram(const Program &prog, const std::string &what)
{
    analysis::AnalysisManager mgr;
    analysis::DiagnosticEngine diag;
    analysis::ProgramVerifier(mgr).run(prog, diag, gVerifyOpts);
    return report(diag, what);
}

/** Split a comma-separated pass list, validating every name. */
std::vector<std::string>
parsePassList(const std::string &flag, const std::string &value)
{
    const std::vector<std::string> &known =
        analysis::ProgramVerifier::passNames();
    std::vector<std::string> names;
    std::string cur;
    const auto push = [&]() {
        if (cur.empty())
            return;
        if (std::find(known.begin(), known.end(), cur) == known.end())
            fatal("--" + flag + ": unknown program pass '" + cur +
                  "' (see --list-passes)");
        names.push_back(cur);
        cur.clear();
    };
    for (const char c : value) {
        if (c == ',')
            push();
        else
            cur += c;
    }
    push();
    return names;
}

int
listPasses()
{
    std::printf("program passes:\n");
    for (const std::string &name :
         analysis::ProgramVerifier::passNames())
        std::printf("  %s\n", name.c_str());
    std::printf("region passes:\n");
    for (const std::string &name :
         analysis::RegionVerifier::passNames())
        std::printf("  %s\n", name.c_str());
    return ExitOk;
}

int
runProgramFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open program file " + path);
    const Program prog = loadProgram(in);
    return lintProgram(prog, path);
}

int
runSpec(const std::string &specText)
{
    testing::GenSpec spec = testing::GenSpec::parse(specText);
    spec.clamp();
    return lintProgram(testing::generateProgram(spec),
                       "spec " + spec.toString());
}

int
runWorkloads(const std::string &name)
{
    std::vector<const WorkloadInfo *> todo;
    if (name == "all") {
        for (const WorkloadInfo &w : workloadSuite())
            todo.push_back(&w);
    } else {
        const WorkloadInfo *w = findWorkload(name);
        if (w == nullptr)
            fatal("unknown workload " + name);
        todo.push_back(w);
    }
    int rc = ExitOk;
    for (const WorkloadInfo *w : todo)
        rc = std::max(rc, lintProgram(w->build(1),
                                      "workload " + w->name));
    return rc;
}

/**
 * Corpus mode: every region each selector emits over the fuzz
 * programs must pass the static verifier, and every finished cache
 * the duplication accountant. A VerifyError is a red result. With
 * `faultFuzz`, each seed additionally runs under its own fault plan,
 * proving the verifier stays green across invalidations, flush
 * storms and retranslations.
 */
int
runCorpus(std::uint64_t seeds, std::uint64_t startSeed,
          std::uint64_t events, bool faultFuzz)
{
    Table table(std::string("Static verification over the fuzz "
                            "corpus") +
                    (faultFuzz ? " (fault injection armed)" : ""),
                {"selector", "seeds", "regions", "warnings",
                 "failures"});
    bool anyFailure = false;
    for (const Algorithm algo : allSelectors) {
        std::uint64_t regions = 0, warnings = 0, failures = 0;
        for (std::uint64_t i = 0; i < seeds; ++i) {
            testing::GenSpec spec =
                testing::GenSpec::fromSeed(startSeed + i);
            if (events != 0)
                spec.events = events;
            spec.clamp();
            const Program prog = testing::generateProgram(spec);
            SimOptions opts;
            opts.maxEvents = spec.events;
            opts.seed = spec.execSeed;
            opts.cache.capacityBytes = spec.cacheKb * 1024;
            opts.verifyRegions = true;
            if (faultFuzz)
                opts.faults = resilience::FaultPlan::fromSeed(
                    startSeed + i);
            try {
                DynOptSystem sys(prog, opts.cache, opts.icache);
                attachAlgorithm(sys, algo, opts);
                sys.enableVerifyOnSubmit();
                sys.armFaults(opts.faults);
                Executor exec(prog, opts.seed);
                exec.run(opts.maxEvents, sys);
                const SimResult res = sys.finish();
                regions += res.regionCount;
                warnings += sys.verifyDiagnostics().warningCount();
            } catch (const analysis::VerifyError &e) {
                ++failures;
                std::printf("seed %llu, %s: %s\n",
                            static_cast<unsigned long long>(startSeed +
                                                            i),
                            algorithmName(algo).c_str(), e.what());
            }
        }
        anyFailure = anyFailure || failures != 0;
        table.addRow({algorithmName(algo), std::to_string(seeds),
                      std::to_string(regions),
                      std::to_string(warnings),
                      std::to_string(failures)});
    }
    table.print(std::cout);
    std::printf("corpus: %s\n",
                anyFailure ? "FAILED (verifier rejected regions)"
                           : "all regions verified");
    return anyFailure ? ExitVerifyFailure : ExitOk;
}

/**
 * A four-block loop function: a (cond to c) -> b -> c (latch back
 * to a) -> d (halt). Every self-test plants its bug on a region of
 * this program.
 */
struct SelfTestRig
{
    Program prog;
    BlockId a = 0, b = 0, c = 0, d = 0;

    SelfTestRig()
    {
        ProgramBuilder pb;
        pb.beginFunction("main");
        a = pb.block(4);
        b = pb.block(3);
        c = pb.block(2);
        d = pb.block(1);
        CondBehavior skip;
        skip.kind = CondBehavior::Kind::Bernoulli;
        skip.takenProbByPhase = {0.5};
        pb.condTo(a, c, skip);
        pb.loopTo(c, a, 10, 10);
        pb.halt(d);
        pb.setEntry(a);
        prog = pb.build();
    }

    const BasicBlock *block(BlockId id) const
    {
        return &prog.block(id);
    }
};

/** One planted bug: the sabotaged spec and the pass that must fire. */
struct PlantedBug
{
    std::string name;
    std::string expectedPass;
    RegionSpec spec;
    std::string selector = "NET";
};

int
runSelfTest(const std::string &which)
{
    SelfTestRig rig;
    // A second program object with identical content: the source of
    // aliased block pointers (same ids, different objects) — the bug
    // --break-selector alias plants in the live system.
    const Program clone = rig.prog;

    std::vector<PlantedBug> bugs;
    {
        PlantedBug bug;
        bug.name = "aliasing";
        bug.expectedPass = "region-members";
        bug.spec.kind = Region::Kind::Trace;
        bug.spec.blocks = {rig.block(rig.a), &clone.block(rig.b),
                           rig.block(rig.c)};
        bugs.push_back(std::move(bug));
    }
    {
        PlantedBug bug;
        bug.name = "disconnected";
        bug.expectedPass = "region-connectivity";
        bug.spec.kind = Region::Kind::Trace;
        // a's only possible successors are b (fall-through) and c
        // (taken); a -> d is not a CFG edge.
        bug.spec.blocks = {rig.block(rig.a), rig.block(rig.d)};
        bugs.push_back(std::move(bug));
    }
    {
        PlantedBug bug;
        bug.name = "noncyclic";
        bug.expectedPass = "lei-cyclicity";
        bug.spec.kind = Region::Kind::Trace;
        // An acyclic LEI trace whose tail (b) falls through to c:
        // no formation stop rule can excuse the truncation.
        bug.spec.blocks = {rig.block(rig.a), rig.block(rig.b)};
        bug.selector = "LEI";
        bugs.push_back(std::move(bug));
    }

    // Program-level plants: whole programs one program pass must
    // reject (or lint). Both are invisible to the region passes.
    struct ProgramPlant
    {
        std::string name;
        std::string expectedPass;
        analysis::Severity severity = analysis::Severity::Error;
        Program prog;
    };
    std::vector<ProgramPlant> plants;
    {
        // A call whose taken target is the callee's second block:
        // callToBlock bypasses the FuncId-based callTo resolution,
        // planting exactly the bug call-graph-consistency exists
        // to catch (loadProgram rejects it at parse time too).
        ProgramPlant plant;
        plant.name = "call-nonentry";
        plant.expectedPass = "call-graph-consistency";
        ProgramBuilder pb;
        pb.beginFunction("main");
        const BlockId a = pb.block(2);
        const BlockId b = pb.block(1);
        pb.beginFunction("callee");
        const BlockId e = pb.block(2);
        const BlockId x = pb.block(1);
        pb.callToBlock(a, x); // mid-function target, not the entry
        pb.halt(b);
        pb.ret(e);
        pb.halt(x);
        pb.setEntry(a);
        plant.prog = pb.build();
        plants.push_back(std::move(plant));
    }
    {
        // A function no call chain from the entry function reaches:
        // the interprocedural-reachability lint must flag it.
        ProgramPlant plant;
        plant.name = "ipa-unreachable";
        plant.expectedPass = "interprocedural-reachability";
        plant.severity = analysis::Severity::Warning;
        ProgramBuilder pb;
        pb.beginFunction("main");
        const BlockId a = pb.block(2);
        const BlockId b = pb.block(1);
        pb.halt(b);
        pb.beginFunction("orphan");
        const BlockId e = pb.block(2);
        pb.halt(e);
        pb.setEntry(a);
        plant.prog = pb.build();
        plants.push_back(std::move(plant));
    }

    analysis::AnalysisManager mgr;
    analysis::RegionVerifier verifier(mgr);
    int rc = ExitOk;
    bool ranAny = false;
    for (const ProgramPlant &plant : plants) {
        if (which != "all" && which != plant.name)
            continue;
        ranAny = true;
        analysis::AnalysisManager pmgr;
        analysis::DiagnosticEngine diag;
        analysis::ProgramVerifier(pmgr).run(plant.prog, diag);
        bool caught = false;
        for (const analysis::Diagnostic &d : diag.diagnostics())
            if (d.severity == plant.severity &&
                d.pass == plant.expectedPass)
                caught = true;
        if (caught) {
            std::printf("self-test %s: caught by pass %s\n",
                        plant.name.c_str(),
                        plant.expectedPass.c_str());
        } else {
            std::printf("self-test %s: NOT caught (expected pass "
                        "%s); diagnostics were:\n",
                        plant.name.c_str(),
                        plant.expectedPass.c_str());
            diag.toTable("self-test " + plant.name)
                .print(std::cout);
            rc = ExitVerifyFailure;
        }
    }
    for (const PlantedBug &bug : bugs) {
        if (which != "all" && which != bug.name)
            continue;
        ranAny = true;
        analysis::RegionVerifyContext ctx;
        ctx.prog = &rig.prog;
        ctx.selector = bug.selector;
        ctx.maxTraceInsts = 1024;
        ctx.id = 0;
        analysis::DiagnosticEngine diag;
        verifier.runOnSpec(bug.spec, ctx, diag);
        bool caught = false;
        for (const analysis::Diagnostic &d : diag.diagnostics())
            if (d.severity == analysis::Severity::Error &&
                d.pass == bug.expectedPass)
                caught = true;
        if (caught) {
            std::printf("self-test %s: caught by pass %s\n",
                        bug.name.c_str(), bug.expectedPass.c_str());
        } else {
            std::printf("self-test %s: NOT caught (expected pass "
                        "%s); diagnostics were:\n",
                        bug.name.c_str(), bug.expectedPass.c_str());
            diag.toTable("self-test " + bug.name).print(std::cout);
            rc = ExitVerifyFailure;
        }
    }
    if (!ranAny)
        fatal("unknown self-test " + which +
              " (expected aliasing, disconnected, noncyclic, "
              "call-nonentry, ipa-unreachable or all)");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("self-test", "",
               "plant a bug and demand the verifier catch it: "
               "aliasing, disconnected, noncyclic, call-nonentry, "
               "ipa-unreachable, all");
    cli.define("program", "", "lint a saved program file");
    cli.define("spec", "", "lint the program of one fuzz spec");
    cli.define("workload", "",
               "lint a synthetic workload by name, or all");
    cli.define("corpus", "0",
               "verify every region of N fuzz-corpus seeds under "
               "every selector");
    cli.define("start-seed", "1", "first corpus seed");
    cli.define("events", "6000",
               "events per corpus run (0 = per-spec default)");
    cli.define("fault-fuzz", "false",
               "corpus mode: run every seed under its own "
               "deterministic fault plan");
    cli.define("list-passes", "false",
               "print every program and region pass name and exit");
    cli.define("only", "",
               "run only these program passes (comma-separated)");
    cli.define("skip", "",
               "skip these program passes (comma-separated)");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        if (cli.getBool("list-passes"))
            return listPasses();
        if (!cli.get("only").empty())
            gVerifyOpts.only =
                parsePassList("only", cli.get("only"));
        if (!cli.get("skip").empty())
            gVerifyOpts.skip =
                parsePassList("skip", cli.get("skip"));
        if (!cli.get("self-test").empty()) {
            // A bare --self-test (the CLI stores "true") runs all.
            const std::string which = cli.get("self-test");
            return runSelfTest(which == "true" ? "all" : which);
        }
        if (!cli.get("program").empty())
            return runProgramFile(cli.get("program"));
        if (!cli.get("spec").empty())
            return runSpec(cli.get("spec"));
        if (!cli.get("workload").empty())
            return runWorkloads(cli.get("workload"));
        if (cli.getUint("corpus") != 0)
            return runCorpus(cli.getUint("corpus"),
                             cli.getUint("start-seed"),
                             cli.getUint("events"),
                             cli.getBool("fault-fuzz"));
        std::fputs(cli.usage(argv[0]).c_str(), stdout);
        return ExitUsageError;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
