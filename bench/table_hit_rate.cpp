/**
 * @file
 * Hit rates under all four configurations (text numbers from
 * Sections 3.2 and 4.3: all benchmarks stay at 98%+, LEI slightly
 * below NET with mcf and gcc dropping most; combined NET slightly
 * above NET; combined LEI ~0.1% below LEI on average).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Sections 3.2/4.3: code-cache hit rates"));

    Table table("Hit rate (% of instructions executed from the cache)",
                {"benchmark", "NET", "LEI", "comb NET", "comb LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> n, l, cn, cl;
    for (std::size_t i = 0; i < net.size(); ++i) {
        n.push_back(net[i].hitRate());
        l.push_back(lei[i].hitRate());
        cn.push_back(cnet[i].hitRate());
        cl.push_back(clei[i].hitRate());
        table.addRow({net[i].workload, formatPercent(n.back(), 2),
                      formatPercent(l.back(), 2),
                      formatPercent(cn.back(), 2),
                      formatPercent(cl.back(), 2)});
    }
    table.addSummaryRow({"average", formatPercent(mean(n), 2),
                         formatPercent(mean(l), 2),
                         formatPercent(mean(cn), 2),
                         formatPercent(mean(cl), 2)});

    printFigure(table,
                "hit rates stay above 98-99% everywhere; LEI is "
                "slightly below NET (mcf 99.80->98.31, gcc "
                "99.37->98.98 are the biggest drops), combined NET is "
                "slightly above NET, combined LEI averages 0.1% below "
                "LEI.");
    return 0;
}
