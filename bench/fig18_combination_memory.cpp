/**
 * @file
 * Figure 18: maximum memory required to store observed traces,
 * reported as a percentage of the estimated code-cache size (code
 * bytes plus a conservative 10 bytes per exit stub — Section 4.3.4).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 18: observed-trace memory vs cache size"));

    Table table("Figure 18 — peak observed-trace storage "
                "(% of estimated cache size)",
                {"benchmark", "comb NET bytes", "comb NET %",
                 "comb LEI bytes", "comb LEI %"});

    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> netVals, leiVals;
    for (std::size_t i = 0; i < cnet.size(); ++i) {
        netVals.push_back(cnet[i].observedMemoryRatio());
        leiVals.push_back(clei[i].observedMemoryRatio());
        table.addRow(
            {cnet[i].workload,
             std::to_string(cnet[i].peakObservedTraceBytes),
             formatPercent(netVals.back()),
             std::to_string(clei[i].peakObservedTraceBytes),
             formatPercent(leiVals.back())});
    }
    table.addSummaryRow({"average", "", formatPercent(mean(netVals)),
                         "", formatPercent(mean(leiVals))});

    printFigure(table,
                "average profiling-memory overhead is 6% of the cache "
                "for combined NET (never above 12%) and 13% for "
                "combined LEI (never above 18%); LEI needs more "
                "because its traces are longer and its entrances stay "
                "under observation longer.");
    return 0;
}
