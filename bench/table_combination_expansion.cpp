/**
 * @file
 * Sections 4.3.2/4.3.3 text numbers: combined NET selects 98% as
 * many instructions as NET and combined LEI 99% as many as LEI; the
 * total region count falls 9% (NET) and 30% (LEI).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Sections 4.3.2/4.3.3: expansion and region count under "
        "combination"));

    Table table("Code expansion and region count under combination",
                {"benchmark", "exp combNET/NET", "exp combLEI/LEI",
                 "regions combNET/NET", "regions combLEI/LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> en, el, rn, rl;
    for (std::size_t i = 0; i < net.size(); ++i) {
        en.push_back(ratio(static_cast<double>(cnet[i].expansionInsts),
                           static_cast<double>(net[i].expansionInsts)));
        el.push_back(ratio(static_cast<double>(clei[i].expansionInsts),
                           static_cast<double>(lei[i].expansionInsts)));
        rn.push_back(ratio(static_cast<double>(cnet[i].regionCount),
                           static_cast<double>(net[i].regionCount)));
        rl.push_back(ratio(static_cast<double>(clei[i].regionCount),
                           static_cast<double>(lei[i].regionCount)));
        table.addRow({net[i].workload, formatPercent(en.back()),
                      formatPercent(el.back()),
                      formatPercent(rn.back()),
                      formatPercent(rl.back())});
    }
    table.addSummaryRow({"average", formatPercent(mean(en)),
                         formatPercent(mean(el)),
                         formatPercent(mean(rn)),
                         formatPercent(mean(rl))});

    printFigure(table,
                "combination does not inflate expansion (98% for NET, "
                "99% for LEI: the T_min filter slightly outweighs the "
                "extra rejoining paths) and cuts the number of "
                "regions selected by 9% (NET) and 30% (LEI).");
    return 0;
}
