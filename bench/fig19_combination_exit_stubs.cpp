/**
 * @file
 * Figure 19: effect of trace combination on the number of exit
 * stubs produced by NET and LEI.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Figure 19: exit stubs under trace combination"));

    Table table("Figure 19 — exit stubs, combined relative to base",
                {"benchmark", "NET", "comb NET", "combNET/NET", "LEI",
                 "comb LEI", "combLEI/LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> netRatios, leiRatios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double rn =
            ratio(static_cast<double>(cnet[i].exitStubs),
                  static_cast<double>(net[i].exitStubs));
        const double rl =
            ratio(static_cast<double>(clei[i].exitStubs),
                  static_cast<double>(lei[i].exitStubs));
        netRatios.push_back(rn);
        leiRatios.push_back(rl);
        table.addRow({net[i].workload,
                      std::to_string(net[i].exitStubs),
                      std::to_string(cnet[i].exitStubs),
                      formatPercent(rn),
                      std::to_string(lei[i].exitStubs),
                      std::to_string(clei[i].exitStubs),
                      formatPercent(rl)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(netRatios)), "", "",
                         formatPercent(mean(leiRatios))});

    printFigure(table,
                "combination eliminates 18% of NET's exit stubs and "
                "26% of LEI's; together with selecting fewer "
                "instructions this shrinks the cache by 7% (NET) and "
                "9% (LEI), offsetting the Figure 18 profiling memory.");
    return 0;
}
