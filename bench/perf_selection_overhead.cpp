/**
 * @file
 * google-benchmark timing for the paper's overhead claims:
 *
 *  - Section 3.1: LEI's per-taken-branch work is constant and
 *    comparable to NET's (one cache lookup, one buffer insert, one
 *    hash lookup, a possible counter update).
 *  - Section 4.2.1: the compact trace representation adds little
 *    overhead (2 bits per branch to encode; decode touches each
 *    instruction at most once).
 *  - Section 4.2.3: mark-rejoining-paths is linear in the edges in
 *    practice.
 *
 * Whole-system throughput is reported as events/second over the
 * gzip and gcc workloads for all four configurations.
 */

#include <benchmark/benchmark.h>

#include "dynopt/dynopt_system.hpp"
#include "selection/compact_trace.hpp"
#include "selection/history_buffer.hpp"
#include "selection/region_cfg.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

/** End-to-end simulation throughput (events/sec). */
void
simulationThroughput(benchmark::State &state, const char *workload,
                     Algorithm algo)
{
    const WorkloadInfo *info = findWorkload(workload);
    Program prog = info->build(42);
    const std::uint64_t events = 200'000;
    for (auto _ : state) {
        SimOptions opts;
        opts.maxEvents = events;
        opts.seed = 7;
        SimResult r = simulate(prog, algo, opts);
        benchmark::DoNotOptimize(r.cachedInsts);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * events));
}

void
BM_Simulate_gzip_NET(benchmark::State &state)
{
    simulationThroughput(state, "gzip", Algorithm::Net);
}
BENCHMARK(BM_Simulate_gzip_NET);

void
BM_Simulate_gzip_LEI(benchmark::State &state)
{
    simulationThroughput(state, "gzip", Algorithm::Lei);
}
BENCHMARK(BM_Simulate_gzip_LEI);

void
BM_Simulate_gzip_CombinedLEI(benchmark::State &state)
{
    simulationThroughput(state, "gzip", Algorithm::LeiCombined);
}
BENCHMARK(BM_Simulate_gzip_CombinedLEI);

void
BM_Simulate_gcc_NET(benchmark::State &state)
{
    simulationThroughput(state, "gcc", Algorithm::Net);
}
BENCHMARK(BM_Simulate_gcc_NET);

void
BM_Simulate_gcc_LEI(benchmark::State &state)
{
    simulationThroughput(state, "gcc", Algorithm::Lei);
}
BENCHMARK(BM_Simulate_gcc_LEI);

void
BM_Simulate_gcc_CombinedLEI(benchmark::State &state)
{
    simulationThroughput(state, "gcc", Algorithm::LeiCombined);
}
BENCHMARK(BM_Simulate_gcc_CombinedLEI);

/** History buffer: insert + hash lookup per taken branch. */
void
BM_HistoryBufferInsertFind(benchmark::State &state)
{
    HistoryBuffer buf(500);
    Addr addr = 0x1000;
    for (auto _ : state) {
        const Addr tgt = 0x1000 + (addr % 977) * 8;
        benchmark::DoNotOptimize(buf.find(tgt));
        const auto seq = buf.insert({addr, tgt, false});
        buf.setHashLocation(tgt, seq);
        addr += 13;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistoryBufferInsertFind);

/** Compact-trace encode cost as a function of trace length. */
void
BM_CompactTraceEncode(benchmark::State &state)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    // Build a path of the requested length by repeating the hot
    // cycle (encode does not require uniqueness, only decode's end
    // block must be unique — irrelevant for encode timing).
    std::vector<const BasicBlock *> path;
    const BlockId cycle[] = {Ids::a, Ids::c, Ids::d, Ids::f};
    for (std::int64_t i = 0; i < state.range(0); ++i)
        path.push_back(&p.block(cycle[i % 4]));
    for (auto _ : state) {
        CompactTrace ct = CompactTrace::encode(path);
        benchmark::DoNotOptimize(ct.sizeBytes());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(path.size()));
}
BENCHMARK(BM_CompactTraceEncode)->Arg(8)->Arg(32)->Arg(128);

/** Compact-trace decode cost. */
void
BM_CompactTraceDecode(benchmark::State &state)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    std::vector<const BasicBlock *> path = {
        &p.block(Ids::a), &p.block(Ids::c), &p.block(Ids::d),
        &p.block(Ids::f)};
    CompactTrace ct = CompactTrace::encode(path);
    for (auto _ : state) {
        auto decoded = ct.decode(p, p.block(Ids::a).startAddr());
        benchmark::DoNotOptimize(decoded.size());
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_CompactTraceDecode);

/** Mark-rejoining-paths over a CFG built from many traces. */
void
BM_MarkRejoiningPaths(benchmark::State &state)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    for (auto _ : state) {
        state.PauseTiming();
        RegionCfg cfg(&p.block(Ids::a));
        for (std::int64_t i = 0; i < state.range(0); ++i) {
            if (i % 3 == 0) {
                cfg.addTrace({&p.block(Ids::a), &p.block(Ids::b),
                              &p.block(Ids::d), &p.block(Ids::f)});
            } else {
                cfg.addTrace({&p.block(Ids::a), &p.block(Ids::c),
                              &p.block(Ids::d), &p.block(Ids::f)});
            }
        }
        cfg.markFrequent(
            static_cast<std::uint32_t>(state.range(0) / 3));
        state.ResumeTiming();
        benchmark::DoNotOptimize(cfg.markRejoiningPaths());
    }
}
BENCHMARK(BM_MarkRejoiningPaths)->Arg(15)->Arg(60);

} // namespace
} // namespace rsel

BENCHMARK_MAIN();
