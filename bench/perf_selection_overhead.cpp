/**
 * @file
 * Hand-rolled timing for the paper's overhead claims and the batched
 * dispatch path:
 *
 *  - Whole-system throughput (events/second) over the gzip and gcc
 *    workloads for NET, LEI and combined LEI, measured twice per
 *    configuration: per-event virtual dispatch versus batched
 *    structure-of-arrays dispatch. The two runs must produce
 *    byte-identical result fingerprints — a mismatch is a hard
 *    failure (nonzero exit), so the speedup can never come from
 *    computing something different.
 *  - Section 3.1: LEI's per-taken-branch work is constant (one hash
 *    find, one buffer insert, one hash repoint).
 *  - Section 4.2.1: compact-trace encode/decode overhead.
 *  - Section 4.2.3: mark-rejoining-paths cost.
 *
 * Methodology: steady_clock only, warmup repetitions discarded,
 * median of N timed repetitions (see bench_util.hpp). Results are
 * also written as JSON (--json PATH, default
 * BENCH_perf_selection_overhead.json) for CI trend tracking; --quick
 * shrinks events and repetitions for the perf-smoke ctest entry.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "selection/compact_trace.hpp"
#include "selection/history_buffer.hpp"
#include "selection/region_cfg.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"
#include "workloads/scenarios.hpp"

using namespace rsel;
using namespace rsel::bench;

namespace {

struct ThroughputRow
{
    std::string workload;
    std::string selector;
    double perEventEps = 0.0;
    double batchedEps = 0.0;
    bool identical = false;

    double speedup() const { return batchedEps / perEventEps; }
};

/** One workload × selector cell, timed under both dispatch styles. */
ThroughputRow
timeConfig(const WorkloadInfo &w, Algorithm algo, std::uint64_t events,
           int warmup, int reps)
{
    const Program prog = w.build(42);
    SimOptions opts;
    opts.maxEvents = events;
    opts.seed = 7;

    const auto runOnce = [&](Dispatch d) {
        SimOptions o = opts;
        o.dispatch = d;
        return simulate(prog, algo, o);
    };

    ThroughputRow row;
    row.workload = w.name;
    row.selector = algorithmName(algo);
    // Equivalence gate first, untimed: the batched run is only a
    // valid measurement if it is byte-identical to the per-event run.
    row.identical =
        testing::resultFingerprint(runOnce(Dispatch::PerEvent)) ==
        testing::resultFingerprint(runOnce(Dispatch::Batched));

    const double nsPerEvent = medianTimeNanos(warmup, reps, [&] {
        runOnce(Dispatch::PerEvent);
    });
    const double nsBatched = medianTimeNanos(warmup, reps, [&] {
        runOnce(Dispatch::Batched);
    });
    row.perEventEps = static_cast<double>(events) * 1e9 / nsPerEvent;
    row.batchedEps = static_cast<double>(events) * 1e9 / nsBatched;
    return row;
}

/** HistoryBuffer insert + hash find, ns per operation. */
double
historyBufferNsPerOp(int warmup, int reps)
{
    constexpr std::uint64_t ops = 2'000'000;
    const double ns = medianTimeNanos(warmup, reps, [] {
        HistoryBuffer buf(500);
        Addr addr = 0x1000;
        std::uint64_t acc = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Addr tgt = 0x1000 + (addr % 977) * 8;
            if (const auto seq = buf.find(tgt))
                acc += *seq;
            const auto seq = buf.insert({addr, tgt, false});
            buf.setHashLocation(tgt, seq);
            addr += 13;
        }
        // Fold the accumulator into observable state so the loop
        // cannot be optimized away.
        if (acc == 0x5eed5eed5eed5eedull)
            std::cerr << "";
    });
    return ns / static_cast<double>(ops);
}

/** Compact-trace encode ns/block over a 128-block path. */
double
compactTraceEncodeNs(int warmup, int reps)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    std::vector<const BasicBlock *> path;
    const BlockId cycle[] = {Ids::a, Ids::c, Ids::d, Ids::f};
    for (int i = 0; i < 128; ++i)
        path.push_back(&p.block(cycle[i % 4]));
    constexpr int iters = 20'000;
    const double ns = medianTimeNanos(warmup, reps, [&] {
        std::size_t bytes = 0;
        for (int i = 0; i < iters; ++i)
            bytes += CompactTrace::encode(path).sizeBytes();
        if (bytes == 0)
            std::cerr << "";
    });
    return ns / (static_cast<double>(iters) * 128.0);
}

/** Compact-trace decode ns/block. */
double
compactTraceDecodeNs(int warmup, int reps)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    const std::vector<const BasicBlock *> path = {
        &p.block(Ids::a), &p.block(Ids::c), &p.block(Ids::d),
        &p.block(Ids::f)};
    const CompactTrace ct = CompactTrace::encode(path);
    constexpr int iters = 200'000;
    const double ns = medianTimeNanos(warmup, reps, [&] {
        std::size_t n = 0;
        for (int i = 0; i < iters; ++i)
            n += ct.decode(p, p.block(Ids::a).startAddr()).size();
        if (n == 0)
            std::cerr << "";
    });
    return ns / (static_cast<double>(iters) * 4.0);
}

/** Mark-rejoining-paths microseconds per invocation (60 traces). */
double
markRejoiningUs(int warmup, int reps)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.1);
    using Ids = UnbiasedBranchIds;
    constexpr int iters = 2'000;
    const double ns = medianTimeNanos(warmup, reps, [&] {
        std::uint32_t n = 0;
        for (int i = 0; i < iters; ++i) {
            RegionCfg cfg(&p.block(Ids::a));
            for (int t = 0; t < 60; ++t) {
                if (t % 3 == 0) {
                    cfg.addTrace({&p.block(Ids::a), &p.block(Ids::b),
                                  &p.block(Ids::d), &p.block(Ids::f)});
                } else {
                    cfg.addTrace({&p.block(Ids::a), &p.block(Ids::c),
                                  &p.block(Ids::d), &p.block(Ids::f)});
                }
            }
            cfg.markFrequent(20);
            n += cfg.markRejoiningPaths();
        }
        if (n == 0xffffffffu)
            std::cerr << "";
    });
    return ns / (static_cast<double>(iters) * 1e3);
}

std::string
jsonEscapeless(const std::string &s)
{
    // Workload and selector names are [A-Za-z0-9_-]; nothing to
    // escape, but keep the seam explicit.
    return s;
}

void
writeJson(const std::string &path, std::uint64_t events, int reps,
          const std::vector<ThroughputRow> &rows, double hbNs,
          double encNs, double decNs, double mrUs)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"bench\": \"perf_selection_overhead\",\n"
       << "  \"events_per_run\": " << events << ",\n"
       << "  \"timed_reps\": " << reps << ",\n"
       << "  \"timer\": \"steady_clock, median of reps after "
          "warmup\",\n"
       << "  \"throughput\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ThroughputRow &r = rows[i];
        os << "    {\"workload\": \"" << jsonEscapeless(r.workload)
           << "\", \"selector\": \"" << jsonEscapeless(r.selector)
           << "\", \"per_event_events_per_sec\": "
           << formatDouble(r.perEventEps, 0)
           << ", \"batched_events_per_sec\": "
           << formatDouble(r.batchedEps, 0)
           << ", \"batched_speedup\": "
           << formatDouble(r.speedup(), 2)
           << ", \"fingerprints_identical\": "
           << (r.identical ? "true" : "false") << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    std::vector<double> speedups, batched;
    for (const ThroughputRow &r : rows) {
        speedups.push_back(r.speedup());
        batched.push_back(r.batchedEps);
    }
    os << "  ],\n"
       << "  \"geomean_batched_speedup\": "
       << formatDouble(geomean(speedups), 2) << ",\n"
       << "  \"min_batched_events_per_sec\": "
       << formatDouble(minOf(batched), 0) << ",\n"
       << "  \"history_buffer_insert_find_ns\": "
       << formatDouble(hbNs, 2) << ",\n"
       << "  \"compact_trace_encode_ns_per_block\": "
       << formatDouble(encNs, 2) << ",\n"
       << "  \"compact_trace_decode_ns_per_block\": "
       << formatDouble(decNs, 2) << ",\n"
       << "  \"mark_rejoining_us_per_call\": "
       << formatDouble(mrUs, 2) << "\n"
       << "}\n";
    std::ofstream out(path);
    if (!out)
        fatal("cannot write " + path);
    out << os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("events", "200000", "dynamic block events per run");
    cli.define("reps", "9", "timed repetitions (median is reported)");
    cli.define("warmup", "2", "untimed warmup repetitions");
    cli.define("quick", "false",
               "smoke mode: fewer events and repetitions");
    cli.define("json", "BENCH_perf_selection_overhead.json",
               "output path for the JSON result record");
    try {
        cli.parse(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    if (cli.helpRequested()) {
        std::cout
            << "Selection-overhead timing: per-event vs batched "
               "dispatch throughput,\nplus the constant-work "
               "microbenchmarks behind the paper's overhead "
               "claims.\n\n"
            << cli.usage(argv[0]);
        return 0;
    }

    std::uint64_t events = cli.getUint("events");
    int reps = static_cast<int>(cli.getUint("reps"));
    int warmup = static_cast<int>(cli.getUint("warmup"));
    if (cli.getBool("quick")) {
        events = 60'000;
        reps = 3;
        warmup = 1;
    }

    try {
        std::vector<ThroughputRow> rows;
        Table t("perf_selection_overhead: " + std::to_string(events) +
                    " events/run, median of " + std::to_string(reps) +
                    " reps",
                {"workload", "selector", "per-event ev/s",
                 "batched ev/s", "speedup", "identical"});
        for (const char *wname : {"gzip", "gcc"}) {
            const WorkloadInfo *w = findWorkload(wname);
            for (const Algorithm algo :
                 {Algorithm::Net, Algorithm::Lei,
                  Algorithm::LeiCombined}) {
                ThroughputRow row =
                    timeConfig(*w, algo, events, warmup, reps);
                t.addRow({row.workload, row.selector,
                          formatDouble(row.perEventEps / 1e6, 1) + "M",
                          formatDouble(row.batchedEps / 1e6, 1) + "M",
                          formatDouble(row.speedup(), 2),
                          row.identical ? "yes" : "NO"});
                rows.push_back(std::move(row));
            }
        }
        const double hbNs = historyBufferNsPerOp(warmup, reps);
        const double encNs = compactTraceEncodeNs(warmup, reps);
        const double decNs = compactTraceDecodeNs(warmup, reps);
        const double mrUs = markRejoiningUs(warmup, reps);

        printFigure(t,
                    "not a paper figure — infrastructure: batched "
                    "dispatch must win without changing any result");
        std::cout << "history buffer insert+find: "
                  << formatDouble(hbNs, 1) << " ns/op\n"
                  << "compact trace encode: " << formatDouble(encNs, 1)
                  << " ns/block, decode: " << formatDouble(decNs, 1)
                  << " ns/block\n"
                  << "mark rejoining paths (60 traces): "
                  << formatDouble(mrUs, 1) << " us\n";

        writeJson(cli.get("json"), events, reps, rows, hbNs, encNs,
                  decNs, mrUs);
        std::cout << "json: " << cli.get("json") << "\n";

        for (const ThroughputRow &r : rows) {
            if (!r.identical) {
                std::cerr << "FAIL: batched dispatch diverged for "
                          << r.workload << "/" << r.selector << "\n";
                return 1;
            }
        }
        std::cout << "equivalence ok: batched == per-event for all "
                  << rows.size() << " configurations\n";
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }
    return 0;
}
