/**
 * @file
 * Figure 17: reduction in the 90% cover set size under trace
 * combination.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 17: 90% cover sets under trace combination"));

    Table table("Figure 17 — 90% cover set size, combined relative "
                "to base",
                {"benchmark", "NET", "comb NET", "combNET/NET", "LEI",
                 "comb LEI", "combLEI/LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> netRatios, leiRatios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double rn = ratio(cnet[i].coverSet90, net[i].coverSet90);
        const double rl = ratio(clei[i].coverSet90, lei[i].coverSet90);
        netRatios.push_back(rn);
        leiRatios.push_back(rl);
        table.addRow({net[i].workload,
                      std::to_string(net[i].coverSet90),
                      std::to_string(cnet[i].coverSet90),
                      formatPercent(rn),
                      std::to_string(lei[i].coverSet90),
                      std::to_string(clei[i].coverSet90),
                      formatPercent(rl)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(netRatios)), "", "",
                         formatPercent(mean(leiRatios))});

    printFigure(table,
                "combination shrinks NET cover sets by 15% and LEI "
                "cover sets by 28% on average; gzip under NET is the "
                "only increase (one trace) and bzip2 the only case "
                "where LEI benefits less than NET (its LEI cover set "
                "is already tiny).");
    return 0;
}
