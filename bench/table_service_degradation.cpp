/**
 * @file
 * table_service_degradation: graceful degradation of the
 * multi-tenant selection service under the service-level chaos
 * plan (robustness extension, not a paper figure).
 *
 * A chaos-intensity ladder — none / light / moderate / heavy —
 * arms progressively harsher crash-with-restart, shard-quarantine
 * and memory-squeeze plans plus tightening overload control
 * (bounded admission, slice budgets), at 16 and 256 tenants over
 * one bounded sharded arena. The table reports sustained events/s,
 * the global hit rate and the shed rate per rung: hit rate must
 * fall monotonically with intensity while every run completes and
 * every surviving tenant stays byte-identical to its reference leg.
 *
 * Methodology: the service times its own run with steady_clock;
 * each rung runs one untimed warmup repetition, then the median of
 * --reps timed repetitions is reported (see bench_util.hpp).
 *
 * Before any timing, the binary re-verifies the chaos oracle
 * (verifyServiceChaos on the moderate rung) and prints
 * "determinism ok" — a degradation curve from a service that
 * corrupts its tenants would be meaningless.
 *
 * Results land in BENCH_table_service_degradation.json (--json
 * PATH) for CI trend tracking.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/selection_service.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"

using namespace rsel;
using namespace rsel::bench;
using namespace rsel::service;

namespace {

/** One rung of the chaos-intensity ladder. */
struct ChaosLevel
{
    const char *name;
    /** Chaos plan (empty = disarmed). */
    const char *spec;
    /** Admission bound as a fraction of the population
     *  (numerator/denominator; 0/1 = unbounded). */
    std::size_t inflightNum;
    std::size_t inflightDen;
    /** Halve the per-tenant slice budget (degrade-to-interp). */
    bool budgeted;
};

const ChaosLevel kLevels[] = {
    {"none", "", 0, 1, false},
    {"light", "c1,crash=150,window=12", 0, 1, false},
    {"moderate",
     "c1,crash=300,quar=400,quarlen=4,sqdiv=2,sqat=2,sqlen=6,"
     "window=8",
     3, 4, false},
    {"heavy",
     "c1,crash=500,quar=700,quarlen=8,sqdiv=8,sqat=2,sqlen=12,"
     "window=4",
     1, 2, true},
};

struct DegradationRow
{
    std::string level;
    std::size_t tenants = 0;
    std::uint64_t eventsPerTenant = 0;
    std::uint64_t totalEvents = 0;
    double seconds = 0;
    double eventsPerSec = 0;
    double globalHitRate = 0;
    double shedRate = 0;
    std::uint64_t restarts = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t squeezes = 0;
    std::uint64_t degradedTenants = 0;
    std::uint64_t blacklistedTenants = 0;
};

ServiceConfig
makeConfig(const ChaosLevel &level, std::size_t tenants,
           std::uint64_t eventsPerTenant, std::uint64_t cacheKb,
           std::size_t jobs)
{
    ServiceConfig config;
    config.tenants.reserve(tenants);
    for (std::size_t i = 0; i < tenants; ++i)
        config.tenants.push_back(TenantSpec::fromSeed(1 + i));
    config.jobs = jobs;
    config.cacheKb = cacheKb;
    config.eventsOverride = eventsPerTenant;
    config.sliceEvents = 1024;
    if (level.spec[0] != '\0')
        config.chaos = ChaosPlan::parse(level.spec);
    if (level.inflightNum != 0)
        config.overload.maxInflight =
            std::max<std::size_t>(
                1, tenants * level.inflightNum / level.inflightDen);
    if (level.budgeted) {
        // Half the slices a full run needs: the second half of
        // every long guest drains through pure interpretation.
        const std::uint64_t slices =
            eventsPerTenant / config.sliceEvents;
        config.overload.sliceBudget =
            std::max<std::uint64_t>(1, slices / 2);
    }
    config.overload.healthEnabled =
        config.chaos.armed() || config.overload.enabled();
    return config;
}

DegradationRow
measureRung(const ChaosLevel &level, std::size_t tenants,
            std::uint64_t eventsPerTenant, std::uint64_t cacheKb,
            std::size_t jobs, int reps)
{
    const ServiceConfig config =
        makeConfig(level, tenants, eventsPerTenant, cacheKb, jobs);
    DegradationRow row;
    row.level = level.name;
    row.tenants = tenants;
    row.eventsPerTenant = eventsPerTenant;

    runService(config); // warmup (cold allocator, lazy pool pages)
    std::vector<double> epsSamples;
    std::vector<double> secSamples;
    for (int r = 0; r < reps; ++r) {
        const ServiceReport report = runService(config);
        epsSamples.push_back(report.eventsPerSec);
        secSamples.push_back(report.seconds);
        row.totalEvents = report.totalEvents;
        row.globalHitRate = report.globalHitRate;
        row.shedRate =
            report.chaos.scheduledSlices == 0
                ? 0.0
                : static_cast<double>(report.chaos.shedSlices) /
                      static_cast<double>(
                          report.chaos.scheduledSlices);
        row.restarts = report.chaos.restarts;
        row.quarantines = report.chaos.quarantines;
        row.squeezes = report.chaos.squeezes;
        row.degradedTenants = report.chaos.degradedTenants;
        row.blacklistedTenants = report.chaos.blacklistedTenants;
    }
    row.eventsPerSec = medianOf(epsSamples);
    row.seconds = medianOf(secSamples);
    return row;
}

void
writeJson(const std::string &path, std::size_t jobs,
          std::uint64_t cacheKb, int reps,
          const std::vector<DegradationRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write JSON to '" + path + "'");
    os << "{\n"
       << "  \"bench\": \"table_service_degradation\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"cache_kb\": " << cacheKb << ",\n"
       << "  \"timed_reps\": " << reps << ",\n"
       << "  \"timer\": \"steady_clock, median of reps after "
          "warmup\",\n"
       << "  \"degradation\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const DegradationRow &r = rows[i];
        os << "    {\"level\": \"" << r.level << "\""
           << ", \"tenants\": " << r.tenants
           << ", \"events_per_tenant\": " << r.eventsPerTenant
           << ", \"total_events\": " << r.totalEvents
           << ", \"seconds\": " << r.seconds
           << ", \"events_per_sec\": "
           << static_cast<std::uint64_t>(r.eventsPerSec)
           << ", \"global_hit_rate\": " << r.globalHitRate
           << ", \"shed_rate\": " << r.shedRate
           << ", \"restarts\": " << r.restarts
           << ", \"quarantines\": " << r.quarantines
           << ", \"squeezes\": " << r.squeezes
           << ", \"degraded_tenants\": " << r.degradedTenants
           << ", \"blacklisted_tenants\": " << r.blacklistedTenants
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("quick", "false",
               "smoke mode: one population, fewer events");
    cli.define("jobs", "0",
               "pool workers (0 = hardware concurrency)");
    cli.define("cache-kb", "256",
               "global arena bound in KiB, partitioned per tenant");
    cli.define("reps", "5", "timed repetitions (median is reported)");
    cli.define("json", "BENCH_table_service_degradation.json",
               "output path for the JSON result record");
    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        const bool quick = cli.getBool("quick");
        const std::size_t jobs =
            static_cast<std::size_t>(cli.getUint("jobs"));
        const std::uint64_t cacheKb = cli.getUint("cache-kb");
        const int reps =
            quick ? 2 : static_cast<int>(cli.getInt("reps"));

        // Chaos oracle first: the moderate rung at 16 tenants —
        // crashes, quarantines, squeezes and bounded admission all
        // armed — must stay byte-identical to its reference legs.
        {
            const std::string error = verifyServiceChaos(makeConfig(
                kLevels[2], 16, quick ? 4000 : 12000, cacheKb, jobs));
            if (!error.empty()) {
                std::fprintf(stderr, "FAIL: %s\n", error.c_str());
                return ExitRuntimeFault;
            }
            std::printf("determinism ok: 16 tenants byte-identical "
                        "to their chaos reference legs\n");
        }

        struct Population
        {
            std::size_t tenants;
            std::uint64_t events;
        };
        const std::vector<Population> populations =
            quick ? std::vector<Population>{{16, 4000}}
                  : std::vector<Population>{{16, 20000},
                                            {256, 2500}};

        std::vector<DegradationRow> rows;
        std::printf("%8s %8s %14s %10s %10s %9s %9s %9s\n", "level",
                    "tenants", "events/sec", "hit rate", "shed rate",
                    "restarts", "quarant.", "squeezes");
        for (const Population &pop : populations) {
            for (const ChaosLevel &level : kLevels) {
                const DegradationRow row =
                    measureRung(level, pop.tenants, pop.events,
                                cacheKb, jobs, reps);
                std::printf(
                    "%8s %8zu %14.0f %9.2f%% %9.2f%% %9llu %9llu "
                    "%9llu\n",
                    row.level.c_str(), row.tenants, row.eventsPerSec,
                    row.globalHitRate * 100.0, row.shedRate * 100.0,
                    static_cast<unsigned long long>(row.restarts),
                    static_cast<unsigned long long>(row.quarantines),
                    static_cast<unsigned long long>(row.squeezes));
                rows.push_back(row);
            }
        }

        writeJson(cli.get("json"), jobs, cacheKb, reps, rows);
        std::printf("json: %s\n", cli.get("json").c_str());
        return ExitOk;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
