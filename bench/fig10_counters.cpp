/**
 * @file
 * Figure 10: maximum number of profiling counters in use at any
 * point, LEI relative to NET.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Figure 10: peak live profiling counters"));

    Table table("Figure 10 — peak live counters, LEI relative to NET",
                {"benchmark", "NET", "LEI", "LEI/NET"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> ratios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double r =
            ratio(static_cast<double>(lei[i].maxLiveCounters),
                  static_cast<double>(net[i].maxLiveCounters));
        ratios.push_back(r);
        table.addRow({net[i].workload,
                      std::to_string(net[i].maxLiveCounters),
                      std::to_string(lei[i].maxLiveCounters),
                      formatPercent(r)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(ratios))});

    printFigure(table,
                "LEI needs only about two-thirds of NET's counter "
                "memory: a counter requires not just a backward-branch "
                "or cache-exit target but one still present in the "
                "500-entry history buffer. (Synthetic-suite caveat: "
                "our programs are far smaller than SPECint2000, so "
                "fewer cold targets exist for NET to waste counters "
                "on and the ratio is noisier — see EXPERIMENTS.md.)");
    return 0;
}
