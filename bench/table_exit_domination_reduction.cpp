/**
 * @file
 * Section 4.3.1 text numbers: trace combination avoids roughly 65%
 * of exit-dominated duplication and 40% of exit-dominated regions.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Section 4.3.1: exit-domination reduction under combination"));

    Table table("Exit domination under trace combination (combined "
                "vs base, both algorithms pooled)",
                {"benchmark", "regions base", "regions comb",
                 "regions ratio", "dup insts base", "dup insts comb",
                 "dup ratio"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> regionRatios, dupRatios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double baseRegions = static_cast<double>(
            net[i].exitDominatedRegions + lei[i].exitDominatedRegions);
        const double combRegions =
            static_cast<double>(cnet[i].exitDominatedRegions +
                                clei[i].exitDominatedRegions);
        const double baseDup = static_cast<double>(
            net[i].exitDominatedDupInsts + lei[i].exitDominatedDupInsts);
        const double combDup =
            static_cast<double>(cnet[i].exitDominatedDupInsts +
                                clei[i].exitDominatedDupInsts);
        const double rr = ratio(combRegions, baseRegions);
        const double dr = ratio(combDup, baseDup);
        regionRatios.push_back(rr);
        dupRatios.push_back(dr);
        table.addRow({net[i].workload,
                      formatDouble(baseRegions, 0),
                      formatDouble(combRegions, 0), formatPercent(rr),
                      formatDouble(baseDup, 0),
                      formatDouble(combDup, 0), formatPercent(dr)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(regionRatios)), "", "",
                         formatPercent(mean(dupRatios))});

    printFigure(table,
                "combining traces avoids ~65% of exit-dominated "
                "duplication and ~40% of exit-dominated regions; the "
                "residual comes from the finite T_prof sample and "
                "phase changes making the window unrepresentative.");
    return 0;
}
