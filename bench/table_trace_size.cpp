/**
 * @file
 * Average trace size (Section 3.2.2 text: despite copying fewer
 * instructions overall, LEI's traces are larger — 14.8 to 18.3
 * instructions on average over all benchmarks).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Section 3.2.2: average trace size"));

    Table table("Average region size (instructions)",
                {"benchmark", "NET", "LEI", "comb NET", "comb LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> n, l, cn, cl;
    for (std::size_t i = 0; i < net.size(); ++i) {
        n.push_back(net[i].avgRegionInsts());
        l.push_back(lei[i].avgRegionInsts());
        cn.push_back(cnet[i].avgRegionInsts());
        cl.push_back(clei[i].avgRegionInsts());
        table.addRow({net[i].workload, formatDouble(n.back(), 1),
                      formatDouble(l.back(), 1),
                      formatDouble(cn.back(), 1),
                      formatDouble(cl.back(), 1)});
    }
    table.addSummaryRow(
        {"average", formatDouble(mean(n), 1), formatDouble(mean(l), 1),
         formatDouble(mean(cn), 1), formatDouble(mean(cl), 1)});

    printFigure(table,
                "LEI's average trace grows from NET's 14.8 to 18.3 "
                "instructions while total expansion falls — fewer, "
                "larger regions; combination grows regions further.");
    return 0;
}
