/**
 * @file
 * Static-prediction validation table: how tight the dataflow-based
 * region-quality bounds are, and how accurate the heuristic
 * estimates, measured over the fuzz corpus.
 *
 * For every corpus seed the program's static report is computed and
 * every shipped selector is run (unbounded cache, fault-free — the
 * regime the bounds are sound for). Per selector the table reports
 * the measured/bound tightness ratios for region count, duplicated
 * instructions, code expansion and exit stubs, the mean absolute
 * error of the stub-density and spanning-ratio estimates, and the
 * number of violated bounds (which must be zero: a violation fails
 * the binary).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/exit_codes.hpp"
#include "support/table.hpp"
#include "testing/prediction_check.hpp"
#include "testing/random_program.hpp"

using namespace rsel;

namespace {

/** Per-selector accumulation over the corpus. */
struct SelectorAgg
{
    std::string selector;
    std::uint64_t measuredRegions = 0, boundRegions = 0;
    std::uint64_t measuredDup = 0, boundDup = 0;
    std::uint64_t measuredExp = 0, boundExp = 0;
    std::uint64_t measuredStubs = 0;
    double boundStubs = 0.0; ///< sum of densityMax * expansion
    double densityEstAbsErr = 0.0;
    double spanEstAbsErr = 0.0;
    std::uint64_t runs = 0;
    std::uint64_t violations = 0;
};

std::string
ratio(std::uint64_t measured, double bound)
{
    if (bound <= 0.0)
        return "-";
    return formatPercent(static_cast<double>(measured) / bound, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("seeds", "30", "fuzz-corpus seeds to validate");
    cli.define("start-seed", "1", "first corpus seed");
    cli.define("events", "8000",
               "events per run (0 = per-spec default)");

    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        const std::uint64_t seeds = cli.getUint("seeds");
        const std::uint64_t startSeed = cli.getUint("start-seed");
        const std::uint64_t events = cli.getUint("events");

        std::vector<SelectorAgg> aggs;
        const auto aggFor =
            [&aggs](const std::string &name) -> SelectorAgg & {
            for (SelectorAgg &a : aggs)
                if (a.selector == name)
                    return a;
            aggs.emplace_back();
            aggs.back().selector = name;
            return aggs.back();
        };

        for (std::uint64_t i = 0; i < seeds; ++i) {
            testing::GenSpec spec =
                testing::GenSpec::fromSeed(startSeed + i);
            if (events != 0)
                spec.events = events;
            spec.clamp();
            const Program prog = testing::generateProgram(spec);
            const testing::PredictionValidation val =
                testing::validatePredictions(prog, spec.events,
                                             spec.execSeed);
            for (const testing::SelectorValidation &sv :
                 val.selectors) {
                SelectorAgg &agg =
                    aggFor(sv.prediction.selector);
                ++agg.runs;
                agg.measuredRegions += sv.measured.regionCount;
                agg.boundRegions += sv.prediction.maxRegions;
                agg.measuredDup += sv.measured.duplicatedInsts;
                agg.boundDup += sv.prediction.dupBoundInsts;
                agg.measuredExp += sv.measured.expansionInsts;
                agg.boundExp += sv.prediction.expansionBoundInsts;
                agg.measuredStubs += sv.measured.exitStubs;
                agg.boundStubs +=
                    sv.prediction.stubDensityMax *
                    static_cast<double>(
                        sv.prediction.expansionBoundInsts);
                if (sv.measured.expansionInsts > 0) {
                    const double density =
                        static_cast<double>(sv.measured.exitStubs) /
                        static_cast<double>(
                            sv.measured.expansionInsts);
                    const double err =
                        density - sv.prediction.stubDensityEst;
                    agg.densityEstAbsErr += err < 0 ? -err : err;
                }
                if (sv.measured.regionCount > 0) {
                    const double span =
                        static_cast<double>(
                            sv.measured.spanningRegions) /
                        static_cast<double>(sv.measured.regionCount);
                    const double err =
                        span - sv.prediction.spanningRatioEst;
                    agg.spanEstAbsErr += err < 0 ? -err : err;
                }
                agg.violations += sv.violations.size();
                for (const std::string &v : sv.violations)
                    std::printf("seed %llu, %s: VIOLATED %s\n",
                                static_cast<unsigned long long>(
                                    startSeed + i),
                                sv.prediction.selector.c_str(),
                                v.c_str());
            }
        }

        Table table(
            "Static prediction tightness over " +
                std::to_string(seeds) + " corpus seeds",
            {"selector", "regions m/b", "dup m/b", "expansion m/b",
             "stubs m/b", "densEst err", "spanEst err",
             "violations"});
        std::uint64_t totalViolations = 0;
        for (const SelectorAgg &agg : aggs) {
            totalViolations += agg.violations;
            const double runs =
                agg.runs == 0 ? 1.0 : static_cast<double>(agg.runs);
            table.addRow(
                {agg.selector,
                 ratio(agg.measuredRegions,
                       static_cast<double>(agg.boundRegions)),
                 ratio(agg.measuredDup,
                       static_cast<double>(agg.boundDup)),
                 ratio(agg.measuredExp,
                       static_cast<double>(agg.boundExp)),
                 ratio(agg.measuredStubs, agg.boundStubs),
                 formatDouble(agg.densityEstAbsErr / runs, 3),
                 formatDouble(agg.spanEstAbsErr / runs, 3),
                 std::to_string(agg.violations)});
        }
        table.addSummaryRow(
            {"total", "", "", "", "", "", "",
             std::to_string(totalViolations)});
        table.print(std::cout);
        std::printf("static prediction: %s\n",
                    totalViolations == 0
                        ? "every bound held (measured <= bound)"
                        : "BOUNDS VIOLATED");
        return totalViolations == 0 ? ExitOk : ExitVerifyFailure;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
