/**
 * @file
 * Cost of verify-on-submit: wall-clock overhead of running the
 * static RegionVerifier on every emitted region (plus the final
 * duplication accountant) relative to an unverified simulation.
 *
 * Verification work scales with regions *selected*, not events
 * *executed*, so on realistic workloads — thousands of events per
 * selected region — the overhead target is well under 10%. One row
 * per workload: events/second plain, events/second verified, the
 * overhead percentage, and the regions and warnings the verifier
 * saw.
 */

#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace rsel::bench {
namespace {

double
eventsPerSecond(const Program &prog, const SimOptions &opts,
                std::uint64_t events)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    const SimResult r = simulate(prog, Algorithm::Lei, opts);
    const std::chrono::duration<double> dt = Clock::now() - start;
    (void)r;
    return static_cast<double>(events) / dt.count();
}

int
run(const BenchOptions &opts)
{
    Table table(
        "Verify-on-submit overhead (LEI, events/second)",
        {"benchmark", "plain ev/s", "verified ev/s", "overhead",
         "regions", "warnings"});

    SuiteRunner suite(opts); // reuses the common workload filtering
    std::vector<double> overheads;
    for (const WorkloadInfo *w : suite.workloads()) {
        const Program prog = w->build(opts.buildSeed);
        const std::uint64_t events =
            opts.events != 0 ? opts.events : w->defaultEvents;

        SimOptions sim = opts.simOptions();
        sim.maxEvents = events;
        // Warm-up run keeps one-time costs (page faults, allocator
        // growth) out of both measurements.
        (void)simulate(prog, Algorithm::Lei, sim);
        const double plain = eventsPerSecond(prog, sim, events);
        sim.verifyRegions = true;
        const double verified = eventsPerSecond(prog, sim, events);

        // Region/warning counts come from a direct system so the
        // verifier diagnostics are observable.
        DynOptSystem sys(prog);
        attachAlgorithm(sys, Algorithm::Lei, sim);
        sys.enableVerifyOnSubmit();
        Executor exec(prog, sim.seed);
        exec.run(events, sys);
        const SimResult res = sys.finish();

        const double overhead = plain / verified - 1.0;
        overheads.push_back(overhead);
        table.addRow({w->name, formatDouble(plain / 1e6, 2) + "M",
                      formatDouble(verified / 1e6, 2) + "M",
                      formatPercent(overhead),
                      std::to_string(res.regionCount),
                      std::to_string(
                          sys.verifyDiagnostics().warningCount())});
    }

    double sum = 0.0;
    for (const double o : overheads)
        sum += o;
    table.addSummaryRow(
        {"average", "", "",
         formatPercent(sum / static_cast<double>(overheads.size())),
         "", ""});
    table.print(std::cout);
    return 0;
}

} // namespace
} // namespace rsel::bench

int
main(int argc, char **argv)
{
    const rsel::bench::BenchOptions opts = rsel::bench::parseArgs(
        argc, argv,
        "Wall-clock overhead of static region verification "
        "(verify-on-submit) relative to an unverified run.");
    return rsel::bench::run(opts);
}
