/**
 * @file
 * Shared harness for the figure/table reproduction binaries.
 *
 * Every bench binary runs the twelve-workload synthetic suite under
 * the algorithms it needs and prints one table in the paper's
 * layout: a row per benchmark plus the cross-suite average the paper
 * quotes. Common CLI flags:
 *
 *   --events N   dynamic block events per run (0 = workload default)
 *   --seed N     executor seed
 *   --build-seed N  program-synthesis seed
 *   --workload NAME  restrict to one workload
 *   --jobs N     parallel sweep workers (0 = hardware concurrency,
 *                1 = serial); results are identical at any count
 */

#ifndef RSEL_BENCH_BENCH_UTIL_HPP
#define RSEL_BENCH_BENCH_UTIL_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dynopt/dynopt_system.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

namespace rsel::bench {

/** Options common to all bench binaries. */
struct BenchOptions
{
    /** Events per run; 0 means each workload's default length. */
    std::uint64_t events = 0;
    /** Executor seed. */
    std::uint64_t seed = 7;
    /** Program-synthesis seed. */
    std::uint64_t buildSeed = 42;
    /** Optional single-workload filter (empty = whole suite). */
    std::string workloadFilter;
    /** Sweep workers (0 = hardware concurrency, 1 = serial). */
    std::size_t jobs = 0;
    /** Threshold configuration shared by all runs. */
    NetConfig net;
    LeiConfig lei;
    /** Modelled I-cache geometry shared by all runs. */
    ICacheConfig icache;

    /** The equivalent SimOptions (maxEvents 0 = workload default). */
    SimOptions simOptions() const;
};

/**
 * Parse the common bench CLI. Prints usage and exits on --help;
 * terminates with a message on bad options.
 */
BenchOptions parseArgs(int argc, char **argv,
                       const std::string &description);

/**
 * Lazily runs and caches suite results per algorithm so a binary
 * that needs NET and LEI only simulates each workload twice.
 */
class SuiteRunner
{
  public:
    explicit SuiteRunner(BenchOptions opts);

    /** Results for one algorithm, in suite order. */
    const std::vector<SimResult> &results(Algorithm algo);

    /** The workloads being run (after filtering). */
    const std::vector<const WorkloadInfo *> &workloads() const
    {
        return workloads_;
    }

    /** The options in effect. */
    const BenchOptions &options() const { return opts_; }

  private:
    BenchOptions opts_;
    std::vector<const WorkloadInfo *> workloads_;
    std::map<Algorithm, std::vector<SimResult>> cache_;
};

/**
 * Print a finished table plus the "paper reports" footnote that
 * states the published shape the figure should reproduce.
 */
void printFigure(const Table &table, const std::string &paperNote);

// ---------------------------------------------------------------
// Wall-clock timing helpers.
//
// Perf binaries must time with the monotonic steady_clock (never
// system_clock, which NTP can step mid-measurement), discard warmup
// repetitions (cold caches and lazy allocation dominate the first
// runs), and report the median of several timed repetitions (robust
// against scheduler noise, unlike a single run or the mean).
// ---------------------------------------------------------------

/** Monotonic nanoseconds since an arbitrary epoch (steady_clock). */
std::uint64_t nowNanos();

/** Median of a sample set. @pre non-empty (takes a copy to sort). */
double medianOf(std::vector<double> values);

/**
 * Time `fn`: `warmup` untimed runs, then `reps` timed repetitions.
 * @return the median wall time of one repetition, in nanoseconds.
 */
double medianTimeNanos(int warmup, int reps,
                       const std::function<void()> &fn);

} // namespace rsel::bench

#endif // RSEL_BENCH_BENCH_UTIL_HPP
