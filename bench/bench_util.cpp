#include "bench_util.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "driver/sweep_runner.hpp"
#include "support/error.hpp"

namespace rsel::bench {

BenchOptions
parseArgs(int argc, char **argv, const std::string &description)
{
    CliOptions cli;
    cli.define("events", "0",
               "dynamic block events per run (0 = workload default)");
    cli.define("seed", "7", "executor seed");
    cli.define("build-seed", "42", "program-synthesis seed");
    cli.define("workload", "", "restrict to one workload by name");
    cli.define("net-threshold", "50", "NET hot threshold");
    cli.define("lei-threshold", "35", "LEI cycle threshold");
    cli.define("buffer", "500", "LEI history-buffer capacity");
    cli.define("tprof", "15", "observed traces per entrance (T_prof)");
    cli.define("tmin", "5", "block occurrence threshold (T_min)");
    cli.define("jobs", "0",
               "parallel sweep workers (0 = hardware concurrency, "
               "1 = serial)");

    try {
        cli.parse(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        std::exit(2);
    }
    if (cli.helpRequested()) {
        std::cout << description << "\n\n" << cli.usage(argv[0]);
        std::exit(0);
    }

    BenchOptions opts;
    opts.events = cli.getUint("events");
    opts.seed = cli.getUint("seed");
    opts.buildSeed = cli.getUint("build-seed");
    opts.workloadFilter = cli.get("workload");
    opts.jobs = static_cast<std::size_t>(cli.getUint("jobs"));
    opts.net.hotThreshold =
        static_cast<std::uint32_t>(cli.getUint("net-threshold"));
    opts.lei.hotThreshold =
        static_cast<std::uint32_t>(cli.getUint("lei-threshold"));
    opts.lei.bufferCapacity =
        static_cast<std::size_t>(cli.getUint("buffer"));
    const auto tprof = static_cast<std::uint32_t>(cli.getUint("tprof"));
    const auto tmin = static_cast<std::uint32_t>(cli.getUint("tmin"));
    opts.net.profWindow = tprof;
    opts.lei.profWindow = tprof;
    opts.net.minOccur = tmin;
    opts.lei.minOccur = tmin;
    return opts;
}

SuiteRunner::SuiteRunner(BenchOptions opts)
    : opts_(std::move(opts))
{
    for (const WorkloadInfo &w : workloadSuite()) {
        if (opts_.workloadFilter.empty() ||
            w.name == opts_.workloadFilter) {
            workloads_.push_back(&w);
        }
    }
    if (workloads_.empty())
        fatal("unknown workload: " + opts_.workloadFilter);
}

SimOptions
BenchOptions::simOptions() const
{
    SimOptions sim;
    sim.maxEvents = events;
    sim.seed = seed;
    sim.net = net;
    sim.lei = lei;
    sim.icache = icache;
    return sim;
}

const std::vector<SimResult> &
SuiteRunner::results(Algorithm algo)
{
    auto it = cache_.find(algo);
    if (it != cache_.end())
        return it->second;

    // One workload-major grid per algorithm, fanned out over the
    // pool; collection is in suite order, so the printed tables are
    // byte-identical to the old serial loop at any job count.
    const SweepRunner runner(opts_.jobs);
    std::vector<SimResult> results = runner.run(SweepRunner::makeGrid(
        workloads_, {algo}, opts_.simOptions(), opts_.buildSeed));
    return cache_.emplace(algo, std::move(results)).first->second;
}

void
printFigure(const Table &table, const std::string &paperNote)
{
    table.print(std::cout);
    std::cout << "paper reports: " << paperNote << "\n\n";
}

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

double
medianOf(std::vector<double> values)
{
    RSEL_ASSERT(!values.empty(), "median of an empty sample set");
    std::sort(values.begin(), values.end());
    const std::size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double
medianTimeNanos(int warmup, int reps, const std::function<void()> &fn)
{
    RSEL_ASSERT(reps > 0, "need at least one timed repetition");
    for (int i = 0; i < warmup; ++i)
        fn();
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const std::uint64_t start = nowNanos();
        fn();
        samples.push_back(static_cast<double>(nowNanos() - start));
    }
    return medianOf(std::move(samples));
}

} // namespace rsel::bench
