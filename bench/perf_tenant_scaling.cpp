/**
 * @file
 * perf_tenant_scaling: throughput and hit rate of the multi-tenant
 * selection service as the tenant population grows.
 *
 * Measures sustained dynamic events/sec and the global hit rate at
 * 1, 16, 256 and 4096 tenants sharing one bounded sharded arena
 * (--quick shrinks the ladder and event counts for the perf-smoke
 * ctest entry). Per-tenant event budgets shrink as the population
 * grows so every rung does comparable total work.
 *
 * Methodology: the service times its own run with steady_clock; each
 * rung runs one untimed warmup repetition, then the median of
 * --reps timed repetitions is reported (see bench_util.hpp).
 *
 * Before any timing, the binary re-verifies the service's
 * determinism contract (every tenant fingerprint == its solo run,
 * with faults armed on half the tenants) and prints "determinism
 * ok" — a throughput number from a service that corrupts its
 * tenants would be meaningless.
 *
 * Results land in BENCH_perf_tenant_scaling.json (--json PATH) for
 * CI trend tracking.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "service/selection_service.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"

using namespace rsel;
using namespace rsel::bench;
using namespace rsel::service;

namespace {

struct ScaleRow
{
    std::size_t tenants = 0;
    std::uint64_t eventsPerTenant = 0;
    std::uint64_t totalEvents = 0;
    double seconds = 0;
    double eventsPerSec = 0;
    double globalHitRate = 0;
    std::uint64_t quotaBytes = 0;
    std::uint64_t arenaHighWater = 0;
    std::uint64_t shardContention = 0;
};

ServiceConfig
makeConfig(std::size_t tenants, std::uint64_t eventsPerTenant,
           std::uint64_t cacheKb, std::size_t jobs, bool faults)
{
    ServiceConfig config;
    config.tenants.reserve(tenants);
    for (std::size_t i = 0; i < tenants; ++i) {
        TenantSpec spec = TenantSpec::fromSeed(1 + i);
        // Arm derived fault plans on every other tenant so the
        // ladder (and the determinism gate) exercises recovery
        // under multi-tenancy, not just the happy path.
        if (faults && i % 2 == 1)
            spec.faults = resilience::FaultPlan::fromSeed(1 + i);
        config.tenants.push_back(spec);
    }
    config.jobs = jobs;
    config.cacheKb = cacheKb;
    config.eventsOverride = eventsPerTenant;
    return config;
}

ScaleRow
measureRung(std::size_t tenants, std::uint64_t eventsPerTenant,
            std::uint64_t cacheKb, std::size_t jobs, int reps)
{
    const ServiceConfig config =
        makeConfig(tenants, eventsPerTenant, cacheKb, jobs, true);
    ScaleRow row;
    row.tenants = tenants;
    row.eventsPerTenant = eventsPerTenant;
    row.quotaBytes = cacheKb * 1024 / tenants;

    runService(config); // warmup (cold allocator, lazy pool pages)
    std::vector<double> epsSamples;
    std::vector<double> secSamples;
    for (int r = 0; r < reps; ++r) {
        const ServiceReport report = runService(config);
        epsSamples.push_back(report.eventsPerSec);
        secSamples.push_back(report.seconds);
        row.totalEvents = report.totalEvents;
        row.globalHitRate = report.globalHitRate;
        row.arenaHighWater = report.arena.highWaterBytes;
        row.shardContention = report.arena.shardContention;
    }
    row.eventsPerSec = medianOf(epsSamples);
    row.seconds = medianOf(secSamples);
    return row;
}

void
writeJson(const std::string &path, std::size_t jobs,
          std::uint64_t cacheKb, int reps,
          const std::vector<ScaleRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write JSON to '" + path + "'");
    os << "{\n"
       << "  \"bench\": \"perf_tenant_scaling\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"cache_kb\": " << cacheKb << ",\n"
       << "  \"timed_reps\": " << reps << ",\n"
       << "  \"timer\": \"steady_clock, median of reps after "
          "warmup\",\n"
       << "  \"scaling\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ScaleRow &r = rows[i];
        os << "    {\"tenants\": " << r.tenants
           << ", \"events_per_tenant\": " << r.eventsPerTenant
           << ", \"total_events\": " << r.totalEvents
           << ", \"seconds\": " << r.seconds
           << ", \"events_per_sec\": "
           << static_cast<std::uint64_t>(r.eventsPerSec)
           << ", \"global_hit_rate\": " << r.globalHitRate
           << ", \"quota_bytes\": " << r.quotaBytes
           << ", \"arena_high_water_bytes\": " << r.arenaHighWater
           << ", \"shard_contention\": " << r.shardContention
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("quick", "false",
               "smoke mode: smaller ladder and event counts");
    cli.define("jobs", "0",
               "pool workers (0 = hardware concurrency)");
    cli.define("cache-kb", "1024",
               "global arena bound in KiB, partitioned per tenant");
    cli.define("reps", "5", "timed repetitions (median is reported)");
    cli.define("json", "BENCH_perf_tenant_scaling.json",
               "output path for the JSON result record");
    try {
        cli.parse(argc, argv);
        if (cli.helpRequested()) {
            std::fputs(cli.usage(argv[0]).c_str(), stdout);
            return ExitOk;
        }
        const bool quick = cli.getBool("quick");
        const std::size_t jobs =
            static_cast<std::size_t>(cli.getUint("jobs"));
        const std::uint64_t cacheKb = cli.getUint("cache-kb");
        const int reps =
            quick ? 2 : static_cast<int>(cli.getInt("reps"));

        // Determinism gate first: fingerprints at a contended scale
        // (16 tenants, faults armed on half) must equal solo runs.
        {
            const std::string error = verifyServiceDeterminism(
                makeConfig(16, quick ? 2000 : 8000, cacheKb, jobs,
                           true));
            if (!error.empty()) {
                std::fprintf(stderr, "FAIL: %s\n", error.c_str());
                return ExitRuntimeFault;
            }
            std::printf("determinism ok: 16 tenants byte-identical "
                        "to solo runs\n");
        }

        // The ladder: total work per rung stays comparable by
        // shrinking the per-tenant budget as the population grows.
        struct Rung
        {
            std::size_t tenants;
            std::uint64_t events;
        };
        const std::vector<Rung> ladder =
            quick ? std::vector<Rung>{{1, 20000},
                                      {8, 4000},
                                      {64, 1000}}
                  : std::vector<Rung>{{1, 400000},
                                      {16, 50000},
                                      {256, 4000},
                                      {4096, 500}};

        std::vector<ScaleRow> rows;
        std::printf("%8s %12s %14s %10s %12s\n", "tenants",
                    "events/ten", "events/sec", "hit rate",
                    "contention");
        for (const Rung &rung : ladder) {
            const ScaleRow row = measureRung(
                rung.tenants, rung.events, cacheKb, jobs, reps);
            std::printf("%8zu %12llu %14.0f %9.2f%% %12llu\n",
                        row.tenants,
                        static_cast<unsigned long long>(
                            row.eventsPerTenant),
                        row.eventsPerSec,
                        row.globalHitRate * 100.0,
                        static_cast<unsigned long long>(
                            row.shardContention));
            rows.push_back(row);
        }

        writeJson(cli.get("json"), jobs, cacheKb, reps, rows);
        std::printf("json: %s\n", cli.get("json").c_str());
        return ExitOk;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return ExitUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "runtime fault: %s\n", e.what());
        return ExitRuntimeFault;
    }
}
