/**
 * @file
 * Figure 7: the improvement of LEI over NET in selecting traces that
 * span cycles. Lighter bars in the paper = increase in the spanned
 * cycle ratio (selection-side); darker bars = increase in the
 * executed cycle ratio (execution-side).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 7: spanned/executed cycle ratio increase, LEI vs NET"));

    Table table("Figure 7 — cycle spanning, LEI relative to NET "
                "(percentage-point increase)",
                {"benchmark", "spanned NET", "spanned LEI",
                 "spanned +pp", "executed NET", "executed LEI",
                 "executed +pp"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> dSpan, dExec;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double sn = net[i].spannedCycleRatio();
        const double sl = lei[i].spannedCycleRatio();
        const double en = net[i].executedCycleRatio();
        const double el = lei[i].executedCycleRatio();
        dSpan.push_back((sl - sn) * 100.0);
        dExec.push_back((el - en) * 100.0);
        table.addRow({net[i].workload, formatPercent(sn),
                      formatPercent(sl), formatDouble(dSpan.back(), 1),
                      formatPercent(en), formatPercent(el),
                      formatDouble(dExec.back(), 1)});
    }
    table.addSummaryRow({"average", "", "",
                         formatDouble(mean(dSpan), 1), "", "",
                         formatDouble(mean(dExec), 1)});

    printFigure(table,
                "LEI spans more cycles than NET on every benchmark, "
                "raising the spanned-cycle ratio by ~5 points overall; "
                "the executed-cycle ratio rises with it (the two are "
                "highly correlated), with crafty and parser gaining "
                "least.");
    return 0;
}
