/**
 * @file
 * Figure 9: minimum number of traces required to cover 90% of the
 * instructions executed by each benchmark (absolute sizes, NET vs
 * LEI).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(
        parseArgs(argc, argv, "Figure 9: 90% cover set sizes"));

    Table table("Figure 9 — 90% cover set size (number of regions)",
                {"benchmark", "NET", "LEI", "LEI/NET"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> ratios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double r = ratio(lei[i].coverSet90, net[i].coverSet90);
        ratios.push_back(r);
        table.addRow({net[i].workload,
                      std::to_string(net[i].coverSet90),
                      std::to_string(lei[i].coverSet90),
                      formatPercent(r)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(ratios))});

    printFigure(table,
                "LEI requires a significantly smaller 90% cover set "
                "on every benchmark, an 18% average reduction; the "
                "cover-set size is the paper's proxy for real-system "
                "performance.");
    return 0;
}
