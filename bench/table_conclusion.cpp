/**
 * @file
 * Section 6 headline comparison: the combined algorithms (LEI with
 * trace combination) against plain NET. The paper: 9% less code
 * expansion, 32% fewer exit stubs, region transitions cut in half,
 * and the 90% cover set improved by more than 25% on every
 * benchmark (44% on average).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Section 6: combined LEI versus plain NET (headline)"));

    Table table("Conclusion — combined LEI relative to plain NET",
                {"benchmark", "expansion", "exit stubs", "transitions",
                 "90% cover set"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> exp, stubs, trans, cover;
    for (std::size_t i = 0; i < net.size(); ++i) {
        exp.push_back(ratio(static_cast<double>(clei[i].expansionInsts),
                            static_cast<double>(net[i].expansionInsts)));
        stubs.push_back(ratio(static_cast<double>(clei[i].exitStubs),
                              static_cast<double>(net[i].exitStubs)));
        trans.push_back(
            ratio(static_cast<double>(clei[i].regionTransitions),
                  static_cast<double>(net[i].regionTransitions)));
        cover.push_back(ratio(clei[i].coverSet90, net[i].coverSet90));
        table.addRow({net[i].workload, formatPercent(exp.back()),
                      formatPercent(stubs.back()),
                      formatPercent(trans.back()),
                      formatPercent(cover.back())});
    }
    table.addSummaryRow({"average", formatPercent(mean(exp)),
                         formatPercent(mean(stubs)),
                         formatPercent(mean(trans)),
                         formatPercent(mean(cover))});

    printFigure(table,
                "combined LEI vs NET: 91% of the code expansion, 68% "
                "of the exit stubs, ~50% of the region transitions, "
                "and a 90% cover set 44% smaller on average (>25% "
                "smaller on every benchmark).");
    return 0;
}
