/**
 * @file
 * Figure 12: the proportion of traces selected by NET and LEI that
 * are exit-dominated (Section 4.1). eon is the paper's outlier: its
 * tiny shared constructors dominate a trace for every hot caller.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Figure 12: proportion of exit-dominated traces"));

    Table table("Figure 12 — exit-dominated traces (% of regions)",
                {"benchmark", "NET", "LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> netVals, leiVals;
    for (std::size_t i = 0; i < net.size(); ++i) {
        netVals.push_back(net[i].exitDominatedRegionRatio());
        leiVals.push_back(lei[i].exitDominatedRegionRatio());
        table.addRow({net[i].workload, formatPercent(netVals.back()),
                      formatPercent(leiVals.back())});
    }
    table.addSummaryRow({"average", formatPercent(mean(netVals)),
                         formatPercent(mean(leiVals))});

    printFigure(table,
                "on average 15% of NET traces and 22% of LEI traces "
                "are exit-dominated (typically 10-25% per benchmark), "
                "with eon a clear outlier because of its widely "
                "shared constructor traces.");
    return 0;
}
