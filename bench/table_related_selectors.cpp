/**
 * @file
 * Section 5 comparison: every shipped selection algorithm on the
 * full suite. The paper argues that the related techniques — Mojo's
 * lower exit threshold, BOA's per-branch profiling, Wiggins/
 * Redstone's sampling — identify hot traces more carefully but do
 * not address separation or duplication; combination does. The
 * 90% cover set is the quality proxy (Bala et al. found it a
 * perfect predictor of real performance: smaller set, faster run).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Section 5: all selection algorithms compared"));

    Table cover("90% cover set size by algorithm",
                {"benchmark", "NET", "Mojo", "BOA", "WRS", "LEI",
                 "LEI+comb"});
    Table trans("Region transitions relative to NET",
                {"benchmark", "Mojo", "BOA", "WRS", "LEI",
                 "LEI+comb"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &mojo = runner.results(Algorithm::Mojo);
    const auto &boa = runner.results(Algorithm::Boa);
    const auto &wrs = runner.results(Algorithm::Wrs);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> cMojo, cBoa, cWrs, cLei, cClei;
    std::vector<double> tMojo, tBoa, tWrs, tLei, tClei;
    for (std::size_t i = 0; i < net.size(); ++i) {
        cover.addRow({net[i].workload,
                      std::to_string(net[i].coverSet90),
                      std::to_string(mojo[i].coverSet90),
                      std::to_string(boa[i].coverSet90),
                      std::to_string(wrs[i].coverSet90),
                      std::to_string(lei[i].coverSet90),
                      std::to_string(clei[i].coverSet90)});
        const double nt = static_cast<double>(net[i].regionTransitions);
        auto tr = [&](const SimResult &r) {
            return ratio(static_cast<double>(r.regionTransitions), nt);
        };
        tMojo.push_back(tr(mojo[i]));
        tBoa.push_back(tr(boa[i]));
        tWrs.push_back(tr(wrs[i]));
        tLei.push_back(tr(lei[i]));
        tClei.push_back(tr(clei[i]));
        trans.addRow({net[i].workload, formatPercent(tMojo.back()),
                      formatPercent(tBoa.back()),
                      formatPercent(tWrs.back()),
                      formatPercent(tLei.back()),
                      formatPercent(tClei.back())});
        cMojo.push_back(ratio(mojo[i].coverSet90, net[i].coverSet90));
        cBoa.push_back(ratio(boa[i].coverSet90, net[i].coverSet90));
        cWrs.push_back(ratio(wrs[i].coverSet90, net[i].coverSet90));
        cLei.push_back(ratio(lei[i].coverSet90, net[i].coverSet90));
        cClei.push_back(ratio(clei[i].coverSet90, net[i].coverSet90));
    }
    cover.addSummaryRow(
        {"avg vs NET", "100%", formatPercent(mean(cMojo)),
         formatPercent(mean(cBoa)), formatPercent(mean(cWrs)),
         formatPercent(mean(cLei)), formatPercent(mean(cClei))});
    trans.addSummaryRow({"average", formatPercent(mean(tMojo)),
                         formatPercent(mean(tBoa)),
                         formatPercent(mean(tWrs)),
                         formatPercent(mean(tLei)),
                         formatPercent(mean(tClei))});

    printFigure(cover,
                "more careful single-path selection (Mojo, BOA, WRS) "
                "cannot match the cover-set reduction of cycle-based "
                "selection plus combination.");
    printFigure(trans,
                "Mojo reduces separation delay but still optimizes "
                "related traces apart; only LEI and combination cut "
                "transitions decisively.");
    return 0;
}
