/**
 * @file
 * Ablation: LEI's history-buffer capacity. The paper fixes it at 500
 * ("small enough to require little memory but large enough to
 * capture very long cycles and those with frequently executing
 * nested cycles") without a sweep — this bench supplies one. Too
 * small a buffer misses long cycles entirely (their targets are
 * evicted before recurring); beyond a few hundred entries the
 * returns vanish.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    const BenchOptions base = parseArgs(
        argc, argv, "Ablation: LEI history-buffer capacity sweep");

    Table table("LEI vs buffer capacity (suite averages)",
                {"capacity", "regions", "cover90 vs NET",
                 "transitions vs NET", "executed cycles",
                 "hit rate"});

    SuiteRunner netRunner(base);
    const auto &net = netRunner.results(Algorithm::Net);

    for (std::size_t capacity : {8u, 32u, 128u, 500u, 2000u}) {
        BenchOptions opts = base;
        opts.lei.bufferCapacity = capacity;
        SuiteRunner runner(opts);
        const auto &lei = runner.results(Algorithm::Lei);

        double regions = 0;
        std::vector<double> cover, trans, cyc, hit;
        for (std::size_t i = 0; i < lei.size(); ++i) {
            regions += static_cast<double>(lei[i].regionCount);
            cover.push_back(
                ratio(lei[i].coverSet90, net[i].coverSet90));
            trans.push_back(
                ratio(static_cast<double>(lei[i].regionTransitions),
                      static_cast<double>(net[i].regionTransitions)));
            cyc.push_back(lei[i].executedCycleRatio());
            hit.push_back(lei[i].hitRate());
        }
        table.addRow({std::to_string(capacity),
                      formatDouble(regions / lei.size(), 1),
                      formatPercent(mean(cover)),
                      formatPercent(mean(trans)),
                      formatPercent(mean(cyc)),
                      formatPercent(mean(hit), 2)});
    }

    printFigure(table,
                "(ablation, not a paper figure) the paper's 500-entry "
                "choice sits on the flat part of the curve: small "
                "buffers cannot hold interprocedural cycles, very "
                "large ones add nothing.");
    return 0;
}
