/**
 * @file
 * Wall-clock scaling of the parallel sweep engine.
 *
 * Runs the full (workload × algorithm) grid at 1, 2, 4 and 8
 * workers (capped by --max-jobs), reports wall-clock and speedup
 * versus the serial path, and cross-checks that every job count
 * produced identical results — the SweepRunner's determinism
 * contract, enforced here on the real suite.
 *
 * Defaults use a reduced event budget so the 4-point sweep stays in
 * the seconds range; pass --events 0 for the workloads' full default
 * lengths (the EXPERIMENTS.md methodology).
 */

#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "driver/sweep_runner.hpp"
#include "driver/thread_pool.hpp"
#include "support/error.hpp"

using namespace rsel;
using namespace rsel::bench;

namespace {

/** Order-sensitive FNV-1a over the counters that matter. */
std::uint64_t
fingerprint(const std::vector<SimResult> &results)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    for (const SimResult &r : results) {
        mix(r.events);
        mix(r.totalInsts);
        mix(r.cachedInsts);
        mix(r.regionCount);
        mix(r.expansionInsts);
        mix(r.regionTransitions);
        mix(r.coverSet90);
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("events", "100000",
               "events per run (0 = workload defaults)");
    cli.define("seed", "7", "executor seed");
    cli.define("build-seed", "42", "program-synthesis seed");
    cli.define("max-jobs", "8", "largest worker count to measure");
    try {
        cli.parse(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    if (cli.helpRequested()) {
        std::cout << "Sweep-engine scaling: wall-clock at 1/2/4/8 "
                     "workers over the full suite.\n\n"
                  << cli.usage(argv[0]);
        return 0;
    }

    try {
        std::vector<const WorkloadInfo *> workloads;
        for (const WorkloadInfo &w : workloadSuite())
            workloads.push_back(&w);
        const std::vector<Algorithm> algos{allAlgorithms,
                                           allAlgorithms +
                                               std::size(allAlgorithms)};

        SimOptions base;
        base.maxEvents = cli.getUint("events");
        base.seed = cli.getUint("seed");
        const std::vector<SweepCell> grid = SweepRunner::makeGrid(
            workloads, algos, base, cli.getUint("build-seed"));

        const std::size_t maxJobs = cli.getUint("max-jobs");
        std::vector<std::size_t> jobCounts;
        for (std::size_t j = 1; j <= maxJobs; j *= 2)
            jobCounts.push_back(j);

        Table t("perf_sweep_scaling: " + std::to_string(grid.size()) +
                    " cells, hardware concurrency " +
                    std::to_string(ThreadPool::hardwareWorkers()),
                {"jobs", "wall (s)", "speedup", "cells/s"});
        double serialSeconds = 0.0;
        std::uint64_t serialPrint = 0;
        std::vector<SimResult> serialResults;
        for (std::size_t jobs : jobCounts) {
            const SweepRunner runner(jobs);
            const auto start = std::chrono::steady_clock::now();
            std::vector<SimResult> results = runner.run(grid);
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - start;

            const std::uint64_t print = fingerprint(results);
            if (jobs == 1) {
                serialSeconds = elapsed.count();
                serialPrint = print;
                serialResults = std::move(results);
            } else if (print != serialPrint) {
                fatal("parallel sweep at " + std::to_string(jobs) +
                      " jobs diverged from the serial results");
            }
            t.addRow({std::to_string(jobs),
                      formatDouble(elapsed.count(), 2),
                      formatDouble(serialSeconds / elapsed.count(), 2),
                      formatDouble(static_cast<double>(grid.size()) /
                                       elapsed.count(),
                                   1)});
        }
        printFigure(
            t,
            "not a paper figure — infrastructure: speedup should "
            "track min(jobs, cores); all job counts byte-identical");
        const SimResult total = mergeResults(serialResults);
        std::cout << "suite total: " << total.events << " events, "
                  << total.totalInsts << " insts, aggregate hit "
                  << formatPercent(total.hitRate(), 2) << '\n';
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }
    return 0;
}
