/**
 * @file
 * Bounded-cache extension study (paper Section 2.3, deferred to
 * future work): "our region-selection algorithms should help improve
 * the performance of dynamic optimization systems with bounded code
 * caches, because our algorithms reduce code duplication and produce
 * fewer cached regions. This improves memory performance, reduces
 * the overhead of cache management, and regenerates fewer evicted
 * regions."
 *
 * For each workload the cache is capped at 50% of NET's unbounded
 * footprint and the four configurations run under FIFO eviction;
 * the table reports regenerations (re-translation work) and the
 * bounded hit rate.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    BenchOptions base = parseArgs(
        argc, argv,
        "Bounded-cache study: regenerations under cache pressure");

    Table table("Bounded cache at 50% of NET's footprint (FIFO): "
                "regenerations and hit rate",
                {"benchmark", "regen NET", "regen LEI",
                 "regen combNET", "regen combLEI", "hit NET",
                 "hit combLEI"});

    std::vector<double> rNet, rLei, rCnet, rClei;
    SuiteRunner sizing(base); // unbounded runs, for footprints
    const auto &unbounded = sizing.results(Algorithm::Net);

    for (std::size_t i = 0; i < sizing.workloads().size(); ++i) {
        const WorkloadInfo *w = sizing.workloads()[i];
        Program prog = w->build(base.buildSeed);
        SimOptions opts;
        opts.maxEvents =
            base.events != 0 ? base.events : w->defaultEvents;
        opts.seed = base.seed;
        opts.net = base.net;
        opts.lei = base.lei;
        opts.cache.capacityBytes =
            unbounded[i].estimatedCacheBytes / 2;
        opts.cache.policy = CacheLimits::Policy::Fifo;

        const SimResult net = simulate(prog, Algorithm::Net, opts);
        const SimResult lei = simulate(prog, Algorithm::Lei, opts);
        const SimResult cnet =
            simulate(prog, Algorithm::NetCombined, opts);
        const SimResult clei =
            simulate(prog, Algorithm::LeiCombined, opts);

        rNet.push_back(static_cast<double>(net.cacheRegenerations));
        rLei.push_back(static_cast<double>(lei.cacheRegenerations));
        rCnet.push_back(static_cast<double>(cnet.cacheRegenerations));
        rClei.push_back(static_cast<double>(clei.cacheRegenerations));

        table.addRow({w->name,
                      std::to_string(net.cacheRegenerations),
                      std::to_string(lei.cacheRegenerations),
                      std::to_string(cnet.cacheRegenerations),
                      std::to_string(clei.cacheRegenerations),
                      formatPercent(net.hitRate(), 2),
                      formatPercent(clei.hitRate(), 2)});
    }
    table.addSummaryRow({"average", formatDouble(mean(rNet), 1),
                         formatDouble(mean(rLei), 1),
                         formatDouble(mean(rCnet), 1),
                         formatDouble(mean(rClei), 1), "", ""});

    printFigure(table,
                "(extension, not a paper figure) the paper predicts "
                "fewer regenerations for algorithms that cache fewer, "
                "less duplicated regions — combined LEI should "
                "regenerate the least.");
    return 0;
}
