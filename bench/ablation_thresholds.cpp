/**
 * @file
 * Ablation: hot-threshold sensitivity. NET's published threshold is
 * 50 and LEI's 35 ("as LEI counts only certain executions of a
 * backward branch ... a smaller value should be used"; the paper
 * chose 35 without run-time tuning). This bench sweeps both: low
 * thresholds select cold paths eagerly (more regions, more
 * expansion), high thresholds delay coverage (lower hit rate at a
 * fixed budget).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    const BenchOptions base = parseArgs(
        argc, argv, "Ablation: NET/LEI hot-threshold sweep");

    Table table("Threshold sweep (suite averages)",
                {"config", "regions", "expansion", "cover90",
                 "transitions", "hit rate"});

    auto sweep = [&](Algorithm algo, std::uint32_t threshold) {
        BenchOptions opts = base;
        if (algo == Algorithm::Net)
            opts.net.hotThreshold = threshold;
        else
            opts.lei.hotThreshold = threshold;
        SuiteRunner runner(opts);
        const auto &rs = runner.results(algo);
        double regions = 0, expansion = 0, cover = 0, trans = 0;
        std::vector<double> hit;
        for (const SimResult &r : rs) {
            regions += static_cast<double>(r.regionCount);
            expansion += static_cast<double>(r.expansionInsts);
            cover += static_cast<double>(r.coverSet90);
            trans += static_cast<double>(r.regionTransitions);
            hit.push_back(r.hitRate());
        }
        const double n = static_cast<double>(rs.size());
        table.addRow({algorithmName(algo) + " T=" +
                          std::to_string(threshold),
                      formatDouble(regions / n, 1),
                      formatDouble(expansion / n, 0),
                      formatDouble(cover / n, 1),
                      formatDouble(trans / n, 0),
                      formatPercent(mean(hit), 2)});
    };

    for (std::uint32_t t : {10u, 25u, 50u, 100u, 200u})
        sweep(Algorithm::Net, t);
    for (std::uint32_t t : {10u, 20u, 35u, 70u, 140u})
        sweep(Algorithm::Lei, t);

    printFigure(table,
                "(ablation, not a paper figure) the published 50/35 "
                "pair balances eager selection of cold paths against "
                "delayed coverage; the cover set is fairly flat "
                "around it, consistent with the paper not tuning it.");
    return 0;
}
