/**
 * @file
 * Graceful-degradation study (robustness extension, not a paper
 * figure): the deterministic fault injector drives translation
 * failures, block invalidations, flush storms and selector resets at
 * increasing intensity, and the table reports how far each selection
 * algorithm's completion (cache hit rate) degrades while the system
 * absorbs every fault — the run must finish, conserve instructions,
 * and fall back to interpretation only where recovery gives up
 * (blacklisted entrances).
 */

#include "bench_util.hpp"
#include "resilience/fault_plan.hpp"

using namespace rsel;
using namespace rsel::bench;

namespace {

struct FaultLevel
{
    const char *name;
    resilience::FaultPlan plan;
};

std::vector<FaultLevel>
faultLevels()
{
    std::vector<FaultLevel> levels;
    levels.push_back({"none", {}});
    resilience::FaultPlan p;
    p.pTranslationFail = 5;
    p.invalidateRate = 20;
    p.flushRate = 2;
    p.resetRate = 1;
    levels.push_back({"light", p});
    p.pTranslationFail = 20;
    p.invalidateRate = 150;
    p.flushRate = 20;
    p.resetRate = 10;
    levels.push_back({"moderate", p});
    p.pTranslationFail = 50;
    p.invalidateRate = 600;
    p.flushRate = 80;
    p.resetRate = 40;
    levels.push_back({"heavy", p});
    return levels;
}

/** Suite-wide aggregate of one (level, algorithm) configuration. */
struct LevelAggregate
{
    std::vector<double> hitRates;
    std::uint64_t faults = 0;
    std::uint64_t invalidated = 0;
    std::uint64_t retranslations = 0;
    std::uint64_t blacklisted = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions base = parseArgs(
        argc, argv,
        "Graceful degradation: hit rate under injected faults");

    Table table("Degradation under deterministic fault injection "
                "(suite averages)",
                {"fault level", "hit NET", "hit combLEI", "faults",
                 "invalidated", "retrans", "blacklisted"});

    SuiteRunner suite(base);
    const std::vector<Algorithm> algos{Algorithm::Net,
                                       Algorithm::LeiCombined};
    for (const FaultLevel &level : faultLevels()) {
        std::vector<LevelAggregate> agg(algos.size());
        for (const WorkloadInfo *w : suite.workloads()) {
            Program prog = w->build(base.buildSeed);
            SimOptions opts = base.simOptions();
            if (opts.maxEvents == 0)
                opts.maxEvents = w->defaultEvents;
            opts.faults = level.plan;
            for (std::size_t a = 0; a < algos.size(); ++a) {
                const SimResult r = simulate(prog, algos[a], opts);
                agg[a].hitRates.push_back(r.hitRate());
                agg[a].faults += r.recovery.faultsInjected;
                agg[a].invalidated += r.recovery.regionsInvalidated;
                agg[a].retranslations += r.recovery.retranslations;
                agg[a].blacklisted +=
                    r.recovery.blacklistedEntrances;
            }
        }
        table.addRow({level.name, formatPercent(mean(agg[0].hitRates), 2),
                      formatPercent(mean(agg[1].hitRates), 2),
                      std::to_string(agg[0].faults + agg[1].faults),
                      std::to_string(agg[0].invalidated +
                                     agg[1].invalidated),
                      std::to_string(agg[0].retranslations +
                                     agg[1].retranslations),
                      std::to_string(agg[0].blacklisted +
                                     agg[1].blacklisted)});
    }

    printFigure(table,
                "(robustness extension) hit rate should fall "
                "monotonically with fault intensity while every run "
                "completes; blacklisting should stay rare below the "
                "heavy level, where persistent translation failures "
                "push hot entrances back to pure interpretation.");
    return 0;
}
