/**
 * @file
 * Figure 8: code expansion and region transitions of LEI relative to
 * NET.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 8: code expansion and region transitions, LEI/NET"));

    Table table("Figure 8 — LEI relative to NET",
                {"benchmark", "expansion NET", "expansion LEI",
                 "expansion ratio", "transitions NET",
                 "transitions LEI", "transitions ratio"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> expRatios, transRatios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double er = ratio(
            static_cast<double>(lei[i].expansionInsts),
            static_cast<double>(net[i].expansionInsts));
        const double tr = ratio(
            static_cast<double>(lei[i].regionTransitions),
            static_cast<double>(net[i].regionTransitions));
        expRatios.push_back(er);
        transRatios.push_back(tr);
        table.addRow({net[i].workload,
                      std::to_string(net[i].expansionInsts),
                      std::to_string(lei[i].expansionInsts),
                      formatPercent(er),
                      std::to_string(net[i].regionTransitions),
                      std::to_string(lei[i].regionTransitions),
                      formatPercent(tr)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(expRatios)), "", "",
                         formatPercent(mean(transRatios))});

    printFigure(table,
                "LEI averages 92% of NET's code expansion (crafty is "
                "the exception at >=100%) and 80% of NET's region "
                "transitions (parser gains nothing); the benchmarks "
                "where LEI spans the most additional cycles improve "
                "the most.");
    return 0;
}
