/**
 * @file
 * Section 4.2.3 practicality claim: the mark-rejoining-paths
 * dataflow visits blocks in post order, so marks almost always
 * settle in one sweep — "roughly 0.1% of regions that mark blocks
 * in the first iteration proceed to mark additional blocks in the
 * second."
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Section 4.2.3: mark-rejoining-paths iteration counts"));

    Table table("Mark-rejoining-paths sweeps (combined NET + LEI)",
                {"benchmark", "regions marked", "needed 2nd sweep",
                 "fraction"});

    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::uint64_t totalMarked = 0, totalMulti = 0;
    for (std::size_t i = 0; i < cnet.size(); ++i) {
        const std::uint64_t marked =
            cnet[i].markSweepRegions + clei[i].markSweepRegions;
        const std::uint64_t multi = cnet[i].markSweepMultiIterRegions +
                                    clei[i].markSweepMultiIterRegions;
        totalMarked += marked;
        totalMulti += multi;
        table.addRow({cnet[i].workload, std::to_string(marked),
                      std::to_string(multi),
                      formatPercent(ratio(static_cast<double>(multi),
                                          static_cast<double>(marked),
                                          0.0))});
    }
    table.addSummaryRow(
        {"total", std::to_string(totalMarked),
         std::to_string(totalMulti),
         formatPercent(ratio(static_cast<double>(totalMulti),
                             static_cast<double>(totalMarked), 0.0))});

    printFigure(table,
                "~0.1% of regions whose first sweep marks blocks need "
                "a second sweep (back edges can delay propagation); "
                "in practice the dataflow is linear in the edges.");
    return 0;
}
