/**
 * @file
 * Section 4.3 footnote: "setting T_prof = 5 and T_min = 2 results
 * in smaller but similar improvements" — the profiling window can
 * be shortened when observation overhead matters.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

namespace {

struct WindowResult
{
    double transRatio;  ///< combined LEI / LEI transitions
    double coverRatio;  ///< combined LEI / LEI cover set
    double memoryRatio; ///< observed bytes / cache size
};

WindowResult
runWindow(const BenchOptions &base, std::uint32_t tprof,
          std::uint32_t tmin)
{
    BenchOptions opts = base;
    opts.net.profWindow = tprof;
    opts.net.minOccur = tmin;
    opts.lei.profWindow = tprof;
    opts.lei.minOccur = tmin;
    SuiteRunner runner(opts);

    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);
    std::vector<double> trans, cover, memory;
    for (std::size_t i = 0; i < lei.size(); ++i) {
        trans.push_back(
            ratio(static_cast<double>(clei[i].regionTransitions),
                  static_cast<double>(lei[i].regionTransitions)));
        cover.push_back(ratio(clei[i].coverSet90, lei[i].coverSet90));
        memory.push_back(clei[i].observedMemoryRatio());
    }
    return {mean(trans), mean(cover), mean(memory)};
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions base = parseArgs(
        argc, argv,
        "Section 4.3 footnote: T_prof/T_min sensitivity of "
        "combination");

    Table table("Combination window sensitivity (combined LEI vs "
                "LEI, suite averages)",
                {"window", "transitions ratio", "cover-set ratio",
                 "profiling memory"});

    const WindowResult full = runWindow(base, 15, 5);
    const WindowResult small = runWindow(base, 5, 2);
    table.addRow({"T_prof=15 T_min=5", formatPercent(full.transRatio),
                  formatPercent(full.coverRatio),
                  formatPercent(full.memoryRatio)});
    table.addRow({"T_prof=5  T_min=2", formatPercent(small.transRatio),
                  formatPercent(small.coverRatio),
                  formatPercent(small.memoryRatio)});

    printFigure(table,
                "the small window yields smaller but similar "
                "improvements, with less profiling memory — the "
                "balance can be struck per deployment.");
    return 0;
}
