/**
 * @file
 * Figure 11: the proportion of instructions selected by NET and LEI
 * that are exit-dominated duplication (Section 4.1).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 11: exit-dominated duplicated instructions"));

    Table table("Figure 11 — exit-dominated duplication "
                "(% of selected instructions)",
                {"benchmark", "NET", "LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);

    std::vector<double> netVals, leiVals;
    for (std::size_t i = 0; i < net.size(); ++i) {
        netVals.push_back(net[i].exitDominatedDupRatio());
        leiVals.push_back(lei[i].exitDominatedDupRatio());
        table.addRow({net[i].workload, formatPercent(netVals.back()),
                      formatPercent(leiVals.back())});
    }
    table.addSummaryRow({"average", formatPercent(mean(netVals)),
                         formatPercent(mean(leiVals))});

    printFigure(table,
                "exit-dominated traces duplicate 1-7% of all selected "
                "instructions; LEI usually shows more exit-dominated "
                "duplication than NET (the same opportunity exists "
                "even though LEI selects less code overall).");
    return 0;
}
