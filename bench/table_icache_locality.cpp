/**
 * @file
 * Locality measured directly: the paper uses region transitions as
 * its locality-of-execution proxy ("fewer region transitions implies
 * better locality") because separation hurts instruction-cache
 * performance. This bench closes the loop by running a scaled-down
 * L1 instruction cache (1 KiB, direct-mapped, 32 B lines — scaled to
 * the ~100x smaller synthetic code footprints)
 * over the code-cache layout of each algorithm.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    BenchOptions opts = parseArgs(
        argc, argv,
        "Locality validation: modelled I-cache miss rate");
    // Tight geometry: the synthetic hot footprints are tiny, so the
    // modelled cache must be tighter still for separation to show.
    opts.icache = {1024, 32, 1};
    SuiteRunner runner(opts);

    Table table("I-cache miss rate of cached execution "
                "(1 KiB, direct-mapped, 32 B lines)",
                {"benchmark", "NET", "LEI", "comb NET", "comb LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> n, l, cn, cl;
    for (std::size_t i = 0; i < net.size(); ++i) {
        n.push_back(net[i].icacheMissRate());
        l.push_back(lei[i].icacheMissRate());
        cn.push_back(cnet[i].icacheMissRate());
        cl.push_back(clei[i].icacheMissRate());
        table.addRow({net[i].workload, formatPercent(n.back(), 2),
                      formatPercent(l.back(), 2),
                      formatPercent(cn.back(), 2),
                      formatPercent(cl.back(), 2)});
    }
    table.addSummaryRow({"average", formatPercent(mean(n), 2),
                         formatPercent(mean(l), 2),
                         formatPercent(mean(cn), 2),
                         formatPercent(mean(cl), 2)});

    printFigure(table,
                "(validation of the paper's proxy, not a paper "
                "figure) the transition reductions of Figures 8 and "
                "16 should translate into lower instruction-fetch "
                "miss rates, with combined LEI the lowest.");
    return 0;
}
