/**
 * @file
 * Footnote 9 of the paper: the memory model ignores "the memory
 * required for links between regions in the cache", noting that
 * "our algorithms are very likely to reduce the number of such
 * links, as fewer regions are selected and each contains more
 * related code." This bench measures the exercised link pairs
 * directly.
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv, "Footnote 9: inter-region links exercised"));

    Table table("Distinct region-to-region links",
                {"benchmark", "NET", "LEI", "comb NET", "comb LEI",
                 "combLEI/NET"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> ratios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double r =
            ratio(static_cast<double>(clei[i].interRegionLinks),
                  static_cast<double>(net[i].interRegionLinks));
        ratios.push_back(r);
        table.addRow({net[i].workload,
                      std::to_string(net[i].interRegionLinks),
                      std::to_string(lei[i].interRegionLinks),
                      std::to_string(cnet[i].interRegionLinks),
                      std::to_string(clei[i].interRegionLinks),
                      formatPercent(r)});
    }
    table.addSummaryRow({"average", "", "", "", "",
                         formatPercent(mean(ratios))});

    printFigure(table,
                "the combined algorithms maintain far fewer links "
                "between regions, validating the paper's footnote 9 "
                "expectation.");
    return 0;
}
