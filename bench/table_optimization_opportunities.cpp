/**
 * @file
 * Section 4.4 quantified: structural optimization opportunities of
 * the regions each algorithm caches. The paper argues (without
 * numbers) that multi-path regions optimize better: both sides of
 * if-else statements present (compensation-free redundancy
 * elimination), join points visible to the optimizer, and cycles
 * with in-region preheaders (loop-invariant code motion, which even
 * a cycle-spanning trace cannot do).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Section 4.4: optimization opportunities per algorithm"));

    Table table("Optimization-opportunity structure (suite totals)",
                {"metric", "NET", "LEI", "comb NET", "comb LEI"});

    const std::vector<SimResult> *results[4] = {
        &runner.results(Algorithm::Net),
        &runner.results(Algorithm::Lei),
        &runner.results(Algorithm::NetCombined),
        &runner.results(Algorithm::LeiCombined)};

    auto totalOf = [&](auto getter) {
        std::vector<std::string> cells;
        for (const auto *rs : results) {
            std::uint64_t total = 0;
            for (const SimResult &r : *rs)
                total += getter(r);
            cells.push_back(std::to_string(total));
        }
        return cells;
    };

    auto addRow = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (std::string &c : totalOf(getter))
            cells.push_back(std::move(c));
        table.addRow(cells);
    };

    addRow("regions selected",
           [](const SimResult &r) { return r.regionCount; });
    addRow("regions with internal cycle", [](const SimResult &r) {
        return r.regionsWithInternalCycle;
    });
    addRow("LICM-capable regions",
           [](const SimResult &r) { return r.licmCapableRegions; });
    addRow("regions with both if-else sides",
           [](const SimResult &r) { return r.dualSplitRegions; });
    addRow("internal join blocks",
           [](const SimResult &r) { return r.joinBlocksTotal; });

    printFigure(table,
                "single-path traces can never contain both sides of "
                "a split or a join; only the combined algorithms "
                "produce regions where redundancy elimination needs "
                "no compensation code and loops have in-region "
                "preheaders for invariant code motion.");
    return 0;
}
