/**
 * @file
 * Section 4.4 quantified: structural optimization opportunities of
 * the regions each algorithm caches. The paper argues (without
 * numbers) that multi-path regions optimize better: both sides of
 * if-else statements present (compensation-free redundancy
 * elimination), join points visible to the optimizer, and cycles
 * with in-region preheaders (loop-invariant code motion, which even
 * a cycle-spanning trace cannot do).
 *
 * The second table extends the argument across call boundaries: the
 * interprocedural analyzer's per-workload inlining opportunities
 * (call sites, hot-loop sites, sound duplication-growth bound)
 * against the measured dynamic call behaviour, with the tightness
 * ratio bound/observed and the share of dynamic calls flowing
 * through the top quartile of the ranked table. An in-binary gate
 * re-checks every sound claim (callee sets, return edges, bound
 * chain) and fails the run on any violation.
 */

#include "bench_util.hpp"

#include <iostream>

#include "testing/inter_check.hpp"

using namespace rsel;
using namespace rsel::bench;

namespace {

/** "bound / observed" as a ratio cell ("-" when nothing ran). */
std::string
tightness(std::uint64_t bound, std::uint64_t observed)
{
    if (observed == 0)
        return "-";
    return formatDouble(static_cast<double>(bound) /
                            static_cast<double>(observed),
                        2);
}

/** The interprocedural static-vs-dynamic table; false on any
 *  violated sound claim. */
bool
printInterTable(SuiteRunner &runner)
{
    const BenchOptions &opts = runner.options();
    Table table("Interprocedural opportunities vs dynamic calls",
                {"workload", "callSites", "hotSites", "staticBound",
                 "dynCalls", "observedInsts", "tightness",
                 "topQuartile"});
    bool held = true;
    for (const WorkloadInfo *w : runner.workloads()) {
        const Program prog = w->build(opts.buildSeed);
        const std::uint64_t events =
            opts.events != 0 ? opts.events : w->defaultEvents;
        const testing::InterValidation val =
            testing::validateInterprocedural(prog, events,
                                             opts.seed);
        if (!val.error.empty()) {
            std::printf("%s: %s\n", w->name.c_str(),
                        val.error.c_str());
            held = false;
        }
        analysis::AnalysisManager mgr;
        const analysis::OpportunityReport opp =
            analysis::analyzeInlineOpportunities(
                mgr.interFacts(prog));
        table.addRow({w->name,
                      std::to_string(opp.ranked.size()),
                      std::to_string(opp.hotLoopSites),
                      std::to_string(val.dupGrowthBoundInsts),
                      std::to_string(val.callTransfers),
                      std::to_string(val.observedCalleeInsts),
                      tightness(val.dupGrowthBoundInsts,
                                val.observedCalleeInsts),
                      formatDouble(val.topQuartileCallShare, 2)});
    }
    table.print(std::cout);
    return held;
}

} // namespace

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Section 4.4: optimization opportunities per algorithm"));

    Table table("Optimization-opportunity structure (suite totals)",
                {"metric", "NET", "LEI", "comb NET", "comb LEI"});

    const std::vector<SimResult> *results[4] = {
        &runner.results(Algorithm::Net),
        &runner.results(Algorithm::Lei),
        &runner.results(Algorithm::NetCombined),
        &runner.results(Algorithm::LeiCombined)};

    auto totalOf = [&](auto getter) {
        std::vector<std::string> cells;
        for (const auto *rs : results) {
            std::uint64_t total = 0;
            for (const SimResult &r : *rs)
                total += getter(r);
            cells.push_back(std::to_string(total));
        }
        return cells;
    };

    auto addRow = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells{name};
        for (std::string &c : totalOf(getter))
            cells.push_back(std::move(c));
        table.addRow(cells);
    };

    addRow("regions selected",
           [](const SimResult &r) { return r.regionCount; });
    addRow("regions with internal cycle", [](const SimResult &r) {
        return r.regionsWithInternalCycle;
    });
    addRow("LICM-capable regions",
           [](const SimResult &r) { return r.licmCapableRegions; });
    addRow("regions with both if-else sides",
           [](const SimResult &r) { return r.dualSplitRegions; });
    addRow("internal join blocks",
           [](const SimResult &r) { return r.joinBlocksTotal; });

    printFigure(table,
                "single-path traces can never contain both sides of "
                "a split or a join; only the combined algorithms "
                "produce regions where redundancy elimination needs "
                "no compensation code and loops have in-region "
                "preheaders for invariant code motion.");

    const bool held = printInterTable(runner);
    std::printf("%s\n", held
                            ? "interprocedural bounds held"
                            : "interprocedural bounds VIOLATED");
    return held ? 0 : 1;
}
