/**
 * @file
 * Figure 16: reduction in the number of region transitions under
 * trace combination (combined NET vs NET, combined LEI vs LEI).
 */

#include "bench_util.hpp"

using namespace rsel;
using namespace rsel::bench;

int
main(int argc, char **argv)
{
    SuiteRunner runner(parseArgs(
        argc, argv,
        "Figure 16: region transitions under trace combination"));

    Table table("Figure 16 — region transitions, combined relative "
                "to base",
                {"benchmark", "NET", "comb NET", "combNET/NET", "LEI",
                 "comb LEI", "combLEI/LEI"});

    const auto &net = runner.results(Algorithm::Net);
    const auto &cnet = runner.results(Algorithm::NetCombined);
    const auto &lei = runner.results(Algorithm::Lei);
    const auto &clei = runner.results(Algorithm::LeiCombined);

    std::vector<double> netRatios, leiRatios;
    for (std::size_t i = 0; i < net.size(); ++i) {
        const double rn =
            ratio(static_cast<double>(cnet[i].regionTransitions),
                  static_cast<double>(net[i].regionTransitions));
        const double rl =
            ratio(static_cast<double>(clei[i].regionTransitions),
                  static_cast<double>(lei[i].regionTransitions));
        netRatios.push_back(rn);
        leiRatios.push_back(rl);
        table.addRow({net[i].workload,
                      std::to_string(net[i].regionTransitions),
                      std::to_string(cnet[i].regionTransitions),
                      formatPercent(rn),
                      std::to_string(lei[i].regionTransitions),
                      std::to_string(clei[i].regionTransitions),
                      formatPercent(rl)});
    }
    table.addSummaryRow({"average", "", "",
                         formatPercent(mean(netRatios)), "", "",
                         formatPercent(mean(leiRatios))});

    printFigure(table,
                "combining NET traces leaves 85% of the transitions "
                "on average (vortex may rise ~1%); combining LEI "
                "traces leaves only 64% — LEI traces are especially "
                "well-suited to combination.");
    return 0;
}
