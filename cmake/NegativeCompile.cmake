# Configure-time negative-compile battery of the concurrency
# contract (tests/negative_compile/, docs/ANALYSIS.md). Included
# only under RSEL_ANALYZE on a Clang host: each case's legal variant
# must compile under Thread Safety Analysis as errors, the violating
# variant (-DRSEL_TSA_NEGATIVE) must NOT — and must fail with the
# diagnostic text the case declares in its `// TSA-EXPECT:` line, so
# a case failing for an unrelated reason (typo, missing include) is
# itself a configure failure. rselect-tsa-gate drives the same files
# from ctest; this copy makes the *configure* of the analyze preset
# the gate, so `cmake --preset analyze` cannot succeed with a hole
# in the contract.

set(RSEL_TSA_FLAGS
    "-Wthread-safety -Wthread-safety-beta -Werror=thread-safety -Werror=thread-safety-beta")

file(GLOB RSEL_TSA_CASES
    ${CMAKE_SOURCE_DIR}/tests/negative_compile/*.cpp)
list(SORT RSEL_TSA_CASES)
if(NOT RSEL_TSA_CASES)
    message(FATAL_ERROR "analyze: no negative-compile cases found")
endif()

foreach(rsel_case_file IN LISTS RSEL_TSA_CASES)
    get_filename_component(rsel_case ${rsel_case_file} NAME_WE)

    file(STRINGS ${rsel_case_file} rsel_expect_lines
        REGEX "// TSA-EXPECT:")
    if(NOT rsel_expect_lines)
        message(FATAL_ERROR
            "analyze: case ${rsel_case} has no TSA-EXPECT line")
    endif()
    list(GET rsel_expect_lines 0 rsel_expect)
    string(REGEX REPLACE ".*// TSA-EXPECT:[ \t]*" "" rsel_expect
        "${rsel_expect}")

    # Positive leg: the legal variant is gate-clean.
    try_compile(rsel_pos_${rsel_case}
        ${CMAKE_BINARY_DIR}/tsa_battery/${rsel_case}_pos
        SOURCES ${rsel_case_file}
        CMAKE_FLAGS
            "-DCMAKE_CXX_FLAGS=${RSEL_TSA_FLAGS}"
            "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src;${CMAKE_SOURCE_DIR}/tests/negative_compile"
        CXX_STANDARD 20
        CXX_STANDARD_REQUIRED ON
        OUTPUT_VARIABLE rsel_pos_out)
    if(NOT rsel_pos_${rsel_case})
        message(FATAL_ERROR
            "analyze: positive leg of ${rsel_case} did not compile:\n"
            "${rsel_pos_out}")
    endif()

    # Negative leg: the violation must be rejected, for the declared
    # reason.
    try_compile(rsel_neg_${rsel_case}
        ${CMAKE_BINARY_DIR}/tsa_battery/${rsel_case}_neg
        SOURCES ${rsel_case_file}
        CMAKE_FLAGS
            "-DCMAKE_CXX_FLAGS=${RSEL_TSA_FLAGS} -DRSEL_TSA_NEGATIVE"
            "-DINCLUDE_DIRECTORIES=${CMAKE_SOURCE_DIR}/src;${CMAKE_SOURCE_DIR}/tests/negative_compile"
        CXX_STANDARD 20
        CXX_STANDARD_REQUIRED ON
        OUTPUT_VARIABLE rsel_neg_out)
    if(rsel_neg_${rsel_case})
        message(FATAL_ERROR
            "analyze: negative leg of ${rsel_case} COMPILED — the "
            "gate does not reject this violation class")
    endif()
    string(FIND "${rsel_neg_out}" "${rsel_expect}" rsel_found)
    if(rsel_found EQUAL -1)
        message(FATAL_ERROR
            "analyze: negative leg of ${rsel_case} failed, but not "
            "for the declared reason (missing \"${rsel_expect}\"):\n"
            "${rsel_neg_out}")
    endif()
    message(STATUS
        "analyze: ${rsel_case} rejected (\"${rsel_expect}\")")
endforeach()
