/**
 * @file
 * Implementing a custom region-selection algorithm against the
 * public RegionSelector interface — the capability the paper's
 * authors were adding to Pin ("modify Pin so that it can accept a
 * user-specified trace-selection algorithm").
 *
 * The example implements "First-Executing Tail" (FET): like NET but
 * with no hotness counters at all — the first time a backward-branch
 * target executes, the next-executing tail is selected immediately.
 * It demonstrates the interface contract and why profiling matters:
 * FET caches cold paths eagerly and its cover sets are worse.
 */

#include <iostream>
#include <unordered_set>

#include "dynopt/dynopt_system.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace rsel;

namespace {

/** First-Executing Tail: NET without counters. */
class FetSelector : public RegionSelector
{
  public:
    FetSelector(const Program &prog, const CodeCache &cache)
        : prog_(prog), cache_(cache)
    {
        (void)prog_;
        (void)cache_;
    }

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &ev) override
    {
        if (recording_) {
            const bool backwardTaken =
                ev.viaTaken && ev.block->startAddr() <= ev.branchAddr;
            if (backwardTaken || recordInsts_ > maxInsts) {
                return finalize();
            }
            path_.push_back(ev.block);
            recordInsts_ += ev.block->instCount();
            return std::nullopt;
        }

        // Select on the FIRST eligible execution — no threshold.
        if (ev.viaTaken &&
            (ev.block->startAddr() <= ev.branchAddr ||
             ev.fromCacheExit) &&
            seen_.insert(ev.block->id()).second) {
            recording_ = true;
            path_ = {ev.block};
            recordInsts_ = ev.block->instCount();
        }
        return std::nullopt;
    }

    std::optional<RegionSpec>
    onCacheEnter(const BasicBlock &) override
    {
        if (recording_)
            return finalize();
        return std::nullopt;
    }

    std::size_t maxLiveCounters() const override { return 0; }
    std::string name() const override { return "FET"; }

  private:
    std::optional<RegionSpec>
    finalize()
    {
        recording_ = false;
        RegionSpec spec;
        spec.kind = Region::Kind::Trace;
        spec.blocks = std::move(path_);
        path_.clear();
        return spec;
    }

    static constexpr std::uint64_t maxInsts = 1024;
    const Program &prog_;
    const CodeCache &cache_;
    bool recording_ = false;
    std::vector<const BasicBlock *> path_;
    std::uint64_t recordInsts_ = 0;
    std::unordered_set<BlockId> seen_;
};

SimResult
runFet(const Program &p, std::uint64_t events)
{
    DynOptSystem system(p);
    system.useCustom([](const Program &prog, const CodeCache &cache) {
        return std::make_unique<FetSelector>(prog, cache);
    });
    Executor exec(p, 7);
    exec.run(events, system);
    return system.finish();
}

} // namespace

int
main()
{
    const WorkloadInfo *info = findWorkload("twolf");
    Program p = info->build(42);
    const std::uint64_t events = 1'000'000;

    SimOptions opts;
    opts.maxEvents = events;
    opts.seed = 7;
    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult fet = runFet(p, events);

    Table table("Custom selector (FET: select on first execution) "
                "vs NET on 'twolf'",
                {"metric", "NET", "FET"});
    table.addRow({"hit rate", formatPercent(net.hitRate(), 2),
                  formatPercent(fet.hitRate(), 2)});
    table.addRow({"regions", std::to_string(net.regionCount),
                  std::to_string(fet.regionCount)});
    table.addRow({"code expansion (insts)",
                  std::to_string(net.expansionInsts),
                  std::to_string(fet.expansionInsts)});
    table.addRow({"90% cover set", std::to_string(net.coverSet90),
                  std::to_string(fet.coverSet90)});
    table.addRow({"region transitions",
                  std::to_string(net.regionTransitions),
                  std::to_string(fet.regionTransitions)});
    table.print(std::cout);

    std::cout << "\nFET shows why NET profiles before selecting: "
                 "selecting on the first execution\ncaches whatever "
                 "path happens to run first, inflating expansion "
                 "and the cover set.\nAny algorithm implementing "
                 "RegionSelector plugs into the same simulator.\n";
    return 0;
}
