/**
 * @file
 * The paper's Figure 2 walkthrough: a loop whose dominant path
 * contains a function call, with the callee at a lower address.
 *
 * NET selects interprocedural *forward* paths, so it cannot extend a
 * trace across both the call and its return: the cycle splits into
 * two traces (A B D and E F L) connected by region transitions every
 * iteration. LEI reconstructs the executed cycle from its history
 * buffer and selects one trace that spans it.
 */

#include <iostream>

#include "dynopt/dynopt_system.hpp"
#include "support/table.hpp"
#include "workloads/scenarios.hpp"

using namespace rsel;

namespace {

void
describeRegions(const Program &p, const SimResult &r)
{
    static const char *names = "EFABDL"; // block id -> figure letter
    for (const RegionStats &reg : r.regions) {
        const BasicBlock *entry = p.blockAtAddr(reg.entryAddr);
        std::cout << "  region " << reg.id << ": starts at "
                  << names[entry->id()] << ", " << reg.blockCount
                  << " blocks, "
                  << (reg.spansCycle ? "spans cycle" : "no cycle")
                  << ", " << reg.executions << " executions, "
                  << reg.cycleEnds << " ended by branch-to-top\n";
    }
}

} // namespace

int
main()
{
    Program p = buildInterproceduralCycle();

    std::cout << "Figure 2 scenario: loop A B D -> call E F -> return "
                 "-> L -> back to A\n"
              << "(callee E/F laid out below main, so the call is a "
                 "backward branch)\n\n";

    SimOptions opts;
    opts.maxEvents = 120'000;
    opts.seed = 9;

    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult lei = simulate(p, Algorithm::Lei, opts);

    std::cout << "NET (" << net.regionCount << " traces):\n";
    describeRegions(p, net);
    std::cout << "  region transitions: " << net.regionTransitions
              << ", exit stubs: " << net.exitStubs << "\n\n";

    std::cout << "LEI (" << lei.regionCount << " trace):\n";
    describeRegions(p, lei);
    std::cout << "  region transitions: " << lei.regionTransitions
              << ", exit stubs: " << lei.exitStubs << "\n\n";

    Table table("Figure 2 — NET vs LEI on the interprocedural cycle",
                {"metric", "NET", "LEI"});
    table.addRow({"traces", std::to_string(net.regionCount),
                  std::to_string(lei.regionCount)});
    table.addRow({"exit stubs", std::to_string(net.exitStubs),
                  std::to_string(lei.exitStubs)});
    table.addRow({"region transitions",
                  std::to_string(net.regionTransitions),
                  std::to_string(lei.regionTransitions)});
    table.addRow({"executed cycle ratio",
                  formatPercent(net.executedCycleRatio()),
                  formatPercent(lei.executedCycleRatio())});
    table.print(std::cout);

    std::cout << "\nAs the paper argues: NET needs two traces and two "
                 "extra exit stubs, and control ping-pongs between "
                 "them every iteration; LEI keeps the whole cycle in "
                 "one region.\n";
    return 0;
}
