/**
 * @file
 * The paper's Figure 3 walkthrough: simple nested loops.
 *
 *     A:  outer-loop head (falls into B)
 *     B:  single-block inner loop (branches to itself)
 *     C:  outer latch (branches back to A)
 *
 * NET selects three traces — B; C; and "A B", duplicating the inner
 * loop because control falls from A into the already-cached B and
 * the recorder only stops at B's backward branch. LEI never
 * duplicates B: trace formation stops at the head of an existing
 * region even on a fall-through path.
 */

#include <iostream>

#include "dynopt/dynopt_system.hpp"
#include "support/table.hpp"
#include "workloads/scenarios.hpp"

using namespace rsel;

namespace {

void
describeRegions(const Program &p, const SimResult &r)
{
    static const char *names = "ABC?"; // block id -> figure letter
    for (const RegionStats &reg : r.regions) {
        const BasicBlock *entry = p.blockAtAddr(reg.entryAddr);
        std::cout << "  region " << reg.id << ": starts at "
                  << names[entry->id() < 3 ? entry->id() : 3] << ", "
                  << reg.blockCount << " blocks ("
                  << reg.instCount << " insts), "
                  << (reg.spansCycle ? "spans cycle" : "no cycle")
                  << "\n";
    }
}

} // namespace

int
main()
{
    Program p = buildNestedLoops(1, 4, 1000000);

    std::cout << "Figure 3 scenario: outer loop A .. C with "
                 "single-block inner loop B\n\n";

    SimOptions opts;
    opts.maxEvents = 150'000;
    opts.seed = 9;

    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult lei = simulate(p, Algorithm::Lei, opts);

    std::cout << "NET (" << net.regionCount << " traces):\n";
    describeRegions(p, net);
    std::cout << "  instructions selected: " << net.expansionInsts
              << " (block B appears twice: once as its own trace and "
                 "once copied\n   into A's trace — the Figure 3 "
                 "duplication)\n\n";

    std::cout << "LEI (" << lei.regionCount << " traces):\n";
    describeRegions(p, lei);
    std::cout << "  instructions selected: " << lei.expansionInsts
              << " (no block selected twice: LEI stops a trace at an "
                 "existing region\n   head even on the fall-through "
                 "path)\n\n";

    Table table("Figure 3 — duplication under NET vs LEI",
                {"metric", "NET", "LEI"});
    table.addRow({"traces", std::to_string(net.regionCount),
                  std::to_string(lei.regionCount)});
    table.addRow({"instructions selected",
                  std::to_string(net.expansionInsts),
                  std::to_string(lei.expansionInsts)});
    table.addRow({"duplicated instructions",
                  std::to_string(net.duplicatedInsts),
                  std::to_string(lei.duplicatedInsts)});
    table.addRow({"hit rate", formatPercent(net.hitRate(), 2),
                  formatPercent(lei.hitRate(), 2)});
    table.print(std::cout);
    return 0;
}
