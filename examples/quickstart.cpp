/**
 * @file
 * Quickstart: build a small program, run it under every selection
 * algorithm, and print the headline metrics.
 *
 *     ./build/examples/quickstart [--events N] [--seed N]
 *
 * This demonstrates the three layers of the public API:
 *  1. ProgramBuilder / WorkloadKit construct a synthetic guest
 *     program (here: one of the SPEC-like suite programs).
 *  2. simulate() runs it under a selection algorithm and returns a
 *     SimResult with the paper's metrics.
 *  3. Table renders the comparison.
 */

#include <iostream>

#include "dynopt/dynopt_system.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace rsel;

int
main(int argc, char **argv)
{
    CliOptions cli;
    cli.define("workload", "gzip", "workload to run (see --list)");
    cli.define("events", "1000000", "dynamic block events");
    cli.define("seed", "7", "executor seed");
    cli.define("list", "false", "list available workloads");
    try {
        cli.parse(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 2;
    }
    if (cli.helpRequested()) {
        std::cout << cli.usage(argv[0]);
        return 0;
    }
    if (cli.getBool("list")) {
        for (const WorkloadInfo &w : workloadSuite())
            std::cout << w.name << " — " << w.description << '\n';
        return 0;
    }

    const WorkloadInfo *info = findWorkload(cli.get("workload"));
    if (info == nullptr) {
        std::cerr << "unknown workload '" << cli.get("workload")
                  << "'; try --list\n";
        return 1;
    }

    Program program = info->build(42);
    std::cout << "workload: " << info->name << " — "
              << info->description << "\n"
              << "static: " << program.blocks().size() << " blocks, "
              << program.functions().size() << " functions, "
              << program.staticInstCount() << " instructions\n\n";

    Table table("Region selection on '" + info->name + "'",
                {"metric", "NET", "LEI", "comb NET", "comb LEI"});

    SimOptions opts;
    opts.maxEvents = cli.getUint("events");
    opts.seed = cli.getUint("seed");

    SimResult results[4];
    int i = 0;
    for (Algorithm algo : allAlgorithms)
        results[i++] = simulate(program, algo, opts);

    auto row = [&](const std::string &name, auto getter, int decimals) {
        std::vector<std::string> cells{name};
        for (const SimResult &r : results)
            cells.push_back(formatDouble(getter(r), decimals));
        table.addRow(cells);
    };

    row("hit rate (%)",
        [](const SimResult &r) { return 100.0 * r.hitRate(); }, 2);
    row("regions selected",
        [](const SimResult &r) { return double(r.regionCount); }, 0);
    row("code expansion (insts)",
        [](const SimResult &r) { return double(r.expansionInsts); }, 0);
    row("exit stubs",
        [](const SimResult &r) { return double(r.exitStubs); }, 0);
    row("region transitions",
        [](const SimResult &r) { return double(r.regionTransitions); },
        0);
    row("90% cover set",
        [](const SimResult &r) { return double(r.coverSet90); }, 0);
    row("spanned cycles (%)",
        [](const SimResult &r) {
            return 100.0 * r.spannedCycleRatio();
        },
        1);
    row("executed cycles (%)",
        [](const SimResult &r) {
            return 100.0 * r.executedCycleRatio();
        },
        1);
    row("avg region size (insts)",
        [](const SimResult &r) { return r.avgRegionInsts(); }, 1);
    row("exit-dominated regions",
        [](const SimResult &r) {
            return double(r.exitDominatedRegions);
        },
        0);

    table.print(std::cout);
    std::cout << "\nLEI spans the interprocedural cycles NET cannot; "
                 "trace combination merges related traces into "
                 "multi-path regions. See DESIGN.md for the paper "
                 "mapping.\n";
    return 0;
}
