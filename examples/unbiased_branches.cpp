/**
 * @file
 * The paper's Figure 4 walkthrough: an unbiased branch followed by a
 * biased branch, and the tail duplication trace combination repairs.
 *
 *     A: unbiased split (50/50 to B or C)
 *     B, C: the two sides, rejoining at D
 *     D: biased split (E rare)
 *     F: latch, back to A
 *
 * A single-path selector picks one side first (say A C D F); the
 * other side later forms its own trace (B D F) duplicating D and F
 * and an exit stub for E. Trace combination observes T_prof traces
 * from A and selects one multi-path region containing both sides —
 * no duplication, fewer stubs, and control stays in the region
 * whichever way the unbiased branch goes.
 */

#include <iostream>

#include "dynopt/dynopt_system.hpp"
#include "support/table.hpp"
#include "workloads/scenarios.hpp"

using namespace rsel;

int
main()
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);

    std::cout << "Figure 4 scenario: unbiased A->(B|C), join D, "
                 "biased D->(E|F), F loops to A\n\n";

    SimOptions opts;
    opts.maxEvents = 200'000;
    opts.seed = 9;

    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult comb = simulate(p, Algorithm::NetCombined, opts);

    std::cout << "plain NET: " << net.regionCount << " traces, "
              << net.expansionInsts << " insts selected, "
              << net.duplicatedInsts << " duplicated, "
              << net.exitStubs << " stubs, "
              << net.regionTransitions << " transitions\n";
    std::cout << "combined NET: " << comb.regionCount << " region(s), "
              << comb.expansionInsts << " insts selected, "
              << comb.duplicatedInsts << " duplicated, "
              << comb.exitStubs << " stubs, "
              << comb.regionTransitions << " transitions\n\n";

    Table table("Figure 4 — tail duplication vs trace combination",
                {"metric", "NET", "combined NET"});
    table.addRow({"regions", std::to_string(net.regionCount),
                  std::to_string(comb.regionCount)});
    table.addRow({"instructions selected",
                  std::to_string(net.expansionInsts),
                  std::to_string(comb.expansionInsts)});
    table.addRow({"duplicated instructions",
                  std::to_string(net.duplicatedInsts),
                  std::to_string(comb.duplicatedInsts)});
    table.addRow({"exit stubs", std::to_string(net.exitStubs),
                  std::to_string(comb.exitStubs)});
    table.addRow({"region transitions",
                  std::to_string(net.regionTransitions),
                  std::to_string(comb.regionTransitions)});
    table.addRow({"executed cycle ratio",
                  formatPercent(net.executedCycleRatio()),
                  formatPercent(comb.executedCycleRatio())});
    table.print(std::cout);

    std::cout
        << "\nThe combined region holds the diamond as one CFG with "
           "split and join points:\n the jump between the sides is "
           "a local branch and the shared tail exists once.\n Even "
           "the rare E side, once observed during profiling, joins "
           "the region as a\n rejoining path (paper footnote 6) "
           "instead of forcing an exit stub.\n";
    return 0;
}
