/**
 * @file
 * Multi-tenant selection-service tests: the determinism contract
 * (every tenant's fingerprint byte-identical to a solo run at any
 * concurrency, shard count and scheduling), cross-tenant accounting
 * disjointness, per-tenant and global conservation, and the
 * no-resurrection guarantee of tenant teardown.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/sim_result.hpp"
#include "service/selection_service.hpp"
#include "service/tenant_session.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"

namespace rsel {
namespace service {
namespace {

/** A seed-derived tenant set: selectors cycle through all seven. */
ServiceConfig
seedConfig(std::size_t tenants, std::uint64_t cacheKb,
           std::size_t jobs, std::uint64_t events = 3000)
{
    ServiceConfig config;
    config.tenants.reserve(tenants);
    for (std::size_t i = 0; i < tenants; ++i)
        config.tenants.push_back(TenantSpec::fromSeed(1 + i));
    config.cacheKb = cacheKb;
    config.jobs = jobs;
    config.eventsOverride = events;
    return config;
}

std::vector<std::string>
fingerprintsOf(const ServiceReport &report)
{
    std::vector<std::string> out;
    out.reserve(report.tenants.size());
    for (const TenantReport &tr : report.tenants)
        out.push_back(tr.fingerprint);
    return out;
}

// The load-bearing contract: at 1, 8 and 64 concurrent tenants,
// every tenant's result is byte-identical to a solo single-tenant
// run of the same spec and quota-derived limits.
TEST(MultiTenantTest, PerTenantDeterminismAtScale)
{
    for (const std::size_t tenants : {1u, 8u, 64u}) {
        const ServiceConfig config = seedConfig(tenants, 64, 0);
        EXPECT_EQ(verifyServiceDeterminism(config), "")
            << "at " << tenants << " tenants";
    }
}

// Solo equivalence must hold for every shipped selector, not just
// the ones a small seed range happens to draw.
TEST(MultiTenantTest, EverySelectorMatchesItsSoloRun)
{
    ServiceConfig config;
    for (std::size_t i = 0; i < std::size(allSelectors); ++i) {
        TenantSpec spec = TenantSpec::fromSeed(11);
        spec.name = "sel" + std::to_string(i);
        spec.algo = allSelectors[i];
        config.tenants.push_back(spec);
    }
    config.cacheKb = 32;
    config.eventsOverride = 4000;
    EXPECT_EQ(verifyServiceDeterminism(config), "");
}

// Worker count is pure scheduling: --jobs 1 and --jobs 8 must yield
// identical per-tenant fingerprints (and identical arena traffic).
TEST(MultiTenantTest, JobsParity)
{
    ServiceConfig serial = seedConfig(12, 48, 1);
    ServiceConfig pooled = seedConfig(12, 48, 8);
    const ServiceReport a = runService(serial);
    const ServiceReport b = runService(pooled);
    EXPECT_EQ(fingerprintsOf(a), fingerprintsOf(b));
    EXPECT_EQ(a.arena.admissions, b.arena.admissions);
    EXPECT_EQ(a.arena.releases, b.arena.releases);
    EXPECT_EQ(a.arena.highWaterBytes, b.arena.highWaterBytes);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
}

// The shard count is a physical layout knob: 1, 4 and 64 shards
// must produce identical tenant results and identical accounting
// (only the contention counter may differ).
TEST(MultiTenantTest, ShardCountInvariance)
{
    std::vector<std::vector<std::string>> fingerprints;
    std::vector<ArenaStats> arenas;
    for (const std::size_t shards : {1u, 4u, 64u}) {
        ServiceConfig config = seedConfig(8, 48, 0);
        config.shards = shards;
        const ServiceReport report = runService(config);
        EXPECT_EQ(report.arena.shardCount, shards);
        fingerprints.push_back(fingerprintsOf(report));
        arenas.push_back(report.arena);
    }
    for (std::size_t i = 1; i < fingerprints.size(); ++i) {
        EXPECT_EQ(fingerprints[0], fingerprints[i]);
        EXPECT_EQ(arenas[0].admissions, arenas[i].admissions);
        EXPECT_EQ(arenas[0].releases, arenas[i].releases);
        EXPECT_EQ(arenas[0].highWaterBytes, arenas[i].highWaterBytes);
    }
}

// Physical accounting must mirror the logical caches exactly, with
// the three release kinds disjoint: capacity evictions and policy
// flushes sum to the logical eviction counter, invalidations match
// the recovery counter, and residual bytes match final occupancy.
TEST(MultiTenantTest, EvictionVsInvalidationDisjointAccounting)
{
    ServiceConfig config = seedConfig(8, 8, 0, 6000);
    // Arm invalidation-heavy fault plans on half the tenants so
    // both release kinds fire in the same run.
    for (std::size_t i = 0; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::parse("f1,inval=60,seed=5");
    const ServiceReport report = runService(config);

    std::uint64_t evictionsSeen = 0;
    std::uint64_t invalidationsSeen = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.cache.evictionReleases + tr.cache.flushReleases,
                  tr.result.cacheEvictions)
            << tr.name;
        EXPECT_EQ(tr.cache.invalidationReleases,
                  tr.result.recovery.regionsInvalidated)
            << tr.name;
        EXPECT_EQ(tr.cache.liveBytes, tr.result.cacheLiveBytes)
            << tr.name;
        // Every admission leaves exactly once or is still live.
        EXPECT_GE(tr.cache.admissions,
                  tr.cache.evictionReleases +
                      tr.cache.invalidationReleases +
                      tr.cache.flushReleases)
            << tr.name;
        evictionsSeen += tr.cache.evictionReleases;
        invalidationsSeen += tr.cache.invalidationReleases;
    }
    // The run must actually exercise both kinds, or the
    // disjointness above is vacuous.
    EXPECT_GT(evictionsSeen + invalidationsSeen, 0u);
    EXPECT_GT(invalidationsSeen, 0u);
}

// The memory-order audit's witness (ISSUE 8): after the arena's
// atomics were pinned to the weakest orders their role tags permit
// (counters/gauges relaxed, flags and the publication count
// release/acquire — see support/sync.hpp), the disjoint-accounting
// identities must still close under the stress trio's conditions:
// a single shard (maximum cross-tenant contention on one mutex),
// a pooled scheduler, and invalidation-heavy fault plans, so every
// relaxed counter is hammered from eight workers while being
// snapshotted. A wrong relaxation shows up here (and in the tsan
// preset, which runs this test) as a broken identity.
TEST(MultiTenantTest, DisjointAccountingUnderContention)
{
    ServiceConfig config = seedConfig(16, 1, 8, 4000);
    config.shards = 1;
    // inval is per 100k block events; the squeezed 64-byte quotas
    // leave the caches nearly empty, so most ticks find nothing to
    // invalidate — a high rate keeps the identities non-vacuous.
    for (std::size_t i = 0; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::parse("f1,inval=2500,seed=5");
    const ServiceReport report = runService(config);

    std::uint64_t admissions = 0, releases = 0, live = 0;
    std::uint64_t invalidationsSeen = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.cache.evictionReleases + tr.cache.flushReleases,
                  tr.result.cacheEvictions)
            << tr.name;
        EXPECT_EQ(tr.cache.invalidationReleases,
                  tr.result.recovery.regionsInvalidated)
            << tr.name;
        EXPECT_EQ(tr.cache.liveBytes, tr.result.cacheLiveBytes)
            << tr.name;
        const std::uint64_t released =
            tr.cache.evictionReleases +
            tr.cache.invalidationReleases + tr.cache.flushReleases;
        // Every admission leaves exactly once or is still live —
        // and a tenant with no residual bytes has released all.
        EXPECT_GE(tr.cache.admissions, released) << tr.name;
        if (tr.cache.liveBytes == 0)
            EXPECT_EQ(tr.cache.admissions, released) << tr.name;
        admissions += tr.cache.admissions;
        releases += released;
        live += tr.cache.liveBytes;
        invalidationsSeen += tr.cache.invalidationReleases;
    }
    // Global identities: the arena's own counters (relaxed
    // throughout) fold to the per-tenant sums, and global occupancy
    // is exactly the tenants' residual live bytes.
    EXPECT_EQ(report.arena.admissions, admissions);
    EXPECT_EQ(report.arena.releases, releases);
    EXPECT_EQ(report.arena.liveBytes, live);
    EXPECT_EQ(report.arena.shardCount, 1u);
    // Both release kinds must fire, or the identities are vacuous.
    EXPECT_GT(invalidationsSeen, 0u);
    EXPECT_GT(releases, 0u);
}

// Per-tenant conservation (the oracle identity of each SimResult)
// and global conservation: counters summed across tenants equal the
// mergeResults() fold, including RecoveryStats.
TEST(MultiTenantTest, ConservationPerTenantAndGlobally)
{
    ServiceConfig config = seedConfig(6, 32, 0, 5000);
    for (std::size_t i = 1; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::fromSeed(40 + i);
    const ServiceReport report = runService(config);

    std::vector<SimResult> parts;
    std::uint64_t events = 0, totalInsts = 0, cachedInsts = 0;
    std::uint64_t faults = 0, invalidated = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.result.conservationError(), "") << tr.name;
        parts.push_back(tr.result);
        events += tr.result.events;
        totalInsts += tr.result.totalInsts;
        cachedInsts += tr.result.cachedInsts;
        faults += tr.result.recovery.faultsInjected;
        invalidated += tr.result.recovery.regionsInvalidated;
    }
    const SimResult merged = mergeResults(parts);
    EXPECT_EQ(merged.events, events);
    EXPECT_EQ(merged.totalInsts, totalInsts);
    EXPECT_EQ(merged.cachedInsts, cachedInsts);
    EXPECT_EQ(merged.recovery.faultsInjected, faults);
    EXPECT_EQ(merged.recovery.regionsInvalidated, invalidated);
    // The service's own aggregates are the same fold.
    EXPECT_EQ(report.totalEvents, events);
    EXPECT_EQ(report.totalInsts, totalInsts);
    EXPECT_EQ(report.cachedInsts, cachedInsts);
}

// Teardown expresses through the disruption machinery and retires
// the tenant id for good: no physical entry survives, and the dead
// id can never admit again, so nothing can resurrect into a
// later tenant.
TEST(MultiTenantTest, TeardownNeverResurrects)
{
    ArenaConfig cfg;
    cfg.shardCount = 4;
    ShardedCodeCache arena(cfg);

    const TenantId early = arena.registerTenant();
    // Seed 1 reliably selects regions within this budget (seeds
    // whose selector thresholds never trip would make the test
    // vacuous).
    TenantSpec spec = TenantSpec::fromSeed(1);
    std::string fpEarly;
    {
        TenantSession session(early, spec, CacheLimits{}, arena,
                              20000);
        while (session.runSlice(512)) {
        }
        const SimResult result = session.finish();
        EXPECT_GT(result.regionCount, 0u);
        EXPECT_GT(arena.liveEntryCount(early), 0u);
        fpEarly = testing::resultFingerprint(result);
        session.teardown();
    }
    EXPECT_EQ(arena.liveEntryCount(early), 0u);
    EXPECT_EQ(arena.tenantStats(early).liveBytes, 0u);
    // A dead id is rejected loudly, not silently readmitted.
    EXPECT_THROW(arena.admit(early, 0x100, 10), PanicError);

    // Ids are never reused: a fresh tenant gets a fresh id and a
    // clean account even though it runs the same guest program.
    const TenantId fresh = arena.registerTenant();
    EXPECT_NE(fresh, early);
    TenantSession session(fresh, spec, CacheLimits{}, arena, 20000);
    while (session.runSlice(512)) {
    }
    EXPECT_EQ(arena.tenantStats(fresh).evictionReleases, 0u);
    const SimResult rerun = session.finish();
    // The rerun is a pure function of the spec: identical to the
    // torn-down tenant's run, untouched by the teardown history.
    EXPECT_EQ(testing::resultFingerprint(rerun), fpEarly);
    session.teardown();
    EXPECT_EQ(arena.stats().liveBytes, 0u);
}

// Aborting a tenant mid-flight (requestStop) must still tear down
// to zero residue even though the session never finished.
TEST(MultiTenantTest, AbortedSessionLeavesNoResidue)
{
    ArenaConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    ShardedCodeCache arena(cfg);
    const TenantId id = arena.registerTenant();
    TenantSession session(id, TenantSpec::fromSeed(5),
                          arena.tenantLimits(1), arena, 100000);
    session.runSlice(512);
    session.runSlice(512);
    session.requestStop();
    EXPECT_FALSE(session.runSlice(512));
    EXPECT_TRUE(session.done());
    session.teardown();
    EXPECT_EQ(arena.liveEntryCount(id), 0u);
    EXPECT_EQ(arena.stats().liveBytes, 0u);
}

// The quota partition: equal shares, floored, at least one byte;
// unbounded arenas grant unbounded tenants.
TEST(MultiTenantTest, QuotaPartitioning)
{
    ArenaConfig bounded;
    bounded.capacityBytes = 64 * 1024;
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 16).capacityBytes,
              4096u);
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 3).capacityBytes,
              21845u);
    // More tenants than bytes: the floor is one byte, not zero
    // (zero would mean "unbounded" and break the global bound).
    ArenaConfig tiny;
    tiny.capacityBytes = 10;
    EXPECT_EQ(ShardedCodeCache::limitsFor(tiny, 100).capacityBytes,
              1u);
    ArenaConfig unbounded;
    EXPECT_EQ(
        ShardedCodeCache::limitsFor(unbounded, 16).capacityBytes,
        0u);
    // The policy and stub model ride along into tenant limits.
    bounded.policy = CacheLimits::Policy::Fifo;
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 2).policy,
              CacheLimits::Policy::Fifo);
}

// The TenantSpec codec round-trips, including nested fault plans,
// and the spec-file loader reports bad lines by number.
TEST(MultiTenantTest, TenantSpecCodecRoundTrip)
{
    TenantSpec spec = TenantSpec::fromSeed(9);
    spec.faults = resilience::FaultPlan::fromSeed(9);
    const TenantSpec reparsed = TenantSpec::parse(spec.toString());
    EXPECT_EQ(reparsed, spec);
    EXPECT_THROW(TenantSpec::parse("name=x"), FatalError);
    EXPECT_THROW(TenantSpec::parse("alg=BOGUS|spec=v1"), FatalError);

    std::istringstream good("# comment\n\n" + spec.toString() + "\n");
    EXPECT_EQ(loadTenantSpecs(good).size(), 1u);
    std::istringstream bad("# fine\nnot-a-spec\n");
    try {
        loadTenantSpecs(bad);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
    std::istringstream empty("# nothing\n");
    EXPECT_THROW(loadTenantSpecs(empty), FatalError);
}

// ---------------------------------------------------------------
// Service-level chaos and overload (ISSUE 9).

/** A config with one chaos plan armed and the health machine on,
 *  mirroring what rselect-serve does when chaos is in play. */
ServiceConfig
chaosConfig(std::size_t tenants, const std::string &plan,
            std::size_t jobs, std::uint64_t events = 20000)
{
    ServiceConfig config = seedConfig(tenants, 32, jobs, events);
    config.chaos = ChaosPlan::parse(plan);
    config.overload.healthEnabled = true;
    return config;
}

/**
 * Like seedConfig, but drawn only from seeds whose guests run well
 * past 20k events. Seed-derived guests can halt after a handful of
 * events (seed 3 halts at 4), and a halted tenant is legitimately
 * untouchable by chaos — tests asserting "every tenant got hit"
 * need guests that actually live long enough to be hit.
 */
ServiceConfig
longGuestConfig(std::size_t tenants, std::uint64_t cacheKb,
                std::size_t jobs, std::uint64_t events)
{
    static const std::uint64_t longSeeds[] = {1, 4, 7, 8, 9, 11,
                                              12, 13, 14, 15, 16};
    ServiceConfig config;
    config.tenants.reserve(tenants);
    for (std::size_t i = 0; i < tenants; ++i)
        config.tenants.push_back(TenantSpec::fromSeed(
            longSeeds[i % std::size(longSeeds)]));
    config.cacheKb = cacheKb;
    config.jobs = jobs;
    config.eventsOverride = events;
    return config;
}

// The chaos-plan codec round-trips, fromSeed is deterministic, and
// malformed plans are loud usage errors.
TEST(ServiceChaosTest, ChaosPlanCodecRoundTrip)
{
    const ChaosPlan derived = ChaosPlan::fromSeed(17);
    EXPECT_TRUE(derived.armed());
    EXPECT_EQ(ChaosPlan::parse(derived.toString()), derived);
    EXPECT_EQ(ChaosPlan::fromSeed(17), derived);
    EXPECT_NE(ChaosPlan::fromSeed(18), derived);

    const ChaosPlan fixed =
        ChaosPlan::parse("c1,crash=300,quar=200,seed=9");
    EXPECT_EQ(fixed.crashPermille, 300u);
    EXPECT_EQ(fixed.quarPermille, 200u);
    EXPECT_EQ(fixed.seed, 9u);
    EXPECT_TRUE(fixed.armed());
    EXPECT_FALSE(ChaosPlan{}.armed());

    EXPECT_THROW(ChaosPlan::parse("x9,crash=300"), FatalError);
    EXPECT_THROW(ChaosPlan::parse("c1,bogus=3"), FatalError);
    EXPECT_THROW(ChaosPlan::parse("c1,crash"), FatalError);
    EXPECT_THROW(ChaosPlan::parse("c1,crash=many"), FatalError);
}

// scheduleFor is a pure function of (plan, tenant index): the same
// plan yields the same per-tenant schedule on every call, abort and
// crash never coincide, and slice indices respect the window.
TEST(ServiceChaosTest, SchedulesAreDeterministicAndWellFormed)
{
    const ChaosPlan plan = ChaosPlan::parse(
        "c1,abort=300,crash=300,quar=400,sqdiv=4,window=12,seed=3");
    bool sawAbort = false, sawCrash = false, sawQuar = false;
    for (std::size_t i = 0; i < 64; ++i) {
        const ChaosSchedule a = plan.scheduleFor(i);
        const ChaosSchedule b = plan.scheduleFor(i);
        EXPECT_EQ(a.abort, b.abort);
        EXPECT_EQ(a.crashSlice, b.crashSlice);
        EXPECT_EQ(a.quarShardSalt, b.quarShardSalt);
        EXPECT_FALSE(a.abort && a.crash);
        EXPECT_TRUE(a.squeeze); // sqdiv applies to every tenant
        EXPECT_EQ(a.squeezeFactor, 4u);
        if (a.abort) {
            sawAbort = true;
            EXPECT_GE(a.abortSlice, 1u);
            EXPECT_LE(a.abortSlice, 12u);
        }
        if (a.crash)
            sawCrash = true;
        if (a.quarantine) {
            sawQuar = true;
            EXPECT_GE(a.quarSlice, 1u);
            EXPECT_LE(a.quarSlice, 12u);
        }
    }
    // At these permilles all three fates must occur across 64
    // tenants, or the fate die is broken.
    EXPECT_TRUE(sawAbort && sawCrash && sawQuar);
    // A disarmed plan schedules nothing.
    EXPECT_FALSE(ChaosPlan{}.scheduleFor(0).any());
}

// The jobs-parity half of the chaos contract: under every plan
// kind, serial and 8-worker runs produce byte-identical per-tenant
// fingerprints and identical chaos accounting.
TEST(ServiceChaosTest, JobsParityUnderEveryPlanKind)
{
    const char *plans[] = {
        "c1,abort=400,window=6",          // aborts only
        "c1,crash=500,window=6",          // crash + warm restart
        "c1,quar=600,quarlen=4,window=6", // shard quarantine
        "c1,sqdiv=4,sqat=2,sqlen=4",      // memory squeeze
        "c1,abort=200,crash=300,quar=400,sqdiv=3,window=8", // mixed
    };
    for (const char *plan : plans) {
        ServiceConfig serial = chaosConfig(10, plan, 1);
        ServiceConfig pooled = chaosConfig(10, plan, 8);
        const ServiceReport a = runService(serial);
        const ServiceReport b = runService(pooled);
        EXPECT_EQ(fingerprintsOf(a), fingerprintsOf(b)) << plan;
        EXPECT_EQ(a.chaos.aborts, b.chaos.aborts) << plan;
        EXPECT_EQ(a.chaos.restarts, b.chaos.restarts) << plan;
        EXPECT_EQ(a.chaos.squeezes, b.chaos.squeezes) << plan;
        EXPECT_EQ(a.chaos.quarantines, b.chaos.quarantines) << plan;
        EXPECT_EQ(a.totalEvents, b.totalEvents) << plan;
        EXPECT_EQ(a.arena.admissions, b.arena.admissions) << plan;
        // And the full chaos oracle holds at both worker counts.
        EXPECT_EQ(verifyServiceChaos(serial), "") << plan;
        EXPECT_EQ(verifyServiceChaos(pooled), "") << plan;
    }
}

// The warm-restart oracle, asserted directly: a crash-everything
// plan restarts every tenant once, and each restarted tenant's
// fingerprint equals a fresh solo run fast-forwarded to its replay
// position.
TEST(ServiceChaosTest, RestartMatchesFreshSoloFromReplayPosition)
{
    ServiceConfig config = longGuestConfig(6, 32, 0, 20000);
    config.chaos = ChaosPlan::parse("c1,crash=1000,window=3");
    config.overload.healthEnabled = true;
    // Small slices put the crash (at slice <= 3) well before any
    // guest's natural halt, so every tenant restarts mid-run.
    config.sliceEvents = 512;
    const ServiceReport report = runService(config);
    EXPECT_EQ(report.chaos.restarts, 6u);
    for (std::size_t i = 0; i < config.tenants.size(); ++i) {
        const TenantReport &tr = report.tenants[i];
        ASSERT_EQ(tr.chaos.restarts, 1u) << tr.name;
        EXPECT_GT(tr.chaos.restartFromEvent, 0u) << tr.name;
        const SimResult fresh = soloTenantRun(
            config.tenants[i],
            tenantLimitsFor(config, config.tenants[i]),
            config.eventsOverride, tr.chaos.restartFromEvent);
        EXPECT_EQ(tr.fingerprint,
                  testing::resultFingerprint(fresh))
            << tr.name;
        // The replay events never reach the restarted system: its
        // event count is the remainder of the budget (or less, if
        // the guest halts before the budget).
        EXPECT_LE(tr.result.events + tr.chaos.restartFromEvent,
                  config.eventsOverride)
            << tr.name;
        EXPECT_GT(tr.result.events, 0u) << tr.name;
    }
}

// The isolation half of the oracle: tenants the plan leaves alone
// must match the plain chaos-free solo run bit-for-bit even while
// neighbours abort, crash and quarantine shards around them.
TEST(ServiceChaosTest, UntouchedTenantsMatchChaosFreeSolo)
{
    ServiceConfig config =
        chaosConfig(12, "c1,abort=300,crash=300,quar=400,window=5",
                    8);
    const ServiceReport report = runService(config);
    // At these rates some tenants are hit and some are spared; both
    // populations must be non-empty for the assertions to bite.
    std::size_t untouched = 0, touched = 0;
    for (std::size_t i = 0; i < config.tenants.size(); ++i) {
        const TenantReport &tr = report.tenants[i];
        if (tr.aborted || tr.chaos.restarts != 0) {
            ++touched;
            continue;
        }
        ++untouched;
        const SimResult solo = soloTenantRun(
            config.tenants[i],
            tenantLimitsFor(config, config.tenants[i]),
            config.eventsOverride);
        EXPECT_EQ(tr.fingerprint, testing::resultFingerprint(solo))
            << tr.name;
    }
    EXPECT_GT(touched, 0u);
    EXPECT_GT(untouched, 0u);
}

// Aborted tenants leave zero residue, are flagged, and the global
// arena identity (admissions == releases + live entries) still
// closes around them.
TEST(ServiceChaosTest, AbortAccountingAndResidue)
{
    ServiceConfig config = longGuestConfig(8, 32, 0, 20000);
    config.chaos = ChaosPlan::parse("c1,abort=1000,window=3");
    config.overload.healthEnabled = true;
    config.sliceEvents = 512;
    const ServiceReport report = runService(config);
    EXPECT_EQ(report.chaos.aborts, 8u);
    for (const TenantReport &tr : report.tenants) {
        EXPECT_TRUE(tr.aborted) << tr.name;
        EXPECT_TRUE(tr.fingerprint.empty()) << tr.name;
        EXPECT_EQ(tr.cache.liveBytes, 0u) << tr.name;
        EXPECT_EQ(tr.cache.liveEntries, 0u) << tr.name;
        EXPECT_EQ(tr.cache.admissions,
                  tr.cache.evictionReleases +
                      tr.cache.invalidationReleases +
                      tr.cache.flushReleases)
            << tr.name;
    }
    EXPECT_EQ(report.arena.admissions,
              report.arena.releases + report.arena.liveEntries);
    EXPECT_EQ(report.totalEvents, 0u);
}

// The slice accounting identity under bounded admission and
// shedding: scheduled == shed + completed + blacklisted for every
// tenant, and the bounded scheduler is jobs-invariant.
TEST(ServiceChaosTest, BoundedAdmissionShedsDeterministically)
{
    for (const std::size_t jobs : {1u, 8u}) {
        ServiceConfig config = seedConfig(10, 32, jobs, 20000);
        config.overload.maxInflight = 3;
        config.overload.healthEnabled = true;
        const ServiceReport report = runService(config);
        std::uint64_t shed = 0;
        for (const TenantReport &tr : report.tenants) {
            EXPECT_EQ(tr.chaos.scheduledSlices,
                      tr.chaos.shedSlices +
                          tr.chaos.completedSlices +
                          tr.chaos.blacklistedSlices)
                << tr.name;
            shed += tr.chaos.shedSlices;
        }
        // With 10 pending tenants and 3 grants per round, the
        // denied majority must actually be shed.
        EXPECT_GT(shed, 0u);
        EXPECT_EQ(verifyServiceChaos(config), "");
    }
}

// Slice budgets force the terminal graceful state: the tenant is
// degraded to interpretation, drains its full event budget (no
// events are lost — transparency holds), ends BLACKLISTED, and the
// whole trajectory replays solo.
TEST(ServiceChaosTest, SliceBudgetDegradesToInterpretation)
{
    // 8000 events is safely under these guests' natural halts, so
    // a full drain must deliver exactly the budget.
    ServiceConfig config = longGuestConfig(4, 32, 0, 8000);
    config.sliceEvents = 1024;
    config.overload.sliceBudget = 4;
    config.overload.healthEnabled = true;
    const ServiceReport report = runService(config);
    for (const TenantReport &tr : report.tenants) {
        EXPECT_TRUE(tr.chaos.budgetExhausted) << tr.name;
        EXPECT_EQ(tr.health, TenantHealth::Blacklisted) << tr.name;
        EXPECT_GT(tr.chaos.blacklistedSlices, 0u) << tr.name;
        EXPECT_EQ(tr.result.events, 8000u) << tr.name;
    }
    EXPECT_EQ(report.chaos.blacklistedTenants, 4u);
    EXPECT_EQ(verifyServiceChaos(config), "");
}

// The health state machine, walked directly: escalation ladder,
// one-level recovery, absorbing blacklist, restart reset.
TEST(ServiceChaosTest, HealthMachineTrajectory)
{
    OverloadConfig cfg;
    cfg.healthEnabled = true;
    cfg.degradePressure = 1;
    cfg.shedAfter = 2;
    cfg.blacklistAfter = 4;
    TenantHealthMachine m(cfg);
    EXPECT_EQ(m.state(), TenantHealth::Healthy);
    EXPECT_EQ(m.observe(1), TenantHealth::Degraded);
    EXPECT_EQ(m.observe(3), TenantHealth::Shed);
    // A clean slice steps down one level, not straight to healthy.
    EXPECT_EQ(m.observe(0), TenantHealth::Degraded);
    EXPECT_EQ(m.observe(0), TenantHealth::Healthy);
    // The streak restarts after recovery: four pressured slices
    // walk all the way to the terminal state.
    EXPECT_EQ(m.observe(1), TenantHealth::Degraded);
    EXPECT_EQ(m.observe(1), TenantHealth::Shed);
    EXPECT_EQ(m.observe(1), TenantHealth::Shed);
    EXPECT_EQ(m.observe(1), TenantHealth::Blacklisted);
    // Absorbing: clean slices do not resurrect a blacklisted
    // tenant.
    EXPECT_EQ(m.observe(0), TenantHealth::Blacklisted);
    m.reset();
    EXPECT_EQ(m.state(), TenantHealth::Healthy);
    EXPECT_STREQ(healthName(TenantHealth::Shed), "SHED");
}

// Shard quarantine at the arena level: admissions to a quarantined
// shard park (counted, invisible to residency sweeps only at lift),
// nest by depth, and merge back losslessly at the lift.
TEST(ServiceChaosTest, QuarantineParksAndLifts)
{
    ArenaConfig cfg;
    cfg.shardCount = 1; // everything lands on the one shard
    ShardedCodeCache arena(cfg);
    const TenantId id = arena.registerTenant();

    arena.quarantineShard(0);
    arena.quarantineShard(0); // nested: two lifts required
    arena.admit(id, 0x100, 64);
    arena.admit(id, 0x200, 32);
    EXPECT_EQ(arena.stats().quarantines, 2u);
    EXPECT_EQ(arena.stats().quarantinedAdmissions, 2u);
    // Parked entries still count toward residency and the
    // accounting identity — the quarantine is purely physical.
    EXPECT_EQ(arena.stats().liveBytes, 96u);
    EXPECT_EQ(arena.liveEntryCount(id), 2u);

    arena.liftShardQuarantine(0);
    // Still quarantined at depth 1: new admissions keep parking.
    arena.admit(id, 0x300, 16);
    EXPECT_EQ(arena.stats().quarantinedAdmissions, 3u);
    arena.liftShardQuarantine(0);

    // Fully lifted: releases find the merged entries, and the
    // identity closes to zero.
    arena.release(id, 0x100, 64, ReleaseReason::Eviction);
    arena.release(id, 0x200, 32, ReleaseReason::Flush);
    arena.release(id, 0x300, 16, ReleaseReason::Invalidation);
    EXPECT_EQ(arena.stats().liveBytes, 0u);
    EXPECT_EQ(arena.stats().admissions,
              arena.stats().releases + arena.stats().liveEntries);
    arena.releaseAll(id);
    arena.unregisterTenant(id);
}

// A release may arrive while the entry is still parked (a squeeze
// or invalidation during the quarantine window): it must find the
// parked entry, not panic.
TEST(ServiceChaosTest, ReleaseDuringQuarantineFindsParkedEntry)
{
    ArenaConfig cfg;
    cfg.shardCount = 1;
    ShardedCodeCache arena(cfg);
    const TenantId id = arena.registerTenant();
    arena.quarantineShard(0);
    arena.admit(id, 0x500, 40);
    arena.release(id, 0x500, 40, ReleaseReason::Eviction);
    EXPECT_EQ(arena.stats().liveBytes, 0u);
    arena.liftShardQuarantine(0);
    EXPECT_EQ(arena.stats().admissions,
              arena.stats().releases + arena.stats().liveEntries);
    arena.unregisterTenant(id);
}

// The squeeze path end-to-end: squeezes fire, drive evictions
// through the existing limitsFor() partition, restore afterwards,
// and the whole trajectory replays through the solo chaos leg.
TEST(ServiceChaosTest, SqueezeDrivesEvictionsAndReplays)
{
    // A tight 2 KiB arena (341 B/tenant) squeezed 8x (42 B/tenant):
    // the squeezed quota is below a single region, so the window
    // must visibly evict.
    ServiceConfig config = longGuestConfig(6, 2, 0, 20000);
    config.chaos = ChaosPlan::parse("c1,sqdiv=8,sqat=1,sqlen=6");
    config.overload.healthEnabled = true;
    config.sliceEvents = 1024;
    const ServiceReport squeezed = runService(config);
    EXPECT_EQ(squeezed.chaos.squeezes, 6u);

    ServiceConfig plain = longGuestConfig(6, 2, 0, 20000);
    plain.sliceEvents = 1024;
    const ServiceReport baseline = runService(plain);
    std::uint64_t squeezedReleases = 0, baselineReleases = 0;
    for (std::size_t i = 0; i < 6; ++i) {
        squeezedReleases +=
            squeezed.tenants[i].cache.evictionReleases +
            squeezed.tenants[i].cache.flushReleases;
        baselineReleases +=
            baseline.tenants[i].cache.evictionReleases +
            baseline.tenants[i].cache.flushReleases;
    }
    // An 8x quota squeeze must actually evict more than the
    // unsqueezed baseline, or the fault injected nothing.
    EXPECT_GT(squeezedReleases, baselineReleases);
    EXPECT_EQ(verifyServiceChaos(config), "");
}

// squeezedCapacityFor: bounded arenas partition as if the tenant
// population were `factor` times larger; unbounded arenas shrink
// the tenant's own bound; fully unbounded tenants are a no-op.
TEST(ServiceChaosTest, SqueezedCapacityDerivation)
{
    ServiceConfig config = seedConfig(4, 64, 0);
    const TenantSpec &spec = config.tenants[0];
    const std::uint64_t quota =
        tenantLimitsFor(config, spec).capacityBytes;
    EXPECT_EQ(squeezedCapacityFor(config, spec, 1), quota);
    EXPECT_EQ(squeezedCapacityFor(config, spec, 4), quota / 4);

    ServiceConfig unbounded = seedConfig(4, 0, 0);
    TenantSpec own = unbounded.tenants[0];
    own.program.cacheKb = 8;
    EXPECT_EQ(squeezedCapacityFor(unbounded, own, 4), 2048u);
    own.program.cacheKb = 0; // fully unbounded: squeeze is a no-op
    EXPECT_EQ(squeezedCapacityFor(unbounded, own, 4), 0u);
}

} // namespace
} // namespace service
} // namespace rsel
