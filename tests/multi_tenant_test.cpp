/**
 * @file
 * Multi-tenant selection-service tests: the determinism contract
 * (every tenant's fingerprint byte-identical to a solo run at any
 * concurrency, shard count and scheduling), cross-tenant accounting
 * disjointness, per-tenant and global conservation, and the
 * no-resurrection guarantee of tenant teardown.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/sim_result.hpp"
#include "service/selection_service.hpp"
#include "service/tenant_session.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"

namespace rsel {
namespace service {
namespace {

/** A seed-derived tenant set: selectors cycle through all seven. */
ServiceConfig
seedConfig(std::size_t tenants, std::uint64_t cacheKb,
           std::size_t jobs, std::uint64_t events = 3000)
{
    ServiceConfig config;
    config.tenants.reserve(tenants);
    for (std::size_t i = 0; i < tenants; ++i)
        config.tenants.push_back(TenantSpec::fromSeed(1 + i));
    config.cacheKb = cacheKb;
    config.jobs = jobs;
    config.eventsOverride = events;
    return config;
}

std::vector<std::string>
fingerprintsOf(const ServiceReport &report)
{
    std::vector<std::string> out;
    out.reserve(report.tenants.size());
    for (const TenantReport &tr : report.tenants)
        out.push_back(tr.fingerprint);
    return out;
}

// The load-bearing contract: at 1, 8 and 64 concurrent tenants,
// every tenant's result is byte-identical to a solo single-tenant
// run of the same spec and quota-derived limits.
TEST(MultiTenantTest, PerTenantDeterminismAtScale)
{
    for (const std::size_t tenants : {1u, 8u, 64u}) {
        const ServiceConfig config = seedConfig(tenants, 64, 0);
        EXPECT_EQ(verifyServiceDeterminism(config), "")
            << "at " << tenants << " tenants";
    }
}

// Solo equivalence must hold for every shipped selector, not just
// the ones a small seed range happens to draw.
TEST(MultiTenantTest, EverySelectorMatchesItsSoloRun)
{
    ServiceConfig config;
    for (std::size_t i = 0; i < std::size(allSelectors); ++i) {
        TenantSpec spec = TenantSpec::fromSeed(11);
        spec.name = "sel" + std::to_string(i);
        spec.algo = allSelectors[i];
        config.tenants.push_back(spec);
    }
    config.cacheKb = 32;
    config.eventsOverride = 4000;
    EXPECT_EQ(verifyServiceDeterminism(config), "");
}

// Worker count is pure scheduling: --jobs 1 and --jobs 8 must yield
// identical per-tenant fingerprints (and identical arena traffic).
TEST(MultiTenantTest, JobsParity)
{
    ServiceConfig serial = seedConfig(12, 48, 1);
    ServiceConfig pooled = seedConfig(12, 48, 8);
    const ServiceReport a = runService(serial);
    const ServiceReport b = runService(pooled);
    EXPECT_EQ(fingerprintsOf(a), fingerprintsOf(b));
    EXPECT_EQ(a.arena.admissions, b.arena.admissions);
    EXPECT_EQ(a.arena.releases, b.arena.releases);
    EXPECT_EQ(a.arena.highWaterBytes, b.arena.highWaterBytes);
    EXPECT_EQ(a.totalEvents, b.totalEvents);
}

// The shard count is a physical layout knob: 1, 4 and 64 shards
// must produce identical tenant results and identical accounting
// (only the contention counter may differ).
TEST(MultiTenantTest, ShardCountInvariance)
{
    std::vector<std::vector<std::string>> fingerprints;
    std::vector<ArenaStats> arenas;
    for (const std::size_t shards : {1u, 4u, 64u}) {
        ServiceConfig config = seedConfig(8, 48, 0);
        config.shards = shards;
        const ServiceReport report = runService(config);
        EXPECT_EQ(report.arena.shardCount, shards);
        fingerprints.push_back(fingerprintsOf(report));
        arenas.push_back(report.arena);
    }
    for (std::size_t i = 1; i < fingerprints.size(); ++i) {
        EXPECT_EQ(fingerprints[0], fingerprints[i]);
        EXPECT_EQ(arenas[0].admissions, arenas[i].admissions);
        EXPECT_EQ(arenas[0].releases, arenas[i].releases);
        EXPECT_EQ(arenas[0].highWaterBytes, arenas[i].highWaterBytes);
    }
}

// Physical accounting must mirror the logical caches exactly, with
// the three release kinds disjoint: capacity evictions and policy
// flushes sum to the logical eviction counter, invalidations match
// the recovery counter, and residual bytes match final occupancy.
TEST(MultiTenantTest, EvictionVsInvalidationDisjointAccounting)
{
    ServiceConfig config = seedConfig(8, 8, 0, 6000);
    // Arm invalidation-heavy fault plans on half the tenants so
    // both release kinds fire in the same run.
    for (std::size_t i = 0; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::parse("f1,inval=60,seed=5");
    const ServiceReport report = runService(config);

    std::uint64_t evictionsSeen = 0;
    std::uint64_t invalidationsSeen = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.cache.evictionReleases + tr.cache.flushReleases,
                  tr.result.cacheEvictions)
            << tr.name;
        EXPECT_EQ(tr.cache.invalidationReleases,
                  tr.result.recovery.regionsInvalidated)
            << tr.name;
        EXPECT_EQ(tr.cache.liveBytes, tr.result.cacheLiveBytes)
            << tr.name;
        // Every admission leaves exactly once or is still live.
        EXPECT_GE(tr.cache.admissions,
                  tr.cache.evictionReleases +
                      tr.cache.invalidationReleases +
                      tr.cache.flushReleases)
            << tr.name;
        evictionsSeen += tr.cache.evictionReleases;
        invalidationsSeen += tr.cache.invalidationReleases;
    }
    // The run must actually exercise both kinds, or the
    // disjointness above is vacuous.
    EXPECT_GT(evictionsSeen + invalidationsSeen, 0u);
    EXPECT_GT(invalidationsSeen, 0u);
}

// The memory-order audit's witness (ISSUE 8): after the arena's
// atomics were pinned to the weakest orders their role tags permit
// (counters/gauges relaxed, flags and the publication count
// release/acquire — see support/sync.hpp), the disjoint-accounting
// identities must still close under the stress trio's conditions:
// a single shard (maximum cross-tenant contention on one mutex),
// a pooled scheduler, and invalidation-heavy fault plans, so every
// relaxed counter is hammered from eight workers while being
// snapshotted. A wrong relaxation shows up here (and in the tsan
// preset, which runs this test) as a broken identity.
TEST(MultiTenantTest, DisjointAccountingUnderContention)
{
    ServiceConfig config = seedConfig(16, 1, 8, 4000);
    config.shards = 1;
    // inval is per 100k block events; the squeezed 64-byte quotas
    // leave the caches nearly empty, so most ticks find nothing to
    // invalidate — a high rate keeps the identities non-vacuous.
    for (std::size_t i = 0; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::parse("f1,inval=2500,seed=5");
    const ServiceReport report = runService(config);

    std::uint64_t admissions = 0, releases = 0, live = 0;
    std::uint64_t invalidationsSeen = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.cache.evictionReleases + tr.cache.flushReleases,
                  tr.result.cacheEvictions)
            << tr.name;
        EXPECT_EQ(tr.cache.invalidationReleases,
                  tr.result.recovery.regionsInvalidated)
            << tr.name;
        EXPECT_EQ(tr.cache.liveBytes, tr.result.cacheLiveBytes)
            << tr.name;
        const std::uint64_t released =
            tr.cache.evictionReleases +
            tr.cache.invalidationReleases + tr.cache.flushReleases;
        // Every admission leaves exactly once or is still live —
        // and a tenant with no residual bytes has released all.
        EXPECT_GE(tr.cache.admissions, released) << tr.name;
        if (tr.cache.liveBytes == 0)
            EXPECT_EQ(tr.cache.admissions, released) << tr.name;
        admissions += tr.cache.admissions;
        releases += released;
        live += tr.cache.liveBytes;
        invalidationsSeen += tr.cache.invalidationReleases;
    }
    // Global identities: the arena's own counters (relaxed
    // throughout) fold to the per-tenant sums, and global occupancy
    // is exactly the tenants' residual live bytes.
    EXPECT_EQ(report.arena.admissions, admissions);
    EXPECT_EQ(report.arena.releases, releases);
    EXPECT_EQ(report.arena.liveBytes, live);
    EXPECT_EQ(report.arena.shardCount, 1u);
    // Both release kinds must fire, or the identities are vacuous.
    EXPECT_GT(invalidationsSeen, 0u);
    EXPECT_GT(releases, 0u);
}

// Per-tenant conservation (the oracle identity of each SimResult)
// and global conservation: counters summed across tenants equal the
// mergeResults() fold, including RecoveryStats.
TEST(MultiTenantTest, ConservationPerTenantAndGlobally)
{
    ServiceConfig config = seedConfig(6, 32, 0, 5000);
    for (std::size_t i = 1; i < config.tenants.size(); i += 2)
        config.tenants[i].faults =
            resilience::FaultPlan::fromSeed(40 + i);
    const ServiceReport report = runService(config);

    std::vector<SimResult> parts;
    std::uint64_t events = 0, totalInsts = 0, cachedInsts = 0;
    std::uint64_t faults = 0, invalidated = 0;
    for (const TenantReport &tr : report.tenants) {
        EXPECT_EQ(tr.result.conservationError(), "") << tr.name;
        parts.push_back(tr.result);
        events += tr.result.events;
        totalInsts += tr.result.totalInsts;
        cachedInsts += tr.result.cachedInsts;
        faults += tr.result.recovery.faultsInjected;
        invalidated += tr.result.recovery.regionsInvalidated;
    }
    const SimResult merged = mergeResults(parts);
    EXPECT_EQ(merged.events, events);
    EXPECT_EQ(merged.totalInsts, totalInsts);
    EXPECT_EQ(merged.cachedInsts, cachedInsts);
    EXPECT_EQ(merged.recovery.faultsInjected, faults);
    EXPECT_EQ(merged.recovery.regionsInvalidated, invalidated);
    // The service's own aggregates are the same fold.
    EXPECT_EQ(report.totalEvents, events);
    EXPECT_EQ(report.totalInsts, totalInsts);
    EXPECT_EQ(report.cachedInsts, cachedInsts);
}

// Teardown expresses through the disruption machinery and retires
// the tenant id for good: no physical entry survives, and the dead
// id can never admit again, so nothing can resurrect into a
// later tenant.
TEST(MultiTenantTest, TeardownNeverResurrects)
{
    ArenaConfig cfg;
    cfg.shardCount = 4;
    ShardedCodeCache arena(cfg);

    const TenantId early = arena.registerTenant();
    // Seed 1 reliably selects regions within this budget (seeds
    // whose selector thresholds never trip would make the test
    // vacuous).
    TenantSpec spec = TenantSpec::fromSeed(1);
    std::string fpEarly;
    {
        TenantSession session(early, spec, CacheLimits{}, arena,
                              20000);
        while (session.runSlice(512)) {
        }
        const SimResult result = session.finish();
        EXPECT_GT(result.regionCount, 0u);
        EXPECT_GT(arena.liveEntryCount(early), 0u);
        fpEarly = testing::resultFingerprint(result);
        session.teardown();
    }
    EXPECT_EQ(arena.liveEntryCount(early), 0u);
    EXPECT_EQ(arena.tenantStats(early).liveBytes, 0u);
    // A dead id is rejected loudly, not silently readmitted.
    EXPECT_THROW(arena.admit(early, 0x100, 10), PanicError);

    // Ids are never reused: a fresh tenant gets a fresh id and a
    // clean account even though it runs the same guest program.
    const TenantId fresh = arena.registerTenant();
    EXPECT_NE(fresh, early);
    TenantSession session(fresh, spec, CacheLimits{}, arena, 20000);
    while (session.runSlice(512)) {
    }
    EXPECT_EQ(arena.tenantStats(fresh).evictionReleases, 0u);
    const SimResult rerun = session.finish();
    // The rerun is a pure function of the spec: identical to the
    // torn-down tenant's run, untouched by the teardown history.
    EXPECT_EQ(testing::resultFingerprint(rerun), fpEarly);
    session.teardown();
    EXPECT_EQ(arena.stats().liveBytes, 0u);
}

// Aborting a tenant mid-flight (requestStop) must still tear down
// to zero residue even though the session never finished.
TEST(MultiTenantTest, AbortedSessionLeavesNoResidue)
{
    ArenaConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    ShardedCodeCache arena(cfg);
    const TenantId id = arena.registerTenant();
    TenantSession session(id, TenantSpec::fromSeed(5),
                          arena.tenantLimits(1), arena, 100000);
    session.runSlice(512);
    session.runSlice(512);
    session.requestStop();
    EXPECT_FALSE(session.runSlice(512));
    EXPECT_TRUE(session.done());
    session.teardown();
    EXPECT_EQ(arena.liveEntryCount(id), 0u);
    EXPECT_EQ(arena.stats().liveBytes, 0u);
}

// The quota partition: equal shares, floored, at least one byte;
// unbounded arenas grant unbounded tenants.
TEST(MultiTenantTest, QuotaPartitioning)
{
    ArenaConfig bounded;
    bounded.capacityBytes = 64 * 1024;
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 16).capacityBytes,
              4096u);
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 3).capacityBytes,
              21845u);
    // More tenants than bytes: the floor is one byte, not zero
    // (zero would mean "unbounded" and break the global bound).
    ArenaConfig tiny;
    tiny.capacityBytes = 10;
    EXPECT_EQ(ShardedCodeCache::limitsFor(tiny, 100).capacityBytes,
              1u);
    ArenaConfig unbounded;
    EXPECT_EQ(
        ShardedCodeCache::limitsFor(unbounded, 16).capacityBytes,
        0u);
    // The policy and stub model ride along into tenant limits.
    bounded.policy = CacheLimits::Policy::Fifo;
    EXPECT_EQ(ShardedCodeCache::limitsFor(bounded, 2).policy,
              CacheLimits::Policy::Fifo);
}

// The TenantSpec codec round-trips, including nested fault plans,
// and the spec-file loader reports bad lines by number.
TEST(MultiTenantTest, TenantSpecCodecRoundTrip)
{
    TenantSpec spec = TenantSpec::fromSeed(9);
    spec.faults = resilience::FaultPlan::fromSeed(9);
    const TenantSpec reparsed = TenantSpec::parse(spec.toString());
    EXPECT_EQ(reparsed, spec);
    EXPECT_THROW(TenantSpec::parse("name=x"), FatalError);
    EXPECT_THROW(TenantSpec::parse("alg=BOGUS|spec=v1"), FatalError);

    std::istringstream good("# comment\n\n" + spec.toString() + "\n");
    EXPECT_EQ(loadTenantSpecs(good).size(), 1u);
    std::istringstream bad("# fine\nnot-a-spec\n");
    try {
        loadTenantSpecs(bad);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
    std::istringstream empty("# nothing\n");
    EXPECT_THROW(loadTenantSpecs(empty), FatalError);
}

} // namespace
} // namespace service
} // namespace rsel
