/**
 * @file
 * Unit tests for the support layer: RNG, tables, CLI, statistics.
 */

#include <gtest/gtest.h>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace rsel {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(RngTest, NextRangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        sawLo |= v == 3;
        sawHi |= v == 5;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(RngTest, NextBoolRespectsProbability)
{
    Rng rng(11);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NextBoolDegenerateProbabilities)
{
    Rng rng(1);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_FALSE(rng.nextBool(-1.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    EXPECT_TRUE(rng.nextBool(2.0));
}

TEST(RngTest, WeightedPickFollowsWeights)
{
    Rng rng(5);
    std::vector<double> weights = {1.0, 3.0, 0.0};
    int counts[3] = {0, 0, 0};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextWeighted(weights)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedPickRejectsAllZero)
{
    Rng rng(5);
    std::vector<double> weights = {0.0, 0.0};
    EXPECT_THROW(rng.nextWeighted(weights), PanicError);
}

TEST(TableTest, RendersHeaderRowsAndSummary)
{
    Table t("My figure", {"bench", "value"});
    t.addRow({"gzip", "1.00"});
    t.addRow({"gcc", "0.80"});
    t.addSummaryRow({"average", "0.90"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("My figure"), std::string::npos);
    EXPECT_NE(s.find("bench"), std::string::npos);
    EXPECT_NE(s.find("gzip"), std::string::npos);
    EXPECT_NE(s.find("average"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, RejectsMismatchedRowWidth)
{
    Table t("x", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TableTest, FormatHelpers)
{
    EXPECT_EQ(formatDouble(1.2345, 2), "1.23");
    EXPECT_EQ(formatPercent(0.915, 1), "91.5%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(CliTest, ParsesValueForms)
{
    CliOptions cli;
    cli.define("events", "100", "event budget");
    cli.define("seed", "1", "rng seed");
    cli.define("verbose", "false", "chatty output");
    const char *argv[] = {"prog", "--events", "500", "--seed=9",
                          "--verbose"};
    cli.parse(5, argv);
    EXPECT_EQ(cli.getUint("events"), 500u);
    EXPECT_EQ(cli.getInt("seed"), 9);
    EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(CliTest, DefaultsApplyWhenAbsent)
{
    CliOptions cli;
    cli.define("alpha", "0.5", "a ratio");
    const char *argv[] = {"prog"};
    cli.parse(1, argv);
    EXPECT_DOUBLE_EQ(cli.getDouble("alpha"), 0.5);
}

TEST(CliTest, UnknownOptionIsFatal)
{
    CliOptions cli;
    cli.define("known", "1", "known option");
    const char *argv[] = {"prog", "--unknown", "3"};
    EXPECT_THROW(cli.parse(3, argv), FatalError);
}

TEST(CliTest, HelpAndPositional)
{
    CliOptions cli;
    cli.define("x", "1", "x");
    const char *argv[] = {"prog", "pos1", "--help", "pos2"};
    cli.parse(4, argv);
    EXPECT_TRUE(cli.helpRequested());
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "pos1");
    EXPECT_NE(cli.usage("prog").find("--x"), std::string::npos);
}

TEST(StatsTest, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_THROW(geomean({0.0}), PanicError);
}

TEST(StatsTest, MinMaxRatio)
{
    EXPECT_DOUBLE_EQ(minOf({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxOf({3.0, 1.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(ratio(6.0, 0.0, 42.0), 42.0);
}

} // namespace
} // namespace rsel
