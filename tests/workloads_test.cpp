/**
 * @file
 * Tests for the synthetic SPEC-like workload suite: registry,
 * determinism, executability, and per-workload character.
 */

#include <gtest/gtest.h>

#include "program/executor.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

TEST(WorkloadRegistryTest, SuiteHasTwelveNamedWorkloads)
{
    const auto &suite = workloadSuite();
    ASSERT_EQ(suite.size(), 12u);
    const char *expected[] = {"gzip", "vpr",     "gcc",  "mcf",
                              "crafty", "parser", "eon",  "perlbmk",
                              "gap",  "vortex",  "bzip2", "twolf"};
    for (std::size_t i = 0; i < suite.size(); ++i) {
        EXPECT_EQ(suite[i].name, expected[i]);
        EXPECT_FALSE(suite[i].description.empty());
        EXPECT_NE(suite[i].build, nullptr);
        EXPECT_GT(suite[i].defaultEvents, 100'000u);
    }
}

TEST(WorkloadRegistryTest, FindByName)
{
    EXPECT_NE(findWorkload("gcc"), nullptr);
    EXPECT_EQ(findWorkload("gcc")->name, "gcc");
    EXPECT_EQ(findWorkload("notabench"), nullptr);
    EXPECT_EQ(workloadNames().size(), 12u);
}

/** Counting sink for executability checks. */
class CountSink : public ExecutionSink
{
  public:
    bool
    onEvent(const ExecEvent &ev) override
    {
        ++events;
        takenBranches += ev.takenBranch ? 1 : 0;
        return true;
    }
    std::uint64_t events = 0;
    std::uint64_t takenBranches = 0;
};

class WorkloadSuiteTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(WorkloadSuiteTest, BuildsDeterministically)
{
    const WorkloadInfo *info = findWorkload(GetParam());
    ASSERT_NE(info, nullptr);
    Program a = info->build(42);
    Program b = info->build(42);
    ASSERT_EQ(a.blocks().size(), b.blocks().size());
    for (std::size_t i = 0; i < a.blocks().size(); ++i) {
        EXPECT_EQ(a.blocks()[i].startAddr(), b.blocks()[i].startAddr());
        EXPECT_EQ(a.blocks()[i].sizeBytes(), b.blocks()[i].sizeBytes());
        EXPECT_EQ(a.blocks()[i].terminator(), b.blocks()[i].terminator());
    }
    EXPECT_EQ(a.functions().size(), b.functions().size());
}

TEST_P(WorkloadSuiteTest, EntryIsMain)
{
    const WorkloadInfo *info = findWorkload(GetParam());
    Program p = info->build(42);
    const BasicBlock &entry = p.block(p.entry());
    EXPECT_EQ(p.function(entry.func()).name, "main");
}

TEST_P(WorkloadSuiteTest, RunsWithoutHalting)
{
    const WorkloadInfo *info = findWorkload(GetParam());
    Program p = info->build(42);
    Executor exec(p, 7);
    CountSink sink;
    const std::uint64_t n = exec.run(50'000, sink);
    // Workloads loop forever; the budget must be the limiter.
    EXPECT_EQ(n, 50'000u);
    EXPECT_FALSE(exec.finished());
    // A realistic taken-branch density (the paper's systems act on
    // taken branches): between 15% and 85% of block transitions —
    // the top end is call/return-heavy OO code (eon).
    const double takenRatio =
        static_cast<double>(sink.takenBranches) / sink.events;
    EXPECT_GT(takenRatio, 0.15) << GetParam();
    EXPECT_LT(takenRatio, 0.85) << GetParam();
}

TEST_P(WorkloadSuiteTest, ExecutionIsSeedDeterministic)
{
    const WorkloadInfo *info = findWorkload(GetParam());
    Program p = info->build(42);

    class FirstBlocks : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &ev) override
        {
            ids.push_back(ev.block->id());
            return true;
        }
        std::vector<BlockId> ids;
    };

    Executor e1(p, 99), e2(p, 99), e3(p, 100);
    FirstBlocks s1, s2, s3;
    e1.run(20'000, s1);
    e2.run(20'000, s2);
    e3.run(20'000, s3);
    EXPECT_EQ(s1.ids, s2.ids);
    EXPECT_NE(s1.ids, s3.ids); // different seed diverges
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuiteTest,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(WorkloadCharacterTest, GccHasTheLargestStaticFootprint)
{
    // gcc models "many important procedures": it must dwarf the
    // loop-dominated workloads statically.
    Program gcc = buildGcc(42);
    Program gzip = buildGzip(42);
    Program mcf = buildMcf(42);
    EXPECT_GT(gcc.blocks().size(), 3 * gzip.blocks().size());
    EXPECT_GT(gcc.blocks().size(), 3 * mcf.blocks().size());
    EXPECT_GT(gcc.functions().size(), 30u);
}

TEST(WorkloadCharacterTest, EonHasSharedTinyCallees)
{
    // The constructor functions must be tiny (single return block)
    // and called from many sites.
    Program eon = buildEon(42);
    int tinyFuncs = 0;
    for (const Function &f : eon.functions()) {
        if (f.lastBlock - f.firstBlock == 1 &&
            eon.block(f.entry).terminator() == BranchKind::Return) {
            ++tinyFuncs;
        }
    }
    EXPECT_GE(tinyFuncs, 3);

    // Count static call sites targeting those tiny callees.
    int sitesToTiny = 0;
    for (const BasicBlock &b : eon.blocks()) {
        if (b.terminator() != BranchKind::Call)
            continue;
        const BasicBlock *target = eon.blockAtAddr(b.takenTarget());
        ASSERT_NE(target, nullptr);
        const Function &f = eon.function(target->func());
        if (f.lastBlock - f.firstBlock == 1)
            ++sitesToTiny;
    }
    EXPECT_GE(sitesToTiny, 8);
}

TEST(WorkloadCharacterTest, PhasedWorkloadsDeclareSchedules)
{
    EXPECT_FALSE(buildVpr(42).phaseLengths().empty());
    EXPECT_FALSE(buildGcc(42).phaseLengths().empty());
    EXPECT_FALSE(buildVortex(42).phaseLengths().empty());
    EXPECT_TRUE(buildGzip(42).phaseLengths().empty());
}

} // namespace
} // namespace rsel
