/**
 * @file
 * Degenerate-shape battery for the interprocedural layer: the call
 * graph (SCC condensation, bottom-up order), the summary fixpoint
 * (closure convergence and transitivity) and the
 * inlining-opportunity analyzer, each on the smallest program that
 * exhibits the shape — single function, self-recursion, a
 * mutual-recursion ring, a call inside a loop body, an unreachable
 * callee, and a deep call chain.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analysis_manager.hpp"
#include "analysis/inline_opportunity.hpp"
#include "analysis/inter_facts.hpp"
#include "program/program_builder.hpp"

namespace rsel {
namespace analysis {
namespace {

/** Position of `f` in the bottom-up order. */
std::size_t
bottomUpPos(const CallGraph &cg, FuncId f)
{
    const auto it =
        std::find(cg.bottomUp.begin(), cg.bottomUp.end(), f);
    EXPECT_NE(it, cg.bottomUp.end());
    return static_cast<std::size_t>(it - cg.bottomUp.begin());
}

TEST(CallGraphTest, SingleFunctionNoCalls)
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(2);
    const BlockId b = pb.block(1);
    pb.halt(b);
    pb.setEntry(a);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    ASSERT_EQ(inf.summaries.size(), 1u);
    EXPECT_TRUE(cg.sites.empty());
    EXPECT_EQ(cg.entryFunc, 0u);
    EXPECT_TRUE(cg.callReachable(0));
    EXPECT_FALSE(inf.summaries[0].recursive);
    EXPECT_TRUE(inf.summaries[0].leaf);
    EXPECT_EQ(inf.summaries[0].blockCount, 2u);
    EXPECT_EQ(inf.summaries[0].insts, 3u);
    EXPECT_EQ(inf.summaries[0].closureFuncs, 1u);
    EXPECT_EQ(inf.summaries[0].closureInsts, 3u);
    EXPECT_EQ(cg.bottomUp, std::vector<FuncId>{0});
    EXPECT_TRUE(inf.converged);
}

TEST(CallGraphTest, SelfRecursionIsACycleOfOne)
{
    ProgramBuilder pb;
    const FuncId rec = pb.beginFunction("rec");
    const BlockId r0 = pb.block(2);
    const BlockId r1 = pb.block(1);
    pb.callTo(r0, rec);
    pb.ret(r1);
    pb.beginFunction("main");
    const BlockId m0 = pb.block(2);
    const BlockId m1 = pb.block(1);
    pb.callTo(m0, rec);
    pb.halt(m1);
    pb.setEntry(m0);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    ASSERT_EQ(inf.summaries.size(), 2u);
    EXPECT_TRUE(inf.summaries[rec].recursive);
    EXPECT_FALSE(inf.summaries[1].recursive);
    // The self-loop is an SCC that cycles, with one member.
    EXPECT_NE(cg.cfg.sccId[rec], cg.cfg.sccId[1]);
    EXPECT_TRUE(cg.cfg.sccIsCycle[cg.cfg.sccId[rec]]);
    // The closure fixpoint converges despite the cycle and stays
    // finite: rec's closure is just rec.
    EXPECT_TRUE(inf.converged);
    EXPECT_EQ(inf.summaries[rec].closureFuncs, 1u);
    EXPECT_TRUE(inf.inClosure(rec, rec));
    EXPECT_EQ(inf.summaries[1].closureFuncs, 2u);
    // Callee before caller in the bottom-up order.
    EXPECT_LT(bottomUpPos(cg, rec), bottomUpPos(cg, 1));
}

TEST(CallGraphTest, MutualRecursionRingCondensesToOneScc)
{
    ProgramBuilder pb;
    const FuncId fa = pb.beginFunction("a");
    const BlockId a0 = pb.block(2);
    const BlockId a1 = pb.block(1);
    const FuncId fb = pb.beginFunction("b");
    const BlockId b0 = pb.block(2);
    const BlockId b1 = pb.block(1);
    const FuncId fc = pb.beginFunction("c");
    const BlockId c0 = pb.block(2);
    const BlockId c1 = pb.block(1);
    const FuncId fm = pb.beginFunction("main");
    const BlockId m0 = pb.block(2);
    const BlockId m1 = pb.block(1);
    pb.callTo(a0, fb);
    pb.ret(a1);
    pb.callTo(b0, fc);
    pb.ret(b1);
    pb.callTo(c0, fa);
    pb.ret(c1);
    pb.callTo(m0, fa);
    pb.halt(m1);
    pb.setEntry(m0);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    // One cyclic SCC holding the whole ring; main stays outside.
    EXPECT_EQ(cg.cfg.sccId[fa], cg.cfg.sccId[fb]);
    EXPECT_EQ(cg.cfg.sccId[fb], cg.cfg.sccId[fc]);
    EXPECT_NE(cg.cfg.sccId[fm], cg.cfg.sccId[fa]);
    EXPECT_TRUE(cg.cfg.sccIsCycle[cg.cfg.sccId[fa]]);
    for (const FuncId f : {fa, fb, fc})
        EXPECT_TRUE(inf.summaries[f].recursive);
    EXPECT_FALSE(inf.summaries[fm].recursive);

    // The genuine fixpoint: every ring member's closure is the
    // whole ring, and the ring precedes main bottom-up, its
    // members adjacent.
    EXPECT_TRUE(inf.converged);
    for (const FuncId f : {fa, fb, fc}) {
        EXPECT_EQ(inf.summaries[f].closureFuncs, 3u);
        EXPECT_TRUE(inf.inClosure(f, fa));
        EXPECT_TRUE(inf.inClosure(f, fb));
        EXPECT_TRUE(inf.inClosure(f, fc));
        EXPECT_FALSE(inf.inClosure(f, fm));
    }
    EXPECT_EQ(inf.summaries[fm].closureFuncs, 4u);
    const std::size_t pa = bottomUpPos(cg, fa);
    const std::size_t pc = bottomUpPos(cg, fc);
    const std::size_t lo = std::min(pa, pc);
    const std::size_t hi = std::max(pa, pc);
    EXPECT_EQ(hi - lo, 2u); // three members, adjacent
    EXPECT_LT(hi, bottomUpPos(cg, fm));
}

TEST(CallGraphTest, CallInsideLoopBodyIsAHotOpportunity)
{
    ProgramBuilder pb;
    const FuncId leaf = pb.beginFunction("leaf");
    const BlockId l0 = pb.block(3);
    pb.ret(l0);
    pb.beginFunction("main");
    const BlockId head = pb.block(2);
    const BlockId body = pb.block(2);
    const BlockId land = pb.block(1);
    const BlockId done = pb.block(1);
    pb.callTo(body, leaf);
    pb.loopTo(land, head, 10, 10);
    pb.halt(done);
    pb.setEntry(head);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    ASSERT_EQ(cg.sites.size(), 1u);
    EXPECT_EQ(cg.sites[0].block, body);
    EXPECT_EQ(cg.sites[0].loopDepth, 1u);
    EXPECT_EQ(cg.sites[0].returnBlock, land);

    const OpportunityReport opp = analyzeInlineOpportunities(inf);
    ASSERT_EQ(opp.ranked.size(), 1u);
    EXPECT_TRUE(opp.ranked[0].hotLoop);
    EXPECT_TRUE(opp.ranked[0].smallLeafCallee);
    EXPECT_TRUE(opp.ranked[0].singleCallSite);
    EXPECT_TRUE(opp.ranked[0].returnRejoins);
    EXPECT_EQ(opp.ranked[0].dupGrowthBoundInsts,
              inf.summaries[leaf].insts);
    EXPECT_EQ(opp.hotLoopSites, 1u);
}

TEST(CallGraphTest, UnreachableCalleeIsNotCallReachable)
{
    ProgramBuilder pb;
    const FuncId called = pb.beginFunction("called");
    const BlockId c0 = pb.block(1);
    pb.ret(c0);
    const FuncId orphan = pb.beginFunction("orphan");
    const BlockId o0 = pb.block(1);
    pb.halt(o0);
    pb.beginFunction("main");
    const BlockId m0 = pb.block(2);
    const BlockId m1 = pb.block(1);
    pb.callTo(m0, called);
    pb.halt(m1);
    pb.setEntry(m0);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    EXPECT_TRUE(cg.callReachable(called));
    EXPECT_TRUE(cg.callReachable(cg.entryFunc));
    EXPECT_FALSE(cg.callReachable(orphan));
    // The orphan still gets a summary and a (trivial) closure: the
    // facts are total over FuncIds, reachable or not.
    EXPECT_EQ(inf.summaries[orphan].closureFuncs, 1u);
}

TEST(CallGraphTest, DeepCallChainOrdersCalleesFirst)
{
    constexpr std::uint32_t depth = 20;
    ProgramBuilder pb;
    std::vector<FuncId> funcs;
    std::vector<BlockId> first, second;
    for (std::uint32_t i = 0; i < depth; ++i) {
        funcs.push_back(
            pb.beginFunction("f" + std::to_string(i)));
        first.push_back(pb.block(1));
        second.push_back(pb.block(1));
    }
    for (std::uint32_t i = 0; i < depth; ++i) {
        if (i + 1 < depth)
            pb.callTo(first[i], funcs[i + 1]);
        if (i == 0)
            pb.halt(second[i]);
        else
            pb.ret(second[i]);
    }
    pb.setEntry(first[0]);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &inf = mgr.interFacts(prog);
    const CallGraph &cg = inf.callGraph;

    ASSERT_EQ(inf.summaries.size(), depth);
    EXPECT_TRUE(inf.converged);
    // Acyclic: no SCC cycles, nothing recursive.
    for (std::uint32_t i = 0; i < depth; ++i)
        EXPECT_FALSE(inf.summaries[i].recursive);
    // Strictly decreasing bottom-up positions along the chain.
    for (std::uint32_t i = 0; i + 1 < depth; ++i)
        EXPECT_LT(bottomUpPos(cg, funcs[i + 1]),
                  bottomUpPos(cg, funcs[i]));
    // Closure transitivity down the whole chain, and the closure
    // mass telescopes: f_i reaches depth - i functions.
    for (std::uint32_t i = 0; i < depth; ++i) {
        EXPECT_EQ(inf.summaries[funcs[i]].closureFuncs, depth - i);
        EXPECT_TRUE(inf.inClosure(funcs[i], funcs[depth - 1]));
        if (i > 0) {
            EXPECT_FALSE(inf.inClosure(funcs[i], funcs[0]));
        }
    }
    EXPECT_EQ(inf.summaries[funcs[0]].closureInsts, 2u * depth);
}

TEST(CallGraphTest, InterFactsAreCachedByTheManager)
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(2);
    const BlockId b = pb.block(1);
    pb.halt(b);
    pb.setEntry(a);
    const Program prog = pb.build();

    AnalysisManager mgr;
    const InterFacts &first = mgr.interFacts(prog);
    const InterFacts &again = mgr.interFacts(prog);
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(mgr.cacheStats().interMisses, 1u);
    EXPECT_EQ(mgr.cacheStats().interHits, 1u);
}

} // namespace
} // namespace analysis
} // namespace rsel
