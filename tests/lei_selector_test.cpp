/**
 * @file
 * Unit tests for LEI selection, pinned to the paper's Figures 5
 * and 6: cycle detection through the history buffer, eligibility,
 * trace formation, and the Figure 2 / Figure 3 scenario behaviours.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

SimResult
runScenario(const Program &p, Algorithm algo, std::uint64_t events,
            LeiConfig lei = {})
{
    SimOptions opts;
    opts.maxEvents = events;
    opts.seed = 9;
    opts.lei = lei;
    return simulate(p, algo, opts);
}

TEST(LeiSelectorTest, Figure2SpansInterproceduralCycle)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    SimResult r = runScenario(p, Algorithm::Lei, 120'000);

    // LEI selects a single trace spanning the whole six-block
    // interprocedural cycle. It enters at E rather than A — the
    // backward call makes E's cycle counter fire one branch earlier
    // each iteration — i.e. a rotation of the paper's A B D E F L.
    ASSERT_EQ(r.regionCount, 1u);
    EXPECT_EQ(r.regions[0].entryAddr, p.block(Ids::e).startAddr());
    EXPECT_EQ(r.regions[0].blockCount, 6u);
    EXPECT_TRUE(r.regions[0].spansCycle);
    // Repeated iterations stay in the trace: no region transitions,
    // and nearly every region execution ends by the cycle branch.
    EXPECT_EQ(r.regionTransitions, 0u);
    EXPECT_GT(r.executedCycleRatio(), 0.99);
    EXPECT_GT(r.hitRate(), 0.99);
}

TEST(LeiSelectorTest, Figure2NeedsFewerStubsThanNet)
{
    Program p = buildInterproceduralCycle();
    SimResult lei = runScenario(p, Algorithm::Lei, 120'000);
    SimOptions opts;
    opts.maxEvents = 120'000;
    opts.seed = 9;
    SimResult net = simulate(p, Algorithm::Net, opts);

    // The paper: the split traces need two extra exit stubs.
    EXPECT_LT(lei.exitStubs, net.exitStubs);
    EXPECT_LT(lei.regionCount, net.regionCount);
}

TEST(LeiSelectorTest, Figure3AvoidsInnerLoopDuplication)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;
    SimResult r = runScenario(p, Algorithm::Lei, 150'000);

    // The paper's idealized narrative selects two traces (B; C A).
    // Under the literal Figure 5 semantics the outer head A is also
    // cycle-eligible from the first iteration (the backward branch
    // C->A closes a cycle), and its counter races ahead of C's
    // exit-based counter, so three single-block traces emerge: B,
    // then A (stopping at cached B on the fall-through path), then
    // C (stopping at cached A). The figure's substance holds
    // either way: no inner-loop duplication, fewer instructions
    // selected than NET.
    ASSERT_EQ(r.regionCount, 3u);
    EXPECT_EQ(r.regions[0].entryAddr, p.block(Ids::b).startAddr());
    EXPECT_EQ(r.regions[0].blockCount, 1u);
    EXPECT_TRUE(r.regions[0].spansCycle);
    // The key Figure 3 property: the inner loop is never duplicated
    // — B appears in exactly one region.
    EXPECT_EQ(r.regions[1].blockCount, 1u); // [A], stops at cached B
    EXPECT_LE(r.regions[2].blockCount, 2u); // [C] (+ the cold exit)
    EXPECT_LE(r.expansionInsts, 10u);
    // Fewer instructions than NET's 12 for the same program.
    SimOptions opts;
    opts.maxEvents = 150'000;
    opts.seed = 9;
    SimResult net = simulate(p, Algorithm::Net, opts);
    EXPECT_LT(r.expansionInsts, net.expansionInsts);
    EXPECT_LE(r.regionCount, net.regionCount);
}

TEST(LeiSelectorTest, ThresholdCountsCycleCompletions)
{
    // Tight self-loop; the cycle target completes a cycle on every
    // back edge, so with threshold T the trace appears after T
    // cycle completions (plus the two formation events).
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(1);
    const BlockId latch = b.block(1);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    LeiConfig cfg;
    cfg.hotThreshold = 8;
    DynOptSystem system(p);
    system.useLei(cfg);
    Executor exec(p, 1);
    // head is taken-entered at events 3,5,7,...; the first such
    // entry only inserts into the buffer; cycles complete from the
    // second taken entry (event 5). The 8th completion lands at
    // event 19, where the trace forms and is entered immediately.
    exec.run(18, system);
    EXPECT_EQ(system.cache().regionCount(), 0u);
    exec.run(1, system);
    EXPECT_EQ(system.cache().regionCount(), 1u);
    EXPECT_TRUE(system.cache().region(0).spansCycle());
    system.finish();
}

TEST(LeiSelectorTest, ForwardOnlyCyclesViaCacheExitStillEligible)
{
    // Figure 3's second trace C A: the cycle at C closes with the
    // forward transfer B->C, eligible only because the prior
    // occurrence of C was recorded as a code-cache exit.
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;
    SimResult r = runScenario(p, Algorithm::Lei, 150'000);
    bool sawC = false;
    for (const RegionStats &reg : r.regions)
        sawC |= reg.entryAddr == p.block(Ids::c).startAddr();
    // C's cycle closes with the forward transfer B->C; it can only
    // be selected because its prior occurrence was a cache exit.
    EXPECT_TRUE(sawC);
}

TEST(LeiSelectorTest, BufferTooSmallPreventsCycleDetection)
{
    // With a 2-entry buffer, the 3-taken-branch cycle of Figure 2
    // (D->E, F->L, L->A) cannot be held, so LEI selects nothing.
    Program p = buildInterproceduralCycle();
    LeiConfig cfg;
    cfg.bufferCapacity = 2;
    SimResult r = runScenario(p, Algorithm::Lei, 50'000, cfg);
    EXPECT_EQ(r.regionCount, 0u);
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.0);

    // A 3-entry buffer is exactly enough.
    cfg.bufferCapacity = 3;
    SimResult r3 = runScenario(p, Algorithm::Lei, 50'000, cfg);
    EXPECT_EQ(r3.regionCount, 1u);
}

TEST(LeiSelectorTest, SizeLimitBoundsTraces)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(8);
    for (int i = 0; i < 20; ++i)
        b.block(8);
    const BlockId latch = b.block(8);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    LeiConfig cfg;
    cfg.hotThreshold = 8;
    cfg.maxTraceInsts = 64;
    SimResult r = runScenario(p, Algorithm::Lei, 5'000, cfg);
    ASSERT_GE(r.regionCount, 1u);
    for (const RegionStats &reg : r.regions)
        EXPECT_LE(reg.instCount, 64u);
}

TEST(LeiSelectorTest, TinySizeLimitStillYieldsTheEntry)
{
    // A size limit smaller than the entry block must not break
    // trace formation: the entry alone is selected.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(9); // bigger than the limit
    const BlockId latch = b.block(2);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    LeiConfig cfg;
    cfg.hotThreshold = 5;
    cfg.maxTraceInsts = 4;
    SimResult r = runScenario(p, Algorithm::Lei, 2'000, cfg);
    ASSERT_GE(r.regionCount, 1u);
    EXPECT_EQ(r.regions[0].blockCount, 1u);
    EXPECT_EQ(r.regions[0].entryAddr, p.block(head).startAddr());
}

TEST(LeiSelectorTest, CountersRecycleAndStayBounded)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    SimResult r = runScenario(p, Algorithm::Lei, 150'000);
    // Only B and C ever satisfy the cycle conditions; each counter
    // is recycled when its trace forms.
    EXPECT_LE(r.maxLiveCounters, 2u);
    EXPECT_GE(r.maxLiveCounters, 1u);
}

TEST(LeiSelectorTest, FewerCountersThanNetOnLongCycles)
{
    // A long cycle (more taken branches than the buffer holds):
    // NET still profiles the loop head on every iteration, LEI
    // cannot (the head has left the buffer), so LEI needs fewer
    // counters — the paper's Figure 10 effect in miniature.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(2);
    // 24 tiny self-contained diamonds produce many taken branches
    // per iteration.
    std::vector<BlockId> splits;
    for (int i = 0; i < 24; ++i) {
        const BlockId split = b.block(1);
        const BlockId arm = b.block(1);
        const BlockId join = b.block(1);
        b.condTo(split, join, CondBehavior::bernoulli(0.5));
        (void)arm;
        splits.push_back(split);
    }
    const BlockId latch = b.block(1);
    b.jumpTo(latch, head);
    Program p = b.build();

    LeiConfig lcfg;
    lcfg.bufferCapacity = 8; // far smaller than the cycle
    SimOptions opts;
    opts.maxEvents = 30'000;
    opts.seed = 5;
    opts.lei = lcfg;
    SimResult lei = simulate(p, Algorithm::Lei, opts);
    SimResult net = simulate(p, Algorithm::Net, opts);
    EXPECT_LT(lei.maxLiveCounters, net.maxLiveCounters);
}

TEST(LeiSelectorTest, CombinedLeiCombinesObservedCycles)
{
    // probE = 0 keeps the rare side out of the observed window so
    // the combined region is exactly the five hot blocks.
    Program p = buildUnbiasedBranch(1, 0.5, 0.0);
    SimResult plain = runScenario(p, Algorithm::Lei, 200'000);
    SimResult comb = runScenario(p, Algorithm::LeiCombined, 200'000);

    ASSERT_GE(comb.regionCount, 1u);
    EXPECT_EQ(comb.regions[0].kind, Region::Kind::MultiPath);
    EXPECT_EQ(comb.regions[0].blockCount, 5u); // A B C D F
    EXPECT_LE(comb.regionCount, plain.regionCount);
    EXPECT_LT(comb.regionTransitions, plain.regionTransitions);
    EXPECT_GT(comb.executedCycleRatio(), 0.85);
    // Observed traces were stored compactly while profiling.
    EXPECT_GT(comb.peakObservedTraceBytes, 0u);
    EXPECT_EQ(plain.peakObservedTraceBytes, 0u);
}

TEST(LeiSelectorTest, NameReflectsMode)
{
    Program p = buildNestedLoops();
    DynOptSystem a(p);
    a.useLei();
    EXPECT_EQ(a.selector().name(), "LEI");
    DynOptSystem b2(p);
    LeiConfig cfg;
    cfg.combine = true;
    b2.useLei(cfg);
    EXPECT_EQ(b2.selector().name(), "LEI+comb");
}

} // namespace
} // namespace rsel
