/**
 * @file
 * Unit tests for ProgramBuilder: layout, validation, behaviours.
 */

#include <gtest/gtest.h>

#include "program/program_builder.hpp"
#include "support/error.hpp"

namespace rsel {
namespace {

TEST(ProgramBuilderTest, LayoutFollowsCreationOrder)
{
    ProgramBuilder b(1);
    b.beginFunction("first");
    const BlockId x = b.block(3);
    const BlockId y = b.block(2);
    b.jumpTo(y, x);
    b.beginFunction("second");
    const BlockId z = b.block(1);
    b.halt(z);

    Program p = b.build();
    EXPECT_LT(p.block(x).startAddr(), p.block(y).startAddr());
    EXPECT_LT(p.block(y).startAddr(), p.block(z).startAddr());
    // Function starts are 16-byte aligned.
    EXPECT_EQ(p.block(z).startAddr() % 16, 0u);
}

TEST(ProgramBuilderTest, CalleeFirstMakesCallBackward)
{
    ProgramBuilder b(1);
    const FuncId callee = b.beginFunction("callee");
    const BlockId r = b.block(2);
    b.ret(r);
    b.beginFunction("main");
    const BlockId site = b.block(2);
    b.callTo(site, callee);
    const BlockId after = b.block(1);
    b.halt(after);

    Program p = b.build();
    const BasicBlock &call = p.block(site);
    EXPECT_TRUE(call.isBackwardTransferTo(call.takenTarget()));
    EXPECT_EQ(call.takenTarget(), p.block(r).startAddr());
}

TEST(ProgramBuilderTest, EntryDefaultsToMain)
{
    ProgramBuilder b(1);
    b.beginFunction("helper");
    const BlockId h = b.block(1);
    b.ret(h);
    b.beginFunction("main");
    const BlockId m = b.block(1);
    b.halt(m);
    Program p = b.build();
    EXPECT_EQ(p.entry(), m);
}

TEST(ProgramBuilderTest, EntryDefaultsToFirstFunctionWithoutMain)
{
    ProgramBuilder b(1);
    b.beginFunction("alpha");
    const BlockId x = b.block(1);
    b.halt(x);
    Program p = b.build();
    EXPECT_EQ(p.entry(), x);
}

TEST(ProgramBuilderTest, FallThroughPastFunctionEndIsFatal)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    b.block(2); // terminator None, nothing follows
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProgramBuilderTest, CallAtFunctionEndIsFatal)
{
    ProgramBuilder b(1);
    const FuncId callee = b.beginFunction("callee");
    const BlockId r = b.block(1);
    b.ret(r);
    b.beginFunction("main");
    const BlockId site = b.block(1);
    b.callTo(site, callee); // nowhere to return to
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProgramBuilderTest, DoubleTerminatorIsFatal)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    const BlockId x = b.block(1);
    b.halt(x);
    EXPECT_THROW(b.ret(x), FatalError);
}

TEST(ProgramBuilderTest, BlocksRequireFunction)
{
    ProgramBuilder b(1);
    EXPECT_THROW(b.block(1), FatalError);
}

TEST(ProgramBuilderTest, EmptyFunctionIsFatal)
{
    ProgramBuilder b(1);
    b.beginFunction("empty");
    EXPECT_THROW(b.beginFunction("next"), FatalError);
}

TEST(ProgramBuilderTest, IndirectBehaviourValidation)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    const BlockId x = b.block(1);
    IndirectBehavior empty;
    EXPECT_THROW(b.indirectJump(x, empty), FatalError);

    IndirectBehavior mismatched;
    mismatched.targets = {x};
    mismatched.weightsByPhase = {{1.0, 2.0}};
    EXPECT_THROW(b.indirectJump(x, mismatched), FatalError);
}

TEST(ProgramBuilderTest, AddressMapAndFallThroughLookup)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    const BlockId x = b.block(2);
    const BlockId y = b.block(2);
    b.halt(y);
    Program p = b.build();

    EXPECT_EQ(p.blockAtAddr(p.block(x).startAddr())->id(), x);
    EXPECT_EQ(p.blockAtAddr(p.block(x).startAddr() + 1), nullptr);
    EXPECT_EQ(p.fallThroughOf(p.block(x))->id(), y);
    EXPECT_EQ(p.fallThroughOf(p.block(y)), nullptr); // halt
}

TEST(ProgramBuilderTest, StaticFootprintSums)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    const BlockId x = b.block(3);
    b.halt(x);
    Program p = b.build();
    EXPECT_EQ(p.staticInstCount(), 3u);
    EXPECT_EQ(p.staticByteSize(), p.block(x).sizeBytes());
}

TEST(ProgramBuilderTest, BuildTwiceIsFatal)
{
    ProgramBuilder b(1);
    b.beginFunction("f");
    const BlockId x = b.block(1);
    b.halt(x);
    (void)b.build();
    EXPECT_THROW(b.build(), FatalError);
}

TEST(ProgramBuilderTest, InstructionSizesAreRealistic)
{
    ProgramBuilder b(99);
    b.beginFunction("f");
    const BlockId x = b.block(200);
    b.halt(x);
    Program p = b.build();
    double total = 0;
    for (const Instruction &i : p.block(x).instructions()) {
        EXPECT_GE(i.sizeBytes, 2);
        EXPECT_LE(i.sizeBytes, 6);
        total += i.sizeBytes;
    }
    // Mean should sit between 3 and 4 bytes (the paper's range).
    EXPECT_GT(total / 200.0, 3.0);
    EXPECT_LT(total / 200.0, 5.0);
}

} // namespace
} // namespace rsel
