/**
 * @file
 * Unit tests for the metrics layer: cover sets, ratios, and the
 * Section 4.1 exit-domination analysis.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "metrics/metrics_collector.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

SimResult
makeResultWithExecutions(std::vector<std::uint64_t> perRegion,
                         std::uint64_t interpreted)
{
    SimResult r;
    for (std::size_t i = 0; i < perRegion.size(); ++i) {
        RegionStats stats;
        stats.id = static_cast<RegionId>(i);
        stats.executedInsts = perRegion[i];
        r.regions.push_back(stats);
        r.cachedInsts += perRegion[i];
    }
    r.interpretedInsts = interpreted;
    r.totalInsts = r.cachedInsts + interpreted;
    r.regionCount = perRegion.size();
    return r;
}

TEST(CoverSetTest, PicksSmallestSet)
{
    // 100 total executed; regions cover 50, 30, 15; interpreter 5.
    SimResult r = makeResultWithExecutions({50, 30, 15}, 5);
    EXPECT_EQ(r.coverSet(0.50), 1u);
    EXPECT_EQ(r.coverSet(0.80), 2u);
    EXPECT_EQ(r.coverSet(0.90), 3u); // 50+30=80 < 90, need 3rd
    EXPECT_EQ(r.coverSet(0.95), 3u);
}

TEST(CoverSetTest, OrderIndependent)
{
    SimResult a = makeResultWithExecutions({15, 50, 30}, 5);
    SimResult b = makeResultWithExecutions({50, 30, 15}, 5);
    EXPECT_EQ(a.coverSet(0.90), b.coverSet(0.90));
}

TEST(CoverSetTest, SaturationWhenRegionsCannotCover)
{
    SimResult r = makeResultWithExecutions({10, 10}, 80);
    EXPECT_EQ(r.coverSet(0.90), 2u); // all regions, still short
}

TEST(SimResultTest, RatioHelpers)
{
    SimResult r;
    r.totalInsts = 200;
    r.cachedInsts = 150;
    r.interpretedInsts = 50;
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.75);

    r.regionCount = 4;
    r.spanningRegions = 1;
    EXPECT_DOUBLE_EQ(r.spannedCycleRatio(), 0.25);

    r.regionExecutions = 10;
    r.cycleTerminations = 4;
    EXPECT_DOUBLE_EQ(r.executedCycleRatio(), 0.4);

    r.expansionInsts = 100;
    EXPECT_DOUBLE_EQ(r.avgRegionInsts(), 25.0);
    r.exitDominatedRegions = 1;
    EXPECT_DOUBLE_EQ(r.exitDominatedRegionRatio(), 0.25);
    r.exitDominatedDupInsts = 7;
    EXPECT_DOUBLE_EQ(r.exitDominatedDupRatio(), 0.07);

    r.estimatedCacheBytes = 1000;
    r.peakObservedTraceBytes = 60;
    EXPECT_DOUBLE_EQ(r.observedMemoryRatio(), 0.06);
}

TEST(SimResultTest, DegenerateDenominators)
{
    SimResult r;
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.0);
    EXPECT_DOUBLE_EQ(r.spannedCycleRatio(), 0.0);
    EXPECT_DOUBLE_EQ(r.executedCycleRatio(), 0.0);
    EXPECT_DOUBLE_EQ(r.avgRegionInsts(), 0.0);
    EXPECT_DOUBLE_EQ(r.observedMemoryRatio(), 0.0);
}

TEST(ExitDominationTest, Figure2TracesAreExitDominated)
{
    // NET on the interprocedural cycle: trace 2 (E F L) begins at
    // the sole exit of trace 1 (A B D), whose call block D is the
    // only executed predecessor of E — textbook exit domination.
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.maxEvents = 60'000;
    opts.seed = 1;
    SimResult r = simulate(p, Algorithm::Net, opts);
    ASSERT_EQ(r.regionCount, 2u);
    EXPECT_EQ(r.exitDominatedRegions, 1u);
    // The two traces share no blocks, so no duplication.
    EXPECT_EQ(r.exitDominatedDupInsts, 0u);
}

TEST(ExitDominationTest, LeiSpanningTraceHasNoDomination)
{
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.maxEvents = 60'000;
    opts.seed = 1;
    SimResult r = simulate(p, Algorithm::Lei, opts);
    ASSERT_EQ(r.regionCount, 1u);
    EXPECT_EQ(r.exitDominatedRegions, 0u);
}

TEST(ExitDominationTest, DuplicationCountedOnSharedBlocks)
{
    // NET on Figure 4: the second trace (B D F) is entered only
    // from the first trace's exit at A and duplicates D and F.
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimOptions opts;
    opts.maxEvents = 200'000;
    opts.seed = 9;
    SimResult r = simulate(p, Algorithm::Net, opts);
    ASSERT_GE(r.regionCount, 2u);
    EXPECT_GE(r.exitDominatedRegions, 1u);
    // D (2 insts) and F (2 insts) shared with the dominator.
    EXPECT_GE(r.exitDominatedDupInsts, 4u);
}

TEST(ExitDominationTest, MultiplePredecessorsBlockDomination)
{
    // A region entered from two different earlier regions' exits is
    // not exit-dominated (condition 2 of the definition).
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimOptions opts;
    opts.maxEvents = 200'000;
    opts.seed = 9;
    SimResult comb = simulate(p, Algorithm::NetCombined, opts);
    // The combined region holds all hot blocks; at most the rare E
    // path could form a dominated region later.
    EXPECT_LE(comb.exitDominatedRegions, comb.regionCount);
}

TEST(SimResultTest, ConservationClosesOnRealRunsAndFlagsTampering)
{
    Program p = buildNestedLoops();
    SimOptions opts;
    opts.maxEvents = 50'000;
    for (Algorithm algo : allSelectors) {
        SimResult r = simulate(p, algo, opts);
        EXPECT_EQ(r.conservationError(), "") << algorithmName(algo);

        // Each broken identity must be named, not silently passed.
        SimResult bad = r;
        bad.cachedInsts += 1;
        EXPECT_NE(bad.conservationError(), "");
        bad = r;
        bad.regionCount += 1;
        EXPECT_NE(bad.conservationError(), "");
        if (!r.regions.empty()) {
            bad = r;
            bad.regions[0].executedInsts += 1;
            EXPECT_NE(bad.conservationError(), "");
        }
    }
}

} // namespace
} // namespace rsel
