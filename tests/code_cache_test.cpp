/**
 * @file
 * Unit tests for the code cache: lookup, accounting, size model.
 */

#include <gtest/gtest.h>

#include "runtime/code_cache.hpp"
#include "support/error.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(CodeCacheTest, InsertAndLookup)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    EXPECT_EQ(cache.regionCount(), 0u);
    EXPECT_EQ(cache.lookup(p.block(Ids::a).startAddr()), nullptr);

    const RegionId id = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::a, Ids::b, Ids::d})));
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(cache.regionCount(), 1u);

    const Region *r = cache.lookup(p.block(Ids::a).startAddr());
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->id(), id);
    // Only entry addresses hit.
    EXPECT_EQ(cache.lookup(p.block(Ids::b).startAddr()), nullptr);
}

TEST(CodeCacheTest, AccountingAccumulates)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b, Ids::d})));
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::e, Ids::f})));

    std::uint64_t insts = 0, bytes = 0, stubs = 0;
    for (const Region &r : cache.regions()) {
        insts += r.instCount();
        bytes += r.byteSize();
        stubs += r.exitStubCount();
    }
    EXPECT_EQ(cache.totalInstsCopied(), insts);
    EXPECT_EQ(cache.totalBytesCopied(), bytes);
    EXPECT_EQ(cache.totalExitStubs(), stubs);
    // Paper's size model: bytes + 10 per stub.
    EXPECT_EQ(cache.estimatedSizeBytes(), bytes + 10 * stubs);
    EXPECT_EQ(cache.estimatedSizeBytes(16), bytes + 16 * stubs);
}

TEST(CodeCacheTest, ReferencesSurviveGrowth)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b, Ids::d})));
    const Region *first = cache.lookup(p.block(Ids::a).startAddr());
    // Grow the cache with distinct single-block regions and verify
    // the earlier pointer is unaffected (deque stability).
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::e})));
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::l})));
    EXPECT_EQ(first, cache.lookup(p.block(Ids::a).startAddr()));
    EXPECT_EQ(first->entryAddr(), p.block(Ids::a).startAddr());
}

TEST(CodeCacheTest, RejectsDuplicateEntryAndBadIds)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b})));
    // Same entry address again.
    EXPECT_THROW(cache.insert(Region::makeTrace(
                     cache.nextRegionId(), pathOf(p, {Ids::a}))),
                 PanicError);
    // Id not issued by nextRegionId().
    EXPECT_THROW(
        cache.insert(Region::makeTrace(7, pathOf(p, {Ids::e}))),
        PanicError);
}

} // namespace
} // namespace rsel
