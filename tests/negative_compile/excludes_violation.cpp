// TSA-EXPECT: while mutex
// Violation class: calling a function annotated RSEL_EXCLUDES(mu)
// while holding mu — self-deadlock on a non-recursive mutex. This is
// the contract on the arena's admit/release path (callable from
// under a tenant's logical-cache mutation, so it must never wait on
// the registry).

#include "support/sync.hpp"

namespace {

struct Service
{
    rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    void
    reenter() RSEL_EXCLUDES(mu)
    {
        rsel::MutexLock lock(mu);
        value = 2;
    }

    void
    outer()
    {
        rsel::MutexLock lock(mu);
        value = 1;
#ifdef RSEL_TSA_NEGATIVE
        reenter(); // would self-deadlock: gate must reject
#endif
    }
};

} // namespace

int
main()
{
    Service s;
    s.outer();
    return 0;
}
