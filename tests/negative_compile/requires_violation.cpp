// TSA-EXPECT: requires holding mutex
// Violation class: calling a function annotated RSEL_REQUIRES(mu)
// without the capability — the shape of every *Locked() predicate
// and helper in the annotated tree (ThreadPool::idleLocked and
// friends).

#include "support/sync.hpp"

namespace {

struct Ledger
{
    mutable rsel::Mutex mu;
    int balance RSEL_GUARDED_BY(mu) = 0;

    int
    balanceLocked() const RSEL_REQUIRES(mu)
    {
        return balance;
    }

    int
    snapshot() const
    {
#ifdef RSEL_TSA_NEGATIVE
        return balanceLocked(); // caller skipped the lock
#else
        rsel::MutexLock lock(mu);
        return balanceLocked();
#endif
    }
};

} // namespace

int
main()
{
    Ledger l;
    return l.snapshot();
}
