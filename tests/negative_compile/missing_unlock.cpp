// TSA-EXPECT: still held at the end of function
// Violation class: a manually-acquired capability escaping its
// function without a release (the leak MutexLock exists to prevent).

#include "support/sync.hpp"

namespace {

struct Box
{
    rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    void
    touch()
    {
        mu.lock();
        value = 1;
#ifndef RSEL_TSA_NEGATIVE
        mu.unlock();
#endif
    }
};

} // namespace

int
main()
{
    Box b;
    b.touch();
#ifdef RSEL_TSA_NEGATIVE
    b.mu.unlock(); // keep the negative leg deadlock-free if it ran
#endif
    return 0;
}
