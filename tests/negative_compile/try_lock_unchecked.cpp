// TSA-EXPECT: requires holding mutex
// Violation class: calling tryLock() and touching guarded state
// without branching on the result — the capability is only held on
// the success path, and ignoring that is a racy fast-path in
// disguise.

#include "support/sync.hpp"

namespace {

struct Box
{
    rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    void
    opportunistic()
    {
#ifdef RSEL_TSA_NEGATIVE
        (void)mu.tryLock(); // result discarded: may not own mu
        value = 1;
        mu.unlock();
#else
        if (mu.tryLock()) {
            value = 1;
            mu.unlock();
        }
#endif
    }
};

} // namespace

int
main()
{
    Box b;
    b.opportunistic();
    return 0;
}
