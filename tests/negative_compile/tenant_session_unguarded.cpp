// TSA-EXPECT: requires holding mutex
// First-party case: TenantSession's slice state (remaining_ and
// friends) is RSEL_GUARDED_BY(sessionMu_), the single-owner session
// capability; a probe reading it unlocked must be rejected.

#include "service/tenant_session.hpp"

namespace rsel {
namespace service {

struct TsaTestProbe
{
    static std::uint64_t
    remainingEvents(TenantSession &session)
    {
#ifdef RSEL_TSA_NEGATIVE
        return session.remaining_; // unlocked: gate must reject
#else
        MutexLock lock(session.sessionMu_);
        return session.remaining_;
#endif
    }
};

} // namespace service
} // namespace rsel

int
main()
{
    // No session instance: the constructor lives in the library.
    return 0;
}
