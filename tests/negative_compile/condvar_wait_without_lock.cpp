// TSA-EXPECT: requires holding mutex
// Violation class: waiting on a condition variable without holding
// the mutex its predicate is a function of — the classic lost-wakeup
// / UB shape. CondVar::wait demands the capability in its signature,
// and the predicate method pins which mutex that is.

#include "support/sync.hpp"

namespace {

struct Waiter
{
    rsel::Mutex mu;
    rsel::CondVar cv;
    bool ready RSEL_GUARDED_BY(mu) = false;

    bool
    readyLocked() const RSEL_REQUIRES(mu)
    {
        return ready;
    }

    void
    block()
    {
#ifdef RSEL_TSA_NEGATIVE
        while (!readyLocked()) // predicate without the lock
            cv.wait(mu);       // wait without the lock
#else
        rsel::MutexLock lock(mu);
        while (!readyLocked())
            cv.wait(mu);
#endif
    }
};

} // namespace

int
main()
{
    // Never call block(): the battery compiles cases, it does not
    // run them, and an un-notified wait would hang forever.
    Waiter w;
    (void)w;
    return 0;
}
