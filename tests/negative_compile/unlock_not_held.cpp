// TSA-EXPECT: that was not held
// Violation class: releasing a capability the scope does not hold
// (undefined behaviour on std::mutex at runtime).

#include "support/sync.hpp"

namespace {

struct Box
{
    rsel::Mutex mu;

    void
    sloppy()
    {
#ifdef RSEL_TSA_NEGATIVE
        mu.unlock(); // never acquired: gate must reject
#else
        mu.lock();
        mu.unlock();
#endif
    }
};

} // namespace

int
main()
{
    Box b;
    b.sloppy();
    return 0;
}
