// TSA-EXPECT: requires holding mutex
// First-party case: ThreadPool's task queue is RSEL_GUARDED_BY
// (mutex_); a probe reading it unlocked must be rejected. Proves the
// production annotation, not a toy replica, is what carries the
// contract.

#include "driver/thread_pool.hpp"

namespace rsel {

// The friend the annotated classes declare for exactly this battery.
// Never called (and touches only inline code), so the case links
// without the library.
struct TsaTestProbe
{
    static bool
    queueEmpty(ThreadPool &pool)
    {
#ifdef RSEL_TSA_NEGATIVE
        return pool.queue_.empty(); // unlocked: gate must reject
#else
        MutexLock lock(pool.mutex_);
        return pool.queue_.empty();
#endif
    }
};

} // namespace rsel

int
main()
{
    // Deliberately no ThreadPool instance: its constructor lives in
    // the library, and the battery compiles cases standalone.
    return 0;
}
