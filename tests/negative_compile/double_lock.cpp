// TSA-EXPECT: that is already held
// Violation class: re-acquiring a capability the scope already
// holds (std::mutex makes this undefined behaviour at runtime).

#include "support/sync.hpp"

namespace {

struct Box
{
    rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    void
    touch()
    {
        mu.lock();
#ifdef RSEL_TSA_NEGATIVE
        mu.lock(); // second acquisition: gate must reject
#endif
        value = 1;
        mu.unlock();
    }
};

} // namespace

int
main()
{
    Box b;
    b.touch();
    return 0;
}
