// TSA-EXPECT: requires holding mutex
// Violation class: writing a field declared RSEL_GUARDED_BY without
// holding the guarding capability (the write side of
// unguarded_read.cpp; TSA reports writes distinctly).

#include "support/sync.hpp"

namespace {

struct Counter
{
    rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    void
    bump()
    {
#ifdef RSEL_TSA_NEGATIVE
        ++value; // no lock: the gate must reject this
#else
        rsel::MutexLock lock(mu);
        ++value;
#endif
    }
};

} // namespace

int
main()
{
    Counter c;
    c.bump();
    return 0;
}
