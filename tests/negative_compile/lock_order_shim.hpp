/**
 * @file
 * The deliberate lock-order-inversion shim (ISSUE 8 satellite).
 *
 * Compiled two ways:
 *  - by service_stress_test (no special defines): the LEGAL
 *    acquisition order registry ≺ shard.mu, executed for real under
 *    TSan, proving the shim exercises the genuine arena locks;
 *  - by the negative-compile battery with -DRSEL_TSA_NEGATIVE: the
 *    INVERTED order, which must fail to compile under the analyze
 *    gate — demonstrating that the RSEL_ACQUIRED_AFTER annotation
 *    (not scheduling luck) is what forbids the deadlock.
 *
 * The shim goes through ShardedCodeCache::shardOrderFirst/Second,
 * whose RSEL_RETURN_CAPABILITY annotations resolve the references
 * back to the same-object capability expressions TSA orders.
 */

#ifndef RSEL_TESTS_LOCK_ORDER_SHIM_HPP
#define RSEL_TESTS_LOCK_ORDER_SHIM_HPP

#include "service/sharded_cache.hpp"

namespace rsel {
namespace service {

/** Acquire both capabilities of shard 0; order per the defines. */
inline void
lockOrderShim(ShardedCodeCache &arena)
{
#ifdef RSEL_TSA_NEGATIVE
    MutexLock inner(arena.shardOrderSecond(0));
    MutexLock outer(arena.shardOrderFirst(0)); // inverted: rejected
#else
    MutexLock outer(arena.shardOrderFirst(0));
    MutexLock inner(arena.shardOrderSecond(0));
#endif
}

} // namespace service
} // namespace rsel

#endif // RSEL_TESTS_LOCK_ORDER_SHIM_HPP
