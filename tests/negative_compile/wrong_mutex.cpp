// TSA-EXPECT: requires holding mutex 'a'
// Violation class: holding *a* mutex, just not the one the
// annotation names — the bug class that "I took a lock" code review
// reliably misses. The expected text pins the diagnostic to the
// declared guard, not merely to some missing lock.

#include "support/sync.hpp"

namespace {

struct TwoLocks
{
    rsel::Mutex a;
    rsel::Mutex b;
    int value RSEL_GUARDED_BY(a) = 0;

    void
    touch()
    {
#ifdef RSEL_TSA_NEGATIVE
        rsel::MutexLock lock(b); // wrong capability entirely
#else
        rsel::MutexLock lock(a);
#endif
        value = 1;
    }
};

} // namespace

int
main()
{
    TwoLocks t;
    t.touch();
    return 0;
}
