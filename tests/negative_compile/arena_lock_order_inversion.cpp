// TSA-EXPECT: must be acquired before
// Violation class: the real registry ≺ shard.mu hierarchy of the
// sharded arena, inverted through the lock_order_shim the stress
// test runs legally. Companion to lock_order_inversion.cpp (the
// self-contained two-member shape); this one pins the order on the
// production capabilities via the shardOrderFirst/Second probes.

#include "lock_order_shim.hpp"

int
main()
{
    // The shim is an inline definition in this TU, so TSA analyzes
    // its body whether or not anything calls it — and nothing does:
    // cases compile standalone, without the library.
    return 0;
}
