// TSA-EXPECT: requires holding mutex
// Violation class: reading a field declared RSEL_GUARDED_BY without
// holding the guarding capability.

#include "support/sync.hpp"

namespace {

struct Counter
{
    mutable rsel::Mutex mu;
    int value RSEL_GUARDED_BY(mu) = 0;

    int
    read() const
    {
#ifdef RSEL_TSA_NEGATIVE
        return value; // no lock: the gate must reject this
#else
        rsel::MutexLock lock(mu);
        return value;
#endif
    }
};

} // namespace

int
main()
{
    Counter c;
    return c.read();
}
