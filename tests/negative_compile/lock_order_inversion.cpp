// TSA-EXPECT: must be acquired before
// Violation class: acquiring two capabilities against their declared
// RSEL_ACQUIRED_AFTER order — the deadlock cycle TSan can only hope
// to trip at runtime, rejected here on every interleaving. (Checked
// under -Wthread-safety-beta; the self-contained two-member shape is
// the canonical one, arena_lock_order_inversion.cpp exercises the
// real registry/shard pair.)

#include "support/sync.hpp"

namespace {

struct Hierarchy
{
    rsel::Mutex outer;
    rsel::Mutex inner RSEL_ACQUIRED_AFTER(outer);

    void
    takeBoth()
    {
#ifdef RSEL_TSA_NEGATIVE
        rsel::MutexLock second(inner);
        rsel::MutexLock first(outer); // inverted: gate must reject
#else
        rsel::MutexLock first(outer);
        rsel::MutexLock second(inner);
#endif
    }
};

} // namespace

int
main()
{
    Hierarchy h;
    h.takeBoth();
    return 0;
}
