// TSA-EXPECT: requires holding mutex
// First-party case: a ShardedCodeCache shard's entry map is
// RSEL_GUARDED_BY(shard.mu); a probe sizing it unlocked must be
// rejected.

#include "service/sharded_cache.hpp"

namespace rsel {
namespace service {

struct TsaTestProbe
{
    static std::size_t
    shardEntryCount(ShardedCodeCache &arena)
    {
        ShardedCodeCache::Shard &shard = arena.shards_[0];
#ifdef RSEL_TSA_NEGATIVE
        return shard.entries.size(); // unlocked: gate must reject
#else
        MutexLock lock(shard.mu);
        return shard.entries.size();
#endif
    }
};

} // namespace service
} // namespace rsel

int
main()
{
    // No arena instance: the constructor lives in the library.
    return 0;
}
