/**
 * @file
 * Unit tests for the static verifier passes: per-pass accept and
 * reject cases, the selection-layer aliasing hardening, and the
 * DynOptSystem verify-on-submit integration.
 */

#include <gtest/gtest.h>

#include "analysis/program_verifier.hpp"
#include "analysis/region_verifier.hpp"
#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "selection/region_cfg.hpp"
#include "support/error.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

using analysis::AnalysisManager;
using analysis::DiagnosticEngine;
using analysis::ProgramVerifier;
using analysis::RegionVerifier;
using analysis::RegionVerifyContext;
using analysis::Severity;

/** a: cond -> c | b; b: ft -> c; c: latch -> a | d; d: halt. */
Program
buildLoopProgram()
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(4);
    pb.block(3); // b, reached from a by fall-through
    const BlockId c = pb.block(2);
    const BlockId d = pb.block(1);
    CondBehavior skip;
    skip.kind = CondBehavior::Kind::Bernoulli;
    skip.takenProbByPhase = {0.5};
    pb.condTo(a, c, skip);
    pb.loopTo(c, a, 10, 10);
    pb.halt(d);
    pb.setEntry(a);
    return pb.build();
}

bool
hasErrorFromPass(const DiagnosticEngine &diag, const std::string &pass)
{
    for (const analysis::Diagnostic &d : diag.diagnostics())
        if (d.severity == Severity::Error && d.pass == pass)
            return true;
    return false;
}

bool
hasWarningFromPass(const DiagnosticEngine &diag,
                   const std::string &pass)
{
    for (const analysis::Diagnostic &d : diag.diagnostics())
        if (d.severity == Severity::Warning && d.pass == pass)
            return true;
    return false;
}

TEST(ProgramVerifierTest, AcceptsWellFormedProgram)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    DiagnosticEngine diag;
    ProgramVerifier(mgr).run(p, diag);
    EXPECT_FALSE(diag.hasErrors()) << diag.firstError();
}

TEST(ProgramVerifierTest, AcceptsEveryWorkload)
{
    AnalysisManager mgr;
    for (const WorkloadInfo &w : workloadSuite()) {
        const Program p = w.build(1);
        DiagnosticEngine diag;
        ProgramVerifier(mgr).run(p, diag);
        EXPECT_FALSE(diag.hasErrors())
            << w.name << ": " << diag.firstError();
        mgr.invalidate(p); // p dies at the end of this iteration
    }
}

TEST(ProgramVerifierTest, LintsUnreachableAndNoExitCycle)
{
    // a -> b -> a is a reachable cycle with no exit and no halt; c
    // is unreachable.
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(2);
    const BlockId b = pb.block(2);
    const BlockId c = pb.block(1);
    pb.jumpTo(b, a);
    pb.halt(c);
    pb.setEntry(a);
    const Program p = pb.build();

    AnalysisManager mgr;
    DiagnosticEngine diag;
    ProgramVerifier(mgr).run(p, diag);
    EXPECT_FALSE(diag.hasErrors());
    EXPECT_TRUE(hasWarningFromPass(diag, "unreachable-code"));
    EXPECT_TRUE(hasWarningFromPass(diag, "no-exit-scc"));

    // The same program with lints off is silent.
    DiagnosticEngine quiet;
    analysis::ProgramVerifyOptions opts;
    opts.lints = false;
    ProgramVerifier(mgr).run(p, quiet, opts);
    EXPECT_TRUE(quiet.empty());
}

TEST(ProgramVerifierTest, LintsDeadFunction)
{
    ProgramBuilder pb;
    const FuncId deadFn = pb.beginFunction("dead");
    const BlockId da = pb.block(2);
    pb.ret(da);
    pb.beginFunction("main");
    const BlockId m = pb.block(2);
    pb.halt(m);
    pb.setEntry(m);
    const Program p = pb.build();
    ASSERT_EQ(p.function(deadFn).name, "dead");

    AnalysisManager mgr;
    DiagnosticEngine diag;
    ProgramVerifier(mgr).run(p, diag);
    EXPECT_TRUE(hasWarningFromPass(diag, "dead-function"));
}

class RegionVerifierTest : public ::testing::Test
{
  protected:
    RegionVerifierTest() : prog(buildLoopProgram()) {}

    RegionVerifyContext
    context(const std::string &selector = "NET")
    {
        RegionVerifyContext ctx;
        ctx.prog = &prog;
        ctx.selector = selector;
        ctx.maxTraceInsts = 1024;
        ctx.id = 0;
        return ctx;
    }

    RegionSpec
    trace(std::vector<const BasicBlock *> blocks)
    {
        RegionSpec spec;
        spec.kind = Region::Kind::Trace;
        spec.blocks = std::move(blocks);
        return spec;
    }

    Program prog;
    AnalysisManager mgr;
    RegionVerifier verifier{mgr};
};

TEST_F(RegionVerifierTest, AcceptsConnectedTrace)
{
    DiagnosticEngine diag;
    verifier.runOnSpec(
        trace({&prog.block(0), &prog.block(1), &prog.block(2)}),
        context(), diag);
    EXPECT_TRUE(diag.empty()) << diag.firstError();
}

TEST_F(RegionVerifierTest, RejectsEmptyAndDuplicateMembers)
{
    DiagnosticEngine diag;
    verifier.runOnSpec(trace({}), context(), diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "region-members"));

    DiagnosticEngine dup;
    verifier.runOnSpec(
        trace({&prog.block(0), &prog.block(1), &prog.block(0)}),
        context(), dup);
    EXPECT_TRUE(hasErrorFromPass(dup, "region-members"));
}

TEST_F(RegionVerifierTest, RejectsAliasedMembers)
{
    // Same ids and addresses, different Program object: the planted
    // bug of rselect-fuzz --break-selector alias.
    const Program clone = prog;
    DiagnosticEngine diag;
    verifier.runOnSpec(
        trace({&prog.block(0), &clone.block(1), &prog.block(2)}),
        context(), diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "region-members"));
}

TEST_F(RegionVerifierTest, RejectsSecondRegionAtLiveEntrance)
{
    CodeCache cache{CacheLimits{}};
    cache.insert(Region::makeTrace(
        cache.nextRegionId(), {&prog.block(0), &prog.block(1)}));

    RegionVerifyContext ctx = context();
    ctx.cache = &cache;
    ctx.id = cache.nextRegionId();
    DiagnosticEngine diag;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(2)}), ctx,
                       diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "region-single-entrance"));
}

TEST_F(RegionVerifierTest, RejectsDisconnectedTraceAndMultiPath)
{
    // a -> d is not a possible edge.
    DiagnosticEngine diag;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(3)}),
                       context(), diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "region-connectivity"));

    // In a multi-path region, d is unreachable from a within {a, d}.
    RegionSpec mp;
    mp.kind = Region::Kind::MultiPath;
    mp.blocks = {&prog.block(0), &prog.block(3)};
    DiagnosticEngine mpDiag;
    verifier.runOnSpec(mp, context(), mpDiag);
    EXPECT_TRUE(hasErrorFromPass(mpDiag, "region-connectivity"));
}

TEST_F(RegionVerifierTest, RejectsInexcusablyAcyclicLeiTrace)
{
    DiagnosticEngine diag;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(1)}),
                       context("LEI"), diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "lei-cyclicity"));
}

TEST_F(RegionVerifierTest, AcceptsCyclicLeiTrace)
{
    DiagnosticEngine diag;
    verifier.runOnSpec(
        trace({&prog.block(0), &prog.block(1), &prog.block(2)}),
        context("LEI"), diag);
    EXPECT_TRUE(diag.empty()) << diag.firstError();
}

TEST_F(RegionVerifierTest, LeiCyclicityOnlyAppliesToLei)
{
    DiagnosticEngine diag;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(1)}),
                       context("NET"), diag);
    EXPECT_TRUE(diag.empty()) << diag.firstError();
}

TEST_F(RegionVerifierTest, LeiTruncationExculpations)
{
    // Stopped at an existing region: c is a cached entrance, and c
    // is a possible successor of the tail b.
    CodeCache cache{CacheLimits{}};
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   {&prog.block(2)}));
    RegionVerifyContext atRegion = context("LEI");
    atRegion.cache = &cache;
    atRegion.id = cache.nextRegionId();
    DiagnosticEngine excused;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(1)}),
                       atRegion, excused);
    EXPECT_FALSE(hasErrorFromPass(excused, "lei-cyclicity"));

    // Stopped at the size limit: appending any successor of b would
    // exceed maxTraceInsts.
    RegionVerifyContext tiny = context("LEI");
    tiny.maxTraceInsts = 7; // a(4) + b(3) full, c(2) would overflow
    DiagnosticEngine limit;
    verifier.runOnSpec(trace({&prog.block(0), &prog.block(1)}), tiny,
                       limit);
    EXPECT_FALSE(hasErrorFromPass(limit, "lei-cyclicity"));
}

TEST_F(RegionVerifierTest, ExitStubRecomputationMatchesRegion)
{
    // Both the spanning trace and a multi-path region agree with the
    // independent stub recomputation.
    const Region spanning = Region::makeTrace(
        0, {&prog.block(0), &prog.block(1), &prog.block(2)});
    DiagnosticEngine diag;
    verifier.runOnRegion(spanning, context(), diag);
    EXPECT_TRUE(diag.empty()) << diag.firstError();

    const Region mp = Region::makeMultiPath(
        1, {&prog.block(0), &prog.block(1), &prog.block(2),
            &prog.block(3)});
    DiagnosticEngine mpDiag;
    verifier.runOnRegion(mp, context(), mpDiag);
    EXPECT_TRUE(mpDiag.empty()) << mpDiag.firstError();
}

TEST_F(RegionVerifierTest, DuplicationAccountantFlagsBadTotals)
{
    CodeCache cache{CacheLimits{}};
    cache.insert(Region::makeTrace(
        cache.nextRegionId(),
        {&prog.block(0), &prog.block(1), &prog.block(2)}));

    SimResult good;
    good.regionCount = 1;
    good.expansionInsts = 9; // 4 + 3 + 2
    good.exitStubs = cache.region(0).exitStubCount();
    good.duplicatedInsts = 0;
    DiagnosticEngine clean;
    analysis::checkDuplicationAccounting(prog, cache, good, clean);
    EXPECT_FALSE(clean.hasErrors()) << clean.firstError();

    SimResult bad = good;
    bad.duplicatedInsts = 42;
    DiagnosticEngine diag;
    analysis::checkDuplicationAccounting(prog, cache, bad, diag);
    EXPECT_TRUE(hasErrorFromPass(diag, "duplication-accounting"));
}

/** Emits one fixed spec the first time its entry is interpreted. */
class PlantingSelector : public RegionSelector
{
  public:
    explicit PlantingSelector(RegionSpec spec) : spec_(std::move(spec))
    {
    }

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &ev) override
    {
        if (emitted_ ||
            ev.block->id() != spec_.blocks.front()->id())
            return std::nullopt;
        emitted_ = true;
        return spec_;
    }

    std::size_t maxLiveCounters() const override { return 0; }
    std::string name() const override { return "planting"; }

  private:
    RegionSpec spec_;
    bool emitted_ = false;
};

TEST(VerifyOnSubmitTest, RejectsAliasedRegionOnlyWhenEnabled)
{
    const Program prog = buildLoopProgram();
    const Program clone = prog;
    RegionSpec aliased;
    aliased.kind = Region::Kind::Trace;
    aliased.blocks = {&clone.block(0), &clone.block(1),
                      &clone.block(2)};

    const auto run = [&](bool verify) {
        DynOptSystem sys(prog);
        sys.useCustom([&](const Program &, const CodeCache &) {
            return std::make_unique<PlantingSelector>(aliased);
        });
        if (verify)
            sys.enableVerifyOnSubmit();
        Executor exec(prog, 1);
        exec.run(500, sys);
        return sys.finish();
    };

    // Dynamically the aliased region is invisible: the run succeeds
    // and even caches a region.
    const SimResult res = run(false);
    EXPECT_EQ(res.regionCount, 1u);

    // With verify-on-submit the named pass rejects it at install.
    try {
        run(true);
        FAIL() << "verify-on-submit accepted an aliased region";
    } catch (const analysis::VerifyError &e) {
        EXPECT_NE(std::string(e.what()).find("region-members"),
                  std::string::npos)
            << e.what();
    }
}

TEST(VerifyOnSubmitTest, AcceptsHonestSelectorsAndKeepsResults)
{
    const Program prog = buildGzip(1);
    SimOptions opts;
    opts.maxEvents = 20000;
    const SimResult plain = simulate(prog, Algorithm::Lei, opts);
    opts.verifyRegions = true;
    const SimResult checked = simulate(prog, Algorithm::Lei, opts);
    EXPECT_EQ(plain.regionCount, checked.regionCount);
    EXPECT_EQ(plain.cachedInsts, checked.cachedInsts);
    EXPECT_EQ(plain.duplicatedInsts, checked.duplicatedInsts);
}

TEST(SelectionHardeningTest, RegionCfgRejectsAliasedBlocks)
{
    const Program prog = buildLoopProgram();
    const Program clone = prog;

    RegionCfg cfg(&prog.block(0));
    // The honest trace is fine...
    cfg.addTrace({&prog.block(0), &prog.block(1), &prog.block(2)});
    // ...but a same-id block of another Program object must trip the
    // aliasing assertion instead of silently merging nodes.
    EXPECT_THROW(
        cfg.addTrace({&prog.block(0), &clone.block(1)}), PanicError);
    // And so must an entry block that is equal by id only.
    RegionCfg cfg2(&prog.block(0));
    EXPECT_THROW(cfg2.addTrace({&clone.block(0)}), PanicError);
}

} // namespace
} // namespace rsel
