/**
 * @file
 * Unit tests for the analysis layer's dataflow core: DiGraph,
 * reachability, RPO, dominators, SCCs, natural loops, and the
 * Program/region adapters of the AnalysisManager.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis_manager.hpp"
#include "analysis/cfg_facts.hpp"
#include "program/program_builder.hpp"
#include "testing/gen_spec.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace analysis {
namespace {

TEST(DiGraphTest, DeduplicatesEdges)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 2));
    EXPECT_FALSE(g.hasEdge(1, 0));
    ASSERT_EQ(g.succs(0).size(), 1u);
}

TEST(CfgFactsTest, DiamondDominators)
{
    // 0 -> {1, 2}; {1, 2} -> 3: neither branch dominates the join.
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);

    EXPECT_EQ(f.idom[0], 0u);
    EXPECT_EQ(f.idom[1], 0u);
    EXPECT_EQ(f.idom[2], 0u);
    EXPECT_EQ(f.idom[3], 0u);
    EXPECT_TRUE(f.dominates(0, 3));
    EXPECT_FALSE(f.dominates(1, 3));
    EXPECT_FALSE(f.dominates(2, 3));
    EXPECT_TRUE(f.dominates(3, 3));
    EXPECT_EQ(f.reachableCount, 4u);
    ASSERT_EQ(f.rpo.size(), 4u);
    EXPECT_EQ(f.rpo.front(), 0u);
    EXPECT_EQ(f.rpo.back(), 3u);
}

TEST(CfgFactsTest, ChainDominatorsAndPreds)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    const CfgFacts f = CfgFacts::compute(g, 0);
    EXPECT_EQ(f.idom[1], 0u);
    EXPECT_EQ(f.idom[2], 1u);
    EXPECT_TRUE(f.dominates(1, 2));
    ASSERT_EQ(f.preds[2].size(), 1u);
    EXPECT_EQ(f.preds[2][0], 1u);
}

TEST(CfgFactsTest, UnreachableNodesHaveNoDominator)
{
    DiGraph g(3);
    g.addEdge(0, 1); // node 2 is disconnected
    const CfgFacts f = CfgFacts::compute(g, 0);
    EXPECT_FALSE(f.reachable[2]);
    EXPECT_EQ(f.idom[2], invalidNode);
    EXPECT_EQ(f.reachableCount, 2u);
}

TEST(CfgFactsTest, SccCyclesAndExits)
{
    // {1, 2} is a cycle with an exit to 3; 0 and 3 are trivial; 3
    // has a self edge (a cycle of one).
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    g.addEdge(3, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);

    EXPECT_EQ(f.sccId[1], f.sccId[2]);
    EXPECT_NE(f.sccId[0], f.sccId[1]);
    EXPECT_NE(f.sccId[3], f.sccId[1]);
    EXPECT_TRUE(f.sccIsCycle[f.sccId[1]]);
    EXPECT_TRUE(f.sccIsCycle[f.sccId[3]]); // self edge counts
    EXPECT_FALSE(f.sccIsCycle[f.sccId[0]]);
    EXPECT_TRUE(f.sccHasExit[f.sccId[1]]);
    EXPECT_FALSE(f.sccHasExit[f.sccId[3]]);
}

TEST(CfgFactsTest, NaturalLoopBody)
{
    // 0 -> 1 -> 2 -> 1, 2 -> 3: back edge 2 -> 1 (1 dominates 2)
    // gives the loop {1, 2}.
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);
    ASSERT_EQ(f.loops.size(), 1u);
    EXPECT_EQ(f.loops[0].header, 1u);
    EXPECT_EQ(f.loops[0].body, (std::vector<std::uint32_t>{1, 2}));
}

/** a: cond -> c | b; b: ft -> c; c: latch -> a | d; d: halt. */
Program
buildLoopProgram()
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(4);
    pb.block(3); // b, reached from a by fall-through
    const BlockId c = pb.block(2);
    const BlockId d = pb.block(1);
    CondBehavior skip;
    skip.kind = CondBehavior::Kind::Bernoulli;
    skip.takenProbByPhase = {0.5};
    pb.condTo(a, c, skip);
    pb.loopTo(c, a, 10, 10);
    pb.halt(d);
    pb.setEntry(a);
    return pb.build();
}

TEST(ProgramFactsTest, PossibleEdgesOfLoopProgram)
{
    const Program p = buildLoopProgram();
    const ProgramFacts pf = buildProgramFacts(p);

    // a -> b (fall-through) and a -> c (taken).
    EXPECT_TRUE(pf.possibleEdge(p.block(0), p.block(1)));
    EXPECT_TRUE(pf.possibleEdge(p.block(0), p.block(2)));
    EXPECT_FALSE(pf.possibleEdge(p.block(0), p.block(3)));
    // c -> a (latch taken) and c -> d (loop exit fall-through).
    EXPECT_TRUE(pf.possibleEdge(p.block(2), p.block(0)));
    EXPECT_TRUE(pf.possibleEdge(p.block(2), p.block(3)));
    // The a..c loop shows up as a cyclic SCC and a natural loop.
    EXPECT_TRUE(pf.cfg.sccIsCycle[pf.cfg.sccId[0]]);
    ASSERT_EQ(pf.cfg.loops.size(), 1u);
    EXPECT_EQ(pf.cfg.loops[0].header, 0u);
}

TEST(ProgramFactsTest, CallAndReturnEdges)
{
    ProgramBuilder pb;
    const FuncId callee = pb.beginFunction("callee");
    const BlockId ca = pb.block(2);
    pb.ret(ca);
    pb.beginFunction("main");
    const BlockId m0 = pb.block(2); // call -> callee, returns to m1
    const BlockId m1 = pb.block(1);
    pb.callTo(m0, callee);
    pb.halt(m1);
    pb.setEntry(m0);
    const Program p = pb.build();
    const ProgramFacts pf = buildProgramFacts(p);

    EXPECT_TRUE(pf.possibleEdge(p.block(m0), p.block(ca)));
    // The return conservatively targets every call fall-through.
    EXPECT_TRUE(pf.possibleEdge(p.block(ca), p.block(m1)));
    EXPECT_FALSE(pf.possibleEdge(p.block(m1), p.block(ca)));
}

TEST(MemberFactsTest, InducedSubgraphCycle)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const ProgramFacts &pf = mgr.facts(p);

    // {a, b, c} closes the loop; {a, b} does not.
    const MemberFacts cyc = buildMemberFacts(
        pf, {&p.block(0), &p.block(1), &p.block(2)});
    EXPECT_TRUE(cyc.hasCycle);
    EXPECT_EQ(cyc.localIndex(2), 2u);
    EXPECT_EQ(cyc.localIndex(3), invalidNode);

    const MemberFacts lin =
        buildMemberFacts(pf, {&p.block(0), &p.block(1)});
    EXPECT_FALSE(lin.hasCycle);
    EXPECT_TRUE(lin.cfg.reachable[1]);
}

TEST(AnalysisManagerTest, FactsAreCachedPerProgram)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const ProgramFacts &first = mgr.facts(p);
    const ProgramFacts &second = mgr.facts(p);
    EXPECT_EQ(&first, &second);
    mgr.invalidate(p);
    const ProgramFacts &third = mgr.facts(p);
    EXPECT_EQ(third.prog, &p);
}

TEST(AnalysisManagerTest, CountsHitsAndMisses)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    EXPECT_EQ(mgr.cacheStats().programMisses, 0u);
    mgr.facts(p);
    mgr.facts(p);
    mgr.facts(p);
    EXPECT_EQ(mgr.cacheStats().programMisses, 1u);
    EXPECT_EQ(mgr.cacheStats().programHits, 2u);
    mgr.invalidate(p);
    mgr.facts(p);
    EXPECT_EQ(mgr.cacheStats().programMisses, 2u);
    EXPECT_EQ(mgr.cacheStats().staleInvalidations, 0u);
}

TEST(AnalysisManagerTest, StaleFactsAreNeverServed)
{
    // Reassigning a Program variable keeps the object address: the
    // cache must notice the shape change and recompute, not serve
    // facts of the replaced program.
    Program p = buildLoopProgram();
    AnalysisManager mgr;
    const std::uint64_t oldFp = mgr.facts(p).fingerprint;
    ASSERT_EQ(mgr.facts(p).graph.size(), 4u);

    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId e = pb.block(2);
    const BlockId f = pb.block(1);
    pb.halt(f);
    pb.setEntry(e);
    p = pb.build(); // same address, different program

    const ProgramFacts &fresh = mgr.facts(p);
    EXPECT_EQ(mgr.cacheStats().staleInvalidations, 1u);
    EXPECT_NE(fresh.fingerprint, oldFp);
    EXPECT_EQ(fresh.fingerprint, programFingerprint(p));
    EXPECT_EQ(fresh.graph.size(), 2u); // facts match the new shape
    // Served from cache again now that the entry is fresh.
    mgr.facts(p);
    EXPECT_EQ(mgr.cacheStats().staleInvalidations, 1u);
}

TEST(CfgFactsDegenerateTest, SingleBlockProgram)
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(3);
    pb.halt(a);
    pb.setEntry(a);
    const Program p = pb.build();
    const ProgramFacts pf = buildProgramFacts(p);

    EXPECT_EQ(pf.graph.size(), 1u);
    EXPECT_EQ(pf.graph.edgeCount(), 0u);
    EXPECT_EQ(pf.cfg.reachableCount, 1u);
    EXPECT_EQ(pf.cfg.idom[0], 0u);
    EXPECT_TRUE(pf.cfg.loops.empty());
    EXPECT_FALSE(pf.cfg.sccIsCycle[pf.cfg.sccId[0]]);
}

TEST(CfgFactsDegenerateTest, SelfLoopBlock)
{
    // A latch that targets itself: a one-node cycle and a natural
    // loop whose body is just the header.
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(2);
    const BlockId b = pb.block(1);
    pb.loopTo(a, a, 3, 3);
    pb.halt(b);
    pb.setEntry(a);
    const Program p = pb.build();
    const ProgramFacts pf = buildProgramFacts(p);

    EXPECT_TRUE(pf.possibleEdge(p.block(a), p.block(a)));
    EXPECT_TRUE(pf.cfg.sccIsCycle[pf.cfg.sccId[a]]);
    ASSERT_EQ(pf.cfg.loops.size(), 1u);
    EXPECT_EQ(pf.cfg.loops[0].header, static_cast<std::uint32_t>(a));
    EXPECT_EQ(pf.cfg.loops[0].body,
              (std::vector<std::uint32_t>{a}));
}

TEST(CfgFactsDegenerateTest, UnreachableOnlyFunction)
{
    // A second function no call ever enters: reachability, idom and
    // loops must all treat its blocks as off the rooted CFG.
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(2);
    pb.halt(a);
    pb.beginFunction("dead");
    const BlockId u0 = pb.block(2);
    const BlockId u1 = pb.block(1);
    const BlockId u2 = pb.block(1);
    pb.loopTo(u1, u0, 2, 2);
    pb.halt(u2);
    pb.setEntry(a);
    const Program p = pb.build();
    const ProgramFacts pf = buildProgramFacts(p);

    EXPECT_FALSE(pf.cfg.reachable[u0]);
    EXPECT_FALSE(pf.cfg.reachable[u1]);
    EXPECT_EQ(pf.cfg.idom[u0], invalidNode);
    EXPECT_EQ(pf.cfg.reachableCount, 1u);
    // Natural loops are defined over reachable back edges only.
    EXPECT_TRUE(pf.cfg.loops.empty());
    // The dead cycle still shows up in the (whole-graph) SCCs.
    EXPECT_TRUE(pf.cfg.sccIsCycle[pf.cfg.sccId[u0]]);
}

TEST(CfgFactsDegenerateTest, IrreducibleCycleHasNoNaturalLoop)
{
    // 0 -> {1, 2}, 1 <-> 2: the cycle {1, 2} has two entries, so
    // neither node dominates the other — an irreducible region with
    // a cyclic SCC but no natural loop.
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    const CfgFacts f = CfgFacts::compute(g, 0);

    EXPECT_EQ(f.sccId[1], f.sccId[2]);
    EXPECT_TRUE(f.sccIsCycle[f.sccId[1]]);
    EXPECT_TRUE(f.loops.empty());
    EXPECT_EQ(f.idom[1], 0u);
    EXPECT_EQ(f.idom[2], 0u);
}

TEST(CfgFactsPropertyTest, InvariantsHoldOverFuzzCorpus)
{
    // Fixed-seed GenSpec corpus: structural invariants of the facts
    // must hold for every generated program shape.
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        testing::GenSpec spec = testing::GenSpec::fromSeed(seed);
        spec.clamp();
        const Program p = testing::generateProgram(spec);
        const ProgramFacts pf = buildProgramFacts(p);
        const CfgFacts &f = pf.cfg;
        const std::uint32_t n = pf.graph.size();
        SCOPED_TRACE("seed " + std::to_string(seed));

        // RPO enumerates exactly the reachable nodes, entry first.
        ASSERT_EQ(f.rpo.size(), f.reachableCount);
        if (!f.rpo.empty()) {
            EXPECT_EQ(f.rpo.front(), f.entry);
        }
        std::uint32_t reachable = 0;
        for (std::uint32_t u = 0; u < n; ++u)
            reachable += f.reachable[u] ? 1 : 0;
        EXPECT_EQ(reachable, f.reachableCount);

        // The entry dominates itself; unreachable nodes have no
        // dominator; every reachable non-entry's idom is reachable.
        EXPECT_EQ(f.idom[f.entry], f.entry);
        for (std::uint32_t u = 0; u < n; ++u) {
            if (!f.reachable[u]) {
                EXPECT_EQ(f.idom[u], invalidNode);
                continue;
            }
            if (u != f.entry) {
                ASSERT_NE(f.idom[u], invalidNode);
                EXPECT_TRUE(f.reachable[f.idom[u]]);
                EXPECT_TRUE(f.dominates(f.idom[u], u));
            }
        }

        // Predecessor lists agree with the edge relation.
        for (std::uint32_t u = 0; u < n; ++u)
            for (const std::uint32_t v : pf.graph.succs(u))
                EXPECT_NE(std::find(f.preds[v].begin(),
                                    f.preds[v].end(), u),
                          f.preds[v].end());

        // Loop headers dominate their bodies, bodies are cyclic.
        for (const NaturalLoop &loop : f.loops) {
            EXPECT_TRUE(f.reachable[loop.header]);
            for (const std::uint32_t node : loop.body) {
                EXPECT_TRUE(f.dominates(loop.header, node));
                EXPECT_EQ(f.sccId[node], f.sccId[loop.header]);
            }
            if (loop.body.size() > 1) {
                EXPECT_TRUE(f.sccIsCycle[f.sccId[loop.header]]);
            }
        }
    }
}

} // namespace
} // namespace analysis
} // namespace rsel
