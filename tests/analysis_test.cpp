/**
 * @file
 * Unit tests for the analysis layer's dataflow core: DiGraph,
 * reachability, RPO, dominators, SCCs, natural loops, and the
 * Program/region adapters of the AnalysisManager.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/analysis_manager.hpp"
#include "analysis/cfg_facts.hpp"
#include "program/program_builder.hpp"

namespace rsel {
namespace analysis {
namespace {

TEST(DiGraphTest, DeduplicatesEdges)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(g.edgeCount(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 2));
    EXPECT_FALSE(g.hasEdge(1, 0));
    ASSERT_EQ(g.succs(0).size(), 1u);
}

TEST(CfgFactsTest, DiamondDominators)
{
    // 0 -> {1, 2}; {1, 2} -> 3: neither branch dominates the join.
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);

    EXPECT_EQ(f.idom[0], 0u);
    EXPECT_EQ(f.idom[1], 0u);
    EXPECT_EQ(f.idom[2], 0u);
    EXPECT_EQ(f.idom[3], 0u);
    EXPECT_TRUE(f.dominates(0, 3));
    EXPECT_FALSE(f.dominates(1, 3));
    EXPECT_FALSE(f.dominates(2, 3));
    EXPECT_TRUE(f.dominates(3, 3));
    EXPECT_EQ(f.reachableCount, 4u);
    ASSERT_EQ(f.rpo.size(), 4u);
    EXPECT_EQ(f.rpo.front(), 0u);
    EXPECT_EQ(f.rpo.back(), 3u);
}

TEST(CfgFactsTest, ChainDominatorsAndPreds)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    const CfgFacts f = CfgFacts::compute(g, 0);
    EXPECT_EQ(f.idom[1], 0u);
    EXPECT_EQ(f.idom[2], 1u);
    EXPECT_TRUE(f.dominates(1, 2));
    ASSERT_EQ(f.preds[2].size(), 1u);
    EXPECT_EQ(f.preds[2][0], 1u);
}

TEST(CfgFactsTest, UnreachableNodesHaveNoDominator)
{
    DiGraph g(3);
    g.addEdge(0, 1); // node 2 is disconnected
    const CfgFacts f = CfgFacts::compute(g, 0);
    EXPECT_FALSE(f.reachable[2]);
    EXPECT_EQ(f.idom[2], invalidNode);
    EXPECT_EQ(f.reachableCount, 2u);
}

TEST(CfgFactsTest, SccCyclesAndExits)
{
    // {1, 2} is a cycle with an exit to 3; 0 and 3 are trivial; 3
    // has a self edge (a cycle of one).
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    g.addEdge(3, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);

    EXPECT_EQ(f.sccId[1], f.sccId[2]);
    EXPECT_NE(f.sccId[0], f.sccId[1]);
    EXPECT_NE(f.sccId[3], f.sccId[1]);
    EXPECT_TRUE(f.sccIsCycle[f.sccId[1]]);
    EXPECT_TRUE(f.sccIsCycle[f.sccId[3]]); // self edge counts
    EXPECT_FALSE(f.sccIsCycle[f.sccId[0]]);
    EXPECT_TRUE(f.sccHasExit[f.sccId[1]]);
    EXPECT_FALSE(f.sccHasExit[f.sccId[3]]);
}

TEST(CfgFactsTest, NaturalLoopBody)
{
    // 0 -> 1 -> 2 -> 1, 2 -> 3: back edge 2 -> 1 (1 dominates 2)
    // gives the loop {1, 2}.
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    const CfgFacts f = CfgFacts::compute(g, 0);
    ASSERT_EQ(f.loops.size(), 1u);
    EXPECT_EQ(f.loops[0].header, 1u);
    EXPECT_EQ(f.loops[0].body, (std::vector<std::uint32_t>{1, 2}));
}

/** a: cond -> c | b; b: ft -> c; c: latch -> a | d; d: halt. */
Program
buildLoopProgram()
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(4);
    pb.block(3); // b, reached from a by fall-through
    const BlockId c = pb.block(2);
    const BlockId d = pb.block(1);
    CondBehavior skip;
    skip.kind = CondBehavior::Kind::Bernoulli;
    skip.takenProbByPhase = {0.5};
    pb.condTo(a, c, skip);
    pb.loopTo(c, a, 10, 10);
    pb.halt(d);
    pb.setEntry(a);
    return pb.build();
}

TEST(ProgramFactsTest, PossibleEdgesOfLoopProgram)
{
    const Program p = buildLoopProgram();
    const ProgramFacts pf = buildProgramFacts(p);

    // a -> b (fall-through) and a -> c (taken).
    EXPECT_TRUE(pf.possibleEdge(p.block(0), p.block(1)));
    EXPECT_TRUE(pf.possibleEdge(p.block(0), p.block(2)));
    EXPECT_FALSE(pf.possibleEdge(p.block(0), p.block(3)));
    // c -> a (latch taken) and c -> d (loop exit fall-through).
    EXPECT_TRUE(pf.possibleEdge(p.block(2), p.block(0)));
    EXPECT_TRUE(pf.possibleEdge(p.block(2), p.block(3)));
    // The a..c loop shows up as a cyclic SCC and a natural loop.
    EXPECT_TRUE(pf.cfg.sccIsCycle[pf.cfg.sccId[0]]);
    ASSERT_EQ(pf.cfg.loops.size(), 1u);
    EXPECT_EQ(pf.cfg.loops[0].header, 0u);
}

TEST(ProgramFactsTest, CallAndReturnEdges)
{
    ProgramBuilder pb;
    const FuncId callee = pb.beginFunction("callee");
    const BlockId ca = pb.block(2);
    pb.ret(ca);
    pb.beginFunction("main");
    const BlockId m0 = pb.block(2); // call -> callee, returns to m1
    const BlockId m1 = pb.block(1);
    pb.callTo(m0, callee);
    pb.halt(m1);
    pb.setEntry(m0);
    const Program p = pb.build();
    const ProgramFacts pf = buildProgramFacts(p);

    EXPECT_TRUE(pf.possibleEdge(p.block(m0), p.block(ca)));
    // The return conservatively targets every call fall-through.
    EXPECT_TRUE(pf.possibleEdge(p.block(ca), p.block(m1)));
    EXPECT_FALSE(pf.possibleEdge(p.block(m1), p.block(ca)));
}

TEST(MemberFactsTest, InducedSubgraphCycle)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const ProgramFacts &pf = mgr.facts(p);

    // {a, b, c} closes the loop; {a, b} does not.
    const MemberFacts cyc = buildMemberFacts(
        pf, {&p.block(0), &p.block(1), &p.block(2)});
    EXPECT_TRUE(cyc.hasCycle);
    EXPECT_EQ(cyc.localIndex(2), 2u);
    EXPECT_EQ(cyc.localIndex(3), invalidNode);

    const MemberFacts lin =
        buildMemberFacts(pf, {&p.block(0), &p.block(1)});
    EXPECT_FALSE(lin.hasCycle);
    EXPECT_TRUE(lin.cfg.reachable[1]);
}

TEST(AnalysisManagerTest, FactsAreCachedPerProgram)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const ProgramFacts &first = mgr.facts(p);
    const ProgramFacts &second = mgr.facts(p);
    EXPECT_EQ(&first, &second);
    mgr.invalidate(p);
    const ProgramFacts &third = mgr.facts(p);
    EXPECT_EQ(third.prog, &p);
}

} // namespace
} // namespace analysis
} // namespace rsel
