/**
 * @file
 * Tests for program serialization and trace record/replay: the
 * trace-driven front door external tools (Pin/DynamoRIO clients)
 * would use.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "dynopt/dynopt_system.hpp"
#include "program/trace_io.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

class TraceIoSuiteTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(TraceIoSuiteTest, ProgramRoundTripsExactly)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    Program original = w->build(42);

    std::stringstream file;
    saveProgram(original, file);
    Program loaded = loadProgram(file);

    ASSERT_EQ(loaded.blocks().size(), original.blocks().size());
    ASSERT_EQ(loaded.functions().size(), original.functions().size());
    EXPECT_EQ(loaded.entry(), original.entry());
    EXPECT_EQ(loaded.phaseLengths(), original.phaseLengths());
    for (std::size_t i = 0; i < original.blocks().size(); ++i) {
        const BasicBlock &a = original.blocks()[i];
        const BasicBlock &b = loaded.blocks()[i];
        EXPECT_EQ(a.startAddr(), b.startAddr());
        EXPECT_EQ(a.sizeBytes(), b.sizeBytes());
        EXPECT_EQ(a.instCount(), b.instCount());
        EXPECT_EQ(a.terminator(), b.terminator());
        EXPECT_EQ(a.takenTarget(), b.takenTarget());
        EXPECT_EQ(a.func(), b.func());
    }
    for (std::size_t i = 0; i < original.functions().size(); ++i)
        EXPECT_EQ(loaded.functions()[i].name,
                  original.functions()[i].name);
}

TEST_P(TraceIoSuiteTest, ExecutionMatchesAfterRoundTrip)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    Program original = w->build(42);
    std::stringstream file;
    saveProgram(original, file);
    Program loaded = loadProgram(file);

    // Behaviours must round-trip too: identical seeds produce
    // identical streams.
    class Ids : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &ev) override
        {
            ids.push_back(ev.block->id());
            return true;
        }
        std::vector<BlockId> ids;
    };
    Executor e1(original, 17), e2(loaded, 17);
    Ids s1, s2;
    e1.run(30'000, s1);
    e2.run(30'000, s2);
    EXPECT_EQ(s1.ids, s2.ids);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, TraceIoSuiteTest,
    ::testing::Values("gzip", "gcc", "eon", "perlbmk", "vortex"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(TraceIoTest, RecordedTraceReplaysIdentically)
{
    Program p = buildGzip(42);

    // Record 200k events while simulating under NET.
    std::stringstream traceFile;
    class Tee : public ExecutionSink
    {
      public:
        Tee(ExecutionSink &a, ExecutionSink &b) : a_(a), b_(b) {}
        bool
        onEvent(const ExecEvent &ev) override
        {
            a_.onEvent(ev);
            return b_.onEvent(ev);
        }

      private:
        ExecutionSink &a_;
        ExecutionSink &b_;
    };

    DynOptSystem live(p);
    live.useNet();
    TraceWriter writer(traceFile, p);
    Tee tee(writer, live);
    Executor exec(p, 7);
    exec.run(200'000, tee);
    SimResult liveResult = live.finish();
    writer.finish(); // seal the trace before replaying it
    EXPECT_EQ(writer.eventCount(), 200'000u);

    // Replay the trace into a fresh system: identical metrics.
    DynOptSystem replayed(p);
    replayed.useNet();
    TraceReplayer replayer(p, traceFile);
    EXPECT_EQ(replayer.run(400'000, replayed), 200'000u);
    SimResult replayResult = replayed.finish();

    EXPECT_EQ(replayResult.regionCount, liveResult.regionCount);
    EXPECT_EQ(replayResult.expansionInsts, liveResult.expansionInsts);
    EXPECT_EQ(replayResult.regionTransitions,
              liveResult.regionTransitions);
    EXPECT_EQ(replayResult.cachedInsts, liveResult.cachedInsts);
    EXPECT_EQ(replayResult.coverSet90, liveResult.coverSet90);
    EXPECT_EQ(replayResult.exitDominatedRegions,
              liveResult.exitDominatedRegions);
}

TEST(TraceIoTest, ReplayerCanPause)
{
    Program p = buildNestedLoops();
    std::stringstream traceFile;
    TraceWriter writer(traceFile, p);
    Executor exec(p, 7);
    exec.run(1'000, writer);
    writer.finish();

    class Count : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &) override
        {
            ++n;
            return true;
        }
        std::uint64_t n = 0;
    };
    Count sink;
    TraceReplayer replayer(p, traceFile);
    EXPECT_EQ(replayer.run(300, sink), 300u);
    EXPECT_EQ(replayer.run(10'000, sink), 700u);
    EXPECT_EQ(replayer.run(10, sink), 0u); // exhausted
    EXPECT_EQ(sink.n, 1'000u);
    EXPECT_TRUE(replayer.atEnd());
}

namespace {

class NullSink : public ExecutionSink
{
  public:
    bool
    onEvent(const ExecEvent &) override
    {
        return true;
    }
};

/** Record `events` raw executor events of `p`, sealed. */
std::string
recordTrace(const Program &p, std::uint64_t seed, std::uint64_t events)
{
    std::ostringstream os;
    TraceWriter writer(os, p);
    Executor exec(p, seed);
    exec.run(events, writer);
    writer.finish();
    return os.str();
}

} // namespace

TEST(TraceIoTest, TruncatedTraceIsFatalNamingByteOffset)
{
    Program p = buildNestedLoops();
    const std::string full = recordTrace(p, 7, 1'000);

    // Chop the one-byte end-of-trace marker: the stream now ends at
    // an event boundary but without the marker.
    {
        std::istringstream is(full.substr(0, full.size() - 1));
        TraceReplayer replayer(p, is);
        NullSink sink;
        try {
            replayer.run(10'000, sink);
            FAIL() << "truncated trace replayed without error";
        } catch (const FatalError &e) {
            EXPECT_NE(std::string(e.what()).find("byte offset"),
                      std::string::npos)
                << e.what();
        }
    }

    // Cut mid-event: drop the marker AND leave a dangling
    // continuation byte (high bit set), i.e. a cut mid-LEB128.
    {
        std::string cut = full.substr(0, full.size() - 1);
        cut += static_cast<char>(0x80);
        std::istringstream is(cut);
        TraceReplayer replayer(p, is);
        NullSink sink;
        try {
            replayer.run(10'000, sink);
            FAIL() << "mid-LEB128 cut replayed without error";
        } catch (const FatalError &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("mid-LEB128"), std::string::npos)
                << what;
            EXPECT_NE(what.find("byte offset"), std::string::npos)
                << what;
        }
    }
}

TEST(TraceIoTest, MalformedInputsAreFatal)
{
    Program p = buildNestedLoops();
    {
        std::stringstream bad("not-a-program\n");
        EXPECT_THROW(loadProgram(bad), FatalError);
    }
    {
        std::stringstream bad("BADMAGIC\n");
        EXPECT_THROW(TraceReplayer(p, bad), FatalError);
    }
    {
        // Valid header, garbage block id.
        std::stringstream trace;
        trace << "RSTR1 4\n"; // matching block count
        trace.put(static_cast<char>(0xff));
        trace.put(static_cast<char>(0x7f)); // id 16383
        TraceReplayer replayer(p, trace);
        class Null : public ExecutionSink
        {
          public:
            bool
            onEvent(const ExecEvent &) override
            {
                return true;
            }
        };
        Null sink;
        EXPECT_THROW(replayer.run(10, sink), FatalError);
    }
    {
        // A trace recorded against a different program.
        std::stringstream trace;
        trace << "RSTR1 9999\n";
        EXPECT_THROW(TraceReplayer(p, trace), FatalError);
    }
    {
        // An out-of-range instruction size must not truncate.
        std::stringstream bad;
        bad << "rsel-program 1\n"
            << "function main\n"
            << "block 1 300 halt\n";
        EXPECT_THROW(loadProgram(bad), FatalError);
    }
    {
        // A conditional block without a behaviour line.
        std::stringstream bad;
        bad << "rsel-program 1\n"
            << "function main\n"
            << "block 1 4 cond 0\n"
            << "block 1 4 halt\n";
        EXPECT_THROW(loadProgram(bad), FatalError);
    }
}

// Property: for EVERY shipped selector — not just NET — replaying a
// recorded trace yields a SimResult identical field-for-field to the
// live run that produced the stream.
TEST(TraceIoTest, ReplayMatchesLiveUnderEverySelector)
{
    Program p = buildGzip(42);
    const std::uint64_t seed = 7, events = 60'000;
    const std::string trace = recordTrace(p, seed, events);

    for (const Algorithm algo : allSelectors) {
        SimOptions opts;
        opts.maxEvents = events;
        opts.seed = seed;

        DynOptSystem live(p);
        attachAlgorithm(live, algo, opts);
        Executor exec(p, seed);
        exec.run(events, live);
        const SimResult liveResult = live.finish();

        DynOptSystem replayed(p);
        attachAlgorithm(replayed, algo, opts);
        std::istringstream is(trace);
        TraceReplayer replayer(p, is);
        EXPECT_EQ(replayer.run(events, replayed), events)
            << algorithmName(algo);
        const SimResult replayResult = replayed.finish();

        EXPECT_EQ(testing::resultFingerprint(replayResult),
                  testing::resultFingerprint(liveResult))
            << algorithmName(algo);
    }
}

} // namespace
} // namespace rsel
