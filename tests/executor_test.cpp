/**
 * @file
 * Unit tests for the Executor: branch resolution, loops, calls,
 * phases, determinism.
 */

#include <gtest/gtest.h>

#include "program/executor.hpp"
#include "program/program_builder.hpp"

namespace rsel {

/** A looping program mixing loops, calls and random branches. */
Program buildProgramForDeterminism();

namespace {

/** Sink that records the sequence of executed block ids. */
class RecordingSink : public ExecutionSink
{
  public:
    bool
    onEvent(const ExecEvent &ev) override
    {
        ids.push_back(ev.block->id());
        taken.push_back(ev.takenBranch);
        return true;
    }

    std::vector<BlockId> ids;
    std::vector<bool> taken;
};

Program
straightLineProgram()
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    b.block(2);
    b.block(2);
    const BlockId last = b.block(2);
    b.halt(last);
    return b.build();
}

TEST(ExecutorTest, StraightLineRunsToHalt)
{
    Program p = straightLineProgram();
    Executor exec(p, 1);
    RecordingSink sink;
    const std::uint64_t n = exec.run(100, sink);
    EXPECT_EQ(n, 3u);
    EXPECT_TRUE(exec.finished());
    EXPECT_EQ(sink.ids, (std::vector<BlockId>{0, 1, 2}));
    EXPECT_FALSE(sink.taken[0]); // entry is not a taken branch
    EXPECT_FALSE(sink.taken[1]); // fall-through
    // A finished executor delivers nothing more.
    EXPECT_EQ(exec.run(10, sink), 0u);
}

TEST(ExecutorTest, LoopTripCountsAreExact)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(1);
    const BlockId latch = b.block(1);
    b.loopTo(latch, head, 5, 5);
    const BlockId out = b.block(1);
    b.halt(out);
    Program p = b.build();

    Executor exec(p, 1);
    RecordingSink sink;
    exec.run(1000, sink);
    // 5 iterations of (head, latch), then the exit block.
    ASSERT_EQ(sink.ids.size(), 11u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(sink.ids[2 * i], head);
        EXPECT_EQ(sink.ids[2 * i + 1], latch);
    }
    EXPECT_EQ(sink.ids.back(), out);
}

TEST(ExecutorTest, LoopRearmsOnReentry)
{
    // Outer loop runs the inner loop twice; inner must re-arm.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId outerHead = b.block(1);
    const BlockId innerHead = b.block(1);
    const BlockId innerLatch = b.block(1);
    b.loopTo(innerLatch, innerHead, 3, 3);
    const BlockId outerLatch = b.block(1);
    b.loopTo(outerLatch, outerHead, 2, 2);
    const BlockId out = b.block(1);
    b.halt(out);
    Program p = b.build();

    Executor exec(p, 1);
    RecordingSink sink;
    exec.run(1000, sink);
    // Per outer iteration: outerHead + 3*(innerHead,innerLatch) +
    // outerLatch = 8 events; 2 iterations + final halt block.
    EXPECT_EQ(sink.ids.size(), 2u * 8u + 1u);
}

TEST(ExecutorTest, CallAndReturnFollowTheStack)
{
    ProgramBuilder b(1);
    const FuncId callee = b.beginFunction("callee");
    const BlockId body = b.block(1);
    b.ret(body);
    b.beginFunction("main");
    const BlockId site = b.block(1);
    b.callTo(site, callee);
    const BlockId after = b.block(1);
    b.halt(after);
    Program p = b.build();

    Executor exec(p, 1);
    RecordingSink sink;
    exec.run(100, sink);
    EXPECT_EQ(sink.ids, (std::vector<BlockId>{site, body, after}));
    EXPECT_TRUE(sink.taken[1]); // call transfer
    EXPECT_TRUE(sink.taken[2]); // return transfer
}

TEST(ExecutorTest, ReturnPastEntryFrameEndsProgram)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId x = b.block(1);
    b.ret(x);
    Program p = b.build();
    Executor exec(p, 1);
    RecordingSink sink;
    EXPECT_EQ(exec.run(100, sink), 1u);
    EXPECT_TRUE(exec.finished());
}

TEST(ExecutorTest, BernoulliBranchMatchesProbability)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId split = b.block(1);
    const BlockId fall = b.block(1);
    const BlockId target = b.block(1);
    b.condTo(split, target, CondBehavior::bernoulli(0.25));
    b.jumpTo(fall, split);
    b.jumpTo(target, split);
    Program p = b.build();

    Executor exec(p, 3);
    RecordingSink sink;
    exec.run(30000, sink);
    int taken = 0, total = 0;
    for (std::size_t i = 0; i + 1 < sink.ids.size(); ++i) {
        if (sink.ids[i] == split) {
            ++total;
            taken += sink.ids[i + 1] == target ? 1 : 0;
        }
    }
    EXPECT_NEAR(static_cast<double>(taken) / total, 0.25, 0.03);
}

TEST(ExecutorTest, IndirectDispatchFollowsWeights)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId sw = b.block(1);
    const BlockId c0 = b.block(1);
    const BlockId c1 = b.block(1);
    b.jumpTo(c0, sw);
    b.jumpTo(c1, sw);
    IndirectBehavior ib;
    ib.targets = {c0, c1};
    ib.weightsByPhase = {{1.0, 4.0}};
    b.indirectJump(sw, std::move(ib));
    Program p = b.build();

    Executor exec(p, 5);
    RecordingSink sink;
    exec.run(20000, sink);
    int n0 = 0, n1 = 0;
    for (std::size_t i = 0; i + 1 < sink.ids.size(); ++i) {
        if (sink.ids[i] == sw) {
            n0 += sink.ids[i + 1] == c0 ? 1 : 0;
            n1 += sink.ids[i + 1] == c1 ? 1 : 0;
        }
    }
    EXPECT_NEAR(static_cast<double>(n1) / (n0 + n1), 0.8, 0.03);
}

TEST(ExecutorTest, PhasesModulateBranchBias)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId split = b.block(1);
    const BlockId fall = b.block(1);
    const BlockId target = b.block(1);
    // Phase 0: never taken. Phase 1: always taken.
    b.condTo(split, target, CondBehavior::phased({0.0, 1.0}));
    b.jumpTo(fall, split);
    b.jumpTo(target, split);
    b.setPhaseLengths({1000, 1000});
    Program p = b.build();

    Executor exec(p, 7);
    RecordingSink sink;
    exec.run(900, sink); // stay strictly inside phase 0
    for (std::size_t i = 0; i + 1 < sink.ids.size(); ++i) {
        if (sink.ids[i] == split) {
            EXPECT_EQ(sink.ids[i + 1], fall);
        }
    }
    EXPECT_EQ(exec.currentPhase(), 0u);

    exec.run(1000, sink); // cross into phase 1
    EXPECT_EQ(exec.currentPhase(), 1u);
    // The tail of the stream must now take the branch.
    bool sawTaken = false;
    for (std::size_t i = sink.ids.size() - 200; i + 1 < sink.ids.size();
         ++i) {
        if (sink.ids[i] == split) {
            EXPECT_EQ(sink.ids[i + 1], target);
            sawTaken = true;
        }
    }
    EXPECT_TRUE(sawTaken);
}

TEST(ExecutorTest, DeterministicForSameSeed)
{
    Program p = buildProgramForDeterminism();
    Executor a(p, 11), b2(p, 11);
    RecordingSink sa, sb;
    a.run(5000, sa);
    b2.run(5000, sb);
    EXPECT_EQ(sa.ids, sb.ids);
}

TEST(ExecutorTest, ResetRestartsCleanly)
{
    Program p = buildProgramForDeterminism();
    Executor a(p, 11);
    RecordingSink s1;
    a.run(2000, s1);
    a.reset(11);
    EXPECT_FALSE(a.finished());
    EXPECT_EQ(a.executedBlocks(), 0u);
    RecordingSink s2;
    a.run(2000, s2);
    EXPECT_EQ(s1.ids, s2.ids);
}

TEST(ExecutorTest, SinkCanStopEarlyAndResume)
{
    Program p = straightLineProgram();

    class StopAfterOne : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &ev) override
        {
            ids.push_back(ev.block->id());
            return false;
        }
        std::vector<BlockId> ids;
    };

    Executor exec(p, 1);
    StopAfterOne sink;
    EXPECT_EQ(exec.run(100, sink), 1u);
    EXPECT_EQ(exec.run(100, sink), 1u);
    EXPECT_EQ(exec.run(100, sink), 1u);
    EXPECT_EQ(sink.ids, (std::vector<BlockId>{0, 1, 2}));
    EXPECT_TRUE(exec.finished());
}

} // namespace

Program
buildProgramForDeterminism()
{
    ProgramBuilder b(2);
    const FuncId helper = b.beginFunction("helper");
    const BlockId h = b.block(2);
    b.ret(h);
    b.beginFunction("main");
    const BlockId head = b.block(2);
    const BlockId split = b.block(1);
    const BlockId thenSide = b.block(2);
    const BlockId site = b.block(1);
    b.callTo(site, helper);
    const BlockId latch = b.block(1);
    b.condTo(split, site, CondBehavior::bernoulli(0.5));
    b.jumpTo(thenSide, latch);
    b.loopTo(latch, head, 3, 17);
    const BlockId out = b.block(1);
    b.jumpTo(out, head); // endless: trips resample on re-entry
    return b.build();
}

} // namespace rsel
