/**
 * @file
 * Unit tests for LEI's circular branch-history buffer.
 */

#include <gtest/gtest.h>

#include "selection/history_buffer.hpp"
#include "support/error.hpp"

namespace rsel {
namespace {

HistoryBuffer::Entry
entry(Addr src, Addr tgt, bool exitFlag = false)
{
    return {src, tgt, exitFlag};
}

TEST(HistoryBufferTest, InsertFindAndUpdate)
{
    HistoryBuffer buf(8);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.find(0x100).has_value());

    const auto s0 = buf.insert(entry(0x10, 0x100));
    buf.setHashLocation(0x100, s0);
    EXPECT_EQ(buf.size(), 1u);
    ASSERT_TRUE(buf.find(0x100).has_value());
    EXPECT_EQ(*buf.find(0x100), s0);
    EXPECT_EQ(buf.at(s0).src, 0x10u);
    EXPECT_FALSE(buf.at(s0).fromCacheExit);

    // A second occurrence: find() sees the recorded location until
    // the hash is repointed.
    const auto s1 = buf.insert(entry(0x20, 0x100));
    EXPECT_EQ(*buf.find(0x100), s0);
    buf.setHashLocation(0x100, s1);
    EXPECT_EQ(*buf.find(0x100), s1);
}

TEST(HistoryBufferTest, EvictionInvalidatesOldEntries)
{
    HistoryBuffer buf(4);
    const auto s0 = buf.insert(entry(0x10, 0x100));
    buf.setHashLocation(0x100, s0);
    for (Addr a = 0; a < 4; ++a) {
        const auto s = buf.insert(entry(0x20, 0x200 + a));
        buf.setHashLocation(0x200 + a, s);
    }
    // 0x100's entry has been overwritten by the wrap.
    EXPECT_FALSE(buf.find(0x100).has_value());
    EXPECT_FALSE(buf.inWindow(s0));
    EXPECT_EQ(buf.size(), 4u);
}

TEST(HistoryBufferTest, TruncateDropsSuffix)
{
    HistoryBuffer buf(8);
    const auto s0 = buf.insert(entry(0x1, 0xA));
    buf.setHashLocation(0xA, s0);
    const auto s1 = buf.insert(entry(0x2, 0xB));
    buf.setHashLocation(0xB, s1);
    const auto s2 = buf.insert(entry(0x3, 0xC));
    buf.setHashLocation(0xC, s2);

    buf.truncateAfter(s0);
    EXPECT_EQ(buf.size(), 1u);
    EXPECT_TRUE(buf.inWindow(s0));
    EXPECT_FALSE(buf.inWindow(s1));
    EXPECT_FALSE(buf.inWindow(s2));
    // Stale hash entries are rejected lazily.
    EXPECT_FALSE(buf.find(0xB).has_value());
    EXPECT_TRUE(buf.find(0xA).has_value());
}

TEST(HistoryBufferTest, ReuseAfterTruncationChecksContent)
{
    HistoryBuffer buf(8);
    const auto s0 = buf.insert(entry(0x1, 0xA));
    buf.setHashLocation(0xA, s0);
    const auto s1 = buf.insert(entry(0x2, 0xB));
    buf.setHashLocation(0xB, s1);
    buf.truncateAfter(s0);

    // The slot that held 0xB is re-filled by a different target;
    // 0xB's stale hash entry must not match it.
    const auto s2 = buf.insert(entry(0x3, 0xC));
    buf.setHashLocation(0xC, s2);
    EXPECT_EQ(s2, s1); // sequence numbers restart after the cut
    EXPECT_FALSE(buf.find(0xB).has_value());
    EXPECT_EQ(*buf.find(0xC), s2);
}

TEST(HistoryBufferTest, CacheExitFlagIsPreserved)
{
    HistoryBuffer buf(4);
    const auto s = buf.insert(entry(0x9, 0x90, true));
    EXPECT_TRUE(buf.at(s).fromCacheExit);
}

TEST(HistoryBufferTest, LastSeqTracksNewestEntry)
{
    HistoryBuffer buf(4);
    buf.insert(entry(0x1, 0xA));
    const auto s1 = buf.insert(entry(0x2, 0xB));
    EXPECT_EQ(buf.lastSeq(), s1);
}

TEST(HistoryBufferTest, ClearEmptiesBufferAndTargetHash)
{
    HistoryBuffer buf(4);
    for (Addr a = 0; a < 8; ++a) {
        const auto s = buf.insert(entry(0x10 + a, 0x100 + a));
        buf.setHashLocation(0x100 + a, s);
    }
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_GT(buf.hashedTargets(), 0u);

    buf.clear();
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
    // The regression: clear() used to leave the target hash fully
    // populated, so it grew without bound across clears.
    EXPECT_EQ(buf.hashedTargets(), 0u);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_FALSE(buf.find(0x100 + a).has_value());

    // The buffer is fully usable after a clear, and repeated
    // clear cycles do not accumulate hash entries.
    for (int round = 0; round < 3; ++round) {
        const auto s = buf.insert(entry(0x20, 0x200));
        buf.setHashLocation(0x200, s);
        EXPECT_EQ(*buf.find(0x200), s);
        EXPECT_EQ(buf.hashedTargets(), 1u);
        buf.clear();
        EXPECT_EQ(buf.hashedTargets(), 0u);
        EXPECT_FALSE(buf.find(0x200).has_value());
    }
}

TEST(HistoryBufferTest, TruncationDoesNotLeakHashEntries)
{
    // Regression: truncateAfter() rewinds the sequence counter but
    // used to leave the dropped entries' target-hash pointers in
    // place. Each truncate-heavy cycle with fresh target addresses
    // then grew the hash by a few entries, without bound. The purge
    // discipline keeps the live hash bounded by the buffer capacity.
    constexpr std::size_t cap = 16;
    HistoryBuffer buf(cap);
    Addr nextTgt = 0x1000;
    for (int round = 0; round < 10000; ++round) {
        // Grow a few entries with never-before-seen targets...
        const auto anchor = buf.insert(entry(0x10, nextTgt));
        buf.setHashLocation(nextTgt, anchor);
        nextTgt += 8;
        for (int k = 0; k < 3; ++k) {
            const auto s = buf.insert(entry(0x20, nextTgt));
            buf.setHashLocation(nextTgt, s);
            nextTgt += 8;
        }
        // ...then cut back to the anchor, as LEI does after forming
        // a trace (Figure 5, line 13).
        buf.truncateAfter(anchor);
        ASSERT_LE(buf.hashedTargets(), cap)
            << "hash leaked after " << round << " truncations";
    }
    // The buffer itself stays fully functional.
    const auto s = buf.insert(entry(0x30, 0x42));
    buf.setHashLocation(0x42, s);
    EXPECT_EQ(*buf.find(0x42), s);
}

TEST(HistoryBufferTest, EvictionBoundsHashOccupancy)
{
    // Same bound for the wrap-around path: evicting the oldest entry
    // drops its hash pointer, so streaming distinct targets through
    // the buffer never accumulates more than capacity() entries.
    constexpr std::size_t cap = 8;
    HistoryBuffer buf(cap);
    for (Addr a = 0; a < 4096; ++a) {
        const auto s = buf.insert(entry(0x10, 0x1000 + a * 8));
        buf.setHashLocation(0x1000 + a * 8, s);
        ASSERT_LE(buf.hashedTargets(), cap);
    }
    EXPECT_EQ(buf.size(), cap);
}

TEST(HistoryBufferTest, GuardsAgainstMisuse)
{
    HistoryBuffer buf(4);
    EXPECT_THROW(buf.lastSeq(), PanicError);
    EXPECT_THROW(buf.at(0), PanicError);
    EXPECT_THROW(HistoryBuffer(0), PanicError);
}

} // namespace
} // namespace rsel
