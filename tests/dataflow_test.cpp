/**
 * @file
 * Unit tests for the generic dataflow framework: the worklist
 * solver in both directions, the canned lattices, the canned
 * reachability analyses, convergence and the transfer budget.
 */

#include <gtest/gtest.h>

#include "analysis/dataflow.hpp"

namespace rsel {
namespace analysis {
namespace {

/** 0 -> {1, 2} -> 3: the standard diamond. */
DiGraph
diamond()
{
    DiGraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 3);
    g.addEdge(2, 3);
    return g;
}

TEST(BitsetLatticeTest, BitOperationsAcrossWords)
{
    const BitsetLattice lattice(130); // three 64-bit words
    BitsetLattice::Value v = lattice.bottom();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(BitsetLattice::countBits(v), 0u);

    BitsetLattice::setBit(v, 0);
    BitsetLattice::setBit(v, 64);
    BitsetLattice::setBit(v, 129);
    EXPECT_TRUE(BitsetLattice::testBit(v, 0));
    EXPECT_TRUE(BitsetLattice::testBit(v, 64));
    EXPECT_TRUE(BitsetLattice::testBit(v, 129));
    EXPECT_FALSE(BitsetLattice::testBit(v, 1));
    EXPECT_EQ(BitsetLattice::countBits(v), 3u);

    BitsetLattice::Value w = lattice.bottom();
    BitsetLattice::setBit(w, 1);
    lattice.meetInto(w, v); // meet = union
    EXPECT_EQ(BitsetLattice::countBits(w), 4u);
    EXPECT_FALSE(lattice.equal(v, w));
}

TEST(DataflowSolverTest, ForwardReachingSourcesOnDiamond)
{
    const DiGraph g = diamond();
    const CfgFacts cfg = CfgFacts::compute(g, 0);
    const DataflowResult<BitsetLattice::Value> res =
        reachingSources(g, cfg, {1, 2});

    EXPECT_TRUE(res.converged);
    // The join sees both sources, each arm only itself, the entry
    // neither (sources reach themselves, not their predecessors).
    EXPECT_EQ(BitsetLattice::countBits(res.out[0]), 0u);
    EXPECT_TRUE(BitsetLattice::testBit(res.out[1], 0));
    EXPECT_FALSE(BitsetLattice::testBit(res.out[1], 1));
    EXPECT_TRUE(BitsetLattice::testBit(res.out[2], 1));
    EXPECT_FALSE(BitsetLattice::testBit(res.out[2], 0));
    EXPECT_EQ(BitsetLattice::countBits(res.out[3]), 2u);
}

TEST(DataflowSolverTest, BackwardReachesAnyOfOnChain)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    const CfgFacts cfg = CfgFacts::compute(g, 0);

    const DataflowResult<std::uint8_t> tail =
        reachesAnyOf(g, cfg, {0, 0, 1});
    EXPECT_TRUE(tail.converged);
    EXPECT_TRUE(tail.out[0]);
    EXPECT_TRUE(tail.out[1]);
    EXPECT_TRUE(tail.out[2]);

    // The entry as target: nothing upstream of it exists, so only
    // the entry itself is in the frontier — direction matters.
    const DataflowResult<std::uint8_t> head =
        reachesAnyOf(g, cfg, {1, 0, 0});
    EXPECT_TRUE(head.out[0]);
    EXPECT_FALSE(head.out[1]);
    EXPECT_FALSE(head.out[2]);
}

TEST(DataflowSolverTest, CycleReachesFixpoint)
{
    DiGraph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0);
    const CfgFacts cfg = CfgFacts::compute(g, 0);
    const DataflowResult<BitsetLattice::Value> res =
        reachingSources(g, cfg, {1});

    EXPECT_TRUE(res.converged);
    // Around the cycle, the source reaches every node.
    for (std::uint32_t u = 0; u < 3; ++u)
        EXPECT_TRUE(BitsetLattice::testBit(res.out[u], 0))
            << "node " << u;
    // The cycle forces at least one re-visit past the first sweep.
    EXPECT_GT(res.transfersRun, 3u);
}

TEST(DataflowSolverTest, UnreachableNodesGetDefinedValues)
{
    DiGraph g(3);
    g.addEdge(0, 1); // node 2 is disconnected
    const CfgFacts cfg = CfgFacts::compute(g, 0);
    const DataflowResult<BitsetLattice::Value> res =
        reachingSources(g, cfg, {2});

    EXPECT_TRUE(res.converged);
    // A source reaches itself even off the rooted subgraph, and
    // leaks nowhere without edges.
    EXPECT_TRUE(BitsetLattice::testBit(res.out[2], 0));
    EXPECT_EQ(BitsetLattice::countBits(res.out[0]), 0u);
    EXPECT_EQ(BitsetLattice::countBits(res.out[1]), 0u);
}

TEST(DataflowSolverTest, TransferBudgetReportsNonConvergence)
{
    const DiGraph g = diamond();
    const CfgFacts cfg = CfgFacts::compute(g, 0);
    const BitsetLattice lattice(1);
    const DataflowResult<BitsetLattice::Value> res = solveDataflow(
        g, cfg, DataflowDirection::Forward, lattice,
        [&lattice](std::uint32_t node, BitsetLattice::Value in) {
            if (node == 0)
                BitsetLattice::setBit(in, 0);
            return in;
        },
        /*maxTransfers=*/2);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.transfersRun, 2u);
}

TEST(DataflowSolverTest, CustomTransferMatchesCfgReachability)
{
    // Forward "reachable from entry" via BoolOrLattice must agree
    // with the independently computed CfgFacts reachability.
    DiGraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 1);
    g.addEdge(2, 3);
    g.addEdge(4, 5); // 4 and 5 hang off no path from the entry
    const CfgFacts cfg = CfgFacts::compute(g, 0);
    const BoolOrLattice lattice;
    const DataflowResult<std::uint8_t> res = solveDataflow(
        g, cfg, DataflowDirection::Forward, lattice,
        [](std::uint32_t node, std::uint8_t in) {
            return static_cast<std::uint8_t>(in | (node == 0));
        });
    ASSERT_TRUE(res.converged);
    for (std::uint32_t u = 0; u < g.size(); ++u)
        EXPECT_EQ(res.out[u] != 0, cfg.reachable[u] != 0)
            << "node " << u;
}

TEST(DataflowSolverTest, EmptyGraphIsTrivial)
{
    DiGraph g(0);
    const CfgFacts cfg = CfgFacts::compute(g, invalidNode);
    const DataflowResult<std::uint8_t> res = reachesAnyOf(g, cfg, {});
    EXPECT_TRUE(res.converged);
    EXPECT_TRUE(res.out.empty());
    EXPECT_EQ(res.transfersRun, 0u);
}

} // namespace
} // namespace analysis
} // namespace rsel
