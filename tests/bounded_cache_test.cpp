/**
 * @file
 * Tests for the bounded code cache: eviction policies, regeneration
 * accounting, and the paper's deferred claim that algorithms which
 * cache less code regenerate less under pressure (Section 2.3:
 * "our region-selection algorithms should help improve the
 * performance of dynamic optimization systems with bounded code
 * caches ... [they] regenerate fewer evicted regions").
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "runtime/code_cache.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(BoundedCacheTest, UnboundedNeverEvicts)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache; // default limits: unbounded
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b})));
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::e, Ids::f})));
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.liveRegionCount(), 2u);
    EXPECT_EQ(cache.liveBytes(), cache.estimatedSizeBytes());
}

TEST(BoundedCacheTest, FifoEvictsOldestUntilFit)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CacheLimits limits;
    limits.policy = CacheLimits::Policy::Fifo;

    // Size the capacity to hold roughly two single-block regions.
    Region probe = Region::makeTrace(0, pathOf(p, {Ids::a}));
    limits.capacityBytes =
        2 * (probe.byteSize() + probe.exitStubCount() * 10) + 8;

    CodeCache cache(limits);
    const RegionId r0 = cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::a})));
    const RegionId r1 = cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::e})));
    EXPECT_EQ(cache.evictions(), 0u);

    // Third region displaces the oldest (r0), not r1.
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::l})));
    EXPECT_GE(cache.evictions(), 1u);
    EXPECT_FALSE(cache.isLive(r0));
    EXPECT_TRUE(cache.isLive(r1));
    EXPECT_EQ(cache.lookup(p.block(Ids::a).startAddr()), nullptr);
    EXPECT_NE(cache.lookup(p.block(Ids::e).startAddr()), nullptr);
    // The evicted region's object is still reachable by id.
    EXPECT_EQ(cache.region(r0).entryAddr(),
              p.block(Ids::a).startAddr());
}

TEST(BoundedCacheTest, FullFlushEmptiesEverything)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CacheLimits limits;
    limits.policy = CacheLimits::Policy::FullFlush;
    Region probe = Region::makeTrace(0, pathOf(p, {Ids::a}));
    limits.capacityBytes =
        2 * (probe.byteSize() + probe.exitStubCount() * 10) + 8;

    CodeCache cache(limits);
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::a})));
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::e})));
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::l})));
    EXPECT_EQ(cache.flushes(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    EXPECT_EQ(cache.liveRegionCount(), 1u); // only the newcomer
    EXPECT_NE(cache.lookup(p.block(Ids::l).startAddr()), nullptr);
}

TEST(BoundedCacheTest, RegenerationCountsReinsertedEntries)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CacheLimits limits;
    limits.policy = CacheLimits::Policy::Fifo;
    Region probe = Region::makeTrace(0, pathOf(p, {Ids::a}));
    limits.capacityBytes =
        probe.byteSize() + probe.exitStubCount() * 10 + 4;

    CodeCache cache(limits);
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::a})));
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::e})));
    EXPECT_EQ(cache.regenerations(), 0u);
    // Re-insert at A's entry after its eviction: one regeneration.
    cache.insert(
        Region::makeTrace(cache.nextRegionId(), pathOf(p, {Ids::a})));
    EXPECT_EQ(cache.regenerations(), 1u);
}

TEST(BoundedCacheTest, OversizedRegionLivesAlone)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CacheLimits limits;
    limits.policy = CacheLimits::Policy::Fifo;
    limits.capacityBytes = 1; // nothing fits
    CodeCache cache(limits);
    const RegionId id = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::a, Ids::b, Ids::d})));
    EXPECT_TRUE(cache.isLive(id));
    EXPECT_EQ(cache.liveRegionCount(), 1u);
}

TEST(BoundedCacheTest, EndToEndBoundedRunStaysConsistent)
{
    Program p = buildGzip(42);
    SimOptions opts;
    opts.maxEvents = 800'000;
    opts.seed = 7;

    SimResult unbounded = simulate(p, Algorithm::Net, opts);

    // Half the unbounded footprint forces real cache pressure.
    opts.cache.capacityBytes = unbounded.estimatedCacheBytes / 2;
    for (auto policy : {CacheLimits::Policy::FullFlush,
                        CacheLimits::Policy::Fifo}) {
        opts.cache.policy = policy;
        SimResult bounded = simulate(p, Algorithm::Net, opts);
        EXPECT_GT(bounded.cacheEvictions, 0u);
        EXPECT_GT(bounded.cacheRegenerations, 0u);
        EXPECT_LE(bounded.cacheLiveBytes,
                  std::max<std::uint64_t>(opts.cache.capacityBytes,
                                          1024));
        // Bounded runs pay warm-up repeatedly: more regions
        // selected, lower-or-equal hit rate.
        EXPECT_GE(bounded.regionCount, unbounded.regionCount);
        EXPECT_LE(bounded.hitRate(), unbounded.hitRate() + 1e-9);
        EXPECT_EQ(bounded.totalInsts,
                  bounded.cachedInsts + bounded.interpretedInsts);
    }
}

TEST(BoundedCacheTest, PaperClaimFewerRegenerationsWithCombination)
{
    // The deferred Section 2.3 claim: algorithms that produce fewer,
    // less duplicated regions regenerate less under a bounded cache.
    Program p = buildGzip(42);
    SimOptions opts;
    opts.maxEvents = 800'000;
    opts.seed = 7;
    SimResult netUnbounded = simulate(p, Algorithm::Net, opts);

    opts.cache.capacityBytes = netUnbounded.estimatedCacheBytes / 2;
    opts.cache.policy = CacheLimits::Policy::Fifo;
    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult clei = simulate(p, Algorithm::LeiCombined, opts);

    EXPECT_LT(clei.cacheRegenerations, net.cacheRegenerations);
    EXPECT_GE(clei.hitRate(), net.hitRate() - 0.02);
}

} // namespace
} // namespace rsel
