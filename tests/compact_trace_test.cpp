/**
 * @file
 * Unit and property tests for the Figure 14 compact trace encoding.
 */

#include <gtest/gtest.h>

#include "program/executor.hpp"
#include "program/program_builder.hpp"
#include "selection/compact_trace.hpp"
#include "support/random.hpp"

namespace rsel {
namespace {

/** A small program exercising every branch kind. */
Program
mixedProgram(std::uint64_t seed)
{
    ProgramBuilder b(seed);
    const FuncId callee = b.beginFunction("callee");
    const BlockId cbody = b.block(2);
    b.ret(cbody);

    b.beginFunction("main");
    const BlockId head = b.block(2);
    const BlockId split = b.block(1);
    const BlockId thenSide = b.block(2);
    const BlockId sw = b.block(1);
    const BlockId case0 = b.block(1);
    const BlockId case1 = b.block(2);
    const BlockId site = b.block(1);
    b.callTo(site, callee);
    const BlockId latch = b.block(1);

    b.condTo(split, sw, CondBehavior::bernoulli(0.5));
    b.jumpTo(thenSide, sw);
    IndirectBehavior ib;
    ib.targets = {case0, case1};
    ib.weightsByPhase = {{1.0, 1.0}};
    b.indirectJump(sw, std::move(ib));
    b.jumpTo(case0, site);
    b.jumpTo(case1, site);
    b.loopTo(latch, head, 2, 9);
    const BlockId out = b.block(1);
    b.jumpTo(out, head);
    return b.build();
}

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(CompactTraceTest, SingleBlockRoundTrip)
{
    Program p = mixedProgram(1);
    auto path = pathOf(p, {1});
    CompactTrace ct = CompactTrace::encode(path);
    // Just the end marker and the 64-bit end address.
    EXPECT_EQ(ct.bitLength(), 66u);
    EXPECT_EQ(ct.sizeBytes(), 9u);
    auto decoded = ct.decode(p, p.block(1).startAddr());
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0]->id(), 1u);
}

TEST(CompactTraceTest, CondAndJumpBitsAreTwoPerBranch)
{
    Program p = mixedProgram(1);
    // head(1) -> split(2) -> then(3, cond not taken) -> jump sw(4):
    // two 2-bit codes (cond "10", jump "11") plus the end marker.
    auto path = pathOf(p, {1, 2, 3, 4});
    CompactTrace ct = CompactTrace::encode(path);
    EXPECT_EQ(ct.bitLength(), 2u + 2u + 2u + 64u);
    auto decoded = ct.decode(p, p.block(1).startAddr());
    ASSERT_EQ(decoded.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(decoded[i]->id(), path[i]->id());
}

TEST(CompactTraceTest, IndirectBranchCarriesTargetAddress)
{
    Program p = mixedProgram(1);
    // split taken -> sw -> indirect to case1.
    auto path = pathOf(p, {2, 4, 6});
    CompactTrace ct = CompactTrace::encode(path);
    // cond "11" + indirect "01" + 64-bit target + end.
    EXPECT_EQ(ct.bitLength(), 2u + 2u + 64u + 2u + 64u);
    auto decoded = ct.decode(p, p.block(2).startAddr());
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[2]->id(), 6u);
}

TEST(CompactTraceTest, TraceEndingInFallThroughBlock)
{
    Program p = mixedProgram(1);
    // head(1) has a None terminator (falls through to split). A
    // trace ending at head must still decode: the end address is
    // read from the tail before walking.
    auto path = pathOf(p, {1});
    auto decoded =
        CompactTrace::encode(path).decode(p, p.block(1).startAddr());
    EXPECT_EQ(decoded.size(), 1u);
}

TEST(CompactTraceTest, CallAndReturnRoundTrip)
{
    Program p = mixedProgram(1);
    // case0(5) -> jump site(7) -> call callee(0) -> return latch(8).
    auto path = pathOf(p, {5, 7, 0, 8});
    auto decoded =
        CompactTrace::encode(path).decode(p, p.block(5).startAddr());
    ASSERT_EQ(decoded.size(), 4u);
    EXPECT_EQ(decoded[2]->id(), 0u);
    EXPECT_EQ(decoded[3]->id(), 8u);
}

/**
 * Property: any executed path round-trips exactly. Parameterized
 * over executor seeds to sample many distinct paths, including
 * indirect targets and loop iterations.
 */
class CompactTraceRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(CompactTraceRoundTrip, ExecutedPathsRoundTrip)
{
    Program p = mixedProgram(3);

    // Collect an executed block sequence.
    class Collect : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &ev) override
        {
            blocks.push_back(ev.block);
            return true;
        }
        std::vector<const BasicBlock *> blocks;
    };

    Executor exec(p, static_cast<std::uint64_t>(GetParam()));
    Collect sink;
    exec.run(300, sink);
    ASSERT_GT(sink.blocks.size(), 10u);

    // Slice random windows out of the stream and round-trip them.
    Rng rng(GetParam() * 977u + 3u);
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t start =
            rng.nextBelow(sink.blocks.size() - 2);
        const std::size_t len =
            1 + rng.nextBelow(sink.blocks.size() - start - 1);
        std::vector<const BasicBlock *> path(
            sink.blocks.begin() + start,
            sink.blocks.begin() + start + len);
        // The Figure 14 format marks the end by the address of the
        // trace's last instruction, so it requires the final block
        // to be unique within the path — true of all real traces
        // (selection never repeats a block), but not of arbitrary
        // execution windows. Skip windows violating it.
        bool lastRepeats = false;
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
            lastRepeats |= path[i]->id() == path.back()->id();
        if (lastRepeats)
            continue;
        CompactTrace ct = CompactTrace::encode(path);
        auto decoded = ct.decode(p, path.front()->startAddr());
        ASSERT_EQ(decoded.size(), path.size());
        for (std::size_t i = 0; i < path.size(); ++i)
            EXPECT_EQ(decoded[i]->id(), path[i]->id());
        // Size model: at most 2 bits per block transition plus 64
        // per indirect, plus the 66-bit tail.
        EXPECT_LE(ct.bitLength(), 66u * path.size() + 66u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactTraceRoundTrip,
                         ::testing::Range(1, 13));

} // namespace
} // namespace rsel
