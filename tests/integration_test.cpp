/**
 * @file
 * Integration tests: the full workload suite under all four
 * algorithm configurations. Checks cross-metric invariants on every
 * run and the paper's headline directions on suite aggregates.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "support/stats.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

constexpr std::uint64_t integrationEvents = 400'000;

SimResult
runOne(const WorkloadInfo &w, Algorithm algo)
{
    Program p = w.build(42);
    SimOptions opts;
    opts.maxEvents = integrationEvents;
    opts.seed = 7;
    SimResult r = simulate(p, algo, opts);
    r.workload = w.name;
    return r;
}

/** Invariants every run must satisfy, regardless of algorithm. */
void
checkInvariants(const SimResult &r)
{
    SCOPED_TRACE(r.workload + " / " + r.selector);
    EXPECT_EQ(r.totalInsts, r.cachedInsts + r.interpretedInsts);
    EXPECT_GE(r.hitRate(), 0.0);
    EXPECT_LE(r.hitRate(), 1.0);
    EXPECT_EQ(r.regions.size(), r.regionCount);
    EXPECT_LE(r.coverSet90, r.regionCount);
    EXPECT_LE(r.spanningRegions, r.regionCount);
    EXPECT_LE(r.cycleTerminations, r.regionExecutions);
    EXPECT_LE(r.exitDominatedRegions, r.regionCount);
    EXPECT_LE(r.exitDominatedDupInsts, r.expansionInsts);
    EXPECT_GE(r.estimatedCacheBytes, r.expansionBytes);

    std::uint64_t insts = 0, stubs = 0, execs = 0;
    for (const RegionStats &reg : r.regions) {
        insts += reg.instCount;
        stubs += reg.exitStubs;
        execs += reg.executions;
        EXPECT_GE(reg.instCount, reg.blockCount); // >=1 inst/block
        EXPECT_LE(reg.cycleEnds, reg.executions);
    }
    EXPECT_EQ(insts, r.expansionInsts);
    EXPECT_EQ(stubs, r.exitStubs);
    EXPECT_EQ(execs, r.regionExecutions);
}

class IntegrationTest
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(IntegrationTest, AllAlgorithmsSatisfyInvariants)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    ASSERT_NE(w, nullptr);
    for (Algorithm algo : allAlgorithms) {
        SimResult r = runOne(*w, algo);
        checkInvariants(r);
        // The paper's systems keep 98%+ of execution in the cache;
        // with this test's short warm-up budget, demand 85%+ on
        // every workload (gcc, the largest, warms up slowest — in
        // the paper too it has the lowest hit rate).
        EXPECT_GT(r.hitRate(), 0.85) << w->name << " under "
                                     << algorithmName(algo);
        EXPECT_GE(r.regionCount, 1u);
    }
}

TEST_P(IntegrationTest, ResultsAreReproducible)
{
    const WorkloadInfo *w = findWorkload(GetParam());
    SimResult a = runOne(*w, Algorithm::LeiCombined);
    SimResult b = runOne(*w, Algorithm::LeiCombined);
    EXPECT_EQ(a.regionCount, b.regionCount);
    EXPECT_EQ(a.expansionInsts, b.expansionInsts);
    EXPECT_EQ(a.regionTransitions, b.regionTransitions);
    EXPECT_EQ(a.cachedInsts, b.cachedInsts);
    EXPECT_EQ(a.coverSet90, b.coverSet90);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, IntegrationTest,
    ::testing::Values("gzip", "vpr", "gcc", "mcf", "crafty", "parser",
                      "eon", "perlbmk", "gap", "vortex", "bzip2",
                      "twolf"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

/**
 * The headline directions must be robust to the executor seed, not
 * artifacts of one particular branch-outcome stream.
 */
class SeedRobustnessTest : public ::testing::TestWithParam<int>
{};

TEST_P(SeedRobustnessTest, KeyDirectionsHoldAcrossSeeds)
{
    std::vector<double> coverLeiOverNet, transCombLeiOverLei;
    for (const WorkloadInfo &w : workloadSuite()) {
        Program p = w.build(42);
        SimOptions opts;
        opts.maxEvents = integrationEvents;
        opts.seed = static_cast<std::uint64_t>(GetParam());
        SimResult net = simulate(p, Algorithm::Net, opts);
        SimResult lei = simulate(p, Algorithm::Lei, opts);
        SimResult clei = simulate(p, Algorithm::LeiCombined, opts);
        coverLeiOverNet.push_back(
            ratio(lei.coverSet90, net.coverSet90));
        transCombLeiOverLei.push_back(ratio(
            static_cast<double>(clei.regionTransitions),
            static_cast<double>(lei.regionTransitions)));
    }
    EXPECT_LT(mean(coverLeiOverNet), 1.0);
    EXPECT_LT(mean(transCombLeiOverLei), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest,
                         ::testing::Values(3, 11, 29));

/**
 * Paper-direction checks on suite aggregates. These use generous
 * margins: the synthetic workloads reproduce directions, not exact
 * magnitudes.
 */
TEST(PaperDirectionTest, SuiteAggregatesMatchThePaper)
{
    std::vector<double> coverLeiOverNet;
    std::vector<double> transCombNetOverNet;
    std::vector<double> transCombLeiOverLei;
    std::vector<double> coverCombLeiOverNet;
    std::vector<double> spannedNet, spannedLei;
    double netStubs = 0, combLeiStubs = 0;
    double netTrans = 0, combLeiTrans = 0;

    for (const WorkloadInfo &w : workloadSuite()) {
        SimResult net = runOne(w, Algorithm::Net);
        SimResult lei = runOne(w, Algorithm::Lei);
        SimResult combNet = runOne(w, Algorithm::NetCombined);
        SimResult combLei = runOne(w, Algorithm::LeiCombined);

        coverLeiOverNet.push_back(
            ratio(lei.coverSet90, net.coverSet90));
        transCombNetOverNet.push_back(ratio(
            combNet.regionTransitions, net.regionTransitions));
        transCombLeiOverLei.push_back(ratio(
            combLei.regionTransitions, lei.regionTransitions));
        coverCombLeiOverNet.push_back(
            ratio(combLei.coverSet90, net.coverSet90));
        spannedNet.push_back(net.spannedCycleRatio());
        spannedLei.push_back(lei.spannedCycleRatio());
        netStubs += static_cast<double>(net.exitStubs);
        combLeiStubs += static_cast<double>(combLei.exitStubs);
        netTrans += static_cast<double>(net.regionTransitions);
        combLeiTrans += static_cast<double>(combLei.regionTransitions);
    }

    // Section 3.2.3: LEI's 90% cover sets are smaller on average.
    EXPECT_LT(mean(coverLeiOverNet), 1.0);
    // Section 3.2.1: LEI spans more cycles on average.
    EXPECT_GT(mean(spannedLei), mean(spannedNet));
    // Section 4.3.2: combination reduces transitions for both bases.
    EXPECT_LT(mean(transCombNetOverNet), 1.0);
    EXPECT_LT(mean(transCombLeiOverLei), 1.0);
    // Section 6 headline: combined LEI vs NET — far fewer exit
    // stubs, transitions roughly halved or better, cover sets much
    // smaller.
    EXPECT_LT(combLeiStubs, netStubs);
    EXPECT_LT(combLeiTrans, 0.75 * netTrans);
    EXPECT_LT(mean(coverCombLeiOverNet), 0.85);
}

} // namespace
} // namespace rsel
