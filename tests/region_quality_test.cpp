/**
 * @file
 * Tests for the Section 4.4 optimization-opportunity analyzer.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "metrics/region_quality.hpp"
#include "program/program_builder.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(RegionQualityTest, LinearTraceHasNoOpportunities)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    Region r = Region::makeTrace(0, pathOf(p, {Ids::a, Ids::b, Ids::d}));
    const RegionQuality q = analyzeRegionQuality(r, p);
    EXPECT_FALSE(q.hasInternalCycle);
    EXPECT_FALSE(q.licmCapable);
    EXPECT_EQ(q.dualSuccessorSplits, 0u);
    EXPECT_EQ(q.joinBlocks, 0u);
    EXPECT_EQ(q.internalEdges, 2u);
}

TEST(RegionQualityTest, CycleSpanningTraceIsNotLicmCapable)
{
    // The paper: "even a trace that spans a cycle cannot perform
    // this optimization, because it has nowhere outside the cycle
    // to move an instruction."
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Region r =
        Region::makeTrace(0, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    ASSERT_TRUE(r.spansCycle());
    const RegionQuality q = analyzeRegionQuality(r, p);
    EXPECT_TRUE(q.hasInternalCycle);
    EXPECT_FALSE(q.licmCapable); // the entry is inside the cycle
}

TEST(RegionQualityTest, MultiPathRegionHasBothSidesAndJoin)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Region r = Region::makeMultiPath(
        0, pathOf(p, {Ids::a, Ids::b, Ids::c, Ids::d, Ids::f}));
    const RegionQuality q = analyzeRegionQuality(r, p);
    // A's taken and fall-through are both inside: compensation-free
    // redundancy elimination across the if-else.
    EXPECT_EQ(q.dualSuccessorSplits, 1u);
    // D joins the two sides; A joins F's back edge... A has preds
    // {F}, D has preds {B, C}: exactly one ≥2-pred block.
    EXPECT_EQ(q.joinBlocks, 1u);
    EXPECT_TRUE(q.hasInternalCycle);
}

TEST(RegionQualityTest, InnerCycleWithPreheaderIsLicmCapable)
{
    // A multi-path region whose entry leads into a self-contained
    // inner loop: the entry blocks form the in-region "above the
    // loop" place the paper says LICM needs.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId pre = b.block(2);   // preheader inside the region
    const BlockId head = b.block(3);  // inner-loop head
    const BlockId latch = b.block(2); // inner-loop latch
    b.loopTo(latch, head, 5, 5);
    const BlockId out = b.block(1);
    b.halt(out);
    b.setEntry(pre);
    Program p = b.build();

    Region r = Region::makeMultiPath(
        0, pathOf(p, {pre, head, latch}));
    const RegionQuality q = analyzeRegionQuality(r, p);
    EXPECT_TRUE(q.hasInternalCycle);
    EXPECT_TRUE(q.licmCapable);
}

TEST(RegionQualityTest, CombinedRegionsOfferMoreOpportunities)
{
    // End-to-end (the Section 4.4 argument): across a workload,
    // combined selection yields regions with if-else structure that
    // single-path selection cannot have.
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimOptions opts;
    opts.maxEvents = 200'000;
    opts.seed = 9;
    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult comb = simulate(p, Algorithm::NetCombined, opts);

    EXPECT_EQ(net.dualSplitRegions, 0u); // traces are single-path
    EXPECT_GE(comb.dualSplitRegions, 1u);
    EXPECT_GE(comb.joinBlocksTotal, 1u);
}

} // namespace
} // namespace rsel
