/**
 * @file
 * Tests for the parallel sweep engine: thread-pool mechanics, grid
 * construction, seed policy, result merging, and the determinism
 * contract (parallel results identical to serial).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>

#include "driver/sweep_runner.hpp"
#include "driver/thread_pool.hpp"
#include "support/error.hpp"

namespace rsel {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAndIdleWaitReturns)
{
    ThreadPool pool(2);
    pool.wait(); // no tasks: must not hang
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 10 * (round + 1));
    }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 20; ++i)
            pool.submit([&counter] { ++counter; });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, HardwareWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
}

TEST(ThreadPoolTest, TaskExceptionRethrownFromWait)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    try {
        pool.wait();
        FAIL() << "expected the task exception from wait()";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(ThreadPoolTest, ThrowCancelsPendingTasks)
{
    // One worker so ordering is deterministic: the first task blocks
    // until every submit below has landed in the queue, then throws;
    // none of the queued successors may run.
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    std::atomic<int> ran{0};
    pool.submit([opened] {
        opened.wait();
        throw std::runtime_error("first");
    });
    for (int i = 0; i < 50; ++i)
        pool.submit([&ran] { ++ran; });
    gate.set_value();
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolTest, PoolIsReusableAfterRethrow)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error is consumed: later rounds run clean.
    std::atomic<int> counter{0};
    for (int i = 0; i < 25; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 25);
}

TEST(ThreadPoolTest, DestructorDiscardsUncollectedException)
{
    // A pool destroyed without wait() after a task threw must not
    // rethrow from the destructor (that would terminate).
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("dropped"); });
}

TEST(ThreadPoolTest, CancelPendingDropsQueuedTasksOnly)
{
    // One worker pinned on a blocker while 100 tasks queue behind
    // it: cancelPending must drop exactly those 100, let the
    // blocker finish normally, and leave the pool reusable.
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    std::promise<void> started;
    std::atomic<int> ran{0};
    pool.submit([opened, &started] {
        started.set_value();
        opened.wait();
    });
    // Only once the blocker is running is the queue guaranteed to
    // hold exactly the 100 successors.
    started.get_future().wait();
    for (int i = 0; i < 100; ++i)
        pool.submit([&ran] { ++ran; });
    EXPECT_EQ(pool.cancelPending(), 100u);
    gate.set_value();
    pool.wait();
    EXPECT_EQ(ran.load(), 0);
    // An empty queue cancels to zero, and the pool still runs new
    // work after the shed.
    EXPECT_EQ(pool.cancelPending(), 0u);
    for (int i = 0; i < 25; ++i)
        pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 25);
}

TEST(SweepRunnerTest, MixSeedIsDeterministicAndSpreads)
{
    EXPECT_EQ(mixSeed(7, 0), mixSeed(7, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 64; ++i)
        seen.insert(mixSeed(7, i));
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_NE(mixSeed(7, 0), mixSeed(8, 0));
}

TEST(SweepRunnerTest, MakeGridIsWorkloadMajorAndResolvesDefaults)
{
    const std::vector<const WorkloadInfo *> workloads{
        findWorkload("gzip"), findWorkload("mcf")};
    ASSERT_TRUE(workloads[0] != nullptr && workloads[1] != nullptr);
    const std::vector<Algorithm> algos{Algorithm::Net, Algorithm::Lei};

    SimOptions base;
    base.maxEvents = 0; // each workload's default
    base.seed = 7;
    const auto grid =
        SweepRunner::makeGrid(workloads, algos, base, 42);
    ASSERT_EQ(grid.size(), 4u);
    EXPECT_EQ(grid[0].workload->name, "gzip");
    EXPECT_EQ(grid[0].algo, Algorithm::Net);
    EXPECT_EQ(grid[1].workload->name, "gzip");
    EXPECT_EQ(grid[1].algo, Algorithm::Lei);
    EXPECT_EQ(grid[2].workload->name, "mcf");
    EXPECT_EQ(grid[0].opts.maxEvents, workloads[0]->defaultEvents);
    EXPECT_EQ(grid[2].opts.maxEvents, workloads[1]->defaultEvents);
    // Shared policy: the paper's methodology, one stream per seed.
    for (const SweepCell &cell : grid)
        EXPECT_EQ(cell.opts.seed, 7u);

    SimOptions capped = base;
    capped.maxEvents = 1234;
    const auto cappedGrid =
        SweepRunner::makeGrid(workloads, algos, capped, 42);
    for (const SweepCell &cell : cappedGrid)
        EXPECT_EQ(cell.opts.maxEvents, 1234u);
}

TEST(SweepRunnerTest, PerWorkloadSeedsVaryByRowNotColumn)
{
    const std::vector<const WorkloadInfo *> workloads{
        findWorkload("gzip"), findWorkload("mcf")};
    const std::vector<Algorithm> algos{Algorithm::Net, Algorithm::Lei};
    SimOptions base;
    base.seed = 7;
    const auto grid = SweepRunner::makeGrid(
        workloads, algos, base, 42, SeedPolicy::PerWorkload);
    ASSERT_EQ(grid.size(), 4u);
    // All algorithms on one workload consume the identical stream…
    EXPECT_EQ(grid[0].opts.seed, grid[1].opts.seed);
    EXPECT_EQ(grid[2].opts.seed, grid[3].opts.seed);
    // …but workloads are decorrelated from each other.
    EXPECT_NE(grid[0].opts.seed, grid[2].opts.seed);
    // And the derivation is position-based, hence reproducible.
    EXPECT_EQ(grid[0].opts.seed, mixSeed(7, 0));
    EXPECT_EQ(grid[2].opts.seed, mixSeed(7, 1));
}

/** Every field the harnesses print, compared exactly. */
void
expectIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.selector, b.selector);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.totalInsts, b.totalInsts);
    EXPECT_EQ(a.cachedInsts, b.cachedInsts);
    EXPECT_EQ(a.interpretedInsts, b.interpretedInsts);
    EXPECT_EQ(a.regionCount, b.regionCount);
    EXPECT_EQ(a.expansionInsts, b.expansionInsts);
    EXPECT_EQ(a.expansionBytes, b.expansionBytes);
    EXPECT_EQ(a.exitStubs, b.exitStubs);
    EXPECT_EQ(a.regionTransitions, b.regionTransitions);
    EXPECT_EQ(a.regionExecutions, b.regionExecutions);
    EXPECT_EQ(a.cycleTerminations, b.cycleTerminations);
    EXPECT_EQ(a.spanningRegions, b.spanningRegions);
    EXPECT_EQ(a.coverSet90, b.coverSet90);
    EXPECT_EQ(a.maxLiveCounters, b.maxLiveCounters);
    EXPECT_EQ(a.peakObservedTraceBytes, b.peakObservedTraceBytes);
    EXPECT_EQ(a.exitDominatedRegions, b.exitDominatedRegions);
    EXPECT_EQ(a.exitDominatedDupInsts, b.exitDominatedDupInsts);
    EXPECT_EQ(a.duplicatedInsts, b.duplicatedInsts);
    EXPECT_EQ(a.icacheAccesses, b.icacheAccesses);
    EXPECT_EQ(a.icacheMisses, b.icacheMisses);
}

TEST(SweepRunnerTest, ParallelResultsMatchSerialExactly)
{
    const std::vector<const WorkloadInfo *> workloads{
        findWorkload("gzip"), findWorkload("crafty"),
        findWorkload("twolf")};
    const std::vector<Algorithm> algos{Algorithm::Net, Algorithm::Lei,
                                       Algorithm::LeiCombined};
    SimOptions base;
    base.maxEvents = 30'000;
    base.seed = 7;
    const auto grid =
        SweepRunner::makeGrid(workloads, algos, base, 42);

    const std::vector<SimResult> serial = SweepRunner(1).run(grid);
    ASSERT_EQ(serial.size(), grid.size());
    const std::vector<SimResult> parallel = SweepRunner(4).run(grid);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectIdentical(serial[i], parallel[i]);
    }
    // Grid order, not completion order.
    EXPECT_EQ(parallel[0].workload, "gzip");
    EXPECT_EQ(parallel.back().workload, "twolf");
    EXPECT_EQ(parallel[1].selector, "LEI");
}

TEST(SweepRunnerTest, JobsZeroMeansHardwareConcurrency)
{
    EXPECT_EQ(SweepRunner(0).jobs(), ThreadPool::hardwareWorkers());
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepRunnerTest, CellFailuresPropagateAfterTheSweep)
{
    std::vector<SweepCell> cells(3);
    cells[0].workload = findWorkload("gzip");
    cells[0].opts.maxEvents = 1'000;
    cells[1].workload = nullptr; // poisoned cell
    cells[2].workload = findWorkload("mcf");
    cells[2].opts.maxEvents = 1'000;
    EXPECT_THROW(SweepRunner(2).run(cells), PanicError);
    EXPECT_THROW(SweepRunner(1).run(cells), PanicError);
}

TEST(SimResultMergeTest, CountersSumAndPeaksMax)
{
    SimResult a;
    a.selector = "NET";
    a.workload = "gzip";
    a.events = 10;
    a.totalInsts = 100;
    a.cachedInsts = 60;
    a.regionCount = 3;
    a.maxLiveCounters = 5;
    a.peakObservedTraceBytes = 400;
    a.coverSet90 = 2;

    SimResult b;
    b.selector = "NET";
    b.workload = "mcf";
    b.events = 20;
    b.totalInsts = 300;
    b.cachedInsts = 240;
    b.regionCount = 4;
    b.maxLiveCounters = 9;
    b.peakObservedTraceBytes = 100;

    const SimResult m = mergeResults({a, b});
    EXPECT_EQ(m.selector, "NET");
    EXPECT_EQ(m.workload, "mixed");
    EXPECT_EQ(m.events, 30u);
    EXPECT_EQ(m.totalInsts, 400u);
    EXPECT_EQ(m.cachedInsts, 300u);
    EXPECT_EQ(m.regionCount, 7u);
    EXPECT_EQ(m.maxLiveCounters, 9u);
    EXPECT_EQ(m.peakObservedTraceBytes, 400u);
    EXPECT_DOUBLE_EQ(m.hitRate(), 0.75);
    // Per-cache structure must not leak through a merge.
    EXPECT_EQ(m.coverSet90, 0u);
    EXPECT_TRUE(m.regions.empty());
}

} // namespace
} // namespace rsel
