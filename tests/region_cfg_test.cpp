/**
 * @file
 * Unit and property tests for RegionCfg: CFG construction from
 * observed traces and the Figure 15 mark-rejoining-paths dataflow.
 */

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "selection/region_cfg.hpp"
#include "support/error.hpp"
#include "support/random.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(RegionCfgTest, OccurrenceCountsOncePerTrace)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::e, Ids::f}));

    EXPECT_EQ(cfg.traceCount(), 3u);
    EXPECT_EQ(cfg.occurrences(Ids::a), 3u);
    EXPECT_EQ(cfg.occurrences(Ids::c), 2u);
    EXPECT_EQ(cfg.occurrences(Ids::b), 1u);
    EXPECT_EQ(cfg.occurrences(Ids::d), 3u);
    EXPECT_EQ(cfg.occurrences(Ids::e), 1u);
    EXPECT_EQ(cfg.occurrences(Ids::f), 3u);
    EXPECT_EQ(cfg.occurrences(999), 0u); // absent block
    EXPECT_EQ(cfg.blockCount(), 6u);
    // Edges: a->c, c->d, d->f, a->b, b->d, d->e, e->f (deduped).
    EXPECT_EQ(cfg.edgeCount(), 7u);
}

TEST(RegionCfgTest, MarkFrequentAppliesThreshold)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));

    cfg.markFrequent(2);
    EXPECT_TRUE(cfg.isMarked(Ids::a));
    EXPECT_TRUE(cfg.isMarked(Ids::c));
    EXPECT_TRUE(cfg.isMarked(Ids::d));
    EXPECT_FALSE(cfg.isMarked(Ids::b)); // occurred once
}

TEST(RegionCfgTest, RejoiningPathsAreIncluded)
{
    // The Figure 4 scenario: B occurs in few traces but rejoins the
    // frequently occurring D, so it must be kept.
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    for (int i = 0; i < 4; ++i)
        cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f}));

    cfg.markFrequent(4);
    EXPECT_FALSE(cfg.isMarked(Ids::b));
    cfg.markRejoiningPaths();
    // B is on an observed path that rejoins marked D.
    EXPECT_TRUE(cfg.isMarked(Ids::b));

    auto blocks = cfg.markedBlocks();
    EXPECT_EQ(blocks.front()->id(), Ids::a); // entry first
    EXPECT_EQ(blocks.size(), 5u);            // everything but E
}

TEST(RegionCfgTest, DeadEndsStayExcluded)
{
    // A block whose observed continuation never rejoins a frequent
    // block must be dropped even after rejoining-path marking.
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    for (int i = 0; i < 5; ++i)
        cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    // One trace ends cold at E without rejoining.
    cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::e}));

    cfg.markFrequent(5);
    cfg.markRejoiningPaths();
    EXPECT_FALSE(cfg.isMarked(Ids::e));
}

TEST(RegionCfgTest, SingleDominantPathStaysSinglePath)
{
    // "If there is a single dominant path ... it should be selected
    // as a trace and no additional paths should be added."
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    for (int i = 0; i < 6; ++i)
        cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    cfg.markFrequent(3);
    cfg.markRejoiningPaths();
    EXPECT_EQ(cfg.markedBlocks().size(), 4u);
}

TEST(RegionCfgTest, MarkSweepsUsuallyOne)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    for (int i = 0; i < 3; ++i)
        cfg.addTrace(pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    cfg.addTrace(pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f}));
    cfg.markFrequent(3);
    // Post-order visiting makes one marking sweep suffice here (a
    // second sweep runs but marks nothing and is not counted).
    EXPECT_EQ(cfg.markRejoiningPaths(), 1u);
}

TEST(RegionCfgTest, EntranceMismatchIsRejected)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    RegionCfg cfg(&p.block(Ids::a));
    EXPECT_THROW(cfg.addTrace(pathOf(p, {Ids::b, Ids::d})), PanicError);
    EXPECT_THROW(cfg.addTrace({}), PanicError);
}

/**
 * Property test over randomized observed-trace sets: after
 * markRejoiningPaths, (1) the entry is marked, (2) no unmarked
 * block has a marked successor (the Figure 15 fixpoint condition),
 * and (3) marks are monotone in T_min.
 */
class MarkFixpointProperty : public ::testing::TestWithParam<int>
{};

TEST_P(MarkFixpointProperty, FixpointHolds)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Rng rng(GetParam());

    RegionCfg cfg(&p.block(Ids::a));
    std::set<std::pair<BlockId, BlockId>> observedEdges;
    const int traces = 3 + static_cast<int>(rng.nextBelow(12));
    for (int t = 0; t < traces; ++t) {
        // Random valid path through the diamond structure.
        std::vector<const BasicBlock *> path{&p.block(Ids::a)};
        if (rng.nextBool(0.5))
            path.push_back(&p.block(Ids::c));
        else
            path.push_back(&p.block(Ids::b));
        path.push_back(&p.block(Ids::d));
        if (rng.nextBool(0.2))
            path.push_back(&p.block(Ids::e));
        if (rng.nextBool(0.8))
            path.push_back(&p.block(Ids::f));
        for (std::size_t i = 0; i + 1 < path.size(); ++i)
            observedEdges.emplace(path[i]->id(), path[i + 1]->id());
        cfg.addTrace(path);
    }

    const std::uint32_t tmin =
        1 + static_cast<std::uint32_t>(rng.nextBelow(traces));
    cfg.markFrequent(tmin);
    cfg.markRejoiningPaths();

    EXPECT_TRUE(cfg.isMarked(Ids::a));
    // Fixpoint (Figure 15 termination condition): no unmarked block
    // may have a marked successor along an observed edge.
    for (const auto &[u, v] : observedEdges) {
        if (cfg.isMarked(v)) {
            EXPECT_TRUE(cfg.isMarked(u))
                << "unmarked block " << u << " has marked successor "
                << v;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkFixpointProperty,
                         ::testing::Range(1, 21));

} // namespace
} // namespace rsel
