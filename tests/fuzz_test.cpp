/**
 * @file
 * Tests for the fuzzing subsystem itself: the spec codec, the
 * generator's guarantees, the differential oracle on healthy
 * selectors, and — crucially — that the oracle catches deliberately
 * broken selectors and shrinks the reproducer.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "program/trace_io.hpp"
#include "support/error.hpp"
#include "testing/cfg_oracle.hpp"
#include "testing/fuzz_harness.hpp"
#include "testing/gen_spec.hpp"
#include "testing/invariant_sink.hpp"
#include "testing/random_program.hpp"
#include "testing/shrinker.hpp"

namespace rsel {
namespace {

using testing::BrokenMode;
using testing::CfgOracle;
using testing::DiffReport;
using testing::FuzzOptions;
using testing::FuzzSummary;
using testing::GenSpec;
using testing::generateProgram;
using testing::InvariantSink;
using testing::runDifferential;
using testing::runFuzz;
using testing::ShrinkOutcome;
using testing::shrinkSpec;

TEST(GenSpecTest, StringRoundTripIsExact)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const GenSpec spec = GenSpec::fromSeed(seed);
        const GenSpec parsed = GenSpec::parse(spec.toString());
        EXPECT_EQ(parsed, spec) << spec.toString();
        EXPECT_EQ(parsed.toString(), spec.toString());
    }
}

TEST(GenSpecTest, ParseRejectsMalformedInput)
{
    EXPECT_THROW(GenSpec::parse(""), FatalError);
    EXPECT_THROW(GenSpec::parse("v2,funcs=1"), FatalError);
    EXPECT_THROW(GenSpec::parse("v1,nosuchknob=3"), FatalError);
    EXPECT_THROW(GenSpec::parse("v1,funcs"), FatalError);
    EXPECT_THROW(GenSpec::parse("v1,funcs=abc"), FatalError);
    EXPECT_THROW(GenSpec::parse("v1,funcs=1x"), FatalError);
}

TEST(RandomProgramTest, GenerationIsDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const GenSpec spec = GenSpec::fromSeed(seed);
        std::ostringstream a, b;
        saveProgram(generateProgram(spec), a);
        saveProgram(generateProgram(spec), b);
        EXPECT_EQ(a.str(), b.str()) << "seed " << seed;
    }
}

TEST(RandomProgramTest, SeedsSweepTheProgramSpace)
{
    // Across a modest seed range the generator must exercise every
    // structural feature the fuzzer claims to cover.
    bool sawMultiFunc = false, sawPhases = false, sawIndirect = false;
    bool sawCall = false, sawLoop = false, sawUnbiased = false;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const GenSpec spec = GenSpec::fromSeed(seed);
        const Program prog = generateProgram(spec);
        sawMultiFunc |= prog.functions().size() > 1;
        sawPhases |= prog.phaseLengths().size() > 1;
        for (const BasicBlock &b : prog.blocks()) {
            sawIndirect |= isIndirect(b.terminator());
            sawCall |= b.terminator() == BranchKind::Call;
            if (b.terminator() == BranchKind::CondDirect) {
                const CondBehavior &cb = prog.condBehavior(b.id());
                sawLoop |= cb.kind == CondBehavior::Kind::Loop;
                if (cb.kind == CondBehavior::Kind::Bernoulli)
                    for (double p : cb.takenProbByPhase)
                        sawUnbiased |= p > 0.3 && p < 0.7;
            }
        }
    }
    EXPECT_TRUE(sawMultiFunc);
    EXPECT_TRUE(sawPhases);
    EXPECT_TRUE(sawIndirect);
    EXPECT_TRUE(sawCall);
    EXPECT_TRUE(sawLoop);
    EXPECT_TRUE(sawUnbiased);
}

TEST(RandomProgramTest, GeneratedStreamsAreCfgLegal)
{
    // The raw executor stream of a generated program must follow
    // real CFG edges — checked with the independent oracle.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        GenSpec spec = GenSpec::fromSeed(seed);
        spec.events = 5'000;
        const Program prog = generateProgram(spec);
        const CfgOracle oracle(prog);

        class Check : public ExecutionSink
        {
          public:
            Check(const CfgOracle &o) : oracle_(o) {}
            bool
            onEvent(const ExecEvent &ev) override
            {
                if (prev_)
                    EXPECT_TRUE(oracle_.legalEdge(*prev_, *ev.block))
                        << prev_->id() << " -> " << ev.block->id();
                prev_ = ev.block;
                return true;
            }

          private:
            const CfgOracle &oracle_;
            const BasicBlock *prev_ = nullptr;
        };
        Check sink(oracle);
        Executor exec(prog, spec.execSeed);
        exec.run(spec.events, sink);
    }
}

TEST(DifferentialTest, HealthySelectorsPassSmallCorpus)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        GenSpec spec = GenSpec::fromSeed(seed);
        spec.events = 6'000; // keep the 7-selector matrix fast
        const DiffReport report = runDifferential(spec);
        EXPECT_EQ(report.error, "") << "seed " << seed;
        EXPECT_GT(report.programBlocks, 0u);
    }
}

namespace {

/** First seed whose broken run is caught by the oracle. */
GenSpec
findCaughtSpec(BrokenMode mode, std::string *error)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        GenSpec spec = GenSpec::fromSeed(seed);
        spec.events = 8'000;
        const DiffReport report = runDifferential(spec, mode);
        if (!report.error.empty()) {
            if (error)
                *error = report.error;
            return spec;
        }
    }
    ADD_FAILURE() << "no seed triggered broken mode "
                  << testing::brokenModeName(mode);
    return GenSpec{};
}

} // namespace

TEST(DifferentialTest, DisconnectedRegionIsCaught)
{
    std::string error;
    findCaughtSpec(BrokenMode::Disconnect, &error);
    // The planted bug is a CFG-disconnected trace; the oracle must
    // name the region-legality invariant.
    EXPECT_NE(error.find("region-legality"), std::string::npos)
        << error;
}

TEST(DifferentialTest, ResubmittedRegionIsCaught)
{
    std::string error;
    findCaughtSpec(BrokenMode::Resubmit, &error);
    EXPECT_NE(error.find("caught"), std::string::npos) << error;
}

TEST(ShrinkerTest, ShrinksDisconnectReproducerBelowTenBlocks)
{
    std::string error;
    const GenSpec failing =
        findCaughtSpec(BrokenMode::Disconnect, &error);
    const ShrinkOutcome shrunk =
        shrinkSpec(failing, BrokenMode::Disconnect, error);
    EXPECT_FALSE(shrunk.error.empty());
    EXPECT_GT(shrunk.programBlocks, 0u);
    EXPECT_LE(shrunk.programBlocks, 10u)
        << "spec: " << shrunk.spec.toString();
    // The shrunk spec must still fail on a fresh evaluation.
    const DiffReport again =
        runDifferential(shrunk.spec, BrokenMode::Disconnect);
    EXPECT_FALSE(again.error.empty());
}

TEST(FuzzHarnessTest, CleanCorpusReportsNoFailures)
{
    FuzzOptions opts;
    opts.seeds = 5;
    opts.startSeed = 1;
    opts.jobs = 1;
    opts.events = 4'000;
    const FuzzSummary summary = runFuzz(opts);
    EXPECT_EQ(summary.seedsRun, 5u);
    EXPECT_EQ(summary.failures, 0u);
    EXPECT_TRUE(summary.detail.empty());
}

TEST(FuzzHarnessTest, BrokenCorpusEmitsReproducers)
{
    FuzzOptions opts;
    // Seeds 5..8 include known triggers of the planted bug (NET
    // selects a sabotage-able trace within the event budget there).
    opts.seeds = 4;
    opts.startSeed = 5;
    opts.jobs = 1;
    opts.events = 6'000;
    opts.broken = BrokenMode::Disconnect;
    opts.maxShrinks = 1;
    const FuzzSummary summary = runFuzz(opts);
    ASSERT_GT(summary.failures, 0u);
    ASSERT_FALSE(summary.detail.empty());
    const testing::FuzzFailure &f = summary.detail.front();
    EXPECT_TRUE(f.shrunk);
    EXPECT_FALSE(f.shrunkError.empty());
    EXPECT_NE(f.cliLine.find("--spec"), std::string::npos);
    EXPECT_NE(f.cliLine.find("--break-selector disconnect"),
              std::string::npos);
    // The reproducer program must be loadable program text.
    std::istringstream is(f.reproProgram);
    EXPECT_NO_THROW(loadProgram(is));
    // And the spec line must parse back to the shrunk spec.
    std::string specArg = f.cliLine;
    const std::size_t q1 = specArg.find('\'');
    const std::size_t q2 = specArg.find('\'', q1 + 1);
    ASSERT_NE(q1, std::string::npos);
    ASSERT_NE(q2, std::string::npos);
    EXPECT_EQ(GenSpec::parse(specArg.substr(q1 + 1, q2 - q1 - 1)),
              f.shrunkSpec);
}

TEST(InvariantSinkTest, AcceptsHealthyRunAndCountsConserve)
{
    GenSpec spec = GenSpec::fromSeed(3);
    spec.events = 10'000;
    const Program prog = generateProgram(spec);
    DynOptSystem sys(prog);
    sys.useNet();
    InvariantSink sink(prog, sys);
    Executor exec(prog, spec.execSeed);
    exec.run(spec.events, sink);
    const SimResult res = sink.finish();
    EXPECT_EQ(res.events, sink.events());
    EXPECT_EQ(res.totalInsts, sink.totalInsts());
    EXPECT_EQ(res.cachedInsts + res.interpretedInsts, res.totalInsts);
    EXPECT_EQ(res.conservationError(), "");
}

} // namespace
} // namespace rsel
