/**
 * @file
 * Unit tests for the ISA layer: instructions and basic blocks.
 */

#include <gtest/gtest.h>

#include "isa/basic_block.hpp"
#include "support/error.hpp"

namespace rsel {
namespace {

std::vector<Instruction>
makeInsts(Addr start, std::initializer_list<std::uint8_t> sizes)
{
    std::vector<Instruction> insts;
    Addr a = start;
    for (std::uint8_t s : sizes) {
        insts.push_back({a, s});
        a += s;
    }
    return insts;
}

TEST(BranchKindTest, Predicates)
{
    EXPECT_TRUE(isIndirect(BranchKind::IndirectJump));
    EXPECT_TRUE(isIndirect(BranchKind::IndirectCall));
    EXPECT_TRUE(isIndirect(BranchKind::Return));
    EXPECT_FALSE(isIndirect(BranchKind::Call));
    EXPECT_FALSE(isIndirect(BranchKind::CondDirect));

    EXPECT_TRUE(canFallThrough(BranchKind::None));
    EXPECT_TRUE(canFallThrough(BranchKind::CondDirect));
    EXPECT_FALSE(canFallThrough(BranchKind::Jump));
    EXPECT_FALSE(canFallThrough(BranchKind::Return));

    EXPECT_TRUE(isUnconditional(BranchKind::Jump));
    EXPECT_TRUE(isUnconditional(BranchKind::Call));
    EXPECT_FALSE(isUnconditional(BranchKind::None));
    EXPECT_FALSE(isUnconditional(BranchKind::CondDirect));
    EXPECT_FALSE(isUnconditional(BranchKind::Halt));
}

TEST(BranchKindTest, NamesAreDistinct)
{
    EXPECT_EQ(branchKindName(BranchKind::Call), "call");
    EXPECT_EQ(branchKindName(BranchKind::None), "fall-through");
    EXPECT_NE(branchKindName(BranchKind::Jump),
              branchKindName(BranchKind::IndirectJump));
}

TEST(BasicBlockTest, AddressAccounting)
{
    BasicBlock b(0, 0, makeInsts(0x100, {4, 2, 6}),
                 BranchKind::Jump, 0x50);
    EXPECT_EQ(b.startAddr(), 0x100u);
    EXPECT_EQ(b.lastInstAddr(), 0x106u);
    EXPECT_EQ(b.fallThroughAddr(), 0x10cu);
    EXPECT_EQ(b.instCount(), 3u);
    EXPECT_EQ(b.sizeBytes(), 12u);
}

TEST(BasicBlockTest, BackwardTransferUsesBranchAddress)
{
    BasicBlock b(0, 0, makeInsts(0x100, {4, 4}), BranchKind::Jump,
                 0x100);
    // Branch instruction sits at 0x104.
    EXPECT_TRUE(b.isBackwardTransferTo(0x100));  // self-loop head
    EXPECT_TRUE(b.isBackwardTransferTo(0x104));  // branch-to-self
    EXPECT_FALSE(b.isBackwardTransferTo(0x105)); // forward
}

TEST(BasicBlockTest, RejectsNonContiguousInstructions)
{
    std::vector<Instruction> insts = {{0x100, 4}, {0x105, 4}};
    EXPECT_THROW(
        BasicBlock(0, 0, std::move(insts), BranchKind::None, invalidAddr),
        PanicError);
}

TEST(BasicBlockTest, RejectsEmptyBlock)
{
    EXPECT_THROW(
        BasicBlock(0, 0, {}, BranchKind::None, invalidAddr), PanicError);
}

TEST(BasicBlockTest, DirectBranchRequiresTarget)
{
    EXPECT_THROW(BasicBlock(0, 0, makeInsts(0x10, {4}),
                            BranchKind::Jump, invalidAddr),
                 PanicError);
    EXPECT_THROW(BasicBlock(0, 0, makeInsts(0x10, {4}),
                            BranchKind::Return, 0x50),
                 PanicError);
    // Valid combinations construct fine.
    EXPECT_NO_THROW(BasicBlock(0, 0, makeInsts(0x10, {4}),
                               BranchKind::Return, invalidAddr));
    EXPECT_NO_THROW(BasicBlock(0, 0, makeInsts(0x10, {4}),
                               BranchKind::Call, 0x50));
}

} // namespace
} // namespace rsel
