/**
 * @file
 * Unit tests for CliOptions (argument forms, strict numeric parsing,
 * error reporting) and for the tool exit-code contract: every shipped
 * binary distinguishes usage errors (2), verification failures (3)
 * and runtime faults (1) from a clean run (0).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"

#ifdef RSEL_TOOL_DIR
#include <sys/wait.h>
#endif

namespace rsel {
namespace {

/** Parse a fixed argv through freshly defined numeric options. */
CliOptions
parseWith(std::initializer_list<const char *> args)
{
    CliOptions cli;
    cli.define("events", "0", "event budget");
    cli.define("seed", "7", "rng seed");
    cli.define("alpha", "0.5", "a ratio");
    cli.define("name", "x", "a string");
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    cli.parse(static_cast<int>(argv.size()), argv.data());
    return cli;
}

TEST(CliTest, EqualsAndSpaceFormsAreEquivalent)
{
    const CliOptions spaced = parseWith({"--events", "123"});
    const CliOptions equals = parseWith({"--events=123"});
    EXPECT_EQ(spaced.getUint("events"), 123u);
    EXPECT_EQ(equals.getUint("events"), 123u);
    EXPECT_EQ(spaced.get("events"), equals.get("events"));

    EXPECT_EQ(parseWith({"--name", "abc"}).get("name"), "abc");
    EXPECT_EQ(parseWith({"--name=abc"}).get("name"), "abc");
    // An empty =value is preserved, not treated as a bare flag.
    EXPECT_EQ(parseWith({"--name="}).get("name"), "");
}

TEST(CliTest, MalformedNumericValuesAreRejected)
{
    // Wholly non-numeric: strtoull would silently return 0.
    EXPECT_THROW(parseWith({"--events", "abc"}).getUint("events"),
                 FatalError);
    // Trailing garbage: strtoull would silently return 12.
    EXPECT_THROW(parseWith({"--events", "12abc"}).getUint("events"),
                 FatalError);
    EXPECT_THROW(parseWith({"--seed", "1.5"}).getInt("seed"),
                 FatalError);
    EXPECT_THROW(parseWith({"--alpha", "0.5x"}).getDouble("alpha"),
                 FatalError);
    // A bare `--events` parses as boolean "true"; reading it as a
    // number must fail loudly rather than yield 0.
    EXPECT_THROW(parseWith({"--events"}).getUint("events"),
                 FatalError);
    // Out of range for 64 bits.
    EXPECT_THROW(
        parseWith({"--events", "99999999999999999999999"})
            .getUint("events"),
        FatalError);
    // Negative input to an unsigned getter would wrap via strtoull.
    EXPECT_THROW(parseWith({"--events", "-5"}).getUint("events"),
                 FatalError);
}

TEST(CliTest, ErrorsNameTheOffendingOption)
{
    try {
        parseWith({"--events", "abc"}).getUint("events");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--events"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("abc"),
                  std::string::npos);
    }
}

TEST(CliTest, WellFormedNumericValuesStillParse)
{
    EXPECT_EQ(parseWith({"--seed", "-9"}).getInt("seed"), -9);
    EXPECT_EQ(parseWith({"--events", "0x10"}).getUint("events"), 16u);
    EXPECT_DOUBLE_EQ(parseWith({"--alpha", "0.25"}).getDouble("alpha"),
                     0.25);
    // Defaults pass through the same strict path.
    EXPECT_EQ(parseWith({}).getUint("events"), 0u);
    EXPECT_DOUBLE_EQ(parseWith({}).getDouble("alpha"), 0.5);
}

TEST(ExitCodeTest, CodesAreDistinctAndStable)
{
    // The values are a published contract (scripts and CI match on
    // them), not an implementation detail.
    EXPECT_EQ(ExitOk, 0);
    EXPECT_EQ(ExitRuntimeFault, 1);
    EXPECT_EQ(ExitUsageError, 2);
    EXPECT_EQ(ExitVerifyFailure, 3);
}

#ifdef RSEL_TOOL_DIR

/** Run one shipped tool, muted, and return its exit code. */
int
toolExit(const std::string &tool, const std::string &args)
{
    const std::string cmd = std::string(RSEL_TOOL_DIR) + "/" + tool +
                            " " + args + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    EXPECT_TRUE(WIFEXITED(rc)) << cmd;
    return WEXITSTATUS(rc);
}

TEST(ExitCodeTest, SimDistinguishesUsageFromClean)
{
    EXPECT_EQ(toolExit("rselect-sim",
                       "--workload gzip --events 4000 --algos NET"),
              ExitOk);
    EXPECT_EQ(toolExit("rselect-sim", "--definitely-not-a-flag"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-sim", "--workload nosuchworkload"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-sim", "--fault-spec garbage"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-sim",
                       "--workload gzip --events 4000 --algos NET "
                       "--fault-spec f1,tfail=20,inval=100"),
              ExitOk);
}

TEST(ExitCodeTest, FuzzSignalsFailuresFound)
{
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--seeds 1 --events 1500 --no-shrink"),
              ExitOk);
    // A planted selector bug must be reported as a verification
    // failure, not a crash and not success.
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--seeds 1 --events 1500 --no-shrink "
                       "--break-selector disconnect"),
              ExitVerifyFailure);
    EXPECT_EQ(toolExit("rselect-fuzz", "--break-selector bogus"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--fault-fuzz --fault-spec f1,tfail=5"),
              ExitUsageError);
}

TEST(ExitCodeTest, VerifySignalsVerdicts)
{
    EXPECT_EQ(toolExit("rselect-verify", "--self-test all"), ExitOk);
    EXPECT_EQ(toolExit("rselect-verify", "--workload gzip"), ExitOk);
    // No mode selected prints usage and flags the invocation.
    EXPECT_EQ(toolExit("rselect-verify", ""), ExitUsageError);
    EXPECT_EQ(toolExit("rselect-verify", "--self-test bogus"),
              ExitUsageError);
}

TEST(ExitCodeTest, VerifyPassFiltering)
{
    EXPECT_EQ(toolExit("rselect-verify", "--list-passes"), ExitOk);
    EXPECT_EQ(toolExit("rselect-verify",
                       "--workload gzip --only entry,branch-targets"),
              ExitOk);
    EXPECT_EQ(toolExit("rselect-verify",
                       "--workload gzip --skip dead-function"),
              ExitOk);
    // Unknown pass names are usage errors, not silent no-ops.
    EXPECT_EQ(toolExit("rselect-verify", "--workload gzip --only bogus"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-verify", "--workload gzip --skip bogus"),
              ExitUsageError);
}

TEST(ExitCodeTest, AnalyzeSignalsVerdicts)
{
    EXPECT_EQ(toolExit("rselect-analyze", "--workload gzip"), ExitOk);
    EXPECT_EQ(toolExit("rselect-analyze",
                       "--workload gzip --validate --events 4000"),
              ExitOk);
    EXPECT_EQ(toolExit("rselect-analyze",
                       "--workload gzip --json --selector NET"),
              ExitOk);
    // No mode selected prints usage and flags the invocation.
    EXPECT_EQ(toolExit("rselect-analyze", ""), ExitUsageError);
    EXPECT_EQ(toolExit("rselect-analyze", "--workload bogus"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-analyze", "--selector bogus"),
              ExitUsageError);
}

TEST(ExitCodeTest, ServeHonoursTheContract)
{
    EXPECT_EQ(toolExit("rselect-serve", "--tenants 2 --events 2000"),
              ExitOk);
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --events 2000 --cache-kb 16 "
                       "--verify-solo"),
              ExitOk);
    // Strict numeric parsing: non-numeric and trailing-garbage
    // values must be usage errors, never silent zeros.
    EXPECT_EQ(toolExit("rselect-serve", "--tenants abc"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--tenants 2abc"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--cache-kb 12x"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--tenants 0"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--shards 0"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--definitely-not-a-flag"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--policy bogus"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve",
                       "--spec-file /nonexistent/tenants.txt"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --fault-fuzz --fault-spec "
                       "f1,tfail=5"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve", "--self-test bogus"),
              ExitUsageError);
    // A bare --json (no path) must not silently write a report
    // file literally named "true".
    EXPECT_EQ(toolExit("rselect-serve", "--tenants 2 --json"),
              ExitUsageError);
    // The sabotaged oracle self-test must report a verification
    // failure — not a crash, not success.
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --events 2000 --self-test "
                       "mismatch"),
              ExitVerifyFailure);
}

TEST(ExitCodeTest, ServeChaosHonoursTheContract)
{
    // A chaos run with verification is a clean exit: every
    // surviving tenant matches its reference leg.
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --events 2000 --chaos-seed 7 "
                       "--verify-solo"),
              ExitOk);
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --events 2000 --chaos-spec "
                       "c1,crash=300,window=6 --verify-solo"),
              ExitOk);
    // Overload knobs alone also verify cleanly (conductor-driven
    // reference leg).
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 4 --events 2000 --max-inflight 2 "
                       "--slice-budget 3 --verify-solo"),
              ExitOk);
    // Malformed chaos specs are usage errors, never silent no-ops.
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --chaos-spec garbage"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --chaos-spec c1,bogus=1"),
              ExitUsageError);
    // The two arming forms are mutually exclusive.
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --chaos-seed 7 --chaos-spec "
                       "c1,crash=300,window=6"),
              ExitUsageError);
    // The sabotaged chaos oracle self-test must report a
    // verification failure — not a crash, not success.
    EXPECT_EQ(toolExit("rselect-serve",
                       "--tenants 2 --events 2000 --self-test chaos"),
              ExitVerifyFailure);
    // Chaos fuzzing is tenant-mode only.
    EXPECT_EQ(toolExit("rselect-fuzz", "--chaos-fuzz --seeds 1"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--chaos-spec c1,crash=300,window=6 --seeds 1"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--tenants 2 --chaos-fuzz --chaos-spec "
                       "c1,crash=300,window=6"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-fuzz",
                       "--tenants 2 --chaos-fuzz --seeds 2 "
                       "--events 2000"),
              ExitOk);
}

TEST(ExitCodeTest, TsaGateHonoursTheContract)
{
    // Battery listing and the positive legs are clean on any
    // toolchain; the full battery either passes (Clang host) or
    // self-skips (non-Clang) — both are exit 0 by design, so the
    // analyze preset can ride in CI everywhere.
    EXPECT_EQ(toolExit("rselect-tsa-gate", "--list"), ExitOk);
    EXPECT_EQ(toolExit("rselect-tsa-gate", ""), ExitOk);
    // Gate self-test: a non-failing case must be flagged on every
    // host (withholding the violation define makes all legs
    // compile, and the gate must call each one out).
    EXPECT_EQ(toolExit("rselect-tsa-gate", "--self-test"), ExitOk);
    // Usage errors per the contract.
    EXPECT_EQ(toolExit("rselect-tsa-gate", "--definitely-not-a-flag"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-tsa-gate",
                       "--cases /nonexistent/tsa-cases"),
              ExitUsageError);
    EXPECT_EQ(toolExit("rselect-tsa-gate", "stray-positional"),
              ExitUsageError);
}

#endif // RSEL_TOOL_DIR

TEST(CliTest, UnknownOptionsAreRejectedWithUsage)
{
    CliOptions cli;
    cli.define("known", "1", "known option");
    const char *argv[] = {"prog", "--unknown", "2"};
    try {
        cli.parse(3, argv);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("--unknown"), std::string::npos);
        // The usage text listing valid options rides along.
        EXPECT_NE(msg.find("--known"), std::string::npos);
    }
}

} // namespace
} // namespace rsel
