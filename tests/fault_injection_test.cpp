/**
 * @file
 * Tests for deterministic fault injection and graceful degradation:
 * the FaultPlan codec, injector determinism, code-cache
 * invalidation semantics (including the eviction interplay), the
 * DynOptSystem retry/backoff/blacklist machinery, and the
 * transparency guarantee under injected faults.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/fault_plan.hpp"
#include "runtime/code_cache.hpp"
#include "service/selection_service.hpp"
#include "support/error.hpp"
#include "testing/differential.hpp"
#include "testing/fuzz_harness.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

using resilience::FaultInjector;
using resilience::FaultPlan;
using resilience::RecoveryStats;

// ---------------------------------------------------------------
// FaultPlan codec.
// ---------------------------------------------------------------

TEST(FaultPlanTest, DefaultIsDisarmed)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.armed());
    // A retry budget alone fires nothing.
    FaultPlan budgetOnly;
    budgetOnly.retryBudget = 7;
    EXPECT_FALSE(budgetOnly.armed());
    FaultPlan tfail;
    tfail.pTranslationFail = 1;
    EXPECT_TRUE(tfail.armed());
    FaultPlan inval;
    inval.invalidateRate = 1;
    EXPECT_TRUE(inval.armed());
}

TEST(FaultPlanTest, ToStringParseRoundTrip)
{
    FaultPlan plan;
    plan.pTranslationFail = 20;
    plan.invalidateRate = 150;
    plan.flushRate = 7;
    plan.resetRate = 3;
    plan.retryBudget = 5;
    plan.backoffEvents = 128;
    plan.seed = 99;
    const FaultPlan back = FaultPlan::parse(plan.toString());
    EXPECT_EQ(back, plan);
    EXPECT_EQ(back.toString(), plan.toString());
    // Defaults survive the round trip too.
    EXPECT_EQ(FaultPlan::parse(FaultPlan{}.toString()), FaultPlan{});
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse(""), FatalError);
    EXPECT_THROW(FaultPlan::parse("g1,tfail=1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("f1,bogus=3"), FatalError);
    EXPECT_THROW(FaultPlan::parse("f1,tfail=abc"), FatalError);
    EXPECT_THROW(FaultPlan::parse("f1,tfail=12x"), FatalError);
    EXPECT_THROW(FaultPlan::parse("f1,tfail"), FatalError);
}

TEST(FaultPlanTest, ClampBoundsEveryField)
{
    FaultPlan plan;
    plan.pTranslationFail = 999;
    plan.invalidateRate = 10'000'000;
    plan.retryBudget = 1000;
    plan.backoffEvents = 0;
    plan.clamp();
    EXPECT_EQ(plan.pTranslationFail, 100u);
    EXPECT_EQ(plan.invalidateRate, 100'000u);
    EXPECT_EQ(plan.retryBudget, 16u);
    EXPECT_GE(plan.backoffEvents, 1u);
}

TEST(FaultPlanTest, FromSeedIsDeterministicAndArmed)
{
    const FaultPlan a = FaultPlan::fromSeed(5);
    const FaultPlan b = FaultPlan::fromSeed(5);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(a.armed());
    // Different seeds give different plans (for these two, at least).
    EXPECT_NE(FaultPlan::fromSeed(1), FaultPlan::fromSeed(2));
}

// ---------------------------------------------------------------
// Injector determinism.
// ---------------------------------------------------------------

TEST(FaultInjectorTest, EventStreamIsSeedDeterministic)
{
    FaultPlan plan;
    plan.pTranslationFail = 30;
    plan.invalidateRate = 5'000;
    plan.flushRate = 1'000;
    plan.resetRate = 500;
    plan.seed = 11;

    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 2'000; ++i) {
        const FaultInjector::Tick ta = a.onEvent();
        const FaultInjector::Tick tb = b.onEvent();
        EXPECT_EQ(ta.invalidate, tb.invalidate);
        EXPECT_EQ(ta.flush, tb.flush);
        EXPECT_EQ(ta.reset, tb.reset);
    }
}

TEST(FaultInjectorTest, SubmitStreamDoesNotPerturbEventStream)
{
    // The event faults must fire at identical event indices for
    // every selector even though each selector submits at different
    // times: translation-failure draws come from a separate stream.
    FaultPlan plan;
    plan.pTranslationFail = 50;
    plan.invalidateRate = 5'000;
    plan.flushRate = 2'000;
    plan.resetRate = 1'000;
    plan.seed = 3;

    FaultInjector quiet(plan), busy(plan);
    for (int i = 0; i < 2'000; ++i) {
        const FaultInjector::Tick tq = quiet.onEvent();
        // The "busy" injector also answers submit rolls, as a
        // selector that translates constantly would cause.
        busy.translationFails();
        const FaultInjector::Tick tb = busy.onEvent();
        busy.translationFails();
        EXPECT_EQ(tq.invalidate, tb.invalidate);
        EXPECT_EQ(tq.flush, tb.flush);
        EXPECT_EQ(tq.reset, tb.reset);
        if (tq.invalidate) {
            EXPECT_EQ(quiet.pickVictim(17), busy.pickVictim(17));
        }
    }
}

TEST(FaultInjectorTest, SeedOverrideReplacesPlanSeed)
{
    FaultPlan plan;
    plan.invalidateRate = 20'000;
    plan.seed = 1;

    FaultInjector own(plan), overridden(plan, 999);
    FaultPlan other = plan;
    other.seed = 999;
    FaultInjector reference(other);
    bool anyDiff = false;
    for (int i = 0; i < 500; ++i) {
        const bool a = own.onEvent().invalidate;
        const bool b = overridden.onEvent().invalidate;
        const bool c = reference.onEvent().invalidate;
        EXPECT_EQ(b, c);
        anyDiff = anyDiff || (a != b);
    }
    EXPECT_TRUE(anyDiff);
}

// ---------------------------------------------------------------
// Code-cache invalidation semantics.
// ---------------------------------------------------------------

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(CacheInvalidationTest, InvalidateDropsLookupKeepsObject)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    const RegionId id = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::a, Ids::b, Ids::d})));
    const Addr entry = p.block(Ids::a).startAddr();

    EXPECT_TRUE(cache.invalidate(id));
    EXPECT_FALSE(cache.isLive(id));
    EXPECT_EQ(cache.lookup(entry), nullptr);
    EXPECT_EQ(cache.invalidations(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    // The object survives for in-flight execution.
    EXPECT_EQ(cache.region(id).id(), id);
    EXPECT_EQ(cache.liveRegionCount(), 0u);

    // Non-live ids are a safe no-op.
    EXPECT_FALSE(cache.invalidate(id));
    EXPECT_EQ(cache.invalidations(), 1u);

    // Re-caching the entry is a retranslation (and, having been
    // cached before, also a regeneration).
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b})));
    EXPECT_EQ(cache.retranslations(), 1u);
    EXPECT_EQ(cache.regenerations(), 1u);
    EXPECT_NE(cache.lookup(entry), nullptr);
}

TEST(CacheInvalidationTest, InvalidateBlockHitsEveryContainingRegion)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    const RegionId r0 = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::a, Ids::b, Ids::d})));
    const RegionId r1 = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::b, Ids::d})));
    const RegionId r2 = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::e, Ids::f})));

    // b is in r0 and r1, not in r2.
    EXPECT_EQ(cache.invalidateBlock(Ids::b), 2u);
    EXPECT_FALSE(cache.isLive(r0));
    EXPECT_FALSE(cache.isLive(r1));
    EXPECT_TRUE(cache.isLive(r2));
    EXPECT_EQ(cache.invalidations(), 2u);
    // A block cached nowhere drops nothing.
    EXPECT_EQ(cache.invalidateBlock(Ids::b), 0u);
}

TEST(CacheInvalidationTest, FlushAllEvictsEverythingOnceArmed)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b})));
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::e, Ids::f})));

    cache.flushAll();
    EXPECT_EQ(cache.liveRegionCount(), 0u);
    EXPECT_EQ(cache.liveBytes(), 0u);
    EXPECT_EQ(cache.flushes(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    // Flushing an empty cache is not a flush.
    cache.flushAll();
    EXPECT_EQ(cache.flushes(), 1u);
}

TEST(CacheInvalidationTest, EvictionAndInvalidationStayDisjoint)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    CodeCache cache;
    const Addr entryA = p.block(Ids::a).startAddr();

    // Evict-then-reinsert is a regeneration, never a retranslation.
    const RegionId r0 = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::a, Ids::b})));
    cache.flushAll();
    EXPECT_FALSE(cache.invalidate(r0)); // already gone: no-op
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::a, Ids::b})));
    EXPECT_EQ(cache.regenerations(), 1u);
    EXPECT_EQ(cache.retranslations(), 0u);

    // An invalidated entry whose *new* translation is then evicted
    // loses the pending-retranslation mark: the stale code is gone.
    const RegionId r2 = cache.insert(Region::makeTrace(
        cache.nextRegionId(), pathOf(p, {Ids::e, Ids::f})));
    EXPECT_TRUE(cache.invalidate(r2));
    cache.flushAll(); // evicts the region at entryA, not r2 (dead)
    cache.insert(Region::makeTrace(cache.nextRegionId(),
                                   pathOf(p, {Ids::e, Ids::f})));
    EXPECT_EQ(cache.retranslations(), 1u);

    // isLive() never resurrects a dropped region.
    EXPECT_FALSE(cache.isLive(r0));
    EXPECT_FALSE(cache.isLive(r2));
    EXPECT_EQ(cache.lookup(entryA), nullptr); // second flush took it
    for (RegionId id = 0; id < cache.regionCount(); ++id) {
        if (cache.isLive(id)) {
            EXPECT_EQ(cache.lookup(cache.region(id).entryAddr())->id(),
                      id);
        }
    }
}

// ---------------------------------------------------------------
// DynOptSystem graceful degradation.
// ---------------------------------------------------------------

SimResult
runGzip(const FaultPlan &plan, Algorithm algo = Algorithm::Net,
        std::uint64_t events = 150'000)
{
    const WorkloadInfo *w = findWorkload("gzip");
    const Program prog = w->build(42);
    SimOptions opts;
    opts.maxEvents = events;
    opts.seed = 7;
    opts.faults = plan;
    return simulate(prog, algo, opts);
}

TEST(GracefulDegradationTest, DisarmedPlanMatchesBaselineExactly)
{
    const SimResult base = runGzip(FaultPlan{});
    SimResult again = runGzip(FaultPlan{});
    EXPECT_EQ(testing::resultFingerprint(base),
              testing::resultFingerprint(again));
    EXPECT_EQ(base.recovery.faultsInjected, 0u);
    EXPECT_EQ(base.recovery.retranslations, 0u);
    EXPECT_EQ(base.conservationError(), "");
}

TEST(GracefulDegradationTest, PermanentFailureDegradesToInterpreter)
{
    FaultPlan plan;
    plan.pTranslationFail = 100; // every translation fails
    plan.retryBudget = 0;        // first failure blacklists
    const SimResult r = runGzip(plan);

    // Never crashes, never caches: pure interpretation.
    EXPECT_EQ(r.regionCount, 0u);
    EXPECT_EQ(r.cachedInsts, 0u);
    EXPECT_GT(r.totalInsts, 0u);
    EXPECT_GT(r.recovery.translationFailures, 0u);
    EXPECT_GT(r.recovery.blacklistedEntrances, 0u);
    EXPECT_GT(r.recovery.blacklistSuppressed, 0u);
    EXPECT_EQ(r.recovery.retries, 0u);
    EXPECT_EQ(r.conservationError(), "");
}

TEST(GracefulDegradationTest, FlakyTranslatorRetriesAndRecovers)
{
    FaultPlan plan;
    plan.pTranslationFail = 40;
    plan.retryBudget = 16;
    plan.backoffEvents = 16;
    plan.seed = 5;
    const SimResult r = runGzip(plan);

    EXPECT_GT(r.recovery.translationFailures, 0u);
    EXPECT_GT(r.recovery.retries, 0u); // a retry eventually lands
    EXPECT_GT(r.cachedInsts, 0u);      // and the cache still fills
    EXPECT_EQ(r.recovery.blacklistedEntrances, 0u);
    EXPECT_LE(r.recovery.retries, r.recovery.translationFailures);
    EXPECT_EQ(r.conservationError(), "");
}

TEST(GracefulDegradationTest, BackoffSuppressesResubmits)
{
    FaultPlan plan;
    plan.pTranslationFail = 60;
    plan.retryBudget = 16;
    plan.backoffEvents = 5'000; // windows long enough to observe
    plan.seed = 5;
    const SimResult r = runGzip(plan);
    EXPECT_GT(r.recovery.backoffSuppressed, 0u);
    EXPECT_EQ(r.conservationError(), "");
}

TEST(GracefulDegradationTest, InvalidationsCauseRetranslations)
{
    FaultPlan plan;
    plan.invalidateRate = 400; // ~0.4% of events
    plan.seed = 9;
    const SimResult r = runGzip(plan);

    EXPECT_GT(r.recovery.blockInvalidations, 0u);
    EXPECT_GT(r.recovery.regionsInvalidated, 0u);
    EXPECT_GT(r.recovery.retranslations, 0u);
    EXPECT_LE(r.recovery.retranslations,
              r.recovery.regionsInvalidated);
    EXPECT_GT(r.cachedInsts, 0u); // still makes forward progress
    EXPECT_EQ(r.conservationError(), "");
}

TEST(GracefulDegradationTest, EveryFaultKindAccountedAcrossSelectors)
{
    FaultPlan plan;
    plan.pTranslationFail = 25;
    plan.invalidateRate = 300;
    plan.flushRate = 100;
    plan.resetRate = 50;
    plan.retryBudget = 4;
    plan.backoffEvents = 64;
    plan.seed = 21;
    for (const Algorithm algo : allSelectors) {
        SCOPED_TRACE(algorithmName(algo));
        const SimResult r = runGzip(plan, algo, 80'000);
        const RecoveryStats &rec = r.recovery;
        EXPECT_GT(rec.faultsInjected, 0u);
        EXPECT_EQ(rec.faultsInjected,
                  rec.translationFailures + rec.blockInvalidations +
                      rec.flushStorms + rec.selectorResets);
        EXPECT_EQ(r.conservationError(), "");
    }
}

TEST(GracefulDegradationTest, FaultSeedOverrideChangesInjection)
{
    FaultPlan plan;
    plan.pTranslationFail = 30;
    plan.invalidateRate = 500;
    plan.seed = 1;
    const WorkloadInfo *w = findWorkload("gzip");
    const Program prog = w->build(42);
    SimOptions opts;
    opts.maxEvents = 80'000;
    opts.seed = 7;
    opts.faults = plan;
    const SimResult a = simulate(prog, Algorithm::Net, opts);
    opts.faultSeed = 4242;
    const SimResult b = simulate(prog, Algorithm::Net, opts);
    EXPECT_NE(testing::resultFingerprint(a),
              testing::resultFingerprint(b));
    // The architectural run is identical either way.
    EXPECT_EQ(a.totalInsts, b.totalInsts);
    EXPECT_EQ(a.events, b.events);
}

TEST(GracefulDegradationTest, EdgeAccountingSpansDisruptions)
{
    // Regression guard for the execution-edge accounting across
    // cache disruptions: prevBlock_ must survive flush storms and
    // selector resets, because faults change cache state, not guest
    // control flow — the architectural edge into the next block is
    // real either way. Clearing it would under-count predecessors
    // and skew the exit-domination analysis.
    //
    // Collect the architectural block stream once, then run the same
    // execution under a plan that fires a flush storm AND a selector
    // reset at every single event. Every consecutive pair of the
    // stream must still be recorded as an edge.
    const WorkloadInfo *w = findWorkload("gzip");
    const Program prog = w->build(42);
    constexpr std::uint64_t events = 20'000;

    struct IdSink : ExecutionSink
    {
        bool onEvent(const ExecEvent &ev) override
        {
            ids.push_back(ev.block->id());
            return true;
        }
        std::vector<BlockId> ids;
    } ref;
    {
        Executor exec(prog, 7);
        exec.run(events, ref);
    }
    ASSERT_GT(ref.ids.size(), 1u);

    FaultPlan plan;
    plan.flushRate = 100'000; // every event
    plan.resetRate = 100'000; // every event
    plan.seed = 13;
    Executor exec(prog, 7);
    DynOptSystem sys(prog);
    sys.useNet(NetConfig{});
    sys.armFaults(plan);
    exec.run(events, sys);
    const SimResult r = sys.finish();
    EXPECT_GT(r.recovery.flushStorms, 0u);
    EXPECT_GT(r.recovery.selectorResets, 0u);

    for (std::size_t i = 1; i < ref.ids.size(); ++i) {
        ASSERT_TRUE(sys.metrics().sawEdge(ref.ids[i - 1], ref.ids[i]))
            << "edge " << ref.ids[i - 1] << "->" << ref.ids[i]
            << " at event " << i << " lost across a disruption";
    }
}

TEST(FaultTransparencyTest, BatchedDispatchMatchesPerEventUnderFaults)
{
    // The per-batch disarm-check hoist must not shift fault indices:
    // batched and per-event dispatch agree byte-for-byte under an
    // armed plan, for every selector and across batch sizes that
    // split regions at awkward points.
    const WorkloadInfo *w = findWorkload("gzip");
    const Program prog = w->build(42);
    FaultPlan plan;
    plan.pTranslationFail = 25;
    plan.invalidateRate = 300;
    plan.flushRate = 100;
    plan.resetRate = 50;
    plan.retryBudget = 4;
    plan.seed = 21;
    for (const Algorithm algo : allSelectors) {
        SCOPED_TRACE(algorithmName(algo));
        SimOptions opts;
        opts.maxEvents = 60'000;
        opts.seed = 7;
        opts.faults = plan;
        opts.dispatch = Dispatch::PerEvent;
        const SimResult perEvent = simulate(prog, algo, opts);
        const std::string fp = testing::resultFingerprint(perEvent);
        EXPECT_GT(perEvent.recovery.faultsInjected, 0u);
        opts.dispatch = Dispatch::Batched;
        for (const std::size_t bs : {std::size_t{1},
                                     std::size_t{257},
                                     defaultBatchSize}) {
            opts.batchSize = bs;
            const SimResult batched = simulate(prog, algo, opts);
            EXPECT_EQ(testing::resultFingerprint(batched), fp)
                << "batch size " << bs;
        }
    }
}

// ---------------------------------------------------------------
// Transparency and replay under faults (the oracle matrix).
// ---------------------------------------------------------------

TEST(FaultTransparencyTest, DifferentialMatrixHoldsUnderFaults)
{
    // Transparency, conservation, and record->replay fingerprint
    // equality for all seven selectors, under per-seed fault plans.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        testing::GenSpec spec = testing::GenSpec::fromSeed(seed);
        spec.events = 4'000;
        const testing::DiffReport rep = testing::runDifferential(
            spec, testing::BrokenMode::None, false,
            FaultPlan::fromSeed(seed));
        EXPECT_EQ(rep.error, "") << "seed " << seed;
    }
}

TEST(FaultTransparencyTest, RegionVerifierStaysGreenUnderFaults)
{
    testing::GenSpec spec = testing::GenSpec::fromSeed(4);
    spec.events = 4'000;
    const testing::DiffReport rep = testing::runDifferential(
        spec, testing::BrokenMode::None, /*verify=*/true,
        FaultPlan::fromSeed(4));
    EXPECT_EQ(rep.error, "");
}

TEST(FaultTransparencyTest, FaultFuzzSummaryIsJobCountInvariant)
{
    testing::FuzzOptions opts;
    opts.seeds = 6;
    opts.events = 3'000;
    opts.faultFuzz = true;
    opts.jobs = 1;
    const testing::FuzzSummary serial = testing::runFuzz(opts);
    opts.jobs = 4;
    const testing::FuzzSummary parallel = testing::runFuzz(opts);
    EXPECT_EQ(serial.seedsRun, parallel.seedsRun);
    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(serial.failures, 0u);
}

// ---------------------------------------------------------------
// RecoveryStats aggregation and conservation.
// ---------------------------------------------------------------

TEST(RecoveryStatsTest, MergeSumsEveryCounter)
{
    SimResult a, b;
    a.recovery.faultsInjected = 4;
    a.recovery.translationFailures = 2;
    a.recovery.blockInvalidations = 1;
    a.recovery.flushStorms = 1;
    a.recovery.retries = 1;
    b.recovery.faultsInjected = 3;
    b.recovery.translationFailures = 1;
    b.recovery.blockInvalidations = 1;
    b.recovery.selectorResets = 1;
    b.recovery.blacklistedEntrances = 2;
    const SimResult m = mergeResults({a, b});
    EXPECT_EQ(m.recovery.faultsInjected, 7u);
    EXPECT_EQ(m.recovery.translationFailures, 3u);
    EXPECT_EQ(m.recovery.blockInvalidations, 2u);
    EXPECT_EQ(m.recovery.flushStorms, 1u);
    EXPECT_EQ(m.recovery.selectorResets, 1u);
    EXPECT_EQ(m.recovery.retries, 1u);
    EXPECT_EQ(m.recovery.blacklistedEntrances, 2u);
}

// ---------------------------------------------------------------
// Faults under multi-tenancy: injected faults in one tenant of a
// shared service must neither perturb that tenant's equivalence to
// its solo faulted run, nor leak recovery work into its neighbours.
// ---------------------------------------------------------------

TEST(FaultMultiTenancyTest, FaultedTenantsMatchSoloFaultedRuns)
{
    service::ServiceConfig config;
    for (std::size_t i = 0; i < 8; ++i) {
        service::TenantSpec spec =
            service::TenantSpec::fromSeed(1 + i);
        spec.faults = FaultPlan::fromSeed(1 + i);
        config.tenants.push_back(spec);
    }
    config.cacheKb = 32;
    config.eventsOverride = 5000;
    // verifyServiceDeterminism runs every tenant solo with the same
    // armed plan and compares fingerprints byte for byte.
    EXPECT_EQ(service::verifyServiceDeterminism(config), "");
}

TEST(FaultMultiTenancyTest, RecoveryStaysWithinTheFaultedTenant)
{
    service::ServiceConfig config;
    for (std::size_t i = 0; i < 6; ++i)
        config.tenants.push_back(
            service::TenantSpec::fromSeed(21 + i));
    // Only tenant 0 is faulted; its neighbours must see zero
    // recovery work and zero invalidation releases.
    config.tenants[0].faults =
        FaultPlan::parse("f1,tfail=25,inval=60,seed=3");
    config.cacheKb = 32;
    config.eventsOverride = 6000;
    const service::ServiceReport report =
        service::runService(config);

    EXPECT_GT(report.tenants[0].result.recovery.faultsInjected, 0u);
    RecoveryStats summed;
    for (std::size_t i = 0; i < report.tenants.size(); ++i) {
        const service::TenantReport &tr = report.tenants[i];
        EXPECT_EQ(tr.result.conservationError(), "") << tr.name;
        EXPECT_EQ(tr.cache.invalidationReleases,
                  tr.result.recovery.regionsInvalidated)
            << tr.name;
        if (i != 0) {
            EXPECT_EQ(tr.result.recovery.faultsInjected, 0u)
                << tr.name;
            EXPECT_EQ(tr.cache.invalidationReleases, 0u) << tr.name;
        }
        summed.mergeFrom(tr.result.recovery);
    }
    // Global fault accounting is exactly the per-tenant sum — the
    // arena adds no recovery work of its own.
    EXPECT_EQ(summed.faultsInjected,
              report.tenants[0].result.recovery.faultsInjected);
    EXPECT_EQ(summed.regionsInvalidated,
              report.tenants[0].result.recovery.regionsInvalidated);
}

TEST(RecoveryStatsTest, ConservationCatchesBrokenFaultAccounting)
{
    SimResult r;
    r.recovery.faultsInjected = 5;
    r.recovery.translationFailures = 2;
    // 5 != 2: one injected fault has no kind.
    EXPECT_NE(r.conservationError(), "");
    r.recovery.blockInvalidations = 3;
    EXPECT_EQ(r.conservationError(), "");
    r.recovery.retries = 3; // more recoveries than failures
    EXPECT_NE(r.conservationError(), "");
}

} // namespace
} // namespace rsel
