/**
 * @file
 * Tests for the Section 5 related-work selectors: Mojo (NET with a
 * lower trace-exit threshold), BOA (edge-profile-guided selection)
 * and WRS (Wiggins/Redstone-style sampling).
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "selection/boa_selector.hpp"
#include "selection/path_profile.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

SimResult
run(const Program &p, Algorithm algo, std::uint64_t events,
    SimOptions opts = {})
{
    opts.maxEvents = events;
    opts.seed = 9;
    return simulate(p, algo, opts);
}

TEST(MojoSelectorTest, LowerExitThresholdSelectsExitTargetsEarlier)
{
    // Figure 3 nested loops: C is a cache-exit target. Under NET, A
    // (backward target, counting from iteration 1) is selected
    // before C; Mojo's lower exit threshold flips the order.
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;

    SimOptions opts;
    SimResult net = run(p, Algorithm::Net, 150'000, opts);
    opts.net.exitThreshold = 10;
    SimResult mojo = run(p, Algorithm::Mojo, 150'000, opts);

    EXPECT_EQ(mojo.selector, "Mojo");
    auto idOf = [&](const SimResult &r, BlockId entry) -> int {
        for (const RegionStats &reg : r.regions)
            if (reg.entryAddr == p.block(entry).startAddr())
                return static_cast<int>(reg.id);
        return -1;
    };
    // NET: A's region precedes C's.
    ASSERT_GE(idOf(net, Ids::a), 0);
    ASSERT_GE(idOf(net, Ids::c), 0);
    EXPECT_LT(idOf(net, Ids::a), idOf(net, Ids::c));
    // Mojo: C's region precedes A's.
    ASSERT_GE(idOf(mojo, Ids::c), 0);
    EXPECT_LT(idOf(mojo, Ids::c), idOf(mojo, Ids::a));
}

TEST(MojoSelectorTest, BehavesLikeNetWhenExitThresholdUnset)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    SimOptions opts;
    SimResult net = run(p, Algorithm::Net, 150'000, opts);

    DynOptSystem system(p);
    NetConfig cfg; // exitThreshold = 0
    system.useNet(cfg);
    EXPECT_EQ(system.selector().name(), "NET");

    opts.net = NetConfig::mojo(50, 50); // equal thresholds
    SimResult mojoEq = run(p, Algorithm::Mojo, 150'000, opts);
    EXPECT_EQ(mojoEq.regionCount, net.regionCount);
    EXPECT_EQ(mojoEq.expansionInsts, net.expansionInsts);
}

TEST(BoaSelectorTest, EdgeProfileCountsDirections)
{
    // Drive the profile directly with synthetic events.
    Program p = buildUnbiasedBranch(1, 0.5, 0.0);
    using Ids = UnbiasedBranchIds;
    PathProfile profile;

    auto event = [&](BlockId id, bool taken, Addr src) {
        SelectorEvent ev;
        ev.block = &p.block(id);
        ev.viaTaken = taken;
        ev.branchAddr = src;
        return ev;
    };

    // A taken -> C (twice), A fall -> B (once).
    const Addr aBranch = p.block(Ids::a).lastInstAddr();
    profile.record(event(Ids::a, false, invalidAddr));
    profile.record(event(Ids::c, true, aBranch));
    profile.record(event(Ids::a, true, 0x1)); // re-enter A
    profile.record(event(Ids::c, true, aBranch));
    profile.record(event(Ids::a, true, 0x1));
    profile.record(event(Ids::b, false, invalidAddr));

    EXPECT_EQ(profile.takenCount(Ids::a), 2u);
    EXPECT_EQ(profile.notTakenCount(Ids::a), 1u);
    EXPECT_TRUE(profile.prefersTaken(Ids::a));
}

TEST(BoaSelectorTest, TraceFollowsMajorityDirection)
{
    // Strongly biased unbiased-branch program: probC = 0.9 means
    // A's taken direction (to C) dominates; BOA's trace from A must
    // go through C, not B.
    Program p = buildUnbiasedBranch(1, 0.9, 0.0);
    using Ids = UnbiasedBranchIds;
    SimResult r = run(p, Algorithm::Boa, 50'000);
    ASSERT_GE(r.regionCount, 1u);

    const RegionStats *atA = nullptr;
    for (const RegionStats &reg : r.regions)
        if (reg.entryAddr == p.block(Ids::a).startAddr())
            atA = &reg;
    ASSERT_NE(atA, nullptr);
    // A C D F: four blocks, spanning the cycle back to A.
    EXPECT_EQ(atA->blockCount, 4u);
    EXPECT_TRUE(atA->spansCycle);
}

TEST(BoaSelectorTest, SelectsAfterFifteenExecutionsByDefault)
{
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(1);
    const BlockId latch = b.block(1);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    DynOptSystem system(p);
    system.useBoa();
    Executor exec(p, 1);
    // head's counter reaches 15 on its 15th taken entry (event 31).
    exec.run(30, system);
    EXPECT_EQ(system.cache().regionCount(), 0u);
    exec.run(1, system);
    EXPECT_EQ(system.cache().regionCount(), 1u);
    system.finish();
}

TEST(BoaSelectorTest, StopsAtUnprofiledIndirectBranch)
{
    // A trace reaching a return before any return was observed must
    // stop there rather than guess.
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    DynOptSystem system(p);
    BoaConfig cfg;
    // Threshold 1: E triggers on its very first execution, before
    // F's return has ever been observed.
    cfg.hotThreshold = 1;
    system.useBoa(cfg);
    Executor exec(p, 1);
    exec.run(30, system);
    SimResult r = system.finish();
    const RegionStats *atE = nullptr;
    for (const RegionStats &reg : r.regions)
        if (reg.entryAddr == p.block(Ids::e).startAddr())
            atE = &reg;
    ASSERT_NE(atE, nullptr);
    // The walk must stop at the unprofiled return: E F only.
    EXPECT_EQ(atE->blockCount, 2u);
}

TEST(WrsSelectorTest, SamplingFindsTheHotLoop)
{
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.wrs.samplePeriod = 7;
    opts.wrs.hotSamples = 3;
    SimResult r = run(p, Algorithm::Wrs, 100'000, opts);
    EXPECT_EQ(r.selector, "WRS");
    ASSERT_GE(r.regionCount, 1u);
    // The edge-profiled walk spans the whole six-block cycle from
    // whatever block sampling elected.
    EXPECT_GT(r.hitRate(), 0.95);
    EXPECT_GT(r.spannedCycleRatio(), 0.0);
}

TEST(WrsSelectorTest, SamplePeriodBoundsProfilingWork)
{
    // With a huge sample period nothing ever gets hot.
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.wrs.samplePeriod = 1'000'000;
    SimResult r = run(p, Algorithm::Wrs, 100'000, opts);
    EXPECT_EQ(r.regionCount, 0u);
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.0);
}

TEST(RelatedSelectorsTest, SinglePathFamiliesSufferOnUnbiasedBranches)
{
    // The paper's Section 5 argument: careful profiling (BOA, WRS)
    // still selects a single path, so on an unbiased branch they
    // fragment and duplicate like NET — only combination fixes it.
    Program p = buildUnbiasedBranch(1, 0.5, 0.0);
    SimResult boa = run(p, Algorithm::Boa, 150'000);
    SimResult comb = run(p, Algorithm::NetCombined, 150'000);

    EXPECT_GT(boa.regionCount, comb.regionCount);
    EXPECT_GT(boa.duplicatedInsts, comb.duplicatedInsts);
    EXPECT_GT(boa.regionTransitions, comb.regionTransitions);
}

TEST(RelatedSelectorsTest, AllSelectorsRunTheSuiteWorkloads)
{
    // Smoke coverage: every shipped selector handles a dispatch-
    // heavy workload (indirect branches stress BOA/WRS walks).
    Program p = buildPerlbmk(42);
    for (Algorithm algo : allSelectors) {
        SimResult r = run(p, algo, 120'000);
        EXPECT_LE(r.hitRate(), 1.0) << algorithmName(algo);
        EXPECT_EQ(r.totalInsts, r.cachedInsts + r.interpretedInsts)
            << algorithmName(algo);
    }
}

} // namespace
} // namespace rsel
