/**
 * @file
 * Unit tests for Region: step semantics, exit stubs, cycle spanning.
 */

#include <gtest/gtest.h>

#include "program/program.hpp"
#include "runtime/region.hpp"
#include "support/error.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(RegionTest, TraceFootprint)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    Region r = Region::makeTrace(0, pathOf(p, {Ids::a, Ids::b, Ids::d}));
    EXPECT_EQ(r.kind(), Region::Kind::Trace);
    EXPECT_EQ(r.entryAddr(), p.block(Ids::a).startAddr());
    EXPECT_EQ(r.instCount(), 3u + 3u + 2u);
    EXPECT_EQ(r.byteSize(), p.block(Ids::a).sizeBytes() +
                                p.block(Ids::b).sizeBytes() +
                                p.block(Ids::d).sizeBytes());
    EXPECT_TRUE(r.containsBlock(Ids::b));
    EXPECT_FALSE(r.containsBlock(Ids::l));
}

TEST(RegionTest, TraceStepFollowsRecordedPath)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    Region r = Region::makeTrace(0, pathOf(p, {Ids::a, Ids::b, Ids::d}));

    std::size_t pos = 0;
    EXPECT_EQ(r.step(pos, p.block(Ids::b), false), RegionStep::Internal);
    EXPECT_EQ(pos, 1u);
    EXPECT_EQ(r.step(pos, p.block(Ids::d), false), RegionStep::Internal);
    EXPECT_EQ(pos, 2u);
    // The call leaves the trace.
    EXPECT_EQ(r.step(pos, p.block(Ids::e), true), RegionStep::Exit);
    EXPECT_EQ(pos, 2u); // unchanged on exit
}

TEST(RegionTest, TraceStepExitsOnPathDivergence)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Region r =
        Region::makeTrace(0, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    std::size_t pos = 0;
    // Executing the other side of the unbiased branch exits at once.
    EXPECT_EQ(r.step(pos, p.block(Ids::b), false), RegionStep::Exit);
}

TEST(RegionTest, TraceBranchToTopRestartsCycle)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Region r =
        Region::makeTrace(0, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    EXPECT_TRUE(r.spansCycle()); // F jumps back to A

    std::size_t pos = 0;
    ASSERT_EQ(r.step(pos, p.block(Ids::c), true), RegionStep::Internal);
    ASSERT_EQ(r.step(pos, p.block(Ids::d), false), RegionStep::Internal);
    ASSERT_EQ(r.step(pos, p.block(Ids::f), true), RegionStep::Internal);
    EXPECT_EQ(r.step(pos, p.block(Ids::a), true),
              RegionStep::CycleRestart);
    EXPECT_EQ(pos, 0u);
}

TEST(RegionTest, TraceExitStubCount)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    // Trace A C D F spanning the cycle:
    //  A: cond taken->C (inline), fall->B (stub)            = 1
    //  C: falls through to D (inline)                       = 0
    //  D: cond taken->F (inline), fall->E (stub)            = 1
    //  F: jump to A = branch to top (linked, no stub)       = 0
    Region r =
        Region::makeTrace(0, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    EXPECT_EQ(r.exitStubCount(), 2u);
    EXPECT_TRUE(r.spansCycle());

    // Trace B D F (the tail-duplicated second trace):
    //  B: jump to D (inline)                                = 0
    //  D: cond taken->F (inline), fall->E (stub)            = 1
    //  F: jump to A (off-trace target, stub)                = 1
    Region r2 = Region::makeTrace(1, pathOf(p, {Ids::b, Ids::d, Ids::f}));
    EXPECT_EQ(r2.exitStubCount(), 2u);
    EXPECT_FALSE(r2.spansCycle());
}

TEST(RegionTest, IndirectTerminatorsAlwaysNeedAStub)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    // Trace E F: F returns (indirect) — one stub even though the
    // trace ends there; E falls through to F inline.
    Region r = Region::makeTrace(0, pathOf(p, {Ids::e, Ids::f}));
    EXPECT_EQ(r.exitStubCount(), 1u);
}

TEST(RegionTest, MultiPathMembershipKeepsControl)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    Region r = Region::makeMultiPath(
        0, pathOf(p, {Ids::a, Ids::b, Ids::c, Ids::d, Ids::f}));
    EXPECT_EQ(r.kind(), Region::Kind::MultiPath);

    std::size_t pos = 0;
    // Both sides of the unbiased branch stay inside.
    EXPECT_EQ(r.step(pos, p.block(Ids::b), false), RegionStep::Internal);
    EXPECT_EQ(r.step(pos, p.block(Ids::d), true), RegionStep::Internal);
    EXPECT_EQ(r.step(pos, p.block(Ids::f), true), RegionStep::Internal);
    EXPECT_EQ(r.step(pos, p.block(Ids::a), true),
              RegionStep::CycleRestart);
    EXPECT_EQ(pos, 0u);
    // The rare side exits.
    ++pos; // move off the entry
    EXPECT_EQ(r.step(pos, p.block(Ids::e), false), RegionStep::Exit);
}

TEST(RegionTest, MultiPathStubsExcludeInternalTargets)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    // Region {A,B,C,D,F}:
    //  A: both directions internal                          = 0
    //  B: jump D internal                                   = 0
    //  C: falls to D internal                               = 0
    //  D: taken->F internal, fall->E outside                = 1
    //  F: jump A internal (cycle)                           = 0
    Region r = Region::makeMultiPath(
        0, pathOf(p, {Ids::a, Ids::b, Ids::c, Ids::d, Ids::f}));
    EXPECT_EQ(r.exitStubCount(), 1u);
    EXPECT_TRUE(r.spansCycle());

    // Compare: two single-path traces need 4 stubs for the same hot
    // code (2 + 2 above) — the paper's Figure 4 reduction.
    Region t1 =
        Region::makeTrace(1, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    Region t2 = Region::makeTrace(2, pathOf(p, {Ids::b, Ids::d, Ids::f}));
    EXPECT_GT(t1.exitStubCount() + t2.exitStubCount(),
              r.exitStubCount());
}

TEST(RegionTest, RejectsDuplicateBlocks)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    EXPECT_THROW(
        Region::makeTrace(0, pathOf(p, {Ids::a, Ids::c, Ids::a})),
        PanicError);
    EXPECT_THROW(Region::makeTrace(0, {}), PanicError);
}

} // namespace
} // namespace rsel
