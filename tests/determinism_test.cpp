/**
 * @file
 * Determinism guarantees: identical seeds yield byte-identical
 * programs and event streams, and every parallel harness in the
 * repo (sweep engine, fuzz harness) produces output independent of
 * its job count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "driver/sweep_runner.hpp"
#include "program/program_builder.hpp"
#include "program/trace_io.hpp"
#include "testing/differential.hpp"
#include "testing/fuzz_harness.hpp"
#include "testing/invariant_sink.hpp"
#include "testing/random_program.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

using testing::fnvEvent;
using testing::fnvOffset;
using testing::FuzzOptions;
using testing::FuzzSummary;
using testing::GenSpec;
using testing::generateProgram;
using testing::resultFingerprint;
using testing::runFuzz;

/** Hash the (id, taken) stream of up to `events` executor events. */
std::uint64_t
streamHashOf(const Program &prog, std::uint64_t seed,
             std::uint64_t events)
{
    class Hash : public ExecutionSink
    {
      public:
        bool
        onEvent(const ExecEvent &ev) override
        {
            h = fnvEvent(h, ev.block->id(), ev.takenBranch);
            return true;
        }
        std::uint64_t h = fnvOffset;
    };
    Hash sink;
    Executor exec(prog, seed);
    exec.run(events, sink);
    return sink.h;
}

TEST(DeterminismTest, SaveProgramIsByteIdenticalAcrossBuilds)
{
    // Workload builders and the fuzz generator must both be pure
    // functions of their seeds.
    for (const WorkloadInfo &w : workloadSuite()) {
        std::ostringstream a, b;
        saveProgram(w.build(42), a);
        saveProgram(w.build(42), b);
        EXPECT_EQ(a.str(), b.str()) << w.name;
    }
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const GenSpec spec = GenSpec::fromSeed(seed);
        std::ostringstream a, b;
        saveProgram(generateProgram(spec), a);
        saveProgram(generateProgram(spec), b);
        EXPECT_EQ(a.str(), b.str()) << "fuzz seed " << seed;
    }
}

TEST(DeterminismTest, ExecutorStreamIsSeedDeterministic)
{
    // An unbiased conditional inside a long-running loop: the
    // executor's RNG provably shapes the stream on every iteration
    // (a loop-only program would be branch-deterministic and make
    // this test vacuous).
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId b0 = b.block(2);
    const BlockId b1 = b.block(3);
    const BlockId b2 = b.block(2);
    const BlockId b3 = b.block(1);
    b.condTo(b0, b2, CondBehavior::bernoulli(0.5));
    b.loopTo(b2, b0, 1'000'000'000, 1'000'000'000);
    b.halt(b3);
    b.setEntry(b0);
    (void)b1;
    const Program prog = b.build();
    const std::uint64_t h1 = streamHashOf(prog, 99, 20'000);
    const std::uint64_t h2 = streamHashOf(prog, 99, 20'000);
    EXPECT_EQ(h1, h2);
    // A different executor seed must (overwhelmingly) change the
    // stream — otherwise the hash is vacuous.
    const std::uint64_t h3 = streamHashOf(prog, 100, 20'000);
    EXPECT_NE(h1, h3);
}

TEST(DeterminismTest, SweepResultsIdenticalAcrossJobCounts)
{
    std::vector<const WorkloadInfo *> workloads;
    for (const WorkloadInfo &w : workloadSuite()) {
        workloads.push_back(&w);
        if (workloads.size() == 2)
            break;
    }
    std::vector<Algorithm> algos(std::begin(allSelectors),
                                 std::end(allSelectors));
    SimOptions base;
    base.maxEvents = 20'000;
    base.seed = 7;
    const std::vector<SweepCell> cells =
        SweepRunner::makeGrid(workloads, algos, base, 42);

    const std::vector<SimResult> serial = SweepRunner(1).run(cells);
    const std::vector<SimResult> parallel = SweepRunner(8).run(cells);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(resultFingerprint(serial[i]),
                  resultFingerprint(parallel[i]))
            << "cell " << i;
}

TEST(DeterminismTest, FuzzSummaryIdenticalAcrossJobCounts)
{
    FuzzOptions opts;
    opts.seeds = 6;
    opts.startSeed = 1;
    opts.events = 3'000;
    opts.shrink = false;

    opts.jobs = 1;
    const FuzzSummary serial = runFuzz(opts);
    opts.jobs = 8;
    const FuzzSummary parallel = runFuzz(opts);

    EXPECT_EQ(serial.seedsRun, parallel.seedsRun);
    EXPECT_EQ(serial.failures, parallel.failures);
    ASSERT_EQ(serial.detail.size(), parallel.detail.size());
    for (std::size_t i = 0; i < serial.detail.size(); ++i) {
        EXPECT_EQ(serial.detail[i].seed, parallel.detail[i].seed);
        EXPECT_EQ(serial.detail[i].error, parallel.detail[i].error);
    }
}

} // namespace
} // namespace rsel
