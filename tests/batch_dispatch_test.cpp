/**
 * @file
 * Tests for batched (structure-of-arrays) event dispatch: EventBatch
 * mechanics, fillBatch/run stream identity, batched simulation
 * equivalence across batch sizes and selectors, batch-boundary edge
 * cases, early-stop semantics, and batched trace replay.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "dynopt/dynopt_system.hpp"
#include "program/executor.hpp"
#include "program/trace_io.hpp"
#include "testing/differential.hpp"
#include "testing/random_program.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

Program
gzipProgram()
{
    return findWorkload("gzip")->build(42);
}

/** Per-event recorder used as the reference stream. */
struct RecordSink : ExecutionSink
{
    bool
    onEvent(const ExecEvent &ev) override
    {
        ids.push_back(ev.block->id());
        taken.push_back(ev.takenBranch ? 1 : 0);
        branch.push_back(ev.branchAddr);
        return true;
    }
    std::vector<BlockId> ids;
    std::vector<std::uint8_t> taken;
    std::vector<Addr> branch;
};

/** Batch recorder flattening batches back into one stream. */
struct RecordBatchSink : BatchSink
{
    std::size_t
    onBatch(const EventBatch &batch) override
    {
        ++batches;
        maxBatch = std::max(maxBatch, batch.size());
        ids.insert(ids.end(), batch.blockIds.begin(),
                   batch.blockIds.end());
        taken.insert(taken.end(), batch.takenFlags.begin(),
                     batch.takenFlags.end());
        branch.insert(branch.end(), batch.branchAddrs.begin(),
                      batch.branchAddrs.end());
        return batch.size();
    }
    std::vector<BlockId> ids;
    std::vector<std::uint8_t> taken;
    std::vector<Addr> branch;
    std::size_t batches = 0;
    std::size_t maxBatch = 0;
};

TEST(EventBatchTest, PushClearReserve)
{
    EventBatch b;
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.size(), 0u);
    b.reserve(16);
    b.push(3, true, 0x40);
    b.push(7, false, invalidAddr);
    EXPECT_EQ(b.size(), 2u);
    EXPECT_FALSE(b.empty());
    EXPECT_EQ(b.blockIds[0], 3u);
    EXPECT_EQ(b.takenFlags[0], 1u);
    EXPECT_EQ(b.branchAddrs[0], 0x40u);
    EXPECT_EQ(b.blockIds[1], 7u);
    EXPECT_EQ(b.takenFlags[1], 0u);
    b.clear();
    EXPECT_TRUE(b.empty());
    // clear() keeps capacity: pushing again does not reallocate the
    // stripes (observable via data pointers).
    const BlockId *p = b.blockIds.data();
    b.push(1, false, invalidAddr);
    EXPECT_EQ(b.blockIds.data(), p);
}

TEST(BatchDispatchTest, FillBatchProducesRunStream)
{
    const Program prog = gzipProgram();
    constexpr std::uint64_t events = 50'000;

    RecordSink ref;
    {
        Executor exec(prog, 7);
        EXPECT_EQ(exec.run(events, ref), events);
    }

    // Same seed, consumed through fillBatch in uneven chunks.
    Executor exec(prog, 7);
    EventBatch batch;
    std::vector<BlockId> ids;
    std::vector<std::uint8_t> taken;
    std::vector<Addr> branch;
    const std::size_t sizes[] = {1, 2, 509, 4096, 3, 100'000};
    std::size_t si = 0;
    while (ids.size() < events) {
        const std::size_t want =
            std::min<std::size_t>(sizes[si++ % 6],
                                  events - ids.size());
        const std::uint64_t got = exec.fillBatch(batch, want);
        EXPECT_EQ(got, batch.size());
        EXPECT_LE(got, want);
        if (got == 0)
            break;
        ids.insert(ids.end(), batch.blockIds.begin(),
                   batch.blockIds.end());
        taken.insert(taken.end(), batch.takenFlags.begin(),
                     batch.takenFlags.end());
        branch.insert(branch.end(), batch.branchAddrs.begin(),
                      batch.branchAddrs.end());
    }
    EXPECT_EQ(ids, ref.ids);
    EXPECT_EQ(taken, ref.taken);
    EXPECT_EQ(branch, ref.branch);
    EXPECT_EQ(exec.executedBlocks(), events);
}

TEST(BatchDispatchTest, RunBatchedDeliversIdenticalStream)
{
    const Program prog = gzipProgram();
    constexpr std::uint64_t events = 30'000;

    RecordSink ref;
    {
        Executor exec(prog, 7);
        exec.run(events, ref);
    }
    for (const std::size_t bs : {std::size_t{1}, std::size_t{509},
                                 defaultBatchSize}) {
        SCOPED_TRACE(bs);
        Executor exec(prog, 7);
        RecordBatchSink sink;
        EXPECT_EQ(exec.runBatched(events, sink, bs), events);
        EXPECT_EQ(sink.ids, ref.ids);
        EXPECT_EQ(sink.taken, ref.taken);
        EXPECT_EQ(sink.branch, ref.branch);
        EXPECT_LE(sink.maxBatch, bs);
        EXPECT_GE(sink.batches, events / bs);
    }
}

TEST(BatchDispatchTest, BatchedSimulationMatchesPerEvent)
{
    // The headline equivalence: for every selector, the batched
    // DynOptSystem run is byte-identical to the per-event run —
    // including batch size 1 (maximal boundary count) and odd sizes
    // that end batches mid-region and mid-trace-formation.
    const Program prog = gzipProgram();
    for (const Algorithm algo : allSelectors) {
        SCOPED_TRACE(algorithmName(algo));
        SimOptions opts;
        opts.maxEvents = 60'000;
        opts.seed = 7;
        opts.dispatch = Dispatch::PerEvent;
        const std::string fp =
            testing::resultFingerprint(simulate(prog, algo, opts));
        opts.dispatch = Dispatch::Batched;
        for (const std::size_t bs : {std::size_t{1}, std::size_t{257},
                                     defaultBatchSize}) {
            opts.batchSize = bs;
            EXPECT_EQ(testing::resultFingerprint(
                          simulate(prog, algo, opts)),
                      fp)
                << "batch size " << bs;
        }
    }
}

TEST(BatchDispatchTest, SinkCanStopMidBatch)
{
    const Program prog = gzipProgram();

    // A sink that consumes only the first `limit` events overall.
    struct StoppingSink : BatchSink
    {
        explicit StoppingSink(std::size_t limit) : remaining(limit) {}
        std::size_t
        onBatch(const EventBatch &batch) override
        {
            const std::size_t take =
                std::min(batch.size(), remaining);
            remaining -= take;
            consumed += take;
            return take;
        }
        std::size_t remaining;
        std::size_t consumed = 0;
    };

    // Stop point in the middle of the second batch.
    StoppingSink sink(1500);
    Executor exec(prog, 7);
    const std::uint64_t consumed = exec.runBatched(100'000, sink, 1000);
    EXPECT_EQ(consumed, 1500u);
    EXPECT_EQ(sink.consumed, 1500u);
    // The producer had already advanced past the whole second batch:
    // the unconsumed tail is dropped, not replayed (the documented
    // difference from per-event early stop).
    EXPECT_EQ(exec.executedBlocks(), 2000u);
    EXPECT_FALSE(exec.finished());
}

TEST(BatchDispatchTest, ReplayFillBatchMatchesLiveStream)
{
    // Zero-copy replay: TraceReplayer::fillBatch decodes straight
    // into the stripes and reproduces the recorded stream exactly,
    // including the reconstructed taken flags and branch addresses.
    const Program prog = gzipProgram();
    constexpr std::uint64_t events = 20'000;

    std::ostringstream os;
    RecordSink ref;
    {
        Executor exec(prog, 7);
        TraceWriter writer(os, prog);
        struct Tee : ExecutionSink
        {
            Tee(RecordSink &a, TraceWriter &b) : rec(a), wr(b) {}
            bool
            onEvent(const ExecEvent &ev) override
            {
                rec.onEvent(ev);
                return wr.onEvent(ev);
            }
            RecordSink &rec;
            TraceWriter &wr;
        } tee(ref, writer);
        exec.run(events, tee);
        writer.finish();
    }

    std::istringstream is(os.str());
    TraceReplayer rp(prog, is);
    RecordBatchSink sink;
    EXPECT_EQ(rp.runBatched(events, sink, 509), events);
    EXPECT_EQ(sink.ids, ref.ids);
    EXPECT_EQ(sink.taken, ref.taken);
    EXPECT_EQ(sink.branch, ref.branch);
}

TEST(BatchDispatchTest, BatchedRunAgreesOnTermination)
{
    // Whether a generated program halts inside the cap or the cap
    // stops it, both consumption styles agree on the total event
    // count, the finished flag, and the stream itself — including
    // the final partial batch.
    testing::GenSpec spec = testing::GenSpec::fromSeed(2);
    spec.clamp();
    const Program prog = testing::generateProgram(spec);
    constexpr std::uint64_t cap = 100'000;

    RecordSink ref;
    std::uint64_t total;
    bool refFinished;
    {
        Executor exec(prog, spec.execSeed);
        total = exec.run(cap, ref);
        refFinished = exec.finished();
    }
    Executor exec(prog, spec.execSeed);
    RecordBatchSink sink;
    EXPECT_EQ(exec.runBatched(cap, sink, 777), total);
    EXPECT_EQ(exec.finished(), refFinished);
    EXPECT_EQ(sink.ids, ref.ids);
}

} // namespace
} // namespace rsel
