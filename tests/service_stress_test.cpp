/**
 * @file
 * Concurrency-hostile service tests, written for the tsan preset
 * (they run everywhere, but their purpose is to give the thread
 * sanitizer real cross-thread traffic to chew on): shard-mutex
 * contention with a single shard, tenant teardown concurrent with
 * other tenants' in-flight batches, and a 4096-tenant soak proving
 * the arena's occupancy stays bounded under quota partitioning.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "negative_compile/lock_order_shim.hpp"
#include "service/selection_service.hpp"
#include "service/tenant_session.hpp"
#include "testing/differential.hpp"

namespace rsel {
namespace service {
namespace {

/** Largest single-region estimate in a finished result (the byte
 *  model CodeCache charges: code bytes + 10 per exit stub). */
std::uint64_t
maxRegionEstimate(const SimResult &result)
{
    std::uint64_t maxEst = 0;
    for (const RegionStats &r : result.regions)
        maxEst = std::max(maxEst,
                          r.byteSize +
                              static_cast<std::uint64_t>(
                                  r.exitStubs) *
                                  10);
    return maxEst;
}

// One shard means every admission and release of every tenant
// serializes on the same mutex — maximum cross-tenant contention.
// Results must not care: fingerprints equal the 16-shard run, and
// the determinism contract holds under the squeeze.
TEST(ServiceStressTest, ShardContentionStress)
{
    auto makeConfig = [](std::size_t shards) {
        ServiceConfig config;
        for (std::size_t i = 0; i < 16; ++i)
            config.tenants.push_back(TenantSpec::fromSeed(1 + i));
        // 64-byte quotas: smaller than a typical live set (~200 B),
        // so every tenant churns through evictions constantly.
        config.cacheKb = 1;
        config.shards = shards;
        config.jobs = 8;
        config.eventsOverride = 4000;
        return config;
    };
    const ServiceReport squeezed = runService(makeConfig(1));
    const ServiceReport spread = runService(makeConfig(16));
    ASSERT_EQ(squeezed.tenants.size(), spread.tenants.size());
    for (std::size_t i = 0; i < squeezed.tenants.size(); ++i)
        EXPECT_EQ(squeezed.tenants[i].fingerprint,
                  spread.tenants[i].fingerprint)
            << squeezed.tenants[i].name;
    EXPECT_GT(squeezed.arena.releases, 0u);
    EXPECT_EQ(verifyServiceDeterminism(makeConfig(1)), "");
}

// Tenant teardown while other tenants' batches are in flight: each
// session is driven by its own thread (the per-session serialization
// the contract requires); the odd tenants are stopped from the main
// thread mid-run and torn down by their owners while even tenants
// keep hammering the same shards. Nothing may leak or resurrect.
TEST(ServiceStressTest, ConcurrentTeardownDuringInflightBatches)
{
    ArenaConfig cfg;
    cfg.capacityBytes = 16 * 1024;
    cfg.shardCount = 2; // two shards: real interleaving, real sharing
    ShardedCodeCache arena(cfg);

    constexpr std::size_t tenantCount = 8;
    std::vector<std::unique_ptr<TenantSession>> sessions;
    // Registration happens strictly before any traffic (the
    // registerTenant precondition); teardown has no such restriction.
    for (std::size_t i = 0; i < tenantCount; ++i) {
        const TenantId id = arena.registerTenant();
        sessions.push_back(std::make_unique<TenantSession>(
            id, TenantSpec::fromSeed(1 + i),
            arena.tenantLimits(tenantCount), arena, 200000));
    }

    std::vector<std::thread> drivers;
    drivers.reserve(tenantCount);
    for (std::size_t i = 0; i < tenantCount; ++i)
        drivers.emplace_back([&, i] {
            while (sessions[i]->runSlice(256)) {
            }
            // Tear down on the owner thread, concurrent with every
            // other tenant's slices and teardowns.
            sessions[i]->teardown();
        });
    // Stop the odd tenants mid-flight from outside.
    for (std::size_t i = 1; i < tenantCount; i += 2)
        sessions[i]->requestStop();
    for (std::thread &t : drivers)
        t.join();

    EXPECT_EQ(arena.stats().liveBytes, 0u);
    for (std::size_t i = 0; i < tenantCount; ++i) {
        EXPECT_EQ(arena.liveEntryCount(
                      sessions[i]->tenantId()),
                  0u);
        EXPECT_EQ(
            arena.tenantStats(sessions[i]->tenantId()).liveBytes,
            0u);
    }
    EXPECT_EQ(arena.stats().tenantsActive, 0u);
}

// 4096 tenants over one small bounded arena: the global occupancy
// bound Σ_t live_t ≤ Σ_t max(quota_t, largest single region_t)
// must hold at every instant — asserted via the high-water marks —
// and every tenant still finishes and tears down to zero.
TEST(ServiceStressTest, BoundedMemorySoak4096Tenants)
{
    constexpr std::size_t tenantCount = 4096;
    ServiceConfig config;
    config.tenants.reserve(tenantCount);
    for (std::size_t i = 0; i < tenantCount; ++i) {
        TenantSpec spec;
        spec.name = "soak" + std::to_string(i);
        spec.algo = allSelectors[i % std::size(allSelectors)];
        // Small fixed program shape, varied seeds: generation stays
        // cheap at this scale while streams still differ.
        spec.program.funcs = 2;
        spec.program.blocks = 4;
        spec.program.buildSeed = 1 + i;
        spec.program.execSeed = 1 + i;
        config.tenants.push_back(spec);
    }
    config.cacheKb = 64; // 16-byte quotas: one region at a time
    config.jobs = 8;
    config.eventsOverride = 64;
    const ServiceReport report = runService(config);

    ASSERT_EQ(report.tenants.size(), tenantCount);
    EXPECT_EQ(report.quotaBytes, 16u);
    std::uint64_t globalBound = 0;
    for (const TenantReport &tr : report.tenants) {
        const std::uint64_t maxEst = maxRegionEstimate(tr.result);
        const std::uint64_t tenantBound =
            std::max(report.quotaBytes, maxEst);
        EXPECT_LE(tr.cache.highWaterBytes, tenantBound) << tr.name;
        globalBound += tenantBound;
    }
    EXPECT_LE(report.arena.highWaterBytes, globalBound);
    EXPECT_GT(report.totalEvents, 0u);
    // The arena snapshot is taken before teardown: every tenant is
    // still registered and active at that point.
    EXPECT_EQ(report.arena.tenantsActive, tenantCount);
    EXPECT_EQ(report.arena.tenantsRegistered, tenantCount);
}

// The deliberate lock-order shim (tests/negative_compile/
// lock_order_shim.hpp): its LEGAL acquisition order — registry
// before shard.mu — runs here for real, hammered from eight threads
// so the tsan preset watches genuine cross-thread acquisitions of
// the production capabilities. The INVERTED order of the very same
// shim is the arena_lock_order_inversion negative-compile case the
// analyze gate must reject — together they prove the
// RSEL_ACQUIRED_AFTER annotation, not scheduling luck, is what
// forbids the deadlock.
TEST(ServiceStressTest, LockOrderShimLegalOrder)
{
    ArenaConfig cfg;
    cfg.shardCount = 4;
    ShardedCodeCache arena(cfg);
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&arena] {
            for (int i = 0; i < 500; ++i)
                lockOrderShim(arena);
        });
    for (std::thread &th : threads)
        th.join();
    // Nothing to assert beyond "no deadlock, no sanitizer report":
    // the shim takes and releases both capabilities in order.
    EXPECT_EQ(arena.stats().shardCount, 4u);
}

// Shard quarantine raced against live traffic: six tenants hammer a
// two-shard arena from their own threads while a chaos thread
// quarantines and lifts both shards in a tight loop. Admissions that
// land on a quarantined shard park; lifts merge them back — all
// concurrent with releases and evictions on the same shards. The
// tsan preset is the real audience; everywhere else this is a
// liveness and accounting check: nothing deadlocks, nothing leaks,
// and the admission identity closes after teardown.
TEST(ServiceStressTest, ConcurrentQuarantineDuringInflightAdmissions)
{
    ArenaConfig cfg;
    cfg.capacityBytes = 8 * 1024;
    cfg.shardCount = 2;
    ShardedCodeCache arena(cfg);

    constexpr std::size_t tenantCount = 6;
    std::vector<std::unique_ptr<TenantSession>> sessions;
    for (std::size_t i = 0; i < tenantCount; ++i) {
        const TenantId id = arena.registerTenant();
        sessions.push_back(std::make_unique<TenantSession>(
            id, TenantSpec::fromSeed(1 + i),
            arena.tenantLimits(tenantCount), arena, 100000));
    }

    std::vector<std::thread> drivers;
    drivers.reserve(tenantCount);
    for (std::size_t i = 0; i < tenantCount; ++i)
        drivers.emplace_back([&, i] {
            while (sessions[i]->runSlice(256)) {
            }
            sessions[i]->teardown();
        });
    // Balanced quarantine/lift cycles on both shards, concurrent
    // with every admission and release above. Each cycle nests to
    // depth one and lifts before the next, so the loop leaves both
    // shards live no matter where the drivers are.
    std::thread chaos([&arena] {
        for (int cycle = 0; cycle < 400; ++cycle) {
            const std::size_t shard =
                static_cast<std::size_t>(cycle) % 2;
            arena.quarantineShard(shard);
            std::this_thread::yield();
            arena.liftShardQuarantine(shard);
        }
    });
    chaos.join();
    for (std::thread &t : drivers)
        t.join();

    const ArenaStats stats = arena.stats();
    EXPECT_EQ(stats.liveBytes, 0u);
    EXPECT_EQ(stats.liveEntries, 0u);
    EXPECT_EQ(stats.quarantines, 400u);
    EXPECT_EQ(stats.admissions, stats.releases);
    for (std::size_t i = 0; i < tenantCount; ++i)
        EXPECT_EQ(
            arena.tenantStats(sessions[i]->tenantId()).liveBytes,
            0u)
            << i;
}

// A full chaos service run at jobs 8 — crashes, quarantines, and
// squeezes all armed — exercised twice to pin the cross-thread
// trajectory, then put through the chaos oracle. Under tsan this is
// the end-to-end pass over every chaos code path (conductor,
// restart, parked admissions, squeeze through setCapacity) with
// real pool concurrency.
TEST(ServiceStressTest, ChaosServiceRunUnderStress)
{
    ServiceConfig config;
    for (std::size_t i = 0; i < 8; ++i)
        config.tenants.push_back(TenantSpec::fromSeed(1 + i));
    config.cacheKb = 16;
    config.shards = 2;
    config.jobs = 8;
    config.eventsOverride = 8000;
    config.sliceEvents = 512;
    config.chaos = ChaosPlan::parse(
        "c1,crash=400,quar=500,quarlen=4,sqdiv=4,sqat=2,sqlen=6,"
        "window=6");
    config.overload.healthEnabled = true;

    const ServiceReport first = runService(config);
    const ServiceReport second = runService(config);
    ASSERT_EQ(first.tenants.size(), second.tenants.size());
    for (std::size_t i = 0; i < first.tenants.size(); ++i)
        EXPECT_EQ(first.tenants[i].fingerprint,
                  second.tenants[i].fingerprint)
            << first.tenants[i].name;
    EXPECT_GT(first.chaos.restarts + first.chaos.quarantines +
                  first.chaos.squeezes,
              0u);
    EXPECT_EQ(verifyServiceChaos(config), "");
}

} // namespace
} // namespace service
} // namespace rsel
