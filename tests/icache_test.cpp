/**
 * @file
 * Tests for the instruction-cache model and the locality claim it
 * measures: the paper's argument that trace separation degrades
 * I-cache performance, which better region selection repairs.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "runtime/icache.hpp"
#include "support/error.hpp"
#include "workloads/scenarios.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

TEST(ICacheModelTest, ColdMissesThenHits)
{
    ICacheModel cache({1024, 64, 2});
    EXPECT_EQ(cache.fetchRange(0, 64), 1u);  // cold miss
    EXPECT_EQ(cache.fetchRange(0, 64), 0u);  // hit
    EXPECT_EQ(cache.fetchRange(32, 64), 1u); // second line cold
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_DOUBLE_EQ(cache.missRate(), 0.5);
}

TEST(ICacheModelTest, RangeSpansLines)
{
    ICacheModel cache({1024, 64, 2});
    // 130 bytes from 60 touches lines 0, 1, 2.
    EXPECT_EQ(cache.fetchRange(60, 130), 3u);
    EXPECT_EQ(cache.accesses(), 3u);
}

TEST(ICacheModelTest, LruEvictsLeastRecentlyUsed)
{
    // 2 sets, 2 ways, 64B lines: lines 0,2,4 map to set 0.
    ICacheModel cache({256, 64, 2});
    cache.fetchRange(0 * 64, 1);   // set0 way A
    cache.fetchRange(2 * 64, 1);   // set0 way B
    cache.fetchRange(0 * 64, 1);   // touch A
    cache.fetchRange(4 * 64, 1);   // evicts B (LRU)
    EXPECT_EQ(cache.fetchRange(0 * 64, 1), 0u); // A still present
    EXPECT_EQ(cache.fetchRange(2 * 64, 1), 1u); // B was evicted
}

TEST(ICacheModelTest, WorkingSetWithinCapacityStopsMissing)
{
    ICacheModel cache({4096, 64, 2});
    for (int round = 0; round < 10; ++round)
        cache.fetchRange(0, 2048); // half the capacity, repeatedly
    // Only the first round misses.
    EXPECT_EQ(cache.misses(), 32u);
    EXPECT_EQ(cache.accesses(), 320u);
}

TEST(ICacheModelTest, GeometryValidation)
{
    EXPECT_THROW(ICacheModel({100, 60, 2}), PanicError);  // line !pow2
    EXPECT_THROW(ICacheModel({64, 64, 2}), PanicError);   // < one set
    EXPECT_NO_THROW(ICacheModel({128, 64, 2}));           // one set
}

TEST(ICacheLocalityTest, SpanningTraceBeatsSplitTraces)
{
    // Figure 2 end-to-end: LEI's single spanning trace stays within
    // one contiguous layout chunk; NET ping-pongs between two.
    // With a tiny I-cache the separation becomes measurable misses.
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.maxEvents = 120'000;
    opts.seed = 9;
    opts.icache = {128, 16, 1}; // 8 tiny lines, direct-mapped

    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult lei = simulate(p, Algorithm::Lei, opts);
    EXPECT_GT(net.icacheAccesses, 0u);
    EXPECT_LT(lei.icacheMissRate(), net.icacheMissRate());
}

TEST(ICacheLocalityTest, CombinationImprovesLocalityOnSuiteWorkload)
{
    Program p = buildTwolf(42);
    SimOptions opts;
    opts.maxEvents = 600'000;
    opts.seed = 7;
    opts.icache = {2048, 64, 2}; // scaled-down L1I

    SimResult net = simulate(p, Algorithm::Net, opts);
    SimResult clei = simulate(p, Algorithm::LeiCombined, opts);
    EXPECT_LT(clei.icacheMissRate(), net.icacheMissRate());
}

} // namespace
} // namespace rsel
