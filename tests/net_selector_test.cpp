/**
 * @file
 * Unit tests for NET selection, pinned to the paper's description:
 * profiling eligibility, the next-executing-tail recording rules,
 * and the Figure 2 / Figure 3 scenario behaviours.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

/** Run a scenario under one algorithm and return the result. */
SimResult
runScenario(const Program &p, Algorithm algo, std::uint64_t events,
            NetConfig net = {}, LeiConfig lei = {})
{
    SimOptions opts;
    opts.maxEvents = events;
    opts.seed = 9;
    opts.net = net;
    opts.lei = lei;
    return simulate(p, algo, opts);
}

TEST(NetSelectorTest, CounterEligibilityIsBackwardOnly)
{
    // A forward-branch-only program: NET must never select anything
    // because no target is ever eligible (no backward branches taken,
    // no cache exits).
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId split = b.block(1);
    const BlockId thenSide = b.block(1);
    const BlockId join = b.block(1);
    b.condTo(split, join, CondBehavior::bernoulli(0.5));
    (void)thenSide;
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    Program *pp = &p;
    DynOptSystem system(*pp);
    system.useNet();
    Executor exec(p, 1);
    exec.run(1000, system);
    SimResult r = system.finish();
    EXPECT_EQ(r.regionCount, 0u);
    EXPECT_EQ(r.maxLiveCounters, 0u);
}

TEST(NetSelectorTest, SelectsAfterThresholdExecutions)
{
    // A tight self-loop: the head is a backward-branch target. With
    // threshold T the trace must appear at the T-th execution of the
    // target, not before.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(1);
    const BlockId latch = b.block(1);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    NetConfig cfg;
    cfg.hotThreshold = 10;
    DynOptSystem system(p);
    system.useNet(cfg);
    Executor exec(p, 1);
    // Events: head,latch pairs. The first taken branch into head is
    // the first back edge, so head's counter hits 10 at event
    // 2*10+1; before that nothing is cached.
    // Head's counter reaches 10 at event 21 (head executes at odd
    // events, counted from its first taken entry at event 3); the
    // recording then needs two more events to wrap the cycle.
    exec.run(20, system);
    EXPECT_EQ(system.cache().regionCount(), 0u);
    exec.run(4, system);
    EXPECT_EQ(system.cache().regionCount(), 1u);
    const Region &r = system.cache().region(0);
    EXPECT_EQ(r.blocks().size(), 2u);
    EXPECT_TRUE(r.spansCycle());
    exec.run(2000, system);
    SimResult res = system.finish();
    EXPECT_GT(res.hitRate(), 0.95);
}

TEST(NetSelectorTest, Figure2CannotSpanInterproceduralCycle)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;
    SimResult r = runScenario(p, Algorithm::Net, 120'000);

    // NET splits the cycle into two traces: A B D and E F L. (E's
    // trace is selected first here: the backward call makes E
    // counter-eligible one branch earlier in the iteration than A;
    // the paper's figure is about the resulting split, not order.)
    ASSERT_EQ(r.regionCount, 2u);
    std::uint64_t entries[2] = {r.regions[0].entryAddr,
                                r.regions[1].entryAddr};
    std::sort(entries, entries + 2);
    EXPECT_EQ(entries[0], p.block(Ids::e).startAddr());
    EXPECT_EQ(entries[1], p.block(Ids::a).startAddr());
    EXPECT_EQ(r.regions[0].blockCount, 3u);
    EXPECT_EQ(r.regions[1].blockCount, 3u);
    // Neither trace spans the cycle ...
    EXPECT_EQ(r.spanningRegions, 0u);
    EXPECT_DOUBLE_EQ(r.executedCycleRatio(), 0.0);
    // ... so every iteration transitions between the two regions.
    EXPECT_GT(r.regionTransitions, 30'000u);
    EXPECT_GT(r.hitRate(), 0.99);
}

TEST(NetSelectorTest, Figure3DuplicatesInnerLoop)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;
    SimResult r = runScenario(p, Algorithm::Net, 150'000);

    // Paper: three traces — B; C; A B — with B duplicated. (The
    // relative selection order of C and A B depends on when each
    // counter starts; the paper's Figure 3 argument is about the
    // resulting trace set.)
    ASSERT_EQ(r.regionCount, 3u);
    auto findRegion = [&](BlockId entry) -> const RegionStats * {
        for (const RegionStats &reg : r.regions)
            if (reg.entryAddr == p.block(entry).startAddr())
                return &reg;
        return nullptr;
    };
    const RegionStats *innerTrace = findRegion(Ids::b);
    const RegionStats *latchTrace = findRegion(Ids::c);
    const RegionStats *outerTrace = findRegion(Ids::a);
    ASSERT_NE(innerTrace, nullptr);
    ASSERT_NE(latchTrace, nullptr);
    ASSERT_NE(outerTrace, nullptr);
    EXPECT_EQ(innerTrace->blockCount, 1u);
    EXPECT_TRUE(innerTrace->spansCycle);
    EXPECT_EQ(latchTrace->blockCount, 1u);
    EXPECT_EQ(outerTrace->blockCount, 2u); // A plus a copy of B
    EXPECT_EQ(innerTrace->id, 0u);         // B is selected first
    // Code expansion counts B twice: 4 blocks of 3 insts selected.
    EXPECT_EQ(r.expansionInsts, 12u);
}

TEST(NetSelectorTest, SizeLimitEndsTrace)
{
    // One huge straight-line loop body; the trace must stop at the
    // configured instruction limit.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(8);
    for (int i = 0; i < 20; ++i)
        b.block(8);
    const BlockId latch = b.block(8);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    NetConfig cfg;
    cfg.hotThreshold = 10;
    cfg.maxTraceInsts = 50;
    SimResult r = runScenario(p, Algorithm::Net, 5'000, cfg);
    ASSERT_GE(r.regionCount, 1u);
    for (const RegionStats &reg : r.regions)
        EXPECT_LE(reg.instCount, 50u);
}

TEST(NetSelectorTest, RecordingStopsAtExistingRegionHead)
{
    // Figure 3 again, but checked from the region-content angle:
    // trace 2 (entry C) must consist of exactly C — its recording
    // stops when the backward branch C->A is taken; and A's later
    // trace stops when the inner loop branches to cached B.
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;
    SimResult r = runScenario(p, Algorithm::Net, 150'000);
    ASSERT_EQ(r.regionCount, 3u);
    // A's trace contains A and one copy of B, and executing it ends
    // by a taken branch to cached B (a region transition), never by
    // a cycle.
    const RegionStats *outerTrace = nullptr;
    for (const RegionStats &reg : r.regions)
        if (reg.entryAddr == p.block(Ids::a).startAddr())
            outerTrace = &reg;
    ASSERT_NE(outerTrace, nullptr);
    EXPECT_FALSE(outerTrace->spansCycle);
    EXPECT_EQ(outerTrace->cycleEnds, 0u);
}

TEST(NetSelectorTest, CounterRecyclingBoundsLiveCounters)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    SimResult r = runScenario(p, Algorithm::Net, 150'000);
    // Targets: B (backward), C (cache exit), A (backward) — each
    // recycled at threshold. At most two live at once (A and C
    // overlap while B's is already recycled).
    EXPECT_LE(r.maxLiveCounters, 2u);
    EXPECT_GE(r.maxLiveCounters, 1u);
}

TEST(NetSelectorTest, CombinedNetStartsEarlierAndCombines)
{
    // probE = 0: the rare side never executes, so the combined
    // region is exactly the five hot blocks.
    Program p = buildUnbiasedBranch(1, 0.5, 0.0);
    NetConfig cfg; // hotThreshold 50, profWindow 15, minOccur 5
    SimResult plain = runScenario(p, Algorithm::Net, 150'000, cfg);
    SimResult comb =
        runScenario(p, Algorithm::NetCombined, 150'000, cfg);

    // Plain NET needs two traces for the diamond and duplicates the
    // join blocks; combined NET selects one multi-path region.
    EXPECT_GE(plain.regionCount, 2u);
    ASSERT_GE(comb.regionCount, 1u);
    EXPECT_EQ(comb.regions[0].kind, Region::Kind::MultiPath);
    // Both sides of the unbiased branch are in the region: 5 blocks
    // (A B C D F); E never executes.
    EXPECT_EQ(comb.regions[0].blockCount, 5u);
    // No duplication: combined expansion below plain NET's.
    EXPECT_LT(comb.expansionInsts, plain.expansionInsts);
    EXPECT_LT(comb.exitStubs, plain.exitStubs);
    EXPECT_LT(comb.regionTransitions, plain.regionTransitions);
}

TEST(NetSelectorTest, ObservedRejoiningPathsAreIncluded)
{
    // Paper footnote 6: executed paths that rejoin frequent blocks
    // are included even when they occur in fewer than T_min traces
    // (selecting them separately would cause exit-dominated
    // duplication). With probE = 0.3 the E side is observed during
    // the window but falls short of T_min occurrences often — it is
    // kept either way because E -> F rejoins the region.
    Program p = buildUnbiasedBranch(1, 0.5, 0.3);
    SimResult comb = runScenario(p, Algorithm::NetCombined, 150'000);
    ASSERT_GE(comb.regionCount, 1u);
    EXPECT_EQ(comb.regions[0].blockCount, 6u);
}

TEST(NetSelectorTest, CombinedRegionKeepsBothUnbiasedOutcomes)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimResult comb = runScenario(p, Algorithm::NetCombined, 200'000);
    ASSERT_GE(comb.regionCount, 1u);
    // Control remains in the region across the unbiased branch, so
    // nearly every region execution ends by the branch to the top.
    EXPECT_GT(comb.executedCycleRatio(), 0.85);
    EXPECT_GT(comb.hitRate(), 0.99);
}

TEST(NetSelectorTest, NameReflectsMode)
{
    Program p = buildNestedLoops();
    DynOptSystem a(p);
    a.useNet();
    EXPECT_EQ(a.selector().name(), "NET");
    DynOptSystem b2(p);
    NetConfig cfg;
    cfg.combine = true;
    b2.useNet(cfg);
    EXPECT_EQ(b2.selector().name(), "NET+comb");
}

} // namespace
} // namespace rsel
