/**
 * @file
 * Unit tests for the static region-quality predictor: shared shape
 * facts, per-selector formation-model predictions, the bound
 * checker, the fact emitter and the pathology lints.
 */

#include <gtest/gtest.h>

#include "analysis/analysis_manager.hpp"
#include "analysis/static_predictor.hpp"
#include "program/program_builder.hpp"
#include "selection/formation_model.hpp"

namespace rsel {
namespace analysis {
namespace {

CondBehavior
unbiased()
{
    CondBehavior cb;
    cb.kind = CondBehavior::Kind::Bernoulli;
    cb.takenProbByPhase = {0.5};
    return cb;
}

CondBehavior
biased()
{
    CondBehavior cb;
    cb.kind = CondBehavior::Kind::Bernoulli;
    cb.takenProbByPhase = {0.95};
    return cb;
}

/** a: unbiased cond -> c | b; b: ft -> c; c: latch -> a | d; d halt. */
Program
buildLoopProgram()
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId a = pb.block(4);
    pb.block(3); // b
    const BlockId c = pb.block(2);
    const BlockId d = pb.block(1);
    pb.condTo(a, c, unbiased());
    pb.loopTo(c, a, 10, 10);
    pb.halt(d);
    pb.setEntry(a);
    return pb.build();
}

TEST(StaticReportTest, LoopProgramShapeFacts)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);

    EXPECT_EQ(rep.blockCount, 4u);
    EXPECT_EQ(rep.reachableBlocks, 4u);
    EXPECT_EQ(rep.staticInsts, 10u);
    EXPECT_EQ(rep.reachableInsts, 10u);
    EXPECT_EQ(rep.loopCount, 1u);
    EXPECT_EQ(rep.maxLoopDepth, 1u);
    EXPECT_EQ(rep.innerLoops, 0u);
    EXPECT_EQ(rep.cyclicBlocks, 3u); // a, b, c; d is off the cycle
    EXPECT_EQ(rep.crossFuncCycles, 0u);
    EXPECT_GT(rep.dataflowTransfers, 0u);

    // The one unbiased branch sits in the loop body; only the
    // branch block itself has no forward path to it.
    EXPECT_EQ(rep.unbiasedBranches, 1u);
    EXPECT_EQ(rep.unbiasedInLoops, 1u);
    EXPECT_EQ(rep.frontierBlocks, 1u);
    // Both arms (c taken, b fall-through) rejoin at c, which leads
    // to d: the joint forward descendants are c and d (2 + 1 insts).
    EXPECT_EQ(rep.tailDupEstInsts, 3u);
}

TEST(StaticReportTest, FormationModelsDriveEntranceCounts)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    ASSERT_EQ(rep.predictions.size(),
              allFormationModels().size());

    // NET needs a possible predecessor: every block has one here
    // (the latch feeds a, fall-throughs and the cond feed the rest).
    const SelectorPrediction *net = findPrediction(rep, "NET");
    ASSERT_NE(net, nullptr);
    EXPECT_EQ(net->entranceCount, 4u);
    EXPECT_EQ(net->maxRegions, 4u);
    EXPECT_EQ(net->maxSpanningRegions, 3u); // d is not cyclic

    // LEI promotes loop iterations: only cyclic blocks qualify.
    const SelectorPrediction *lei = findPrediction(rep, "LEI");
    ASSERT_NE(lei, nullptr);
    EXPECT_EQ(lei->entranceCount, 3u);
    EXPECT_EQ(lei->maxSpanningRegions, 3u);
    EXPECT_DOUBLE_EQ(lei->spanningRatioEst, 1.0);

    // Every entrance can pull in every block it reaches: the
    // expansion bound covers at least the whole reachable program,
    // and duplication is possible (multiple entrances reach c).
    EXPECT_GE(net->expansionBoundInsts, rep.reachableInsts);
    EXPECT_GT(net->dupBoundInsts, 0u);
    EXPECT_GT(net->stubDensityMax, 0.0);
    EXPECT_GT(net->stubDensityEst, 0.0);

    // The combined variants share the entrance rule but discount
    // the stub estimate (multi-path regions internalize exits).
    const SelectorPrediction *comb = findPrediction(rep, "NET+comb");
    ASSERT_NE(comb, nullptr);
    EXPECT_EQ(comb->entranceCount, net->entranceCount);
    EXPECT_LT(comb->stubDensityEst, net->stubDensityEst);

    EXPECT_EQ(findPrediction(rep, "no-such-selector"), nullptr);
}

TEST(CheckPredictionTest, FlagsEachViolatedBound)
{
    SelectorPrediction p;
    p.selector = "NET";
    p.maxRegions = 2;
    p.maxSpanningRegions = 1;
    p.dupBoundInsts = 10;
    p.expansionBoundInsts = 100;
    p.stubDensityMin = 0.1;
    p.stubDensityMax = 0.5;

    SimResult ok;
    ok.regionCount = 2;
    ok.spanningRegions = 1;
    ok.duplicatedInsts = 10;
    ok.expansionInsts = 100;
    ok.exitStubs = 20; // density 0.2, inside [0.1, 0.5]
    EXPECT_TRUE(checkPrediction(p, ok).empty());

    SimResult bad = ok;
    bad.regionCount = 3;
    bad.spanningRegions = 2;
    bad.duplicatedInsts = 11;
    bad.expansionInsts = 101;
    bad.exitStubs = 60; // density > 0.5 over 101 insts
    const std::vector<std::string> violations =
        checkPrediction(p, bad);
    ASSERT_EQ(violations.size(), 5u);
    EXPECT_EQ(violations[0].rfind("max-regions", 0), 0u);
    EXPECT_EQ(violations[1].rfind("spanning-bound", 0), 0u);
    EXPECT_EQ(violations[2].rfind("dup-bound", 0), 0u);
    EXPECT_EQ(violations[3].rfind("expansion-bound", 0), 0u);
    EXPECT_EQ(violations[4].rfind("stub-density-max", 0), 0u);

    SimResult starved = ok;
    starved.exitStubs = 5; // density < 0.1
    const std::vector<std::string> low = checkPrediction(p, starved);
    ASSERT_EQ(low.size(), 1u);
    EXPECT_EQ(low[0].rfind("stub-density-min", 0), 0u);

    SimResult stubby = ok;
    RegionStats r;
    r.id = 0;
    r.blockCount = 2;
    r.exitStubs = 5; // > 2 per block
    stubby.regions.push_back(r);
    const std::vector<std::string> perRegion =
        checkPrediction(p, stubby);
    ASSERT_EQ(perRegion.size(), 1u);
    EXPECT_EQ(perRegion[0].rfind("per-region-stubs", 0), 0u);
}

TEST(EmitStaticFactsTest, NotesCoverEveryPassFamily)
{
    const Program p = buildLoopProgram();
    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    DiagnosticEngine diag;
    emitStaticFacts(rep, p, mgr.facts(p), diag);

    EXPECT_FALSE(diag.hasErrors());
    EXPECT_GT(diag.noteCount(), 0u);
    const std::vector<std::string> families = {
        "loop-nesting",    "unbiased-frontier", "net-duplication",
        "lei-coverage",    "exit-stubs",        "trace-separation"};
    for (const std::string &family : families) {
        bool seen = false;
        for (const Diagnostic &d : diag.diagnostics())
            if (d.pass == family)
                seen = true;
        EXPECT_TRUE(seen) << "missing note family " << family;
    }
    // A tame loop program triggers no pathology lint.
    EXPECT_EQ(diag.warningCount(), 0u);
}

TEST(EmitStaticFactsTest, PathExplosionLintFires)
{
    // Three unbiased branches inside one loop body: 2^3 trace paths.
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId h = pb.block(1);
    const BlockId c1 = pb.block(1);
    pb.block(1); // s1
    const BlockId c2 = pb.block(1);
    pb.block(1); // s2
    const BlockId c3 = pb.block(1);
    pb.block(1); // s3
    const BlockId l = pb.block(1);
    const BlockId x = pb.block(1);
    pb.condTo(c1, c2, unbiased());
    pb.condTo(c2, c3, unbiased());
    pb.condTo(c3, l, unbiased());
    pb.loopTo(l, h, 5, 5);
    pb.halt(x);
    pb.setEntry(h);
    const Program p = pb.build();

    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    EXPECT_EQ(rep.unbiasedBranches, 3u);
    EXPECT_EQ(rep.unbiasedInLoops, 3u);

    DiagnosticEngine diag;
    emitStaticFacts(rep, p, mgr.facts(p), diag);
    bool linted = false;
    for (const Diagnostic &d : diag.diagnostics())
        if (d.severity == Severity::Warning &&
            d.pass == "duplication-explosion")
            linted = true;
    EXPECT_TRUE(linted);
}

TEST(EmitStaticFactsTest, BiasedBranchesDoNotTriggerTheLint)
{
    ProgramBuilder pb;
    pb.beginFunction("main");
    const BlockId h = pb.block(1);
    const BlockId c1 = pb.block(1);
    pb.block(1);
    const BlockId c2 = pb.block(1);
    pb.block(1);
    const BlockId c3 = pb.block(1);
    pb.block(1);
    const BlockId l = pb.block(1);
    const BlockId x = pb.block(1);
    pb.condTo(c1, c2, biased());
    pb.condTo(c2, c3, biased());
    pb.condTo(c3, l, biased());
    pb.loopTo(l, h, 5, 5);
    pb.halt(x);
    pb.setEntry(h);
    const Program p = pb.build();

    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    EXPECT_EQ(rep.unbiasedBranches, 0u);
    DiagnosticEngine diag;
    emitStaticFacts(rep, p, mgr.facts(p), diag);
    for (const Diagnostic &d : diag.diagnostics())
        EXPECT_NE(d.pass, "duplication-explosion");
}

TEST(EmitStaticFactsTest, SeparationLintOnThreeFunctionCycle)
{
    // f1 -> f2 -> f3 -> f1 mutual recursion: one cyclic SCC through
    // three functions.
    ProgramBuilder pb;
    pb.beginFunction("f1");
    const BlockId a0 = pb.block(2);
    const BlockId a1 = pb.block(1);
    const FuncId f2 = pb.beginFunction("f2");
    const BlockId b0 = pb.block(2);
    const BlockId b1 = pb.block(1);
    const FuncId f3 = pb.beginFunction("f3");
    const BlockId c0 = pb.block(2);
    const BlockId c1 = pb.block(1);
    pb.callTo(a0, f2);
    pb.callTo(b0, f3);
    pb.jumpTo(c0, a0); // closes the cross-function cycle
    pb.ret(a1);
    pb.ret(b1);
    pb.halt(c1);
    pb.setEntry(a0);
    const Program p = pb.build();

    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    EXPECT_GE(rep.crossFuncCycles, 1u);
    EXPECT_EQ(rep.maxSeparationFuncs, 3u);

    DiagnosticEngine diag;
    emitStaticFacts(rep, p, mgr.facts(p), diag);
    bool linted = false;
    for (const Diagnostic &d : diag.diagnostics())
        if (d.severity == Severity::Warning &&
            d.pass == "separation-prone")
            linted = true;
    EXPECT_TRUE(linted);
}

TEST(EmitStaticFactsTest, TwoFunctionCycleCountsButDoesNotLint)
{
    // f1 <-> f2 recursion spans two functions: counted as a
    // cross-function cycle, below the separation-lint threshold.
    ProgramBuilder pb;
    pb.beginFunction("f1");
    const BlockId a0 = pb.block(2);
    const BlockId a1 = pb.block(1);
    const FuncId f2 = pb.beginFunction("f2");
    const BlockId b0 = pb.block(2);
    const BlockId b1 = pb.block(1);
    pb.callTo(a0, f2);
    pb.jumpTo(b0, a0);
    pb.halt(a1);
    pb.ret(b1);
    pb.setEntry(a0);
    const Program p = pb.build();

    AnalysisManager mgr;
    const StaticReport rep = computeStaticReport(mgr, p);
    EXPECT_GE(rep.crossFuncCycles, 1u);
    EXPECT_EQ(rep.maxSeparationFuncs, 2u);

    DiagnosticEngine diag;
    emitStaticFacts(rep, p, mgr.facts(p), diag);
    for (const Diagnostic &d : diag.diagnostics())
        EXPECT_NE(d.pass, "separation-prone");
}

TEST(FormationModelTest, CoversEveryShippedSelector)
{
    const std::vector<FormationModel> &models =
        allFormationModels();
    EXPECT_EQ(models.size(), 7u);
    EXPECT_NE(findFormationModel("NET"), nullptr);
    EXPECT_NE(findFormationModel("LEI+comb"), nullptr);
    EXPECT_EQ(findFormationModel("nope"), nullptr);
    const FormationModel *lei =
        findFormationModel("LEI");
    ASSERT_NE(lei, nullptr);
    EXPECT_EQ(lei->entrance,
              FormationModel::Entrance::OnCycle);
}

} // namespace
} // namespace analysis
} // namespace rsel
