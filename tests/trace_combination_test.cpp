/**
 * @file
 * Unit tests for trace combination (paper Section 4 / Figure 13):
 * the observed-trace store, profiling-window accounting, dominant
 * path detection, and threshold parity with the base selectors.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "selection/observed_store.hpp"
#include "support/error.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

std::vector<const BasicBlock *>
pathOf(const Program &p, std::initializer_list<BlockId> ids)
{
    std::vector<const BasicBlock *> path;
    for (BlockId id : ids)
        path.push_back(&p.block(id));
    return path;
}

TEST(ObservedStoreTest, WindowFillsAtTprof)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    ObservedTraceStore store(3, 2);
    const Addr entry = p.block(Ids::a).startAddr();

    EXPECT_EQ(store.observedCount(entry), 0u);
    EXPECT_FALSE(
        store.store(entry, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f})));
    EXPECT_FALSE(
        store.store(entry, pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f})));
    EXPECT_EQ(store.observedCount(entry), 2u);
    EXPECT_TRUE(
        store.store(entry, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f})));
    EXPECT_EQ(store.observedCount(entry), 3u);
}

TEST(ObservedStoreTest, CombineMergesPathsAndReleasesMemory)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    ObservedTraceStore store(3, 2);
    const Addr entry = p.block(Ids::a).startAddr();

    store.store(entry, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    store.store(entry, pathOf(p, {Ids::a, Ids::b, Ids::d, Ids::f}));
    store.store(entry, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    EXPECT_GT(store.currentBytes(), 0u);
    const std::uint64_t peak = store.peakBytes();

    RegionSpec spec = store.combine(p, entry);
    EXPECT_EQ(spec.kind, Region::Kind::MultiPath);
    // C and D and F occur >= T_min; B rejoins D: all five kept.
    EXPECT_EQ(spec.blocks.size(), 5u);
    EXPECT_EQ(spec.blocks.front()->id(), Ids::a);

    // Memory released; the peak statistic remains.
    EXPECT_EQ(store.currentBytes(), 0u);
    EXPECT_EQ(store.peakBytes(), peak);
    EXPECT_EQ(store.observedCount(entry), 0u);
    EXPECT_EQ(store.sweepRegions(), 1u);
}

TEST(ObservedStoreTest, DominantPathYieldsSinglePath)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    ObservedTraceStore store(4, 2);
    const Addr entry = p.block(Ids::a).startAddr();
    for (int i = 0; i < 4; ++i)
        store.store(entry, pathOf(p, {Ids::a, Ids::c, Ids::d, Ids::f}));
    RegionSpec spec = store.combine(p, entry);
    EXPECT_EQ(spec.blocks.size(), 4u); // exactly the dominant path
}

TEST(ObservedStoreTest, PeakTracksConcurrentEntrances)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    ObservedTraceStore store(2, 1);
    const Addr ea = p.block(Ids::a).startAddr();
    const Addr ed = p.block(Ids::d).startAddr();

    store.store(ea, pathOf(p, {Ids::a, Ids::c}));
    store.store(ed, pathOf(p, {Ids::d, Ids::f}));
    const std::uint64_t both = store.currentBytes();
    EXPECT_EQ(store.peakBytes(), both);
    store.store(ea, pathOf(p, {Ids::a, Ids::b}));
    EXPECT_GT(store.peakBytes(), both);
}

TEST(ObservedStoreTest, GuardsAgainstMisuse)
{
    Program p = buildUnbiasedBranch();
    using Ids = UnbiasedBranchIds;
    EXPECT_THROW(ObservedTraceStore(2, 3), PanicError); // Tmin > Tprof
    EXPECT_THROW(ObservedTraceStore(0, 0), PanicError);
    ObservedTraceStore store(1, 1);
    EXPECT_THROW(store.combine(p, p.block(Ids::a).startAddr()),
                 PanicError); // nothing observed
}

TEST(TraceCombinationTest, ThresholdParityWithBaseSelector)
{
    // Paper Section 4.3: regions must be selected after the same
    // number of interpreted executions — combined NET begins
    // profiling after hotThreshold - T_prof executions, and the
    // region lands at hotThreshold total. We verify on a self-loop
    // where event timing is exact.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(1);
    const BlockId latch = b.block(1);
    b.loopTo(latch, head, 1000000, 1000000);
    const BlockId stop = b.block(1);
    b.halt(stop);
    Program p = b.build();

    NetConfig cfg;
    cfg.hotThreshold = 20;
    cfg.combine = true;
    cfg.profWindow = 5;
    cfg.minOccur = 2;

    DynOptSystem system(p);
    system.useNet(cfg);
    Executor exec(p, 1);
    // Trigger threshold is 15; the 5 observation recordings then
    // complete one per cycle. The combined region must exist by the
    // time the plain selector would have selected (plus the last
    // recording's wrap-up), and not dramatically earlier.
    exec.run(28, system); // counter reaches 13 here
    EXPECT_EQ(system.cache().regionCount(), 0u);
    exec.run(16, system);
    EXPECT_EQ(system.cache().regionCount(), 1u);
    EXPECT_EQ(system.cache().region(0).kind(),
              Region::Kind::MultiPath);
    system.finish();
}

TEST(TraceCombinationTest, CombinationRejectsBadThresholds)
{
    Program p = buildUnbiasedBranch();
    NetConfig net;
    net.hotThreshold = 10;
    net.combine = true;
    net.profWindow = 15; // start threshold would be negative
    DynOptSystem system(p);
    EXPECT_THROW(system.useNet(net), PanicError);

    LeiConfig lei;
    lei.hotThreshold = 10;
    lei.combine = true;
    lei.profWindow = 15;
    DynOptSystem system2(p);
    EXPECT_THROW(system2.useLei(lei), PanicError);
}

TEST(TraceCombinationTest, LowTprofStillWorks)
{
    // Paper footnote: T_prof = 5, T_min = 2 gives "smaller but
    // similar improvements".
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimOptions opts;
    opts.maxEvents = 150'000;
    opts.seed = 9;
    opts.net.combine = true;
    opts.net.profWindow = 5;
    opts.net.minOccur = 2;
    SimResult r = simulate(p, Algorithm::NetCombined, opts);
    ASSERT_GE(r.regionCount, 1u);
    EXPECT_EQ(r.regions[0].kind, Region::Kind::MultiPath);
    EXPECT_GT(r.hitRate(), 0.98);
}

TEST(TraceCombinationTest, PhaseChangeLimitsRepresentativeness)
{
    // Paper Section 4.3.1: combination "relies on current execution
    // being representative of future execution. This is often not
    // the case, as programs have been shown to execute different
    // paths in different phases." A region combined during phase 0
    // covers phase-0 paths; once the phase flips, the newly hot
    // path must be selected separately.
    ProgramBuilder b(1);
    b.beginFunction("main");
    const BlockId head = b.block(3);
    const BlockId phaseSplit = b.block(2);
    const BlockId side0 = b.block(4); // hot in phase 0 (fall-through)
    const BlockId join0 = b.block(1);
    const BlockId side1 = b.block(4); // hot in phase 1 (taken)
    const BlockId latch = b.block(2);
    b.condTo(phaseSplit, side1, CondBehavior::phased({0.0, 0.98}));
    b.jumpTo(join0, latch);
    (void)side0;
    (void)side1;
    b.jumpTo(latch, head);
    b.setPhaseLengths({60'000, 60'000});
    Program p = b.build();

    DynOptSystem system(p);
    NetConfig cfg;
    cfg.combine = true;
    system.useNet(cfg);
    Executor exec(p, 3);

    exec.run(55'000, system); // stay inside phase 0
    const std::size_t regionsInPhase0 = system.cache().regionCount();
    ASSERT_GE(regionsInPhase0, 1u);
    // The phase-0 region covers side0 but not side1 (side1 never
    // executes in phase 0, so no observed trace contains it).
    bool side1Cached = false;
    for (const Region &r : system.cache().regions())
        side1Cached |= r.containsBlock(side1);
    EXPECT_FALSE(side1Cached);

    exec.run(120'000, system); // through phase 1
    SimResult r = system.finish();
    // Phase 1 forces additional selection for the now-hot side.
    EXPECT_GT(r.regionCount, regionsInPhase0);
    side1Cached = false;
    for (const Region &reg : system.cache().regions())
        side1Cached |= reg.containsBlock(side1);
    EXPECT_TRUE(side1Cached);
}

TEST(TraceCombinationTest, MarkSweepInstrumentationCounts)
{
    Program p = buildUnbiasedBranch(1, 0.5, 0.05);
    SimOptions opts;
    opts.maxEvents = 150'000;
    opts.seed = 9;
    SimResult r = simulate(p, Algorithm::NetCombined, opts);
    EXPECT_GE(r.markSweepRegions, 1u);
    // The paper: only ~0.1% of regions need a second sweep.
    EXPECT_LE(r.markSweepMultiIterRegions, r.markSweepRegions);
}

} // namespace
} // namespace rsel
