/**
 * @file
 * Cross-cutting contract tests: every shipped selection algorithm,
 * run over several workloads, must satisfy the structural and
 * accounting invariants of the framework. Parameterized over the
 * (algorithm x workload) cross product.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "dynopt/dynopt_system.hpp"
#include "workloads/workloads.hpp"

namespace rsel {
namespace {

using Param = std::tuple<Algorithm, const char *>;

class SelectorContractTest : public ::testing::TestWithParam<Param>
{};

TEST_P(SelectorContractTest, StructuralInvariantsHold)
{
    const auto [algo, workloadName] = GetParam();
    const WorkloadInfo *w = findWorkload(workloadName);
    ASSERT_NE(w, nullptr);

    Program prog = w->build(42);
    DynOptSystem system(prog);
    switch (algo) {
      case Algorithm::Net: system.useNet(); break;
      case Algorithm::Lei: system.useLei(); break;
      case Algorithm::NetCombined: {
        NetConfig cfg;
        cfg.combine = true;
        system.useNet(cfg);
        break;
      }
      case Algorithm::LeiCombined: {
        LeiConfig cfg;
        cfg.combine = true;
        system.useLei(cfg);
        break;
      }
      case Algorithm::Mojo: system.useNet(NetConfig::mojo()); break;
      case Algorithm::Boa: system.useBoa(); break;
      case Algorithm::Wrs: system.useWrs(); break;
    }

    Executor exec(prog, 11);
    exec.run(250'000, system);

    // Invariants over the final cache, before finish().
    const CodeCache &cache = system.cache();
    std::set<Addr> entries;
    for (const Region &r : cache.regions()) {
        // Region entries are unique among live regions.
        if (cache.isLive(r.id())) {
            EXPECT_TRUE(entries.insert(r.entryAddr()).second);
        }
        // No region contains the same block twice.
        std::set<BlockId> blocks;
        for (const BasicBlock *b : r.blocks())
            EXPECT_TRUE(blocks.insert(b->id()).second)
                << "duplicate block in region " << r.id();
        // Every block belongs to the program.
        for (const BasicBlock *b : r.blocks())
            EXPECT_EQ(prog.blockAtAddr(b->startAddr()), b);
        // The lookup index agrees with the region set.
        if (cache.isLive(r.id())) {
            EXPECT_EQ(cache.lookup(r.entryAddr()), &r);
        }
        // Footprint arithmetic is internally consistent.
        std::uint64_t insts = 0, bytes = 0;
        for (const BasicBlock *b : r.blocks()) {
            insts += b->instCount();
            bytes += b->sizeBytes();
        }
        EXPECT_EQ(insts, r.instCount());
        EXPECT_EQ(bytes, r.byteSize());
    }

    SimResult r = system.finish();
    EXPECT_EQ(r.totalInsts, r.cachedInsts + r.interpretedInsts);
    EXPECT_LE(r.coverSet90, r.regionCount);
    EXPECT_LE(r.cycleTerminations, r.regionExecutions);
    EXPECT_LE(r.icacheMisses, r.icacheAccesses);
    EXPECT_LE(r.licmCapableRegions, r.regionsWithInternalCycle);
    EXPECT_LE(r.spanningRegions, r.regionCount);
    // Something must have been cached and executed on every one of
    // these workloads within the budget.
    EXPECT_GE(r.regionCount, 1u);
    EXPECT_GT(r.cachedInsts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    CrossProduct, SelectorContractTest,
    ::testing::Combine(::testing::Values(Algorithm::Net,
                                         Algorithm::Lei,
                                         Algorithm::NetCombined,
                                         Algorithm::LeiCombined,
                                         Algorithm::Mojo,
                                         Algorithm::Boa,
                                         Algorithm::Wrs),
                       ::testing::Values("gzip", "gcc", "eon",
                                         "perlbmk", "twolf")),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = algorithmName(std::get<0>(info.param)) +
                           "_" + std::get<1>(info.param);
        for (char &c : name)
            if (c == '+')
                c = 'x';
        return name;
    });

} // namespace
} // namespace rsel
