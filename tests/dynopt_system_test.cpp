/**
 * @file
 * Unit tests for the DynOptSystem driver: interpreter/cache state
 * machine, transitions, linking, cache-exit events, custom
 * selectors.
 */

#include <gtest/gtest.h>

#include "dynopt/dynopt_system.hpp"
#include "program/program_builder.hpp"
#include "workloads/scenarios.hpp"

namespace rsel {
namespace {

/**
 * A trivial selector for driver-contract tests: selects a single
 * fixed trace the first time a chosen block is interpreted.
 */
class OneShotSelector : public RegionSelector
{
  public:
    OneShotSelector(std::vector<const BasicBlock *> trace)
        : trace_(std::move(trace))
    {}

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &ev) override
    {
        events.push_back(ev);
        if (!emitted_ && ev.block->id() == trace_.front()->id()) {
            emitted_ = true;
            RegionSpec spec;
            spec.kind = Region::Kind::Trace;
            spec.blocks = trace_;
            return spec;
        }
        return std::nullopt;
    }

    std::size_t maxLiveCounters() const override { return 0; }
    std::string name() const override { return "one-shot"; }

    std::vector<SelectorEvent> events;

  private:
    std::vector<const BasicBlock *> trace_;
    bool emitted_ = false;
};

TEST(DynOptSystemTest, JumpsIntoRegionEmittedAtCurrentBlock)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;

    DynOptSystem system(p);
    OneShotSelector *sel = nullptr;
    system.useCustom([&](const Program &prog, const CodeCache &) {
        auto s = std::make_unique<OneShotSelector>(
            std::vector<const BasicBlock *>{
                &prog.block(Ids::a), &prog.block(Ids::b),
                &prog.block(Ids::d)});
        sel = s.get();
        return s;
    });

    Executor exec(p, 1);
    exec.run(60, system);
    SimResult r = system.finish();

    // The region exists and the very first A event entered it (the
    // spec's entry equalled the current block), so A's instructions
    // were counted as cached.
    ASSERT_EQ(r.regionCount, 1u);
    EXPECT_GT(r.cachedInsts, 0u);
    ASSERT_FALSE(sel->events.empty());
    EXPECT_EQ(sel->events.front().block->id(), Ids::a);
}

TEST(DynOptSystemTest, CacheExitEventsAreFlagged)
{
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;

    DynOptSystem system(p);
    OneShotSelector *sel = nullptr;
    system.useCustom([&](const Program &prog, const CodeCache &) {
        auto s = std::make_unique<OneShotSelector>(
            std::vector<const BasicBlock *>{
                &prog.block(Ids::a), &prog.block(Ids::b),
                &prog.block(Ids::d)});
        sel = s.get();
        return s;
    });

    Executor exec(p, 1);
    exec.run(60, system);
    system.finish();

    // Every exit from the trace lands on the callee entry E with
    // the fromCacheExit flag and a synthesized taken-branch source.
    bool sawExit = false;
    for (const SelectorEvent &ev : sel->events) {
        if (ev.fromCacheExit) {
            sawExit = true;
            EXPECT_EQ(ev.block->id(), Ids::e);
            EXPECT_TRUE(ev.viaTaken);
            EXPECT_NE(ev.branchAddr, invalidAddr);
        }
    }
    EXPECT_TRUE(sawExit);
}

TEST(DynOptSystemTest, RegionTransitionsExcludeInterpreterExits)
{
    // With only one region (A B D) cached, control repeatedly
    // leaves the cache to the interpreter and re-enters: that is
    // zero region transitions by the paper's definition.
    Program p = buildInterproceduralCycle();
    using Ids = InterprocCycleIds;

    DynOptSystem system(p);
    system.useCustom([&](const Program &prog, const CodeCache &) {
        return std::make_unique<OneShotSelector>(
            std::vector<const BasicBlock *>{
                &prog.block(Ids::a), &prog.block(Ids::b),
                &prog.block(Ids::d)});
    });
    Executor exec(p, 1);
    exec.run(600, system);
    SimResult r = system.finish();
    EXPECT_EQ(r.regionCount, 1u);
    EXPECT_EQ(r.regionTransitions, 0u);
    EXPECT_GT(r.regionExecutions, 50u);
}

TEST(DynOptSystemTest, LinkedRegionsCountTransitions)
{
    Program p = buildInterproceduralCycle();
    SimOptions opts;
    opts.maxEvents = 6'000;
    opts.seed = 1;
    SimResult r = simulate(p, Algorithm::Net, opts);
    ASSERT_EQ(r.regionCount, 2u);
    // Steady state: two transitions per loop iteration (T1 -> T2 ->
    // T1), 6 events per iteration, selection starts around
    // iteration 50.
    EXPECT_GT(r.regionTransitions, 1'500u);
    EXPECT_LT(r.regionTransitions, 2'001u);
}

TEST(DynOptSystemTest, HitRateSplitsInterpretedAndCached)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    SimOptions opts;
    opts.maxEvents = 100'000;
    opts.seed = 1;
    SimResult r = simulate(p, Algorithm::Lei, opts);
    EXPECT_EQ(r.totalInsts, r.cachedInsts + r.interpretedInsts);
    EXPECT_GT(r.hitRate(), 0.95);
    EXPECT_LT(r.hitRate(), 1.0); // warm-up interpreted something
}

TEST(DynOptSystemTest, FinishClosesInFlightExecution)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    DynOptSystem system(p);
    system.useLei();
    Executor exec(p, 1);
    exec.run(50'000, system);
    SimResult r = system.finish();
    // Every region entry has a matching termination after finish().
    std::uint64_t entries = 0;
    for (const RegionStats &reg : r.regions)
        entries += reg.executions;
    EXPECT_EQ(entries, r.regionExecutions);
}

TEST(DynOptSystemTest, CustomSelectorSeesOnlyInterpretedBlocks)
{
    Program p = buildNestedLoops(1, 4, 1000000);
    using Ids = NestedLoopIds;

    DynOptSystem system(p);
    OneShotSelector *sel = nullptr;
    system.useCustom([&](const Program &prog, const CodeCache &) {
        auto s = std::make_unique<OneShotSelector>(
            std::vector<const BasicBlock *>{&prog.block(Ids::b)});
        sel = s.get();
        return s;
    });
    Executor exec(p, 1);
    exec.run(20'000, system);
    SimResult r = system.finish();

    // Once [B] is cached, B events execute from the cache except
    // the fall-through entries from A (the interpreter only checks
    // taken branches), so interpreted-B events must all be
    // non-taken entries.
    ASSERT_EQ(r.regionCount, 1u);
    bool sawInterpretedB = false;
    std::size_t idx = 0;
    bool afterEmit = false;
    for (const SelectorEvent &ev : sel->events) {
        if (ev.block->id() == Ids::b) {
            if (afterEmit) {
                sawInterpretedB = true;
                EXPECT_FALSE(ev.viaTaken && !ev.fromCacheExit)
                    << "taken branch to a cached entry must enter "
                       "the cache, not the interpreter (event "
                    << idx << ")";
            }
            afterEmit = true; // first B event emitted the region
        }
        ++idx;
    }
    EXPECT_TRUE(sawInterpretedB);
}

} // namespace
} // namespace rsel
