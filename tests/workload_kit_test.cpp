/**
 * @file
 * Unit tests for the workload construction kit and motif generators
 * — the machinery all twelve synthetic workloads are assembled from.
 */

#include <gtest/gtest.h>

#include "program/executor.hpp"
#include <set>

#include "support/error.hpp"
#include "workloads/workload_kit.hpp"
#include "workloads/workload_motifs.hpp"

namespace rsel {
namespace {

/** Record executed block ids. */
class Record : public ExecutionSink
{
  public:
    bool
    onEvent(const ExecEvent &ev) override
    {
        ids.push_back(ev.block->id());
        return true;
    }
    std::vector<BlockId> ids;
};

TEST(WorkloadKitTest, DiamondRejoinsAtNextBlock)
{
    WorkloadKit kit(1);
    kit.beginFunction("main");
    auto loop = kit.loopBegin(2);
    kit.diamond(0.5, 2, 3, 3);
    kit.loopEnd(loop, 2, 4, 4);
    kit.halt(1);
    Program p = kit.build();

    // Blocks: head, split, then, else, latch, halt.
    ASSERT_EQ(p.blocks().size(), 6u);
    const BasicBlock &split = p.block(1);
    const BasicBlock &thenSide = p.block(2);
    const BasicBlock &elseSide = p.block(3);
    const BasicBlock &latch = p.block(4);
    EXPECT_EQ(split.terminator(), BranchKind::CondDirect);
    EXPECT_EQ(split.takenTarget(), elseSide.startAddr());
    EXPECT_EQ(thenSide.terminator(), BranchKind::Jump);
    EXPECT_EQ(thenSide.takenTarget(), latch.startAddr());
    EXPECT_EQ(elseSide.fallThroughAddr(), latch.startAddr());
}

TEST(WorkloadKitTest, IfThenSkipTargetsJoin)
{
    WorkloadKit kit(1);
    kit.beginFunction("main");
    kit.straight(2);
    kit.ifThen(0.8, 2, 4);
    const BlockId join = kit.straight(2);
    kit.halt(1);
    Program p = kit.build();

    const BasicBlock &split = p.block(1);
    EXPECT_EQ(split.terminator(), BranchKind::CondDirect);
    EXPECT_EQ(split.takenTarget(), p.block(join).startAddr());
    // The then-side falls through into the join.
    EXPECT_EQ(p.block(2).fallThroughAddr(), p.block(join).startAddr());
}

TEST(WorkloadKitTest, CallIfReturnsToJoin)
{
    WorkloadKit kit(1);
    const FuncId leaf = makeLeaf(kit, "leaf", 3, false);
    kit.beginFunction("main");
    kit.straight(2);
    kit.callIf(0.5, 2, 2, leaf);
    const BlockId join = kit.straight(2);
    kit.halt(1);
    Program p = kit.build();

    // Find the call site: the block with a Call terminator.
    const BasicBlock *site = nullptr;
    for (const BasicBlock &b : p.blocks())
        if (b.terminator() == BranchKind::Call)
            site = &b;
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->fallThroughAddr(), p.block(join).startAddr());
    EXPECT_EQ(site->takenTarget(),
              p.block(p.function(leaf).entry).startAddr());
}

TEST(WorkloadKitTest, CallFromTwoSitesGivesEntryTwoPredecessors)
{
    WorkloadKit kit(1);
    const FuncId leaf = makeLeaf(kit, "leaf", 3, false);
    kit.beginFunction("main");
    auto loop = kit.loopBegin(2);
    kit.callFromTwoSites(0.5, 2, 2, leaf);
    kit.loopEnd(loop, 2, 1000, 1000);
    kit.halt(1);
    Program p = kit.build();

    // Two distinct call sites must target the leaf entry.
    int sites = 0;
    const Addr leafEntry = p.block(p.function(leaf).entry).startAddr();
    for (const BasicBlock &b : p.blocks())
        if (b.terminator() == BranchKind::Call &&
            b.takenTarget() == leafEntry)
            ++sites;
    EXPECT_EQ(sites, 2);

    // Both sites actually execute.
    Executor exec(p, 5);
    Record sink;
    exec.run(20'000, sink);
    std::vector<int> counts(p.blocks().size(), 0);
    for (BlockId id : sink.ids)
        ++counts[id];
    int executedSites = 0;
    for (const BasicBlock &b : p.blocks())
        if (b.terminator() == BranchKind::Call &&
            b.takenTarget() == leafEntry && counts[b.id()] > 0)
            ++executedSites;
    EXPECT_EQ(executedSites, 2);
}

TEST(WorkloadKitTest, SwitchCasesAllRejoin)
{
    WorkloadKit kit(1);
    kit.beginFunction("main");
    auto loop = kit.loopBegin(2);
    kit.switchStmt(2, {3, 3, 3}, {1.0, 1.0, 1.0});
    kit.loopEnd(loop, 2, 500, 500);
    kit.halt(1);
    Program p = kit.build();

    Executor exec(p, 5);
    Record sink;
    exec.run(5'000, sink);
    std::vector<int> counts(p.blocks().size(), 0);
    for (BlockId id : sink.ids)
        ++counts[id];
    // Every case block executes with a flat weighting.
    int executedCases = 0;
    for (const BasicBlock &b : p.blocks())
        if (b.terminator() == BranchKind::Jump && counts[b.id()] > 100)
            ++executedCases;
    EXPECT_GE(executedCases, 3);
}

TEST(WorkloadMotifTest, KernelShapeFollowsSpec)
{
    WorkloadKit kit(1);
    const FuncId leaf = makeLeaf(kit, "leaf", 3, false);
    KernelSpec spec;
    spec.callee = leaf;
    spec.nestedInner = true;
    spec.unbiasedProb = 0.5;
    const FuncId kernel = makeKernel(kit, "kernel", spec);
    kit.beginFunction("main");
    auto loop = kit.loopBegin(2);
    kit.call(2, kernel);
    kit.loopForever(loop, 2);
    Program p = kit.build();

    // The kernel contains calls to the leaf (two sites), an inner
    // loop (a backward conditional), and the shared continue-arm
    // (a block jumping back into the kernel).
    const Function &kf = p.function(kernel);
    int callSites = 0, backwardConds = 0, backJumps = 0;
    for (BlockId id = kf.firstBlock; id < kf.lastBlock; ++id) {
        const BasicBlock &b = p.block(id);
        if (b.terminator() == BranchKind::Call)
            ++callSites;
        if (b.terminator() == BranchKind::CondDirect &&
            b.takenTarget() <= b.lastInstAddr())
            ++backwardConds;
        if (b.terminator() == BranchKind::Jump &&
            b.takenTarget() <= b.lastInstAddr())
            ++backJumps;
    }
    EXPECT_EQ(callSites, 2);     // two-site leaf call
    EXPECT_GE(backwardConds, 2); // inner + outer latches
    EXPECT_GE(backJumps, 1);     // the continue-arm

    // And it runs: the kernel must return to main's loop.
    Executor exec(p, 9);
    Record sink;
    const std::uint64_t n = exec.run(50'000, sink);
    EXPECT_EQ(n, 50'000u);
}

TEST(WorkloadMotifTest, ColdUtilVariantsDiffer)
{
    WorkloadKit kit(1);
    const auto cold = makeColdPeriphery(kit, "x", 4);
    kit.beginFunction("main");
    auto loop = kit.loopBegin(2);
    for (FuncId f : cold)
        kit.call(2, f);
    kit.loopForever(loop, 2);
    Program p = kit.build();

    ASSERT_EQ(cold.size(), 4u);
    // The four variants have distinct block counts (distinct shapes).
    std::set<std::uint32_t> sizes;
    for (FuncId f : cold) {
        const Function &fn = p.function(f);
        sizes.insert(fn.lastBlock - fn.firstBlock);
    }
    EXPECT_GE(sizes.size(), 3u);

    Executor exec(p, 3);
    Record sink;
    EXPECT_EQ(exec.run(10'000, sink), 10'000u);
}

TEST(WorkloadKitTest, UnresolvedJoinsAreCaught)
{
    WorkloadKit kit(1);
    kit.beginFunction("main");
    kit.straight(2);
    kit.ifThen(0.5, 2, 3); // pending skip never resolved
    EXPECT_THROW(kit.build(), PanicError);
}

} // namespace
} // namespace rsel
