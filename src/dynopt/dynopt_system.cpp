#include "dynopt/dynopt_system.hpp"

#include <algorithm>

#include "analysis/region_verifier.hpp"
#include "support/error.hpp"

namespace rsel {

DynOptSystem::DynOptSystem(const Program &prog, CacheLimits limits,
                           ICacheConfig icache)
    : prog_(prog), cache_(limits), icache_(icache)
{}

void
DynOptSystem::fetchCached(RegionId region, std::size_t pos)
{
    const RegionLayout &layout = layouts_[region];
    const BasicBlock *block = cache_.region(region).blocks()[pos];
    icache_.fetchRange(layout.base + layout.blockOffsets[pos],
                       static_cast<std::uint32_t>(block->sizeBytes()));
}

DynOptSystem &
DynOptSystem::useNet(NetConfig cfg)
{
    selector_ = std::make_unique<NetSelector>(prog_, cache_, cfg);
    return *this;
}

DynOptSystem &
DynOptSystem::useLei(LeiConfig cfg)
{
    selector_ = std::make_unique<LeiSelector>(prog_, cache_, cfg);
    leiMaxTraceInsts_ = cfg.maxTraceInsts;
    return *this;
}

DynOptSystem &
DynOptSystem::enableVerifyOnSubmit()
{
    verify_ = true;
    return *this;
}

DynOptSystem &
DynOptSystem::armFaults(const resilience::FaultPlan &plan,
                        std::uint64_t seedOverride)
{
    RSEL_ASSERT(prevBlock_ == nullptr && !finished_,
                "faults must be armed before the first event");
    if (plan.armed())
        injector_ = std::make_unique<resilience::FaultInjector>(
            plan, seedOverride);
    return *this;
}

void
DynOptSystem::throwOnNewErrors(std::size_t before, RegionId id)
{
    const std::string first = verifyDiag_.firstErrorAfter(before);
    if (first.empty())
        return;
    throw analysis::VerifyError(
        "static verifier rejected region " + std::to_string(id) +
        " from selector " + selector_->name() + ": " + first);
}

void
DynOptSystem::verifySpec(const RegionSpec &spec)
{
    analysis::RegionVerifyContext ctx;
    ctx.prog = &prog_;
    ctx.cache = &cache_;
    ctx.selector = selector_->name();
    ctx.maxTraceInsts = leiMaxTraceInsts_;
    ctx.id = cache_.nextRegionId();
    const std::size_t before = verifyDiag_.diagnostics().size();
    analysis::RegionVerifier(analysisMgr_)
        .runOnSpec(spec, ctx, verifyDiag_);
    throwOnNewErrors(before, ctx.id);
}

void
DynOptSystem::verifyInstalled(const Region &region)
{
    analysis::RegionVerifyContext ctx;
    ctx.prog = &prog_;
    ctx.cache = &cache_;
    ctx.selector = selector_->name();
    ctx.maxTraceInsts = leiMaxTraceInsts_;
    ctx.id = region.id();
    const std::size_t before = verifyDiag_.diagnostics().size();
    analysis::RegionVerifier(analysisMgr_)
        .runOnRegion(region, ctx, verifyDiag_);
    throwOnNewErrors(before, ctx.id);
}

DynOptSystem &
DynOptSystem::useBoa(BoaConfig cfg)
{
    selector_ = std::make_unique<BoaSelector>(prog_, cache_, cfg);
    return *this;
}

DynOptSystem &
DynOptSystem::useWrs(WrsConfig cfg)
{
    selector_ = std::make_unique<WrsSelector>(prog_, cache_, cfg);
    return *this;
}

void
DynOptSystem::installRegion(RegionSpec spec)
{
    // Verify first so a malformed spec surfaces as a named pass
    // diagnostic instead of tripping the runtime assertions below.
    if (verify_)
        verifySpec(spec);
    RSEL_ASSERT(!spec.blocks.empty(), "selector emitted an empty region");
    RSEL_ASSERT(cache_.lookup(spec.blocks.front()->startAddr()) == nullptr,
                "selector emitted a region at an already-cached entry");
    Region region =
        spec.kind == Region::Kind::Trace
            ? Region::makeTrace(cache_.nextRegionId(),
                                std::move(spec.blocks))
            : Region::makeMultiPath(cache_.nextRegionId(),
                                    std::move(spec.blocks));

    // Lay the region out contiguously after everything selected so
    // far, trailed by its exit stubs (DynamoRIO's placement). A
    // bounded cache would reuse evicted space; the monotone layout
    // is a conservative locality model.
    RegionLayout layout;
    layout.base = nextLayoutAddr_;
    layout.blockOffsets.reserve(region.blocks().size());
    std::uint32_t offset = 0;
    for (const BasicBlock *b : region.blocks()) {
        layout.blockOffsets.push_back(offset);
        offset += static_cast<std::uint32_t>(b->sizeBytes());
    }
    nextLayoutAddr_ += offset + region.exitStubCount() *
                                    cache_.limits().stubBytes;
    layouts_.push_back(std::move(layout));

    const RegionId id = cache_.insert(std::move(region));
    if (verify_)
        verifyInstalled(cache_.region(id));
}

void
DynOptSystem::injectEventFaults()
{
    const resilience::FaultInjector::Tick tick = injector_->onEvent();
    if (tick.invalidate) {
        // Self-modifying code: a store hits one block; every cached
        // region that copied its bytes is stale. The victim block is
        // drawn from the event stream, so it is identical across
        // selectors at the same event index. A region currently in
        // flight keeps executing — its object stays alive, exactly
        // like an evicted region — and only future lookups miss.
        const BlockId victim = static_cast<BlockId>(
            injector_->pickVictim(prog_.blocks().size()));
        const std::size_t dropped = cache_.invalidateBlock(victim);
        ++recovery_.faultsInjected;
        ++recovery_.blockInvalidations;
        recovery_.regionsInvalidated += dropped;
        if (dropped != 0)
            selector_->onCacheDisruption(CacheDisruption::Invalidation);
    }
    if (tick.flush) {
        ++recovery_.faultsInjected;
        ++recovery_.flushStorms;
        if (cache_.liveRegionCount() != 0) {
            cache_.flushAll();
            selector_->onCacheDisruption(CacheDisruption::Flush);
        }
    }
    if (tick.reset) {
        ++recovery_.faultsInjected;
        ++recovery_.selectorResets;
        selector_->onCacheDisruption(CacheDisruption::Reset);
    }
}

bool
DynOptSystem::submitRegion(RegionSpec spec)
{
    if (!injector_) {
        installRegion(std::move(spec));
        return true;
    }
    RSEL_ASSERT(!spec.blocks.empty(),
                "selector emitted an empty region");
    const Addr entry = spec.blocks.front()->startAddr();
    EntranceState &state = entrances_[entry];
    if (state.blacklisted) {
        // Degraded to pure interpretation: the spec is dropped and
        // the entrance never re-enters the translation pipeline.
        ++recovery_.blacklistSuppressed;
        return false;
    }
    if (state.failures != 0 && interpEvents_ < state.backoffUntil) {
        ++recovery_.backoffSuppressed;
        return false;
    }
    if (injector_->translationFails()) {
        ++recovery_.faultsInjected;
        ++recovery_.translationFailures;
        ++state.failures;
        if (state.failures > injector_->plan().retryBudget) {
            state.blacklisted = true;
            ++recovery_.blacklistedEntrances;
        } else {
            // Exponential backoff on the interpreted-event clock:
            // base << (failures - 1), capped so the shift stays
            // defined for generous retry budgets.
            const std::uint32_t shift =
                std::min<std::uint32_t>(state.failures - 1, 32);
            state.backoffUntil =
                interpEvents_ +
                (injector_->plan().backoffEvents << shift);
        }
        return false;
    }
    installRegion(std::move(spec));
    if (state.failures != 0) {
        // Recovered: the retry after earlier failures succeeded.
        ++recovery_.retries;
        state.failures = 0;
        state.backoffUntil = 0;
    }
    return true;
}

void
DynOptSystem::enterRegion(const Region &region, const BasicBlock &block)
{
    inRegion_ = true;
    curRegion_ = region.id();
    regionPos_ = 0;
    pendingCacheExit_ = false;
    lastStep_.where = StepTrace::Where::Cached;
    lastStep_.region = curRegion_;
    lastStep_.pos = 0;
    lastStep_.enteredRegion = true;
    metrics_.onRegionEntered(curRegion_);
    metrics_.onCachedBlock(block, curRegion_);
    fetchCached(curRegion_, 0);
}

bool
DynOptSystem::onEvent(const ExecEvent &ev)
{
    RSEL_ASSERT(!finished_, "events delivered after finish()");
    RSEL_ASSERT(selector_ != nullptr, "no selector attached");

    metrics_.onEvent();
    const BasicBlock *from = prevBlock_;
    if (from != nullptr)
        metrics_.onEdge(from->id(), ev.block->id());
    prevBlock_ = ev.block;
    lastStep_ = StepTrace{};

    // Deterministic fault injection: one branch per event when
    // disarmed. Faults fire on the event clock, before the event is
    // dispatched, so every selector sees the same cache disruptions
    // at the same event indices.
    if (injector_)
        injectEventFaults();

    if (inRegion_) {
        const Region &r = cache_.region(curRegion_);
        switch (r.step(regionPos_, *ev.block, ev.takenBranch)) {
          case RegionStep::Internal:
            lastStep_.where = StepTrace::Where::Cached;
            lastStep_.region = curRegion_;
            lastStep_.pos = regionPos_;
            metrics_.onCachedBlock(*ev.block, curRegion_);
            fetchCached(curRegion_, regionPos_);
            return true;
          case RegionStep::CycleRestart:
            // One region execution ended by a branch to the top;
            // the next begins immediately at the same region.
            lastStep_.where = StepTrace::Where::Cached;
            lastStep_.region = curRegion_;
            lastStep_.pos = regionPos_;
            lastStep_.enteredRegion = true;
            metrics_.onRegionExecutionEnd(curRegion_, true);
            metrics_.onRegionEntered(curRegion_);
            metrics_.onCachedBlock(*ev.block, curRegion_);
            fetchCached(curRegion_, regionPos_);
            return true;
          case RegionStep::Exit:
            metrics_.onRegionExecutionEnd(curRegion_, false);
            if (const Region *s = cache_.lookup(ev.block->startAddr())) {
                // Exit stub linked straight to another region (or
                // back to this one's own entry).
                if (s->id() != curRegion_)
                    metrics_.onRegionTransition(curRegion_, s->id());
                enterRegion(*s, *ev.block);
                return true;
            }
            // Exit to the interpreter: the landing block is the
            // target of a code-cache exit.
            inRegion_ = false;
            pendingCacheExit_ = true;
            break;
        }
    } else if (ev.takenBranch) {
        // Interpreted taken branch to a cached entry enters the
        // cache (Section 2.1); the selector is told so it can stop
        // a trace that reached the start of another trace.
        if (const Region *r = cache_.lookup(ev.block->startAddr())) {
            if (auto spec = selector_->onCacheEnter(r->entryBlock())) {
                submitRegion(std::move(*spec));
                // Re-resolve: in a bounded cache the insert may
                // have evicted (or flushed) the region we were
                // about to enter.
                r = cache_.lookup(ev.block->startAddr());
            }
            if (r != nullptr) {
                enterRegion(*r, *ev.block);
                return true;
            }
            // Evicted under us: fall through to the interpreter.
        }
    }

    // Interpret the block and let the selector observe it. A block
    // reached through a cache exit counts as a taken transfer (the
    // stub jump), with the exiting block's branch as the source.
    SelectorEvent sev;
    sev.block = ev.block;
    sev.fromCacheExit = pendingCacheExit_;
    if (ev.takenBranch) {
        sev.viaTaken = true;
        sev.branchAddr = ev.branchAddr;
    } else if (pendingCacheExit_ && from != nullptr) {
        sev.viaTaken = true;
        sev.branchAddr = from->lastInstAddr();
    }
    const bool wasCacheExit = pendingCacheExit_;
    pendingCacheExit_ = false;

    std::optional<RegionSpec> spec = selector_->onInterpreted(sev);
    bool jumped = false;
    if (spec) {
        const Addr entry = spec->blocks.front()->startAddr();
        const bool cached = submitRegion(std::move(*spec));
        if (cached && entry == ev.block->startAddr()) {
            // "jump newT": the triggering execution continues
            // natively inside the new region.
            const Region *r = cache_.lookup(entry);
            enterRegion(*r, *ev.block);
            jumped = true;
        }
    }
    if (!jumped) {
        ++interpEvents_;
        lastStep_.cacheExit = wasCacheExit;
        metrics_.onInterpretedBlock(*ev.block);
    }
    return true;
}

SimResult
DynOptSystem::finish()
{
    RSEL_ASSERT(!finished_, "finish() may only be called once");
    finished_ = true;
    if (inRegion_) {
        // Close the in-flight region execution.
        metrics_.onRegionExecutionEnd(curRegion_, false);
        inRegion_ = false;
    }
    SimResult result = metrics_.finalize(prog_, cache_, *selector_);
    result.icacheAccesses = icache_.accesses();
    result.icacheMisses = icache_.misses();
    recovery_.retranslations = cache_.retranslations();
    result.recovery = recovery_;
    if (verify_) {
        // Static duplication accountant: the SimResult's expansion
        // and duplication totals must be re-derivable from the
        // cache contents alone.
        const std::size_t before = verifyDiag_.diagnostics().size();
        analysis::checkDuplicationAccounting(prog_, cache_, result,
                                             verifyDiag_);
        const std::string first =
            verifyDiag_.firstErrorAfter(before);
        if (!first.empty())
            throw analysis::VerifyError(
                "static verifier rejected the final cache state of "
                "selector " + selector_->name() + ": " + first);
    }
    return result;
}

std::string
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::Net:         return "NET";
      case Algorithm::Lei:         return "LEI";
      case Algorithm::NetCombined: return "NET+comb";
      case Algorithm::LeiCombined: return "LEI+comb";
      case Algorithm::Mojo:        return "Mojo";
      case Algorithm::Boa:         return "BOA";
      case Algorithm::Wrs:         return "WRS";
    }
    return "unknown";
}

void
attachAlgorithm(DynOptSystem &system, Algorithm algo,
                const SimOptions &opts)
{
    switch (algo) {
      case Algorithm::Net: {
        NetConfig cfg = opts.net;
        cfg.combine = false;
        system.useNet(cfg);
        break;
      }
      case Algorithm::NetCombined: {
        NetConfig cfg = opts.net;
        cfg.combine = true;
        system.useNet(cfg);
        break;
      }
      case Algorithm::Lei: {
        LeiConfig cfg = opts.lei;
        cfg.combine = false;
        system.useLei(cfg);
        break;
      }
      case Algorithm::LeiCombined: {
        LeiConfig cfg = opts.lei;
        cfg.combine = true;
        system.useLei(cfg);
        break;
      }
      case Algorithm::Mojo: {
        NetConfig cfg = opts.net;
        cfg.combine = false;
        if (cfg.exitThreshold == 0)
            cfg.exitThreshold = cfg.hotThreshold / 2;
        system.useNet(cfg);
        break;
      }
      case Algorithm::Boa:
        system.useBoa(opts.boa);
        break;
      case Algorithm::Wrs:
        system.useWrs(opts.wrs);
        break;
    }
}

SimResult
simulate(const Program &prog, Algorithm algo, const SimOptions &opts)
{
    DynOptSystem system(prog, opts.cache, opts.icache);
    attachAlgorithm(system, algo, opts);
    if (opts.verifyRegions)
        system.enableVerifyOnSubmit();
    system.armFaults(opts.faults, opts.faultSeed);

    Executor exec(prog, opts.seed);
    exec.run(opts.maxEvents, system);
    return system.finish();
}

} // namespace rsel
