#include "dynopt/dynopt_system.hpp"

#include <algorithm>

#include "analysis/region_verifier.hpp"
#include "support/error.hpp"

namespace rsel {

DynOptSystem::DynOptSystem(const Program &prog, CacheLimits limits,
                           ICacheConfig icache)
    : prog_(prog), cache_(limits), icache_(icache)
{}

DynOptSystem &
DynOptSystem::useNet(NetConfig cfg)
{
    selector_ = std::make_unique<NetSelector>(prog_, cache_, cfg);
    return *this;
}

DynOptSystem &
DynOptSystem::useLei(LeiConfig cfg)
{
    selector_ = std::make_unique<LeiSelector>(prog_, cache_, cfg);
    leiMaxTraceInsts_ = cfg.maxTraceInsts;
    return *this;
}

DynOptSystem &
DynOptSystem::enableVerifyOnSubmit()
{
    verify_ = true;
    return *this;
}

DynOptSystem &
DynOptSystem::armFaults(const resilience::FaultPlan &plan,
                        std::uint64_t seedOverride)
{
    RSEL_ASSERT(prevBlock_ == nullptr && !finished_,
                "faults must be armed before the first event");
    if (plan.armed())
        injector_ = std::make_unique<resilience::FaultInjector>(
            plan, seedOverride);
    return *this;
}

void
DynOptSystem::throwOnNewErrors(std::size_t before, RegionId id)
{
    const std::string first = verifyDiag_.firstErrorAfter(before);
    if (first.empty())
        return;
    throw analysis::VerifyError(
        "static verifier rejected region " + std::to_string(id) +
        " from selector " + selector_->name() + ": " + first);
}

void
DynOptSystem::verifySpec(const RegionSpec &spec)
{
    analysis::RegionVerifyContext ctx;
    ctx.prog = &prog_;
    ctx.cache = &cache_;
    ctx.selector = selector_->name();
    ctx.maxTraceInsts = leiMaxTraceInsts_;
    ctx.id = cache_.nextRegionId();
    const std::size_t before = verifyDiag_.diagnostics().size();
    analysis::RegionVerifier(analysisMgr_)
        .runOnSpec(spec, ctx, verifyDiag_);
    throwOnNewErrors(before, ctx.id);
}

void
DynOptSystem::verifyInstalled(const Region &region)
{
    analysis::RegionVerifyContext ctx;
    ctx.prog = &prog_;
    ctx.cache = &cache_;
    ctx.selector = selector_->name();
    ctx.maxTraceInsts = leiMaxTraceInsts_;
    ctx.id = region.id();
    const std::size_t before = verifyDiag_.diagnostics().size();
    analysis::RegionVerifier(analysisMgr_)
        .runOnRegion(region, ctx, verifyDiag_);
    throwOnNewErrors(before, ctx.id);
}

DynOptSystem &
DynOptSystem::useBoa(BoaConfig cfg)
{
    selector_ = std::make_unique<BoaSelector>(prog_, cache_, cfg);
    return *this;
}

DynOptSystem &
DynOptSystem::useWrs(WrsConfig cfg)
{
    selector_ = std::make_unique<WrsSelector>(prog_, cache_, cfg);
    return *this;
}

void
DynOptSystem::installRegion(RegionSpec spec)
{
    // Verify first so a malformed spec surfaces as a named pass
    // diagnostic instead of tripping the runtime assertions below.
    if (verify_)
        verifySpec(spec);
    RSEL_ASSERT(!spec.blocks.empty(), "selector emitted an empty region");
    RSEL_ASSERT(cache_.lookup(spec.blocks.front()->startAddr()) == nullptr,
                "selector emitted a region at an already-cached entry");
    Region region =
        spec.kind == Region::Kind::Trace
            ? Region::makeTrace(cache_.nextRegionId(),
                                std::move(spec.blocks))
            : Region::makeMultiPath(cache_.nextRegionId(),
                                    std::move(spec.blocks));

    // Lay the region out contiguously after everything selected so
    // far, trailed by its exit stubs (DynamoRIO's placement). A
    // bounded cache would reuse evicted space; the monotone layout
    // is a conservative locality model.
    RegionLayout layout;
    layout.base = nextLayoutAddr_;
    layout.blockOffsets.reserve(region.blocks().size());
    std::uint32_t offset = 0;
    for (const BasicBlock *b : region.blocks()) {
        layout.blockOffsets.push_back(offset);
        offset += static_cast<std::uint32_t>(b->sizeBytes());
    }
    nextLayoutAddr_ += offset + region.exitStubCount() *
                                    cache_.limits().stubBytes;
    layouts_.push_back(std::move(layout));

    const RegionId id = cache_.insert(std::move(region));
    if (verify_)
        verifyInstalled(cache_.region(id));
}

void
DynOptSystem::injectEventFaults()
{
    const resilience::FaultInjector::Tick tick = injector_->onEvent();
    if (tick.invalidate) {
        // Self-modifying code: a store hits one block; every cached
        // region that copied its bytes is stale. The victim block is
        // drawn from the event stream, so it is identical across
        // selectors at the same event index. A region currently in
        // flight keeps executing — its object stays alive, exactly
        // like an evicted region — and only future lookups miss.
        const BlockId victim = static_cast<BlockId>(
            injector_->pickVictim(prog_.blocks().size()));
        const std::size_t dropped = cache_.invalidateBlock(victim);
        ++recovery_.faultsInjected;
        ++recovery_.blockInvalidations;
        recovery_.regionsInvalidated += dropped;
        if (dropped != 0)
            selector_->onCacheDisruption(CacheDisruption::Invalidation);
    }
    if (tick.flush) {
        ++recovery_.faultsInjected;
        ++recovery_.flushStorms;
        if (cache_.liveRegionCount() != 0) {
            cache_.flushAll();
            selector_->onCacheDisruption(CacheDisruption::Flush);
        }
    }
    if (tick.reset) {
        ++recovery_.faultsInjected;
        ++recovery_.selectorResets;
        selector_->onCacheDisruption(CacheDisruption::Reset);
    }
}

bool
DynOptSystem::submitRegion(RegionSpec spec)
{
    if (!injector_) {
        installRegion(std::move(spec));
        return true;
    }
    RSEL_ASSERT(!spec.blocks.empty(),
                "selector emitted an empty region");
    const Addr entry = spec.blocks.front()->startAddr();
    EntranceState &state = entrances_[entry];
    if (state.blacklisted) {
        // Degraded to pure interpretation: the spec is dropped and
        // the entrance never re-enters the translation pipeline.
        ++recovery_.blacklistSuppressed;
        return false;
    }
    if (state.failures != 0 && interpEvents_ < state.backoffUntil) {
        ++recovery_.backoffSuppressed;
        return false;
    }
    if (injector_->translationFails()) {
        ++recovery_.faultsInjected;
        ++recovery_.translationFailures;
        ++state.failures;
        if (state.failures > injector_->plan().retryBudget) {
            state.blacklisted = true;
            ++recovery_.blacklistedEntrances;
        } else {
            // Exponential backoff on the interpreted-event clock:
            // base << (failures - 1), capped so the shift stays
            // defined for generous retry budgets.
            const std::uint32_t shift =
                std::min<std::uint32_t>(state.failures - 1, 32);
            state.backoffUntil =
                interpEvents_ +
                (injector_->plan().backoffEvents << shift);
        }
        return false;
    }
    installRegion(std::move(spec));
    if (state.failures != 0) {
        // Recovered: the retry after earlier failures succeeded.
        ++recovery_.retries;
        state.failures = 0;
        state.backoffUntil = 0;
    }
    return true;
}

void
DynOptSystem::enterRegion(const Region &region, const BasicBlock &block)
{
    inRegion_ = true;
    curRegion_ = region.id();
    curRegionPtr_ = &region;
    regionPos_ = 0;
    pendingCacheExit_ = false;
    lastStep_.where = StepTrace::Where::Cached;
    lastStep_.region = curRegion_;
    lastStep_.pos = 0;
    lastStep_.enteredRegion = true;
    const RegionLayout &layout = layouts_[curRegion_];
    curBase_ = layout.base;
    curOffsets_ = layout.blockOffsets.data();
    metrics_.onRegionEntered(curRegion_);
    metrics_.onCachedBlock(block, curRegion_);
    fetchCachedCur(0, block);
}

template <bool Armed>
void
DynOptSystem::processEvent(const ExecEvent &ev)
{
    metrics_.onEvent();
    const BasicBlock *from = prevBlock_;
    if (from != nullptr) {
        // Note: prevBlock_ deliberately survives cache disruptions
        // (flush / reset / invalidation). The edge from -> ev.block
        // is an architectural fact — faults perturb cache state,
        // never the guest's control flow — so clearing it would
        // under-count real predecessors and skew the exit-domination
        // analysis. Regression: fault_injection_test
        // EdgeAccountingSpansDisruptions.
        metrics_.onEdge(from->id(), ev.block->id());
    }
    prevBlock_ = ev.block;
    lastStep_ = StepTrace{};

    // Deterministic fault injection, compiled out of the disarmed
    // instantiation. Faults fire on the event clock, before the
    // event is dispatched, so every selector sees the same cache
    // disruptions at the same event indices.
    if constexpr (Armed)
        injectEventFaults();

    if (inRegion_) {
        const Region &r = *curRegionPtr_;
        switch (r.step(regionPos_, *ev.block, ev.takenBranch)) {
          case RegionStep::Internal:
            lastStep_.where = StepTrace::Where::Cached;
            lastStep_.region = curRegion_;
            lastStep_.pos = regionPos_;
            metrics_.onCachedBlock(*ev.block, curRegion_);
            fetchCachedCur(regionPos_, *ev.block);
            return;
          case RegionStep::CycleRestart:
            // One region execution ended by a branch to the top;
            // the next begins immediately at the same region.
            lastStep_.where = StepTrace::Where::Cached;
            lastStep_.region = curRegion_;
            lastStep_.pos = regionPos_;
            lastStep_.enteredRegion = true;
            metrics_.onRegionExecutionEnd(curRegion_, true);
            metrics_.onRegionEntered(curRegion_);
            metrics_.onCachedBlock(*ev.block, curRegion_);
            fetchCachedCur(regionPos_, *ev.block);
            return;
          case RegionStep::Exit:
            metrics_.onRegionExecutionEnd(curRegion_, false);
            if (const Region *s = cache_.lookupEntry(ev.block->id())) {
                // Exit stub linked straight to another region (or
                // back to this one's own entry).
                if (s->id() != curRegion_)
                    metrics_.onRegionTransition(curRegion_, s->id());
                enterRegion(*s, *ev.block);
                return;
            }
            // Exit to the interpreter: the landing block is the
            // target of a code-cache exit.
            inRegion_ = false;
            pendingCacheExit_ = true;
            break;
        }
    } else if (ev.takenBranch) {
        // Interpreted taken branch to a cached entry enters the
        // cache (Section 2.1); the selector is told so it can stop
        // a trace that reached the start of another trace.
        if (const Region *r = cache_.lookupEntry(ev.block->id())) {
            if (auto spec = selector_->onCacheEnter(r->entryBlock())) {
                submitRegion(std::move(*spec));
                // Re-resolve: in a bounded cache the insert may
                // have evicted (or flushed) the region we were
                // about to enter.
                r = cache_.lookupEntry(ev.block->id());
            }
            if (r != nullptr) {
                enterRegion(*r, *ev.block);
                return;
            }
            // Evicted under us: fall through to the interpreter.
        }
    }

    // Interpret the block and let the selector observe it. A block
    // reached through a cache exit counts as a taken transfer (the
    // stub jump), with the exiting block's branch as the source.
    SelectorEvent sev;
    sev.block = ev.block;
    sev.fromCacheExit = pendingCacheExit_;
    if (ev.takenBranch) {
        sev.viaTaken = true;
        sev.branchAddr = ev.branchAddr;
    } else if (pendingCacheExit_ && from != nullptr) {
        sev.viaTaken = true;
        sev.branchAddr = from->lastInstAddr();
    }
    const bool wasCacheExit = pendingCacheExit_;
    pendingCacheExit_ = false;

    std::optional<RegionSpec> spec = selector_->onInterpreted(sev);
    bool jumped = false;
    if (spec) {
        const Addr entry = spec->blocks.front()->startAddr();
        const bool cached = submitRegion(std::move(*spec));
        if (cached && entry == ev.block->startAddr()) {
            // "jump newT": the triggering execution continues
            // natively inside the new region.
            const Region *r = cache_.lookup(entry);
            enterRegion(*r, *ev.block);
            jumped = true;
        }
    }
    if (!jumped) {
        ++interpEvents_;
        lastStep_.cacheExit = wasCacheExit;
        metrics_.onInterpretedBlock(*ev.block);
    }
}

void
DynOptSystem::interpretOnlyEvent(const ExecEvent &ev)
{
    metrics_.onEvent();
    if (prevBlock_ != nullptr)
        metrics_.onEdge(prevBlock_->id(), ev.block->id());
    prevBlock_ = ev.block;
    lastStep_ = StepTrace{};
    ++interpEvents_;
    metrics_.onInterpretedBlock(*ev.block);
}

bool
DynOptSystem::onEvent(const ExecEvent &ev)
{
    RSEL_ASSERT(!finished_, "events delivered after finish()");
    RSEL_ASSERT(selector_ != nullptr, "no selector attached");
    if (interpretOnly_) {
        interpretOnlyEvent(ev);
        return true;
    }
    if (injector_)
        processEvent<true>(ev);
    else
        processEvent<false>(ev);
    return true;
}

std::size_t
DynOptSystem::consumeTraceRun(const EventBatch &batch, std::size_t i)
{
    const std::size_t n = batch.size();
    const BasicBlock *const progBlocks = prog_.blocks().data();

    // Current-region context, reloaded on every region switch.
    const Region *r = curRegionPtr_;
    const BlockId *rb = r->blockIds().data();
    std::size_t rn = r->blockIds().size();
    Addr top = r->entryAddr();

    std::size_t pos = regionPos_;
    const BasicBlock *prev = prevBlock_;
    std::uint64_t insts = 0;
    std::uint64_t restarts = 0;
    std::size_t runStart = i;
    bool lastWasEntry = false;
    bool any = false;

    const auto flushRun = [&](std::size_t upto) {
        metrics_.addEvents(upto - runStart);
        metrics_.addCachedRun(curRegion_, insts, restarts);
        insts = 0;
        restarts = 0;
        runStart = upto;
    };

    for (; i < n; ++i) {
        const BasicBlock &b = progBlocks[batch.blockIds[i]];
        // The same decision Region::step makes, checked before any
        // effect so an unconsumed event is left wholly to
        // processEvent.
        if (batch.takenFlags[i] != 0 && b.startAddr() == top) {
            pos = 0;
            ++restarts;
            lastWasEntry = true;
        } else if (pos + 1 < rn && b.id() == rb[pos + 1]) {
            ++pos;
            lastWasEntry = false;
        } else {
            // Exit. If it lands on another cached region's entry the
            // per-event path would chain straight into it (the
            // selector is not consulted on the exit-stub path), so
            // the run can continue under the new region.
            const Region *s = cache_.lookupEntry(b.id());
            if (s == nullptr)
                break;
            flushRun(i);
            metrics_.onRegionExecutionEnd(curRegion_, false);
            if (s->id() != curRegion_)
                metrics_.onRegionTransition(curRegion_, s->id());
            // The effects of enterRegion(), with the run-local
            // context rebound to the new region.
            curRegion_ = s->id();
            curRegionPtr_ = s;
            const RegionLayout &layout = layouts_[curRegion_];
            curBase_ = layout.base;
            curOffsets_ = layout.blockOffsets.data();
            metrics_.onRegionEntered(curRegion_);
            r = s;
            rb = r->blockIds().data();
            rn = r->blockIds().size();
            top = r->entryAddr();
            pos = 0;
            lastWasEntry = true;
            if (r->kind() != Region::Kind::Trace) {
                // Entered a multi-path region: account this entry
                // event here, then let processEvent own the rest.
                metrics_.onEvent();
                metrics_.onCachedBlock(b, curRegion_);
                fetchCachedCur(0, b);
                if (prev != nullptr)
                    metrics_.onEdge(prev->id(), b.id());
                prev = &b;
                ++i;
                ++runStart;
                any = true;
                break;
            }
        }
        if (prev != nullptr)
            metrics_.onEdge(prev->id(), b.id());
        prev = &b;
        insts += b.instCount();
        fetchCachedCur(pos, b);
        any = true;
    }

    if (any) {
        flushRun(i);
        regionPos_ = pos;
        prevBlock_ = prev;
        if (i == n) {
            // The batch ended mid-run: leave the same step-trace
            // probe state the per-event path would have.
            lastStep_ = StepTrace{};
            lastStep_.where = StepTrace::Where::Cached;
            lastStep_.region = curRegion_;
            lastStep_.pos = pos;
            lastStep_.enteredRegion = lastWasEntry;
        }
    }
    return i;
}

std::size_t
DynOptSystem::onBatch(const EventBatch &batch)
{
    RSEL_ASSERT(!finished_, "events delivered after finish()");
    RSEL_ASSERT(selector_ != nullptr, "no selector attached");
    const std::vector<BasicBlock> &blocks = prog_.blocks();
    const std::size_t n = batch.size();
    if (interpretOnly_) {
        // Terminal graceful degradation: the whole batch is
        // interpreted, no selector/injector/cache involvement.
        for (std::size_t i = 0; i < n; ++i) {
            ExecEvent ev;
            ev.block = &blocks[batch.blockIds[i]];
            ev.takenBranch = batch.takenFlags[i] != 0;
            ev.branchAddr = batch.branchAddrs[i];
            interpretOnlyEvent(ev);
        }
        return n;
    }
    // The armed/disarmed decision is per batch, not per event: the
    // two loops run the same state machine, but the disarmed one is
    // instantiated without any injector code on its fast path.
    if (injector_) {
        // Armed: the injector must tick on every event (faults can
        // flush the region under us), so no run consumption here.
        for (std::size_t i = 0; i < n; ++i) {
            ExecEvent ev;
            ev.block = &blocks[batch.blockIds[i]];
            ev.takenBranch = batch.takenFlags[i] != 0;
            ev.branchAddr = batch.branchAddrs[i];
            processEvent<true>(ev);
        }
    } else {
        std::size_t i = 0;
        while (i < n) {
            if (inRegion_ &&
                curRegionPtr_->kind() == Region::Kind::Trace) {
                i = consumeTraceRun(batch, i);
                if (i == n)
                    break;
            }
            ExecEvent ev;
            ev.block = &blocks[batch.blockIds[i]];
            ev.takenBranch = batch.takenFlags[i] != 0;
            ev.branchAddr = batch.branchAddrs[i];
            processEvent<false>(ev);
            ++i;
        }
    }
    return n;
}

SimResult
DynOptSystem::finish()
{
    RSEL_ASSERT(!finished_, "finish() may only be called once");
    finished_ = true;
    if (inRegion_) {
        // Close the in-flight region execution.
        metrics_.onRegionExecutionEnd(curRegion_, false);
        inRegion_ = false;
    }
    SimResult result = metrics_.finalize(prog_, cache_, *selector_);
    result.icacheAccesses = icache_.accesses();
    result.icacheMisses = icache_.misses();
    recovery_.retranslations = cache_.retranslations();
    result.recovery = recovery_;
    if (verify_) {
        // Static duplication accountant: the SimResult's expansion
        // and duplication totals must be re-derivable from the
        // cache contents alone.
        const std::size_t before = verifyDiag_.diagnostics().size();
        analysis::checkDuplicationAccounting(prog_, cache_, result,
                                             verifyDiag_);
        const std::string first =
            verifyDiag_.firstErrorAfter(before);
        if (!first.empty())
            throw analysis::VerifyError(
                "static verifier rejected the final cache state of "
                "selector " + selector_->name() + ": " + first);
    }
    return result;
}

std::string
algorithmName(Algorithm algo)
{
    switch (algo) {
      case Algorithm::Net:         return "NET";
      case Algorithm::Lei:         return "LEI";
      case Algorithm::NetCombined: return "NET+comb";
      case Algorithm::LeiCombined: return "LEI+comb";
      case Algorithm::Mojo:        return "Mojo";
      case Algorithm::Boa:         return "BOA";
      case Algorithm::Wrs:         return "WRS";
    }
    return "unknown";
}

void
attachAlgorithm(DynOptSystem &system, Algorithm algo,
                const SimOptions &opts)
{
    switch (algo) {
      case Algorithm::Net: {
        NetConfig cfg = opts.net;
        cfg.combine = false;
        system.useNet(cfg);
        break;
      }
      case Algorithm::NetCombined: {
        NetConfig cfg = opts.net;
        cfg.combine = true;
        system.useNet(cfg);
        break;
      }
      case Algorithm::Lei: {
        LeiConfig cfg = opts.lei;
        cfg.combine = false;
        system.useLei(cfg);
        break;
      }
      case Algorithm::LeiCombined: {
        LeiConfig cfg = opts.lei;
        cfg.combine = true;
        system.useLei(cfg);
        break;
      }
      case Algorithm::Mojo: {
        NetConfig cfg = opts.net;
        cfg.combine = false;
        if (cfg.exitThreshold == 0)
            cfg.exitThreshold = cfg.hotThreshold / 2;
        system.useNet(cfg);
        break;
      }
      case Algorithm::Boa:
        system.useBoa(opts.boa);
        break;
      case Algorithm::Wrs:
        system.useWrs(opts.wrs);
        break;
    }
}

SimResult
simulate(const Program &prog, Algorithm algo, const SimOptions &opts)
{
    DynOptSystem system(prog, opts.cache, opts.icache);
    attachAlgorithm(system, algo, opts);
    if (opts.verifyRegions)
        system.enableVerifyOnSubmit();
    system.armFaults(opts.faults, opts.faultSeed);

    Executor exec(prog, opts.seed);
    if (opts.dispatch == Dispatch::Batched)
        exec.runBatched(opts.maxEvents, system, opts.batchSize);
    else
        exec.run(opts.maxEvents, system);
    return system.finish();
}

} // namespace rsel
