/**
 * @file
 * The simulated dynamic optimization system (paper Section 2.1).
 *
 * Consumes the dynamic basic-block stream from an Executor and
 * simulates the interpreter / code-cache state machine around a
 * pluggable RegionSelector:
 *
 *  - While interpreting, every taken branch whose target is a cached
 *    region entry transfers into the cache; all other interpreted
 *    blocks are reported to the selector.
 *  - While executing a region, control follows the region's internal
 *    structure; leaving it either links directly to another region
 *    (a region transition) or falls back to the interpreter, in
 *    which case the selector sees the landing block flagged as a
 *    code-cache exit.
 *  - Regions completed by the selector are inserted into the cache;
 *    if the new region begins at the block currently being
 *    processed, control jumps straight into it (Figure 5's
 *    "jump newT").
 */

#ifndef RSEL_DYNOPT_DYNOPT_SYSTEM_HPP
#define RSEL_DYNOPT_DYNOPT_SYSTEM_HPP

#include <memory>
#include <unordered_map>

#include "analysis/analysis_manager.hpp"
#include "analysis/diagnostics.hpp"
#include "metrics/metrics_collector.hpp"
#include "program/executor.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/recovery_stats.hpp"
#include "runtime/code_cache.hpp"
#include "runtime/icache.hpp"
#include "selection/boa_selector.hpp"
#include "selection/lei_selector.hpp"
#include "selection/net_selector.hpp"
#include "selection/wrs_selector.hpp"

namespace rsel {

/**
 * How the system disposed of the last consumed event. The probe the
 * testing layer (InvariantSink) uses to assert transparency: the
 * block stream executed through the code cache must equal the
 * architectural stream block-for-block.
 */
struct StepTrace
{
    enum class Where : std::uint8_t { Interpreted, Cached };

    /** Whether the block ran in the interpreter or the cache. */
    Where where = Where::Interpreted;
    /** Region the block ran from; valid iff where == Cached. */
    RegionId region = invalidRegion;
    /** Index into the region's blocks(); valid iff where == Cached. */
    std::size_t pos = 0;
    /** True if this event began a region execution (entry/restart). */
    bool enteredRegion = false;
    /** True if this event landed in the interpreter off a cache exit. */
    bool cacheExit = false;
};

/**
 * The Section 2.1 simulator, driven as an ExecutionSink (one virtual
 * call per block) or — the fast path — as a BatchSink (one virtual
 * call per EventBatch, with the fault-injection disarm check hoisted
 * to batch granularity). Both paths run the identical per-event
 * state machine, so their SimResults are byte-identical.
 */
class DynOptSystem : public ExecutionSink, public BatchSink
{
  public:
    /**
     * @param prog   the program being run; must outlive the system.
     * @param limits code-cache capacity/eviction; default unbounded
     *               (the paper's Section 2.3 methodology).
     * @param icache geometry of the modelled instruction cache fed
     *               by code-cache execution (locality measurement).
     */
    explicit DynOptSystem(const Program &prog, CacheLimits limits = {},
                          ICacheConfig icache = {});

    DynOptSystem(const DynOptSystem &) = delete;
    DynOptSystem &operator=(const DynOptSystem &) = delete;

    /** Use NET selection (optionally combined). @return this. */
    DynOptSystem &useNet(NetConfig cfg = {});

    /** Use LEI selection (optionally combined). @return this. */
    DynOptSystem &useLei(LeiConfig cfg = {});

    /** Use BOA-style edge-profile selection. @return this. */
    DynOptSystem &useBoa(BoaConfig cfg = {});

    /** Use Wiggins/Redstone-style sampling selection. @return this. */
    DynOptSystem &useWrs(WrsConfig cfg = {});

    /**
     * Use a caller-provided selection algorithm. The factory
     * receives the program and this system's code cache, which the
     * selector may hold references to.
     */
    template <typename Factory>
    DynOptSystem &
    useCustom(Factory &&factory)
    {
        selector_ = factory(prog_, cache_);
        return *this;
    }

    /**
     * Statically verify every region a selector emits before it is
     * cached (the analysis layer's RegionVerifier), and cross-check
     * the duplication accounting at finish(). Error diagnostics
     * throw analysis::VerifyError naming the selector, the region
     * id and the failing pass; warnings accumulate in
     * verifyDiagnostics(). @return this.
     */
    DynOptSystem &enableVerifyOnSubmit();

    /** True if verify-on-submit is active. */
    bool verifyOnSubmit() const { return verify_; }

    /**
     * Arm deterministic fault injection for this run. A disarmed
     * plan (nothing can fire) is a no-op, and with no plan armed
     * every resilience hook reduces to one branch per event —
     * zero-cost by design. Must be called before the first event.
     *
     * While armed, the system degrades gracefully instead of
     * crashing: failed submits are retried with per-entrance
     * exponential backoff (measured in interpreted events) up to the
     * plan's retry budget, after which the entrance is blacklisted
     * and runs interpreted forever. Execution is never wrong, only
     * slower — the transparency oracle holds under every plan.
     *
     * @param seedOverride non-zero replaces the plan's own seed.
     * @return this.
     */
    DynOptSystem &armFaults(const resilience::FaultPlan &plan,
                            std::uint64_t seedOverride = 0);

    /** True if fault injection is armed. */
    bool faultsArmed() const { return injector_ != nullptr; }

    /**
     * Observe this system's code-cache structural mutations
     * (insert / evict / invalidate / flush). The multi-tenant
     * service uses this to mirror a tenant's logical cache into the
     * shared sharded arena; notifications never fire on the
     * per-event lookup path, so results are byte-identical with or
     * without a listener. @return this.
     */
    DynOptSystem &
    setCacheListener(CodeCache::Listener *listener)
    {
        cache_.setListener(listener);
        return *this;
    }

    /**
     * Tear the cache down through the PR-4 disruption machinery:
     * every live region is flushed (the attached listener sees the
     * drops) and the selector — if any — is told via
     * onCacheDisruption(Flush), exactly as a capacity flush storm
     * would. Safe before or after finish(): a post-finish shutdown
     * only mutates cache state, never the already-finalized
     * SimResult. Tenant teardown routes through here so dead
     * regions can never resurrect into another tenant.
     */
    void
    shutdownCache()
    {
        if (cache_.liveRegionCount() == 0)
            return;
        cache_.flushAll();
        if (selector_ != nullptr)
            selector_->onCacheDisruption(CacheDisruption::Flush);
        inRegion_ = false;
        curRegionPtr_ = nullptr;
    }

    /**
     * Change the logical cache's capacity bound mid-run (the service
     * layer's memory-pressure squeeze). Over-bound occupancy is
     * evicted immediately under the configured policy, exactly as an
     * insert-driven makeRoom would — selector-silent, listener
     * mirrored. Deterministic: a pure function of when the call
     * lands on the event stream.
     */
    void setCacheCapacity(std::uint64_t capacityBytes)
    {
        cache_.setCapacity(capacityBytes);
    }

    /**
     * The overload controller's terminal graceful state: flush the
     * cache through the disruption machinery (shutdownCache) and
     * stop optimizing for good — every further event is interpreted,
     * the selector and translator are never consulted again.
     * Transparency holds (the guest stream still executes
     * completely); only performance degrades. Irreversible.
     */
    void
    degradeToInterpretation()
    {
        shutdownCache();
        pendingCacheExit_ = false;
        interpretOnly_ = true;
    }

    /** True once degradeToInterpretation() was called. */
    bool interpretOnly() const { return interpretOnly_; }

    /** Fault/recovery counters so far (all zero when disarmed). */
    const resilience::RecoveryStats &recoveryStats() const
    {
        return recovery_;
    }

    /** Diagnostics accumulated by verify-on-submit. */
    const analysis::DiagnosticEngine &verifyDiagnostics() const
    {
        return verifyDiag_;
    }

    /**
     * Tell the verifier the active selector's maximum trace size
     * (the lei-cyclicity size-limit exculpation). useLei() records
     * it automatically; useCustom() callers wrapping LEI set it by
     * hand. @return this.
     */
    DynOptSystem &setLeiTraceLimitHint(std::uint32_t maxTraceInsts)
    {
        leiMaxTraceInsts_ = maxTraceInsts;
        return *this;
    }

    /** ExecutionSink: consume one dynamic block event. */
    bool onEvent(const ExecEvent &event) override;

    /**
     * BatchSink: consume a whole batch of events. Whether fault
     * injection is armed is decided once per batch (the disarmed
     * loop carries no per-event injector branch); when armed, faults
     * still fire at exactly the same event indices as the per-event
     * path. Always consumes the full batch.
     */
    std::size_t onBatch(const EventBatch &batch) override;

    /**
     * Close the run and compute all metrics. May be called once,
     * after the executor finishes.
     */
    SimResult finish();

    /** The code cache (for tests and examples). */
    const CodeCache &cache() const { return cache_; }

    /** The active selector. @pre a use*() call happened. */
    const RegionSelector &selector() const { return *selector_; }

    /** Disposition of the most recent onEvent() (testing probe). */
    const StepTrace &lastStep() const { return lastStep_; }

    /** The live metrics collector (testing probe). */
    const MetricsCollector &metrics() const { return metrics_; }

  private:
    /** Code-cache placement of one region's blocks. */
    struct RegionLayout
    {
        /** Base address of the region in the code cache. */
        std::uint64_t base = 0;
        /** Byte offset of each block (parallel to Region::blocks). */
        std::vector<std::uint32_t> blockOffsets;
    };

    /** Insert a selector-completed region into the cache. */
    void installRegion(RegionSpec spec);

    /**
     * Submit a selector-completed region through the resilience
     * layer: blacklist and backoff gates first, then the injected
     * translation-failure roll, then the real install. With no
     * injector armed this is installRegion() plus one branch.
     * @return true if the region was actually cached.
     */
    bool submitRegion(RegionSpec spec);

    /** Fire the event-driven faults due at this event, if any. */
    void injectEventFaults();

    /** Verify-on-submit: check a spec, throw on error diagnostics. */
    void verifySpec(const RegionSpec &spec);

    /** Verify-on-submit: check the constructed, cached region. */
    void verifyInstalled(const Region &region);

    /** Throw VerifyError if diagnostics past `before` hold errors. */
    void throwOnNewErrors(std::size_t before, RegionId id);

    /** Enter a region: bookkeeping common to all entry paths. */
    void enterRegion(const Region &region, const BasicBlock &block);

    /**
     * The per-event state machine shared by onEvent and onBatch.
     * `Armed` hoists the fault-injection check out of the event
     * path: the disarmed instantiation contains no injector code at
     * all, keeping the in-region fast path branch-predictable.
     */
    template <bool Armed> void processEvent(const ExecEvent &ev);

    /**
     * The interpret-only event path after degradeToInterpretation():
     * metrics-exact (event, edge, interpreted-block) but no selector,
     * no injector, no cache.
     */
    void interpretOnlyEvent(const ExecEvent &ev);

    /**
     * Batch fast path: consume a run of events that stay inside the
     * current Trace region (Internal steps and CycleRestarts),
     * starting at batch index `i`. Stops at the first event the run
     * cannot prove in-region (left for processEvent) or at the end
     * of the batch. Metrics for the run are accumulated locally and
     * folded in with two bulk calls; every per-event architectural
     * effect (edge profile, I-cache accesses, predecessor tracking)
     * is applied exactly as the per-event path would.
     * @return the index of the first unconsumed event.
     * @pre inRegion_ && curRegionPtr_->kind() == Trace; disarmed
     *      (an armed system must tick the injector every event).
     */
    std::size_t consumeTraceRun(const EventBatch &batch,
                                std::size_t i);

    /**
     * Feed one cached block's fetch through the I-cache model, using
     * the current-region layout cached by enterRegion() — no deque
     * or layout-table indexing on the in-region fast path.
     */
    void
    fetchCachedCur(std::size_t pos, const BasicBlock &block)
    {
        icache_.fetchRange(curBase_ + curOffsets_[pos],
                           static_cast<std::uint32_t>(
                               block.sizeBytes()));
    }

    const Program &prog_;
    CodeCache cache_;
    MetricsCollector metrics_;
    ICacheModel icache_;
    std::vector<RegionLayout> layouts_;
    std::uint64_t nextLayoutAddr_ = 0;
    std::unique_ptr<RegionSelector> selector_;

    /** Per-entrance translation-failure recovery state. */
    struct EntranceState
    {
        /** Consecutive failed submits at this entrance. */
        std::uint32_t failures = 0;
        /** Degraded to pure interpretation (budget exhausted). */
        bool blacklisted = false;
        /** Interpreted-event clock value the backoff window ends at. */
        std::uint64_t backoffUntil = 0;
    };

    std::unique_ptr<resilience::FaultInjector> injector_;
    resilience::RecoveryStats recovery_;
    std::unordered_map<Addr, EntranceState> entrances_;
    /** Interpreted-event clock driving the backoff windows. */
    std::uint64_t interpEvents_ = 0;

    bool verify_ = false;
    std::uint32_t leiMaxTraceInsts_ = 0;
    analysis::AnalysisManager analysisMgr_;
    analysis::DiagnosticEngine verifyDiag_;

    bool inRegion_ = false;
    RegionId curRegion_ = invalidRegion;
    /** The region curRegion_ names (Region objects outlive eviction
     *  and live in a deque, so the pointer is stable); cached to
     *  keep the in-region fast path free of deque indexing. */
    const Region *curRegionPtr_ = nullptr;
    std::size_t regionPos_ = 0;
    /**
     * The current region's layout, flattened: code-cache base and
     * the per-block offset stripe. Set by enterRegion(); the offset
     * buffer outlives outer-vector reallocation (vector moves keep
     * heap storage), and every region entry re-caches both.
     */
    std::uint64_t curBase_ = 0;
    const std::uint32_t *curOffsets_ = nullptr;
    /** Set when execution just left the cache to the interpreter. */
    bool pendingCacheExit_ = false;
    const BasicBlock *prevBlock_ = nullptr;
    /** Terminal graceful-degradation latch (service overload). */
    bool interpretOnly_ = false;
    bool finished_ = false;
    StepTrace lastStep_;
};

/**
 * Selection algorithm chosen by the convenience harness. The first
 * four are the paper's evaluated configurations; Mojo and Boa are
 * the Section 5 related-work selectors.
 */
enum class Algorithm { Net, Lei, NetCombined, LeiCombined, Mojo, Boa,
                       Wrs };

/** The paper's four evaluated configurations, for sweeps. */
constexpr Algorithm allAlgorithms[] = {
    Algorithm::Net, Algorithm::Lei, Algorithm::NetCombined,
    Algorithm::LeiCombined};

/** Every selector the library ships, including Section 5's. */
constexpr Algorithm allSelectors[] = {
    Algorithm::Net,  Algorithm::Lei,  Algorithm::NetCombined,
    Algorithm::LeiCombined, Algorithm::Mojo, Algorithm::Boa,
    Algorithm::Wrs};

/** Human-readable algorithm name. */
std::string algorithmName(Algorithm algo);

/** How the executor delivers events to the system. */
enum class Dispatch : std::uint8_t {
    /** One virtual sink call per block (the reference path). */
    PerEvent,
    /** SoA batches via DynOptSystem::onBatch — byte-identical
     *  results, several times the throughput. */
    Batched,
};

/** Options for the one-call simulation harness. */
struct SimOptions
{
    /** Maximum dynamic block events to execute. */
    std::uint64_t maxEvents = 2'000'000;
    /** Event-delivery mechanism; results are identical either way. */
    Dispatch dispatch = Dispatch::Batched;
    /** Events per batch when dispatch == Batched. */
    std::size_t batchSize = defaultBatchSize;
    /** Executor seed (branch-behaviour randomness). */
    std::uint64_t seed = 1;
    /** NET thresholds (used by Net / NetCombined / Mojo). */
    NetConfig net;
    /** LEI thresholds (used by Lei / LeiCombined). */
    LeiConfig lei;
    /** BOA thresholds (used by Boa). */
    BoaConfig boa;
    /** Wiggins/Redstone sampling parameters (used by Wrs). */
    WrsConfig wrs;
    /** Code-cache bounds; default unbounded. */
    CacheLimits cache;
    /** Modelled instruction-cache geometry. */
    ICacheConfig icache;
    /** Statically verify every emitted region (verify-on-submit). */
    bool verifyRegions = false;
    /** Fault-injection plan; disarmed (all-zero rates) by default. */
    resilience::FaultPlan faults;
    /** Non-zero overrides the plan's own injection seed. */
    std::uint64_t faultSeed = 0;
};

/**
 * Attach `algo` to `system`, taking thresholds from `opts`. The
 * combine flag of the respective config is set from `algo`; Mojo
 * derives its exit threshold from the NET hot threshold when unset.
 * Shared by simulate() and the trace-replay driver.
 */
void attachAlgorithm(DynOptSystem &system, Algorithm algo,
                     const SimOptions &opts = {});

/**
 * Run `prog` to completion (or maxEvents) under one algorithm and
 * return the metrics. The combine flag of the respective config is
 * set from `algo`.
 */
SimResult simulate(const Program &prog, Algorithm algo,
                   const SimOptions &opts = {});

} // namespace rsel

#endif // RSEL_DYNOPT_DYNOPT_SYSTEM_HPP
