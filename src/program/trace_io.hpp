/**
 * @file
 * Program serialization and dynamic-trace record/replay.
 *
 * The paper's framework consumed basic-block streams collected with
 * Pin. These helpers give the library the same trace-driven front
 * door: a guest program can be saved to / loaded from a portable
 * text format, and a dynamic block stream can be recorded to a
 * compact binary trace file and replayed later — including streams
 * produced by external tools (a Pin or DynamoRIO client only needs
 * to emit the two formats below).
 *
 * Program format (text, line oriented):
 *
 *     rsel-program 1
 *     entry <blockId>
 *     phases <n> <len>...
 *     function <name>
 *     block <ninsts> <size>... <terminator> [<targetBlockId>]
 *     cond <blockId> bernoulli <n> <p>...
 *     cond <blockId> loop <tripMin> <tripMax> <takenIsBackEdge>
 *     indirect <blockId> targets <n> <blockId>... phases <m> <w>...
 *
 * Blocks appear in layout order inside their function; addresses are
 * reassigned by the deterministic builder layout, so round-tripping
 * preserves every address.
 *
 * Trace format (binary): the header line "RSTR1 <blockCount>\n"
 * (the block count fingerprints the program the trace was recorded
 * against) followed by one LEB128-encoded block id per executed
 * block, in order, terminated by one LEB128 end-of-trace marker
 * whose value is exactly `blockCount` (one past the largest valid
 * id). The marker lets the replayer distinguish a complete trace
 * from one cut short: a stream that ends without it — whether cut
 * between events or mid-LEB128 — raises a FatalError naming the
 * byte offset of the cut.
 */

#ifndef RSEL_PROGRAM_TRACE_IO_HPP
#define RSEL_PROGRAM_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "program/executor.hpp"
#include "program/program.hpp"

namespace rsel {

/** Serialize a program to the text format. */
void saveProgram(const Program &prog, std::ostream &os);

/**
 * Load a program from the text format.
 * @throws FatalError on malformed input.
 */
Program loadProgram(std::istream &is);

/**
 * An ExecutionSink that records every executed block id to a binary
 * trace stream. Compose it in front of another sink (or use it
 * standalone while an Executor runs).
 */
class TraceWriter : public ExecutionSink
{
  public:
    /**
     * @param os   destination stream; the header is written now.
     * @param prog program being traced (fingerprints the header so
     *             replay against a different program is rejected).
     */
    TraceWriter(std::ostream &os, const Program &prog);

    /** Writes the end-of-trace marker unless finish() already did. */
    ~TraceWriter() override;

    bool onEvent(const ExecEvent &event) override;

    /**
     * Write the end-of-trace marker, sealing the trace. Idempotent;
     * called by the destructor when not invoked explicitly. No
     * events may be written afterwards.
     */
    void finish();

    /** Events written so far (the marker is not an event). */
    std::uint64_t eventCount() const { return events_; }

  private:
    std::ostream &os_;
    std::uint64_t events_ = 0;
    std::uint64_t markerValue_;
    bool finished_ = false;
};

/**
 * Replays a recorded trace into a sink, synthesizing the
 * taken-branch annotations from the program structure the same way
 * the architectural executor produces them.
 */
class TraceReplayer
{
  public:
    /**
     * @param prog the program the trace was recorded against.
     * @param is   trace stream; the header (magic and program
     *             fingerprint) is validated now.
     * @throws FatalError on a bad header or a program mismatch.
     */
    TraceReplayer(const Program &prog, std::istream &is);

    /**
     * Deliver up to `maxEvents` further events.
     * @return events delivered; fewer means the end-of-trace marker
     *         was reached or the sink stopped.
     * @throws FatalError on a corrupt stream — including a stream
     *         that ends without the end-of-trace marker (truncated
     *         between events or mid-LEB128); the error names the
     *         byte offset of the cut.
     */
    std::uint64_t run(std::uint64_t maxEvents, ExecutionSink &sink);

    /**
     * Decode up to `maxEvents` further events straight into `batch`
     * (cleared first) — the zero-copy replay path: LEB128 ids land
     * in the batch's id stripe and the taken/branch-address
     * annotations are synthesized alongside, with no per-event
     * ExecEvent materialization or sink call. The produced stream is
     * identical to what run() would deliver.
     * @return events filled; fewer than requested means the
     *         end-of-trace marker was reached.
     * @throws FatalError as run() does on corrupt/truncated streams.
     */
    std::uint64_t fillBatch(EventBatch &batch, std::size_t maxEvents);

    /**
     * Replay up to `maxEvents` events into a batch sink, at most
     * `batchSize` events per onBatch() call.
     * @return events consumed by the sink.
     */
    std::uint64_t runBatched(std::uint64_t maxEvents, BatchSink &sink,
                             std::size_t batchSize = defaultBatchSize);

    /** True once the end-of-trace marker has been consumed. */
    bool atEnd() const { return done_; }

  private:
    /**
     * Read one LEB128 value, tracking byteOffset_.
     * @return false only on EOF at a value boundary (reported by the
     *         caller as truncation, with the offset).
     */
    bool readValue(std::uint64_t &value);

    const Program &prog_;
    std::istream &is_;
    const BasicBlock *prev_ = nullptr;
    std::uint64_t byteOffset_ = 0;
    std::uint64_t eventsRead_ = 0;
    bool done_ = false;
};

} // namespace rsel

#endif // RSEL_PROGRAM_TRACE_IO_HPP
