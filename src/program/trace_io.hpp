/**
 * @file
 * Program serialization and dynamic-trace record/replay.
 *
 * The paper's framework consumed basic-block streams collected with
 * Pin. These helpers give the library the same trace-driven front
 * door: a guest program can be saved to / loaded from a portable
 * text format, and a dynamic block stream can be recorded to a
 * compact binary trace file and replayed later — including streams
 * produced by external tools (a Pin or DynamoRIO client only needs
 * to emit the two formats below).
 *
 * Program format (text, line oriented):
 *
 *     rsel-program 1
 *     entry <blockId>
 *     phases <n> <len>...
 *     function <name>
 *     block <ninsts> <size>... <terminator> [<targetBlockId>]
 *     cond <blockId> bernoulli <n> <p>...
 *     cond <blockId> loop <tripMin> <tripMax> <takenIsBackEdge>
 *     indirect <blockId> targets <n> <blockId>... phases <m> <w>...
 *
 * Blocks appear in layout order inside their function; addresses are
 * reassigned by the deterministic builder layout, so round-tripping
 * preserves every address.
 *
 * Trace format (binary): the header line "RSTR1 <blockCount>\n"
 * (the block count fingerprints the program the trace was recorded
 * against) followed by one LEB128-encoded block id per executed
 * block, in order.
 */

#ifndef RSEL_PROGRAM_TRACE_IO_HPP
#define RSEL_PROGRAM_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "program/executor.hpp"
#include "program/program.hpp"

namespace rsel {

/** Serialize a program to the text format. */
void saveProgram(const Program &prog, std::ostream &os);

/**
 * Load a program from the text format.
 * @throws FatalError on malformed input.
 */
Program loadProgram(std::istream &is);

/**
 * An ExecutionSink that records every executed block id to a binary
 * trace stream. Compose it in front of another sink (or use it
 * standalone while an Executor runs).
 */
class TraceWriter : public ExecutionSink
{
  public:
    /**
     * @param os   destination stream; the header is written now.
     * @param prog program being traced (fingerprints the header so
     *             replay against a different program is rejected).
     */
    TraceWriter(std::ostream &os, const Program &prog);

    bool onEvent(const ExecEvent &event) override;

    /** Events written so far. */
    std::uint64_t eventCount() const { return events_; }

  private:
    std::ostream &os_;
    std::uint64_t events_ = 0;
};

/**
 * Replays a recorded trace into a sink, synthesizing the
 * taken-branch annotations from the program structure the same way
 * the architectural executor produces them.
 */
class TraceReplayer
{
  public:
    /**
     * @param prog the program the trace was recorded against.
     * @param is   trace stream; the header (magic and program
     *             fingerprint) is validated now.
     * @throws FatalError on a bad header or a program mismatch.
     */
    TraceReplayer(const Program &prog, std::istream &is);

    /**
     * Deliver up to `maxEvents` further events.
     * @return events delivered; fewer means end of trace or the
     *         sink stopped. @throws FatalError on a corrupt stream.
     */
    std::uint64_t run(std::uint64_t maxEvents, ExecutionSink &sink);

  private:
    const Program &prog_;
    std::istream &is_;
    const BasicBlock *prev_ = nullptr;
};

} // namespace rsel

#endif // RSEL_PROGRAM_TRACE_IO_HPP
