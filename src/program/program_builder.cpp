#include "program/program_builder.hpp"

#include "support/error.hpp"

namespace rsel {

namespace {

/** Function start alignment, mirroring common linker behaviour. */
constexpr Addr funcAlign = 16;

Addr
alignUp(Addr a, Addr align)
{
    return (a + align - 1) / align * align;
}

} // namespace

ProgramBuilder::ProgramBuilder(std::uint64_t seed, Addr baseAddr)
    : rng_(seed), baseAddr_(baseAddr)
{}

FuncId
ProgramBuilder::beginFunction(const std::string &name)
{
    if (!functions_.empty()) {
        Function &prev = functions_.back();
        prev.lastBlock = static_cast<BlockId>(pendings_.size());
        if (prev.firstBlock == prev.lastBlock)
            fatal("function '" + prev.name + "' has no blocks");
    }
    Function f;
    f.name = name;
    f.firstBlock = static_cast<BlockId>(pendings_.size());
    f.entry = f.firstBlock; // first created block is the entry
    functions_.push_back(std::move(f));
    return static_cast<FuncId>(functions_.size() - 1);
}

BlockId
ProgramBuilder::block(unsigned ninsts)
{
    if (functions_.empty())
        fatal("create a function before creating blocks");
    if (ninsts == 0)
        fatal("a block needs at least one instruction");
    PendingBlock pb;
    pb.func = static_cast<FuncId>(functions_.size() - 1);
    pb.ninsts = ninsts;
    pendings_.push_back(pb);
    return static_cast<BlockId>(pendings_.size() - 1);
}

BlockId
ProgramBuilder::blockWithSizes(const std::vector<std::uint8_t> &sizes)
{
    const BlockId id = block(static_cast<unsigned>(sizes.size()));
    for (std::uint8_t s : sizes) {
        if (s == 0)
            fatal("instruction sizes must be positive");
    }
    pendings_.back().sizes = sizes;
    return id;
}

ProgramBuilder::PendingBlock &
ProgramBuilder::pending(BlockId id)
{
    if (id >= pendings_.size())
        fatal("unknown block id " + std::to_string(id));
    return pendings_[id];
}

void
ProgramBuilder::setTerminator(BlockId src, BranchKind kind, BlockId target,
                              FuncId callee)
{
    PendingBlock &pb = pending(src);
    if (pb.terminator != BranchKind::None)
        fatal("block " + std::to_string(src) +
              " already has a terminator");
    pb.terminator = kind;
    pb.target = target;
    pb.callee = callee;
}

void
ProgramBuilder::condTo(BlockId src, BlockId target, CondBehavior behavior)
{
    if (behavior.kind == CondBehavior::Kind::Bernoulli &&
        behavior.takenProbByPhase.empty()) {
        fatal("Bernoulli behaviour needs at least one probability");
    }
    setTerminator(src, BranchKind::CondDirect, target, invalidFunc);
    condBehaviors_[src] = std::move(behavior);
}

void
ProgramBuilder::loopTo(BlockId src, BlockId head, std::uint32_t trip_min,
                       std::uint32_t trip_max)
{
    setTerminator(src, BranchKind::CondDirect, head, invalidFunc);
    condBehaviors_[src] = CondBehavior::loop(trip_min, trip_max);
}

void
ProgramBuilder::jumpTo(BlockId src, BlockId target)
{
    setTerminator(src, BranchKind::Jump, target, invalidFunc);
}

void
ProgramBuilder::callTo(BlockId src, FuncId callee)
{
    if (callee >= functions_.size())
        fatal("unknown callee function id " + std::to_string(callee));
    setTerminator(src, BranchKind::Call, invalidBlock, callee);
}

void
ProgramBuilder::callToBlock(BlockId src, BlockId target)
{
    setTerminator(src, BranchKind::Call, target, invalidFunc);
}

namespace {

void
validateIndirect(const IndirectBehavior &behavior)
{
    if (behavior.targets.empty())
        fatal("indirect branch needs at least one target");
    if (behavior.weightsByPhase.empty())
        fatal("indirect branch needs at least one weight vector");
    for (const auto &weights : behavior.weightsByPhase) {
        if (weights.size() != behavior.targets.size())
            fatal("indirect weights must match target count");
    }
}

} // namespace

void
ProgramBuilder::indirectJump(BlockId src, IndirectBehavior behavior)
{
    validateIndirect(behavior);
    setTerminator(src, BranchKind::IndirectJump, invalidBlock,
                  invalidFunc);
    indirectBehaviors_[src] = std::move(behavior);
}

void
ProgramBuilder::indirectCall(BlockId src, IndirectBehavior behavior)
{
    validateIndirect(behavior);
    setTerminator(src, BranchKind::IndirectCall, invalidBlock,
                  invalidFunc);
    indirectBehaviors_[src] = std::move(behavior);
}

void
ProgramBuilder::ret(BlockId src)
{
    setTerminator(src, BranchKind::Return, invalidBlock, invalidFunc);
}

void
ProgramBuilder::halt(BlockId src)
{
    setTerminator(src, BranchKind::Halt, invalidBlock, invalidFunc);
}

BlockId
ProgramBuilder::functionEntry(FuncId func) const
{
    if (func >= functions_.size())
        fatal("unknown function id " + std::to_string(func));
    return functions_[func].entry;
}

void
ProgramBuilder::setEntry(BlockId entry)
{
    if (entry >= pendings_.size())
        fatal("unknown entry block id " + std::to_string(entry));
    entry_ = entry;
}

void
ProgramBuilder::setPhaseLengths(std::vector<std::uint64_t> lengths)
{
    for (std::uint64_t len : lengths) {
        if (len == 0)
            fatal("phase lengths must be positive");
    }
    phaseLengths_ = std::move(lengths);
}

Program
ProgramBuilder::build()
{
    if (built_)
        fatal("ProgramBuilder::build() may only be called once");
    built_ = true;

    if (pendings_.empty())
        fatal("program has no blocks");
    functions_.back().lastBlock = static_cast<BlockId>(pendings_.size());

    if (entry_ == invalidBlock) {
        // Default entry: the function named "main" when present
        // (workloads lay out callees first, so "first function"
        // would usually be a helper), otherwise the first function.
        entry_ = functions_.front().entry;
        for (const Function &f : functions_) {
            if (f.name == "main") {
                entry_ = f.entry;
                break;
            }
        }
    }

    // Pass 1: assign instruction sizes and block addresses in layout
    // order. Sizes are 2-6 bytes, mean approximately 3.5, matching
    // the paper's "between three and four bytes" average.
    std::vector<std::vector<Instruction>> insts(pendings_.size());
    std::vector<Addr> startAddrs(pendings_.size());
    Addr cursor = baseAddr_;
    FuncId currentFunc = invalidFunc;
    for (BlockId id = 0; id < pendings_.size(); ++id) {
        const PendingBlock &pb = pendings_[id];
        if (pb.func != currentFunc) {
            cursor = alignUp(cursor, funcAlign);
            currentFunc = pb.func;
        }
        startAddrs[id] = cursor;
        insts[id].reserve(pb.ninsts);
        for (unsigned i = 0; i < pb.ninsts; ++i) {
            Instruction inst;
            inst.addr = cursor;
            inst.sizeBytes =
                pb.sizes.empty()
                    ? static_cast<std::uint8_t>(rng_.nextRange(2, 6))
                    : pb.sizes[i];
            cursor += inst.sizeBytes;
            insts[id].push_back(inst);
        }
    }

    // Pass 2: resolve targets and materialize blocks.
    Program prog;
    prog.blocks_.reserve(pendings_.size());
    for (BlockId id = 0; id < pendings_.size(); ++id) {
        const PendingBlock &pb = pendings_[id];
        Addr target = invalidAddr;
        if (pb.terminator == BranchKind::Call &&
            pb.callee != invalidFunc) {
            target = startAddrs[functions_[pb.callee].entry];
        } else if (pb.target != invalidBlock) {
            target = startAddrs[pb.target];
        }
        prog.blocks_.emplace_back(id, pb.func, std::move(insts[id]),
                                  pb.terminator, target);
        prog.addrToBlock_[startAddrs[id]] = id;
        prog.staticInsts_ += pb.ninsts;
        prog.staticBytes_ += prog.blocks_.back().sizeBytes();
    }

    // Pass 3: validate fall-through structure — every block that can
    // fall through (or that calls, since calls return to their
    // fall-through address) must be followed, contiguously, by
    // another block of the same function.
    for (const BasicBlock &b : prog.blocks_) {
        const bool needsSuccessor =
            canFallThrough(b.terminator()) ||
            b.terminator() == BranchKind::Call ||
            b.terminator() == BranchKind::IndirectCall;
        if (!needsSuccessor)
            continue;
        auto it = prog.addrToBlock_.find(b.fallThroughAddr());
        if (it == prog.addrToBlock_.end() ||
            prog.blocks_[it->second].func() != b.func()) {
            fatal("block " + std::to_string(b.id()) + " in function '" +
                  functions_[b.func()].name +
                  "' falls through past the end of its function");
        }
    }

    prog.functions_ = std::move(functions_);
    prog.condBehaviors_ = std::move(condBehaviors_);
    prog.indirectBehaviors_ = std::move(indirectBehaviors_);
    prog.phaseLengths_ = std::move(phaseLengths_);
    prog.entry_ = entry_;
    return prog;
}

} // namespace rsel
