#include "program/program.hpp"

#include "support/error.hpp"

namespace rsel {

const BasicBlock *
Program::blockAtAddr(Addr addr) const
{
    auto it = addrToBlock_.find(addr);
    if (it == addrToBlock_.end())
        return nullptr;
    return &blocks_[it->second];
}

const BasicBlock *
Program::fallThroughOf(const BasicBlock &b) const
{
    if (!canFallThrough(b.terminator()))
        return nullptr;
    return blockAtAddr(b.fallThroughAddr());
}

const CondBehavior &
Program::condBehavior(BlockId id) const
{
    auto it = condBehaviors_.find(id);
    RSEL_ASSERT(it != condBehaviors_.end(),
                "block has no conditional behaviour");
    return it->second;
}

const IndirectBehavior &
Program::indirectBehavior(BlockId id) const
{
    auto it = indirectBehaviors_.find(id);
    RSEL_ASSERT(it != indirectBehaviors_.end(),
                "block has no indirect behaviour");
    return it->second;
}

} // namespace rsel
