/**
 * @file
 * The static guest program: functions, basic blocks, behaviours.
 */

#ifndef RSEL_PROGRAM_PROGRAM_HPP
#define RSEL_PROGRAM_PROGRAM_HPP

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/basic_block.hpp"
#include "program/behavior.hpp"

namespace rsel {

/** A function of the guest program: a contiguous range of blocks. */
struct Function
{
    /** Function name (for diagnostics and examples). */
    std::string name;
    /** Entry block. */
    BlockId entry = invalidBlock;
    /** First block id of the function's contiguous layout range. */
    BlockId firstBlock = invalidBlock;
    /** One past the last block id of the layout range. */
    BlockId lastBlock = invalidBlock;
};

/**
 * An immutable synthetic guest program.
 *
 * Built via ProgramBuilder. Blocks are laid out at concrete
 * addresses (functions in creation order, blocks in creation order
 * within a function), so "backward branch" has its architectural
 * meaning. Branch behaviours are attached per block.
 */
class Program
{
  public:
    /** All basic blocks, indexed by BlockId, in layout order. */
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** A block by id. */
    const BasicBlock &block(BlockId id) const { return blocks_.at(id); }

    /** All functions, indexed by FuncId. */
    const std::vector<Function> &functions() const { return functions_; }

    /** A function by id. */
    const Function &function(FuncId id) const { return functions_.at(id); }

    /** Program entry block. */
    BlockId entry() const { return entry_; }

    /**
     * The block starting exactly at `addr`, or nullptr. All dynamic
     * branch targets in generated programs are block starts.
     */
    const BasicBlock *blockAtAddr(Addr addr) const;

    /**
     * The block a fall-through from `b` lands in, or nullptr when
     * the block cannot fall through or nothing follows it.
     */
    const BasicBlock *fallThroughOf(const BasicBlock &b) const;

    /** Behaviour of a conditional block. @pre the block has one. */
    const CondBehavior &condBehavior(BlockId id) const;

    /** Behaviour of an indirect block. @pre the block has one. */
    const IndirectBehavior &indirectBehavior(BlockId id) const;

    /** True if the block has a conditional-behaviour annotation. */
    bool hasCondBehavior(BlockId id) const
    {
        return condBehaviors_.count(id) != 0;
    }

    /** True if the block has an indirect-behaviour annotation. */
    bool hasIndirectBehavior(BlockId id) const
    {
        return indirectBehaviors_.count(id) != 0;
    }

    /**
     * Phase lengths in executed-block counts; the Executor cycles
     * through them. Empty means a single unbounded phase.
     */
    const std::vector<std::uint64_t> &phaseLengths() const
    {
        return phaseLengths_;
    }

    /** Total static instruction count over all blocks. */
    std::uint64_t staticInstCount() const { return staticInsts_; }

    /** Total static code size in bytes. */
    std::uint64_t staticByteSize() const { return staticBytes_; }

  private:
    friend class ProgramBuilder;

    std::vector<BasicBlock> blocks_;
    std::vector<Function> functions_;
    std::unordered_map<Addr, BlockId> addrToBlock_;
    std::unordered_map<BlockId, CondBehavior> condBehaviors_;
    std::unordered_map<BlockId, IndirectBehavior> indirectBehaviors_;
    std::vector<std::uint64_t> phaseLengths_;
    BlockId entry_ = invalidBlock;
    std::uint64_t staticInsts_ = 0;
    std::uint64_t staticBytes_ = 0;
};

} // namespace rsel

#endif // RSEL_PROGRAM_PROGRAM_HPP
