#include "program/trace_io.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "program/program_builder.hpp"
#include "support/error.hpp"

namespace rsel {

namespace {

constexpr const char *programMagic = "rsel-program";
constexpr const char *traceMagic = "RSTR1";

BranchKind
parseTerminator(const std::string &token)
{
    for (BranchKind kind :
         {BranchKind::None, BranchKind::CondDirect, BranchKind::Jump,
          BranchKind::IndirectJump, BranchKind::Call,
          BranchKind::IndirectCall, BranchKind::Return,
          BranchKind::Halt}) {
        if (branchKindName(kind) == token)
            return kind;
    }
    fatal("unknown terminator '" + token + "' in program file");
}

/** Map a static taken-target address back to its block id. */
BlockId
blockIdOfAddr(const Program &prog, Addr addr)
{
    const BasicBlock *b = prog.blockAtAddr(addr);
    RSEL_ASSERT(b != nullptr, "target address is not a block start");
    return b->id();
}

void
writeLeb128(std::ostream &os, std::uint64_t value)
{
    do {
        std::uint8_t byte = value & 0x7f;
        value >>= 7;
        if (value != 0)
            byte |= 0x80;
        os.put(static_cast<char>(byte));
    } while (value != 0);
}

} // namespace

void
saveProgram(const Program &prog, std::ostream &os)
{
    os << programMagic << " 1\n";
    os << "entry " << prog.entry() << '\n';
    os << "phases " << prog.phaseLengths().size();
    for (std::uint64_t len : prog.phaseLengths())
        os << ' ' << len;
    os << '\n';

    for (const Function &f : prog.functions()) {
        os << "function " << f.name << '\n';
        for (BlockId id = f.firstBlock; id < f.lastBlock; ++id) {
            const BasicBlock &b = prog.block(id);
            os << "block " << b.instCount();
            for (const Instruction &inst : b.instructions())
                os << ' ' << static_cast<unsigned>(inst.sizeBytes);
            os << ' ' << branchKindName(b.terminator());
            if (b.takenTarget() != invalidAddr)
                os << ' ' << blockIdOfAddr(prog, b.takenTarget());
            os << '\n';
        }
    }

    for (const BasicBlock &b : prog.blocks()) {
        if (b.terminator() == BranchKind::CondDirect) {
            const CondBehavior &cb = prog.condBehavior(b.id());
            if (cb.kind == CondBehavior::Kind::Bernoulli) {
                os << "cond " << b.id() << " bernoulli "
                   << cb.takenProbByPhase.size();
                for (double p : cb.takenProbByPhase)
                    os << ' ' << p;
                os << '\n';
            } else {
                os << "cond " << b.id() << " loop " << cb.tripMin
                   << ' ' << cb.tripMax << ' '
                   << (cb.takenIsBackEdge ? 1 : 0) << '\n';
            }
        } else if (b.terminator() == BranchKind::IndirectJump ||
                   b.terminator() == BranchKind::IndirectCall) {
            const IndirectBehavior &ib = prog.indirectBehavior(b.id());
            os << "indirect " << b.id() << " targets "
               << ib.targets.size();
            for (BlockId t : ib.targets)
                os << ' ' << t;
            os << " phases " << ib.weightsByPhase.size();
            for (const auto &weights : ib.weightsByPhase)
                for (double w : weights)
                    os << ' ' << w;
            os << '\n';
        }
    }
}

Program
loadProgram(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        fatal("empty program file");
    {
        std::istringstream header(line);
        std::string magic;
        int version = 0;
        header >> magic >> version;
        if (magic != programMagic || version != 1)
            fatal("not a version-1 rsel program file");
    }

    ProgramBuilder builder(1);
    BlockId entry = invalidBlock;
    std::vector<std::uint64_t> phases;

    struct PendingTerminator
    {
        BlockId src;
        BranchKind kind;
        BlockId target;
    };
    std::vector<PendingTerminator> terminators;
    struct PendingCond
    {
        BlockId src;
        CondBehavior behavior;
    };
    std::vector<PendingCond> conds;
    struct PendingIndirect
    {
        BlockId src;
        BranchKind kind;
        IndirectBehavior behavior;
    };
    std::vector<PendingIndirect> indirects;
    std::vector<BranchKind> kindOf; // per created block

    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string keyword;
        ls >> keyword;

        if (keyword == "entry") {
            ls >> entry;
        } else if (keyword == "phases") {
            std::size_t n = 0;
            ls >> n;
            phases.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                ls >> phases[i];
        } else if (keyword == "function") {
            std::string name;
            ls >> name;
            builder.beginFunction(name);
        } else if (keyword == "block") {
            std::size_t ninsts = 0;
            ls >> ninsts;
            if (ninsts == 0 || ninsts > (1u << 20))
                fatal("bad instruction count in program file");
            std::vector<std::uint8_t> sizes(ninsts);
            for (std::size_t i = 0; i < ninsts; ++i) {
                unsigned s = 0;
                ls >> s;
                if (s == 0 || s > 255)
                    fatal("instruction size out of range (1-255) in "
                          "program file");
                sizes[i] = static_cast<std::uint8_t>(s);
            }
            std::string term;
            ls >> term;
            if (!ls)
                fatal("truncated block line in program file");
            const BranchKind kind = parseTerminator(term);
            const BlockId id = builder.blockWithSizes(sizes);
            kindOf.push_back(kind);
            BlockId target = invalidBlock;
            if (kind == BranchKind::CondDirect ||
                kind == BranchKind::Jump || kind == BranchKind::Call) {
                ls >> target;
                if (!ls)
                    fatal("direct branch without target");
            }
            terminators.push_back({id, kind, target});
        } else if (keyword == "cond") {
            PendingCond pc;
            std::string mode;
            ls >> pc.src >> mode;
            if (mode == "bernoulli") {
                std::size_t n = 0;
                ls >> n;
                pc.behavior.kind = CondBehavior::Kind::Bernoulli;
                pc.behavior.takenProbByPhase.resize(n);
                for (std::size_t i = 0; i < n; ++i)
                    ls >> pc.behavior.takenProbByPhase[i];
            } else if (mode == "loop") {
                int backEdge = 1;
                pc.behavior.kind = CondBehavior::Kind::Loop;
                ls >> pc.behavior.tripMin >> pc.behavior.tripMax >>
                    backEdge;
                pc.behavior.takenIsBackEdge = backEdge != 0;
            } else {
                fatal("unknown cond mode '" + mode + "'");
            }
            if (!ls)
                fatal("truncated cond line in program file");
            conds.push_back(std::move(pc));
        } else if (keyword == "indirect") {
            PendingIndirect pi;
            std::string tok;
            std::size_t ntargets = 0, nphases = 0;
            ls >> pi.src >> tok >> ntargets;
            if (tok != "targets")
                fatal("malformed indirect line");
            pi.behavior.targets.resize(ntargets);
            for (std::size_t i = 0; i < ntargets; ++i)
                ls >> pi.behavior.targets[i];
            ls >> tok >> nphases;
            if (tok != "phases")
                fatal("malformed indirect line");
            pi.behavior.weightsByPhase.assign(
                nphases, std::vector<double>(ntargets));
            for (std::size_t p = 0; p < nphases; ++p)
                for (std::size_t t = 0; t < ntargets; ++t)
                    ls >> pi.behavior.weightsByPhase[p][t];
            if (!ls)
                fatal("truncated indirect line in program file");
            if (pi.src >= kindOf.size())
                fatal("indirect line references unknown block");
            pi.kind = kindOf[pi.src];
            indirects.push_back(std::move(pi));
        } else {
            fatal("unknown keyword '" + keyword + "' in program file");
        }
    }

    // Wire terminators. Calls resolve their callee from the target
    // block, which must be a function entry.
    std::vector<std::pair<BlockId, BlockId>> callSites;
    for (const PendingTerminator &t : terminators) {
        switch (t.kind) {
          case BranchKind::None:
            break;
          case BranchKind::Jump:
            builder.jumpTo(t.src, t.target);
            break;
          case BranchKind::Call:
            callSites.emplace_back(t.src, t.target);
            break;
          case BranchKind::CondDirect:
            // Behaviour attached below via condTo.
            break;
          case BranchKind::Return:
            builder.ret(t.src);
            break;
          case BranchKind::Halt:
            builder.halt(t.src);
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
            break; // attached below
        }
    }
    std::vector<std::uint8_t> hasCondBehavior(kindOf.size(), 0);
    for (const PendingCond &pc : conds) {
        // Find this block's target among the parsed terminators.
        BlockId target = invalidBlock;
        for (const PendingTerminator &t : terminators)
            if (t.src == pc.src)
                target = t.target;
        if (target == invalidBlock)
            fatal("cond behaviour for a non-conditional block");
        builder.condTo(pc.src, target, pc.behavior);
        hasCondBehavior[pc.src] = 1;
    }
    for (BlockId id = 0; id < kindOf.size(); ++id) {
        if (kindOf[id] == BranchKind::CondDirect &&
            !hasCondBehavior[id]) {
            fatal("conditional block " + std::to_string(id) +
                  " has no behaviour line");
        }
    }
    for (PendingIndirect &pi : indirects) {
        if (pi.kind == BranchKind::IndirectCall)
            builder.indirectCall(pi.src, std::move(pi.behavior));
        else
            builder.indirectJump(pi.src, std::move(pi.behavior));
    }

    // Resolve call sites: callee = the function whose entry block is
    // the recorded target. Functions are known to the builder.
    for (auto [src, target] : callSites) {
        FuncId callee = invalidFunc;
        for (FuncId f = 0; f < builder.functionCount(); ++f) {
            if (builder.functionEntry(f) == target) {
                callee = f;
                break;
            }
        }
        if (callee == invalidFunc)
            fatal("call target is not a function entry");
        builder.callTo(src, callee);
    }

    if (entry != invalidBlock)
        builder.setEntry(entry);
    if (!phases.empty())
        builder.setPhaseLengths(std::move(phases));
    return builder.build();
}

TraceWriter::TraceWriter(std::ostream &os, const Program &prog)
    : os_(os), markerValue_(prog.blocks().size())
{
    os_ << traceMagic << ' ' << prog.blocks().size() << '\n';
}

TraceWriter::~TraceWriter()
{
    finish();
}

bool
TraceWriter::onEvent(const ExecEvent &ev)
{
    RSEL_ASSERT(!finished_, "trace writer already finished");
    writeLeb128(os_, ev.block->id());
    ++events_;
    return true;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    finished_ = true;
    writeLeb128(os_, markerValue_);
}

TraceReplayer::TraceReplayer(const Program &prog, std::istream &is)
    : prog_(prog), is_(is)
{
    std::string header;
    if (!std::getline(is_, header))
        fatal("not an rsel trace file");
    std::istringstream hs(header);
    std::string magic;
    std::size_t blockCount = 0;
    hs >> magic >> blockCount;
    if (magic != traceMagic)
        fatal("not an rsel trace file");
    if (blockCount != prog_.blocks().size()) {
        fatal("trace was recorded against a different program (" +
              std::to_string(blockCount) + " blocks vs " +
              std::to_string(prog_.blocks().size()) + ")");
    }
    byteOffset_ = header.size() + 1; // header line plus its newline
}

bool
TraceReplayer::readValue(std::uint64_t &value)
{
    value = 0;
    unsigned shift = 0;
    for (;;) {
        const int c = is_.get();
        if (c == std::istream::traits_type::eof()) {
            if (shift != 0) {
                fatal("trace file cut mid-LEB128 at byte offset " +
                      std::to_string(byteOffset_) + " (after " +
                      std::to_string(eventsRead_) +
                      " complete events)");
            }
            return false;
        }
        ++byteOffset_;
        value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if ((c & 0x80) == 0)
            return true;
        shift += 7;
        if (shift >= 64) {
            fatal("oversized LEB128 value in trace file at byte "
                  "offset " +
                  std::to_string(byteOffset_));
        }
    }
}

std::uint64_t
TraceReplayer::run(std::uint64_t maxEvents, ExecutionSink &sink)
{
    std::uint64_t delivered = 0;
    while (!done_ && delivered < maxEvents) {
        std::uint64_t id = 0;
        if (!readValue(id)) {
            fatal("trace file truncated (no end-of-trace marker) at "
                  "byte offset " +
                  std::to_string(byteOffset_) + " (after " +
                  std::to_string(eventsRead_) + " events)");
        }
        if (id == prog_.blocks().size()) {
            done_ = true; // end-of-trace marker
            break;
        }
        if (id > prog_.blocks().size())
            fatal("trace references unknown block id " +
                  std::to_string(id));
        const BasicBlock &block =
            prog_.block(static_cast<BlockId>(id));

        // Reconstruct the entry annotation the way the executor
        // would have produced it: a fall-through-capable predecessor
        // whose fall-through address matches means not-taken;
        // everything else is a taken transfer.
        ExecEvent ev;
        ev.block = &block;
        if (prev_ != nullptr) {
            const bool fell =
                canFallThrough(prev_->terminator()) &&
                block.startAddr() == prev_->fallThroughAddr();
            ev.takenBranch = !fell;
            ev.branchAddr = fell ? invalidAddr : prev_->lastInstAddr();
        }
        prev_ = &block;
        ++delivered;
        ++eventsRead_;
        if (!sink.onEvent(ev))
            break;
    }
    return delivered;
}

std::uint64_t
TraceReplayer::fillBatch(EventBatch &batch, std::size_t maxEvents)
{
    batch.clear();
    while (!done_ && batch.size() < maxEvents) {
        std::uint64_t id = 0;
        if (!readValue(id)) {
            fatal("trace file truncated (no end-of-trace marker) at "
                  "byte offset " +
                  std::to_string(byteOffset_) + " (after " +
                  std::to_string(eventsRead_) + " events)");
        }
        if (id == prog_.blocks().size()) {
            done_ = true; // end-of-trace marker
            break;
        }
        if (id > prog_.blocks().size())
            fatal("trace references unknown block id " +
                  std::to_string(id));
        const BasicBlock &block =
            prog_.block(static_cast<BlockId>(id));

        // Same annotation reconstruction as run(), decoded straight
        // into the SoA stripes.
        bool taken = false;
        Addr branchAddr = invalidAddr;
        if (prev_ != nullptr) {
            const bool fell =
                canFallThrough(prev_->terminator()) &&
                block.startAddr() == prev_->fallThroughAddr();
            taken = !fell;
            branchAddr = fell ? invalidAddr : prev_->lastInstAddr();
        }
        batch.push(block.id(), taken, branchAddr);
        prev_ = &block;
        ++eventsRead_;
    }
    return batch.size();
}

std::uint64_t
TraceReplayer::runBatched(std::uint64_t maxEvents, BatchSink &sink,
                          std::size_t batchSize)
{
    RSEL_ASSERT(batchSize > 0, "batch size must be at least 1");
    EventBatch batch;
    batch.reserve(batchSize);
    std::uint64_t consumed = 0;
    while (consumed < maxEvents) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batchSize, maxEvents - consumed));
        if (fillBatch(batch, want) == 0)
            break;
        const std::size_t took = sink.onBatch(batch);
        RSEL_ASSERT(took <= batch.size(),
                    "sink consumed more events than the batch holds");
        consumed += took;
        if (took < batch.size())
            break;
    }
    return consumed;
}

} // namespace rsel
