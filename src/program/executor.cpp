#include "program/executor.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rsel {

Executor::Executor(const Program &prog, std::uint64_t seed)
    : prog_(prog), rng_(seed),
      loopRemaining_(prog.blocks().size(), loopUnarmed),
      takenPtr_(prog.blocks().size(), nullptr),
      fallPtr_(prog.blocks().size(), nullptr),
      condPtr_(prog.blocks().size(), nullptr),
      indirectPtr_(prog.blocks().size(), nullptr),
      curProb_(prog.blocks().size(), 0.0),
      curWeights_(prog.blocks().size(), nullptr),
      current_(&prog.block(prog.entry()))
{
    // Resolve the static successor addresses to block pointers and
    // the behaviour annotations to id-indexed arrays once, so the
    // per-event path never touches an address or behaviour hash.
    for (const BasicBlock &b : prog_.blocks()) {
        if (b.takenTarget() != invalidAddr)
            takenPtr_[b.id()] = prog_.blockAtAddr(b.takenTarget());
        if (b.fallThroughAddr() != invalidAddr)
            fallPtr_[b.id()] = prog_.blockAtAddr(b.fallThroughAddr());
        if (b.terminator() == BranchKind::CondDirect &&
            prog_.hasCondBehavior(b.id())) {
            condPtr_[b.id()] = &prog_.condBehavior(b.id());
            condBlocks_.push_back(b.id());
        }
        if ((b.terminator() == BranchKind::IndirectCall ||
             b.terminator() == BranchKind::IndirectJump) &&
            prog_.hasIndirectBehavior(b.id())) {
            indirectPtr_[b.id()] = &prog_.indirectBehavior(b.id());
            indirectBlocks_.push_back(b.id());
        }
    }
    hasPhases_ = !prog_.phaseLengths().empty();
    phaseLenCur_ = hasPhases_ ? prog_.phaseLengths()[0] : 0;
    rebindPhase();
}

void
Executor::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    loopRemaining_.assign(prog_.blocks().size(), loopUnarmed);
    callStack_.clear();
    current_ = &prog_.block(prog_.entry());
    pendingTaken_ = false;
    pendingBranchAddr_ = invalidAddr;
    finished_ = false;
    executedBlocks_ = 0;
    phaseIdx_ = 0;
    phaseCounter_ = 0;
    phaseLenCur_ = hasPhases_ ? prog_.phaseLengths()[0] : 0;
    rebindPhase();
}

void
Executor::rebindPhase()
{
    for (const BlockId id : condBlocks_) {
        const CondBehavior &cb = *condPtr_[id];
        if (cb.kind == CondBehavior::Kind::Bernoulli) {
            const auto &probs = cb.takenProbByPhase;
            curProb_[id] = probs[phaseIdx_ % probs.size()];
        }
    }
    for (const BlockId id : indirectBlocks_) {
        const IndirectBehavior &ib = *indirectPtr_[id];
        curWeights_[id] =
            &ib.weightsByPhase[phaseIdx_ % ib.weightsByPhase.size()];
    }
}

void
Executor::advancePhase()
{
    if (!hasPhases_)
        return;
    if (++phaseCounter_ >= phaseLenCur_) {
        phaseCounter_ = 0;
        const auto &lengths = prog_.phaseLengths();
        phaseIdx_ = phaseIdx_ + 1 == lengths.size() ? 0 : phaseIdx_ + 1;
        phaseLenCur_ = lengths[phaseIdx_];
        rebindPhase();
    }
}

const BasicBlock *
Executor::nextBlock(const BasicBlock &b, bool &taken)
{
    taken = true; // most cases transfer control; overridden below
    switch (b.terminator()) {
      case BranchKind::None: {
        taken = false;
        return fallPtr_[b.id()];
      }
      case BranchKind::CondDirect: {
        RSEL_ASSERT(condPtr_[b.id()] != nullptr,
                    "conditional block executed without a behaviour");
        const CondBehavior &cb = *condPtr_[b.id()];
        bool takeBranch;
        if (cb.kind == CondBehavior::Kind::Bernoulli) {
            takeBranch = rng_.nextBool(curProb_[b.id()]);
        } else {
            // Loop latch: arm with a fresh trip count when entered
            // from outside; count down back-edge executions.
            std::uint64_t &remaining = loopRemaining_[b.id()];
            if (remaining == loopUnarmed)
                remaining = rng_.nextRange(cb.tripMin, cb.tripMax) - 1;
            const bool backEdge = remaining > 0;
            if (backEdge)
                --remaining;
            else
                remaining = loopUnarmed;
            takeBranch = cb.takenIsBackEdge ? backEdge : !backEdge;
        }
        if (takeBranch)
            return takenPtr_[b.id()];
        taken = false;
        return fallPtr_[b.id()];
      }
      case BranchKind::Jump:
        return takenPtr_[b.id()];
      case BranchKind::Call:
      case BranchKind::IndirectCall: {
        RSEL_ASSERT(callStack_.size() < maxCallDepth,
                    "guest call stack overflow");
        callStack_.push_back(fallPtr_[b.id()]);
        if (b.terminator() == BranchKind::Call)
            return takenPtr_[b.id()];
        RSEL_ASSERT(indirectPtr_[b.id()] != nullptr,
                    "indirect block executed without a behaviour");
        const IndirectBehavior &ib = *indirectPtr_[b.id()];
        const std::size_t idx = rng_.nextWeighted(*curWeights_[b.id()]);
        return &prog_.block(ib.targets[idx]);
      }
      case BranchKind::IndirectJump: {
        RSEL_ASSERT(indirectPtr_[b.id()] != nullptr,
                    "indirect block executed without a behaviour");
        const IndirectBehavior &ib = *indirectPtr_[b.id()];
        const std::size_t idx = rng_.nextWeighted(*curWeights_[b.id()]);
        return &prog_.block(ib.targets[idx]);
      }
      case BranchKind::Return: {
        if (callStack_.empty())
            return nullptr; // returned past the entry frame: done
        const BasicBlock *ret = callStack_.back();
        callStack_.pop_back();
        RSEL_ASSERT(ret != nullptr, "return address is not a block");
        return ret;
      }
      case BranchKind::Halt:
        return nullptr;
    }
    return nullptr;
}

std::uint64_t
Executor::run(std::uint64_t maxEvents, ExecutionSink &sink)
{
    std::uint64_t delivered = 0;
    while (!finished_ && delivered < maxEvents) {
        ExecEvent ev;
        ev.block = current_;
        ev.takenBranch = pendingTaken_;
        ev.branchAddr = pendingBranchAddr_;

        ++delivered;
        ++executedBlocks_;
        advancePhase();

        const bool keepGoing = sink.onEvent(ev);

        // Resolve the successor before honouring an early stop so
        // execution can resume exactly where it left off.
        bool taken = false;
        const BasicBlock *next = nextBlock(*current_, taken);
        if (next == nullptr) {
            finished_ = true;
        } else {
            pendingTaken_ = taken;
            pendingBranchAddr_ = taken ? current_->lastInstAddr()
                                       : invalidAddr;
            current_ = next;
        }
        if (!keepGoing)
            break;
    }
    return delivered;
}

std::uint64_t
Executor::fillBatch(EventBatch &batch, std::size_t maxEvents)
{
    batch.clear();
    if (finished_ || maxEvents == 0)
        return 0;
    // Pre-size the stripes once and fill through raw pointers: the
    // loop then writes each event with three plain stores instead of
    // three push_backs (capacity check + size bump apiece).
    batch.blockIds.resize(maxEvents);
    batch.takenFlags.resize(maxEvents);
    batch.branchAddrs.resize(maxEvents);
    BlockId *const ids = batch.blockIds.data();
    std::uint8_t *const flags = batch.takenFlags.data();
    Addr *const addrs = batch.branchAddrs.data();

    std::size_t count = 0;
    while (count < maxEvents) {
        // The same per-event sequence as run(): record the event,
        // advance the phase, then resolve the successor. Only the
        // delivery differs, so the RNG is consumed identically and
        // the two paths produce byte-identical streams.
        ids[count] = current_->id();
        flags[count] = pendingTaken_ ? 1 : 0;
        addrs[count] = pendingBranchAddr_;
        ++count;
        ++executedBlocks_;
        advancePhase();

        bool taken = false;
        const BasicBlock *next = nextBlock(*current_, taken);
        if (next == nullptr) {
            finished_ = true;
            break;
        }
        pendingTaken_ = taken;
        pendingBranchAddr_ = taken ? current_->lastInstAddr()
                                   : invalidAddr;
        current_ = next;
    }
    batch.blockIds.resize(count);
    batch.takenFlags.resize(count);
    batch.branchAddrs.resize(count);
    return count;
}

std::uint64_t
Executor::runBatched(std::uint64_t maxEvents, BatchSink &sink,
                     std::size_t batchSize)
{
    RSEL_ASSERT(batchSize > 0, "batch size must be at least 1");
    EventBatch batch;
    batch.reserve(batchSize);
    std::uint64_t consumed = 0;
    while (consumed < maxEvents) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(batchSize, maxEvents - consumed));
        if (fillBatch(batch, want) == 0)
            break;
        const std::size_t took = sink.onBatch(batch);
        RSEL_ASSERT(took <= batch.size(),
                    "sink consumed more events than the batch holds");
        consumed += took;
        if (took < batch.size())
            break;
    }
    return consumed;
}

} // namespace rsel
