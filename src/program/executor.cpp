#include "program/executor.hpp"

#include "support/error.hpp"

namespace rsel {

Executor::Executor(const Program &prog, std::uint64_t seed)
    : prog_(prog), rng_(seed),
      loopRemaining_(prog.blocks().size(), loopUnarmed),
      current_(&prog.block(prog.entry()))
{}

void
Executor::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    loopRemaining_.assign(prog_.blocks().size(), loopUnarmed);
    callStack_.clear();
    current_ = &prog_.block(prog_.entry());
    pendingTaken_ = false;
    pendingBranchAddr_ = invalidAddr;
    finished_ = false;
    executedBlocks_ = 0;
    phaseIdx_ = 0;
    phaseCounter_ = 0;
}

double
Executor::takenProb(const CondBehavior &cb) const
{
    const auto &probs = cb.takenProbByPhase;
    return probs[phaseIdx_ % probs.size()];
}

void
Executor::advancePhase()
{
    const auto &lengths = prog_.phaseLengths();
    if (lengths.empty())
        return;
    if (++phaseCounter_ >= lengths[phaseIdx_ % lengths.size()]) {
        phaseCounter_ = 0;
        phaseIdx_ = (phaseIdx_ + 1) % lengths.size();
    }
}

const BasicBlock *
Executor::nextBlock(const BasicBlock &b, bool &taken)
{
    taken = true; // most cases transfer control; overridden below
    switch (b.terminator()) {
      case BranchKind::None: {
        taken = false;
        return prog_.blockAtAddr(b.fallThroughAddr());
      }
      case BranchKind::CondDirect: {
        const CondBehavior &cb = prog_.condBehavior(b.id());
        bool takeBranch;
        if (cb.kind == CondBehavior::Kind::Bernoulli) {
            takeBranch = rng_.nextBool(takenProb(cb));
        } else {
            // Loop latch: arm with a fresh trip count when entered
            // from outside; count down back-edge executions.
            std::uint64_t &remaining = loopRemaining_[b.id()];
            if (remaining == loopUnarmed)
                remaining = rng_.nextRange(cb.tripMin, cb.tripMax) - 1;
            const bool backEdge = remaining > 0;
            if (backEdge)
                --remaining;
            else
                remaining = loopUnarmed;
            takeBranch = cb.takenIsBackEdge ? backEdge : !backEdge;
        }
        if (takeBranch)
            return prog_.blockAtAddr(b.takenTarget());
        taken = false;
        return prog_.blockAtAddr(b.fallThroughAddr());
      }
      case BranchKind::Jump:
        return prog_.blockAtAddr(b.takenTarget());
      case BranchKind::Call:
      case BranchKind::IndirectCall: {
        RSEL_ASSERT(callStack_.size() < maxCallDepth,
                    "guest call stack overflow");
        callStack_.push_back(b.fallThroughAddr());
        if (b.terminator() == BranchKind::Call)
            return prog_.blockAtAddr(b.takenTarget());
        const IndirectBehavior &ib = prog_.indirectBehavior(b.id());
        const auto &weights =
            ib.weightsByPhase[phaseIdx_ % ib.weightsByPhase.size()];
        const std::size_t idx = rng_.nextWeighted(weights);
        return &prog_.block(ib.targets[idx]);
      }
      case BranchKind::IndirectJump: {
        const IndirectBehavior &ib = prog_.indirectBehavior(b.id());
        const auto &weights =
            ib.weightsByPhase[phaseIdx_ % ib.weightsByPhase.size()];
        const std::size_t idx = rng_.nextWeighted(weights);
        return &prog_.block(ib.targets[idx]);
      }
      case BranchKind::Return: {
        if (callStack_.empty())
            return nullptr; // returned past the entry frame: done
        const Addr retAddr = callStack_.back();
        callStack_.pop_back();
        const BasicBlock *ret = prog_.blockAtAddr(retAddr);
        RSEL_ASSERT(ret != nullptr, "return address is not a block");
        return ret;
      }
      case BranchKind::Halt:
        return nullptr;
    }
    return nullptr;
}

std::uint64_t
Executor::run(std::uint64_t maxEvents, ExecutionSink &sink)
{
    std::uint64_t delivered = 0;
    while (!finished_ && delivered < maxEvents) {
        ExecEvent ev;
        ev.block = current_;
        ev.takenBranch = pendingTaken_;
        ev.branchAddr = pendingBranchAddr_;

        ++delivered;
        ++executedBlocks_;
        advancePhase();

        const bool keepGoing = sink.onEvent(ev);

        // Resolve the successor before honouring an early stop so
        // execution can resume exactly where it left off.
        bool taken = false;
        const BasicBlock *next = nextBlock(*current_, taken);
        if (next == nullptr) {
            finished_ = true;
        } else {
            pendingTaken_ = taken;
            pendingBranchAddr_ = taken ? current_->lastInstAddr()
                                       : invalidAddr;
            current_ = next;
        }
        if (!keepGoing)
            break;
    }
    return delivered;
}

} // namespace rsel
