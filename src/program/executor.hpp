/**
 * @file
 * Architectural executor: synthesizes the dynamic basic-block stream.
 *
 * Plays the role Pin plays in the paper's framework — it reports the
 * sequence of executed basic blocks (and whether each was entered by
 * a taken branch) to a sink. Deterministic for a given seed.
 */

#ifndef RSEL_PROGRAM_EXECUTOR_HPP
#define RSEL_PROGRAM_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "program/program.hpp"
#include "support/random.hpp"

namespace rsel {

/** One dynamic event: a basic block beginning execution. */
struct ExecEvent
{
    /** The block now executing. */
    const BasicBlock *block = nullptr;
    /** True if the block was entered via a taken control transfer. */
    bool takenBranch = false;
    /**
     * Address of the transferring branch instruction (the last
     * instruction of the previous block); valid iff takenBranch.
     */
    Addr branchAddr = invalidAddr;
};

/** Consumer of the dynamic block stream. */
class ExecutionSink
{
  public:
    virtual ~ExecutionSink() = default;

    /**
     * Called once per executed basic block, in execution order.
     * @return false to stop execution early.
     */
    virtual bool onEvent(const ExecEvent &event) = 0;
};

/**
 * Interprets a Program, resolving branch behaviours with a seeded
 * RNG, and streams ExecEvents to a sink. Maintains loop trip
 * counters, the call stack, and the phase schedule across run()
 * calls, so execution can be consumed incrementally.
 */
class Executor
{
  public:
    /**
     * @param prog program to execute; must outlive the executor.
     * @param seed RNG seed for branch resolution.
     */
    Executor(const Program &prog, std::uint64_t seed = 1);

    /**
     * Execute up to `maxEvents` further blocks.
     * @return the number of events delivered. Fewer than requested
     *         means the program halted, returned past its entry
     *         frame, or the sink stopped it.
     */
    std::uint64_t run(std::uint64_t maxEvents, ExecutionSink &sink);

    /** True once the program has halted (run() will deliver 0). */
    bool finished() const { return finished_; }

    /** Blocks executed so far across all run() calls. */
    std::uint64_t executedBlocks() const { return executedBlocks_; }

    /** Current phase index (for tests). */
    std::size_t currentPhase() const { return phaseIdx_; }

    /** Restart execution from the program entry with a fresh seed. */
    void reset(std::uint64_t seed);

  private:
    /** Resolve the successor of `b`; may push/pop the call stack. */
    const BasicBlock *nextBlock(const BasicBlock &b, bool &taken);

    /** Advance the phase schedule by one executed block. */
    void advancePhase();

    /** Phase-indexed probability lookup. */
    double takenProb(const CondBehavior &cb) const;

    static constexpr std::uint64_t loopUnarmed =
        std::numeric_limits<std::uint64_t>::max();
    static constexpr std::size_t maxCallDepth = 1u << 20;

    const Program &prog_;
    Rng rng_;
    std::vector<std::uint64_t> loopRemaining_;
    std::vector<Addr> callStack_;
    const BasicBlock *current_;
    bool pendingTaken_ = false;
    Addr pendingBranchAddr_ = invalidAddr;
    bool finished_ = false;
    std::uint64_t executedBlocks_ = 0;
    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseCounter_ = 0;
};

} // namespace rsel

#endif // RSEL_PROGRAM_EXECUTOR_HPP
