/**
 * @file
 * Architectural executor: synthesizes the dynamic basic-block stream.
 *
 * Plays the role Pin plays in the paper's framework — it reports the
 * sequence of executed basic blocks (and whether each was entered by
 * a taken branch) to a sink. Deterministic for a given seed.
 */

#ifndef RSEL_PROGRAM_EXECUTOR_HPP
#define RSEL_PROGRAM_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "program/program.hpp"
#include "support/random.hpp"

namespace rsel {

/** One dynamic event: a basic block beginning execution. */
struct ExecEvent
{
    /** The block now executing. */
    const BasicBlock *block = nullptr;
    /** True if the block was entered via a taken control transfer. */
    bool takenBranch = false;
    /**
     * Address of the transferring branch instruction (the last
     * instruction of the previous block); valid iff takenBranch.
     */
    Addr branchAddr = invalidAddr;
};

/** Consumer of the dynamic block stream. */
class ExecutionSink
{
  public:
    virtual ~ExecutionSink() = default;

    /**
     * Called once per executed basic block, in execution order.
     * @return false to stop execution early.
     */
    virtual bool onEvent(const ExecEvent &event) = 0;
};

/**
 * A batch of dynamic block events in structure-of-arrays layout:
 * one densely packed stripe per field, so a consumer loop touches
 * only the stripes it needs and the producer never materializes
 * ExecEvent objects. The three stripes are parallel; entry i of each
 * describes the i-th event of the batch.
 */
struct EventBatch
{
    /** Id of the block beginning execution. */
    std::vector<BlockId> blockIds;
    /** 1 if the block was entered via a taken transfer, else 0. */
    std::vector<std::uint8_t> takenFlags;
    /** Transferring branch address; valid iff takenFlags[i]. */
    std::vector<Addr> branchAddrs;

    /** Events currently in the batch. */
    std::size_t size() const { return blockIds.size(); }

    /** True when the batch holds no events. */
    bool empty() const { return blockIds.empty(); }

    /** Drop all events, keeping the stripes' capacity. */
    void
    clear()
    {
        blockIds.clear();
        takenFlags.clear();
        branchAddrs.clear();
    }

    /** Pre-size every stripe for `n` events. */
    void
    reserve(std::size_t n)
    {
        blockIds.reserve(n);
        takenFlags.reserve(n);
        branchAddrs.reserve(n);
    }

    /** Append one event. */
    void
    push(BlockId id, bool taken, Addr branchAddr)
    {
        blockIds.push_back(id);
        takenFlags.push_back(taken ? 1 : 0);
        branchAddrs.push_back(branchAddr);
    }
};

/** Default batch granularity: big enough to amortize the virtual
 *  dispatch, small enough that a batch's stripes stay in L1. */
constexpr std::size_t defaultBatchSize = 4096;

/**
 * Consumer of batched dynamic block streams. The batched counterpart
 * of ExecutionSink: one virtual call per EventBatch instead of one
 * per block.
 */
class BatchSink
{
  public:
    virtual ~BatchSink() = default;

    /**
     * Consume a batch. @return the number of events consumed;
     * returning fewer than batch.size() stops the run. The producer
     * has already advanced past the whole batch, so — unlike
     * ExecutionSink::onEvent — the unconsumed tail is not replayed
     * by a later call.
     */
    virtual std::size_t onBatch(const EventBatch &batch) = 0;
};

/**
 * Interprets a Program, resolving branch behaviours with a seeded
 * RNG, and streams ExecEvents to a sink. Maintains loop trip
 * counters, the call stack, and the phase schedule across run()
 * calls, so execution can be consumed incrementally.
 */
class Executor
{
  public:
    /**
     * @param prog program to execute; must outlive the executor.
     * @param seed RNG seed for branch resolution.
     */
    Executor(const Program &prog, std::uint64_t seed = 1);

    /**
     * Execute up to `maxEvents` further blocks.
     * @return the number of events delivered. Fewer than requested
     *         means the program halted, returned past its entry
     *         frame, or the sink stopped it.
     */
    std::uint64_t run(std::uint64_t maxEvents, ExecutionSink &sink);

    /**
     * Execute up to `maxEvents` further blocks into `batch`
     * (cleared first). The produced event stream is identical to
     * what run() would deliver: both paths share the successor
     * resolution and consume the RNG in the same order.
     * @return the number of events filled; fewer than requested
     *         means the program halted or returned past its entry
     *         frame.
     */
    std::uint64_t fillBatch(EventBatch &batch, std::size_t maxEvents);

    /**
     * Execute up to `maxEvents` blocks, delivering them to `sink` in
     * batches of at most `batchSize` events (one internal buffer is
     * reused across batches). @return events consumed by the sink.
     * If the sink stops mid-batch, events past the stop point were
     * already produced and are dropped (see BatchSink::onBatch);
     * executedBlocks() counts produced events.
     */
    std::uint64_t runBatched(std::uint64_t maxEvents, BatchSink &sink,
                             std::size_t batchSize = defaultBatchSize);

    /** True once the program has halted (run() will deliver 0). */
    bool finished() const { return finished_; }

    /** Blocks executed so far across all run() calls. */
    std::uint64_t executedBlocks() const { return executedBlocks_; }

    /** Current phase index (for tests). */
    std::size_t currentPhase() const { return phaseIdx_; }

    /** Restart execution from the program entry with a fresh seed. */
    void reset(std::uint64_t seed);

  private:
    /** Resolve the successor of `b`; may push/pop the call stack. */
    const BasicBlock *nextBlock(const BasicBlock &b, bool &taken);

    /** Advance the phase schedule by one executed block. */
    void advancePhase();

    /**
     * Re-resolve the phase-dependent behaviour tables for the
     * current phaseIdx_. Runs once per phase switch (and at
     * construction/reset), so the per-event path never computes a
     * phase modulus or touches the behaviour hash maps.
     */
    void rebindPhase();

    static constexpr std::uint64_t loopUnarmed =
        std::numeric_limits<std::uint64_t>::max();
    /**
     * Tripwire against unbounded guest recursion. Every call pushes
     * exactly one event, and the fuzz spec clamps runs to 5M events,
     * so a legitimate run can never reach this depth — hitting it
     * means an executor bug, not a deep program.
     */
    static constexpr std::size_t maxCallDepth = 1u << 23;

    const Program &prog_;
    Rng rng_;
    std::vector<std::uint64_t> loopRemaining_;
    /**
     * Successor blocks resolved once per static block at
     * construction, replacing the per-event address-hash lookups:
     * takenPtr_[id] is the block at the taken target, fallPtr_[id]
     * the block at the fall-through address (nullptr where the
     * address is invalid or not a block start).
     */
    std::vector<const BasicBlock *> takenPtr_;
    std::vector<const BasicBlock *> fallPtr_;
    /**
     * Behaviour annotations re-homed from the Program's hash maps
     * into id-indexed arrays (nullptr where absent), plus the ids
     * that carry each kind — the worklists rebindPhase() walks.
     */
    std::vector<const CondBehavior *> condPtr_;
    std::vector<const IndirectBehavior *> indirectPtr_;
    std::vector<BlockId> condBlocks_;
    std::vector<BlockId> indirectBlocks_;
    /** Phase-resolved Bernoulli taken probability per block. */
    std::vector<double> curProb_;
    /** Phase-resolved indirect weight row per block. */
    std::vector<const std::vector<double> *> curWeights_;
    /** Length of the current phase; meaningless without phases. */
    std::uint64_t phaseLenCur_ = 0;
    /** False when the program has a single unbounded phase. */
    bool hasPhases_ = false;
    /** Return targets as block pointers (resolved at call time). */
    std::vector<const BasicBlock *> callStack_;
    const BasicBlock *current_;
    bool pendingTaken_ = false;
    Addr pendingBranchAddr_ = invalidAddr;
    bool finished_ = false;
    std::uint64_t executedBlocks_ = 0;
    std::size_t phaseIdx_ = 0;
    std::uint64_t phaseCounter_ = 0;
};

} // namespace rsel

#endif // RSEL_PROGRAM_EXECUTOR_HPP
