/**
 * @file
 * Dynamic-behaviour annotations for conditional and indirect branches.
 *
 * A Program is a static CFG; behaviours describe how its branches
 * resolve at run time. The Executor consults them to synthesize a
 * realistic dynamic basic-block stream (the paper's Pin-collected
 * stream). Behaviours may vary by execution phase, modelling the
 * phase behaviour the paper cites from Sherwood et al.
 */

#ifndef RSEL_PROGRAM_BEHAVIOR_HPP
#define RSEL_PROGRAM_BEHAVIOR_HPP

#include <cstdint>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/**
 * Behaviour of a conditional branch.
 *
 * Two models:
 *  - `Bernoulli`: each execution takes the branch independently with
 *    a (possibly phase-dependent) probability. Probability near 0 or
 *    1 models a biased branch; near 0.5 an unbiased branch (paper
 *    Figure 4).
 *  - `Loop`: the block is a loop latch. On each entry to the loop a
 *    trip count is drawn uniformly from [tripMin, tripMax]; the
 *    branch resolves toward the back edge until the trip count is
 *    exhausted, then exits and re-arms.
 */
struct CondBehavior
{
    enum class Kind : std::uint8_t { Bernoulli, Loop };

    Kind kind = Kind::Bernoulli;

    /**
     * Bernoulli: probability the branch is taken, one entry per
     * phase (indexed modulo size). Must be non-empty for Bernoulli.
     */
    std::vector<double> takenProbByPhase;

    /** Loop: minimum trip count (>= 1). */
    std::uint32_t tripMin = 1;
    /** Loop: maximum trip count (>= tripMin). */
    std::uint32_t tripMax = 1;
    /**
     * Loop: if true the taken direction is the back edge (trip-1
     * taken executions then one not-taken exit); if false the
     * fall-through is the back edge and the exit is taken.
     */
    bool takenIsBackEdge = true;

    /** Convenience constructor for a fixed-probability branch. */
    static CondBehavior bernoulli(double taken_prob);

    /** Convenience constructor for a phase-varying branch. */
    static CondBehavior phased(std::vector<double> taken_prob_by_phase);

    /** Convenience constructor for a loop latch. */
    static CondBehavior loop(std::uint32_t trip_min,
                             std::uint32_t trip_max,
                             bool taken_is_back_edge = true);
};

/**
 * Behaviour of an indirect jump or call: a weighted set of targets,
 * with optional per-phase weights (weightsByPhase[phase][targetIdx],
 * phase indexed modulo the outer size).
 */
struct IndirectBehavior
{
    /** Candidate target blocks. */
    std::vector<BlockId> targets;
    /** Per-phase weights; each inner vector matches targets.size(). */
    std::vector<std::vector<double>> weightsByPhase;

    /** Convenience constructor with a single phase. */
    static IndirectBehavior weighted(std::vector<BlockId> targets,
                                     std::vector<double> weights);
};

} // namespace rsel

#endif // RSEL_PROGRAM_BEHAVIOR_HPP
