/**
 * @file
 * Fluent construction of synthetic guest programs.
 *
 * Usage pattern:
 * @code
 *     ProgramBuilder b(42);
 *     FuncId main = b.beginFunction("main");
 *     BlockId head = b.block(4);
 *     BlockId body = b.block(6);
 *     BlockId latch = b.block(2);
 *     b.loopTo(latch, head, 100, 200);
 *     b.setEntry(head);
 *     Program p = b.build();
 * @endcode
 *
 * Blocks are laid out in creation order; a block's fall-through
 * successor is the next block created in the same function. Function
 * creation order fixes the address order, which is what makes calls
 * and jumps forward or backward (significant for NET and LEI).
 */

#ifndef RSEL_PROGRAM_PROGRAM_BUILDER_HPP
#define RSEL_PROGRAM_PROGRAM_BUILDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hpp"
#include "support/random.hpp"

namespace rsel {

/** Builder for Program instances. Single-shot: build() consumes it. */
class ProgramBuilder
{
  public:
    /**
     * @param seed     seed for instruction-size synthesis.
     * @param baseAddr address at which the first function is placed.
     */
    explicit ProgramBuilder(std::uint64_t seed = 1,
                            Addr baseAddr = 0x1000);

    /** Begin a new function; subsequent blocks belong to it. */
    FuncId beginFunction(const std::string &name);

    /**
     * Create a block with `ninsts` instructions in the current
     * function. The terminator defaults to fall-through (None).
     */
    BlockId block(unsigned ninsts);

    /**
     * Create a block with explicit instruction sizes (used by the
     * program loader to round-trip layouts exactly).
     */
    BlockId blockWithSizes(const std::vector<std::uint8_t> &sizes);

    /** Make `src` a conditional branch to `target`. */
    void condTo(BlockId src, BlockId target, CondBehavior behavior);

    /**
     * Make `src` a loop latch conditionally branching back to
     * `head`; trips drawn uniformly from [tripMin, tripMax].
     */
    void loopTo(BlockId src, BlockId head, std::uint32_t trip_min,
                std::uint32_t trip_max);

    /** Make `src` an unconditional jump to `target`. */
    void jumpTo(BlockId src, BlockId target);

    /** Make `src` a direct call to function `callee`. */
    void callTo(BlockId src, FuncId callee);

    /**
     * Make `src` a direct call whose target is the *block* `target`
     * rather than a function entry. Only the verifier self-tests
     * want this (a well-formed program never calls mid-function);
     * it exists so the call-graph-consistency planted bug is
     * expressible at all.
     */
    void callToBlock(BlockId src, BlockId target);

    /** Make `src` an indirect jump resolved by `behavior`. */
    void indirectJump(BlockId src, IndirectBehavior behavior);

    /** Make `src` an indirect call resolved by `behavior`. */
    void indirectCall(BlockId src, IndirectBehavior behavior);

    /** Make `src` a return. */
    void ret(BlockId src);

    /** Make `src` halt the program. */
    void halt(BlockId src);

    /** Entry block of an already-created function. */
    BlockId functionEntry(FuncId func) const;

    /** Number of functions created so far. */
    std::size_t functionCount() const { return functions_.size(); }

    /** Set the program entry block. */
    void setEntry(BlockId entry);

    /** Set phase lengths (executed blocks per phase; cycled). */
    void setPhaseLengths(std::vector<std::uint64_t> lengths);

    /**
     * Finalize: assign addresses, resolve block targets, validate
     * fall-through structure. @throws FatalError on inconsistency.
     */
    Program build();

  private:
    struct PendingBlock
    {
        FuncId func;
        unsigned ninsts;
        BranchKind terminator = BranchKind::None;
        BlockId target = invalidBlock; ///< block-id form of takenTarget
        FuncId callee = invalidFunc;
        /** Explicit instruction sizes (empty = synthesized). */
        std::vector<std::uint8_t> sizes;
    };

    PendingBlock &pending(BlockId id);
    void setTerminator(BlockId src, BranchKind kind, BlockId target,
                       FuncId callee);

    Rng rng_;
    Addr baseAddr_;
    std::vector<PendingBlock> pendings_;
    std::vector<Function> functions_;
    std::unordered_map<BlockId, CondBehavior> condBehaviors_;
    std::unordered_map<BlockId, IndirectBehavior> indirectBehaviors_;
    std::vector<std::uint64_t> phaseLengths_;
    BlockId entry_ = invalidBlock;
    bool built_ = false;
};

} // namespace rsel

#endif // RSEL_PROGRAM_PROGRAM_BUILDER_HPP
