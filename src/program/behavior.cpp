#include "program/behavior.hpp"

#include "support/error.hpp"

namespace rsel {

CondBehavior
CondBehavior::bernoulli(double taken_prob)
{
    RSEL_ASSERT(taken_prob >= 0.0 && taken_prob <= 1.0,
                "probability must be in [0,1]");
    CondBehavior b;
    b.kind = Kind::Bernoulli;
    b.takenProbByPhase = {taken_prob};
    return b;
}

CondBehavior
CondBehavior::phased(std::vector<double> taken_prob_by_phase)
{
    RSEL_ASSERT(!taken_prob_by_phase.empty(),
                "phased behaviour needs >= 1 probability");
    CondBehavior b;
    b.kind = Kind::Bernoulli;
    b.takenProbByPhase = std::move(taken_prob_by_phase);
    return b;
}

CondBehavior
CondBehavior::loop(std::uint32_t trip_min, std::uint32_t trip_max,
                   bool taken_is_back_edge)
{
    RSEL_ASSERT(trip_min >= 1, "loop trip count must be >= 1");
    RSEL_ASSERT(trip_min <= trip_max, "tripMin must be <= tripMax");
    CondBehavior b;
    b.kind = Kind::Loop;
    b.tripMin = trip_min;
    b.tripMax = trip_max;
    b.takenIsBackEdge = taken_is_back_edge;
    return b;
}

IndirectBehavior
IndirectBehavior::weighted(std::vector<BlockId> targets,
                           std::vector<double> weights)
{
    RSEL_ASSERT(!targets.empty(), "indirect branch needs >= 1 target");
    RSEL_ASSERT(targets.size() == weights.size(),
                "weights must match targets");
    IndirectBehavior b;
    b.targets = std::move(targets);
    b.weightsByPhase = {std::move(weights)};
    return b;
}

} // namespace rsel
