/**
 * @file
 * Instruction-cache model over the code-cache layout.
 *
 * The paper's central motivation for better region selection is
 * instruction-fetch locality: "Separation degrades performance
 * because it reduces locality of execution — and therefore
 * instruction cache performance — as control jumps between distant
 * traces." Region transitions are the paper's proxy; this model
 * measures the effect directly. Regions are laid out contiguously
 * in the code cache in selection order (each trailing its exit
 * stubs, as DynamoRIO does), and every instruction fetched from the
 * cache is run through a set-associative I-cache.
 *
 * The default geometry (4 KiB, 2-way, 64-byte lines) is scaled down
 * ~8x from a typical 32 KiB L1I to match the synthetic workloads'
 * ~100x-smaller code footprints; benches can sweep it.
 */

#ifndef RSEL_RUNTIME_ICACHE_HPP
#define RSEL_RUNTIME_ICACHE_HPP

#include <cstdint>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/** Geometry of the modelled instruction cache. */
struct ICacheConfig
{
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 4096;
    /** Line size in bytes. */
    std::uint32_t lineBytes = 64;
    /** Associativity (ways per set). */
    std::uint32_t ways = 2;
};

/** A set-associative, LRU instruction cache fed by byte ranges. */
class ICacheModel
{
  public:
    explicit ICacheModel(ICacheConfig cfg = {});

    /**
     * Fetch `bytes` bytes starting at `addr`: one access per line
     * touched. @return the number of misses incurred. Defined inline
     * — it runs once per cached-block event, and the line/set math
     * reduces to shifts (geometry is asserted power-of-two).
     */
    std::uint32_t
    fetchRange(Addr addr, std::uint32_t bytes)
    {
        if (bytes == 0)
            return 0;
        const std::uint64_t first = addr >> lineShift_;
        const std::uint64_t last = (addr + bytes - 1) >> lineShift_;
        std::uint32_t missCount = 0;
        for (std::uint64_t line = first; line <= last; ++line)
            missCount += accessLine(line) ? 1 : 0;
        return missCount;
    }

    /** Line accesses so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** Line misses so far. */
    std::uint64_t misses() const { return misses_; }

    /** Miss rate in [0, 1]; 0 when nothing was fetched. */
    double missRate() const;

    /** The geometry in use. */
    const ICacheConfig &config() const { return cfg_; }

  private:
    /** One line access. @return true on miss. */
    bool
    accessLine(std::uint64_t lineAddr)
    {
        ++accesses_;
        ++clock_;
        if (lineAddr == lastLine_) {
            // Same line as the previous access: it still sits where
            // we left it (only accesses mutate the arrays, and the
            // previous one stamped this way most-recently-used, so no
            // later eviction could have picked it). Refresh the stamp
            // exactly as the scan below would.
            stamps_[lastWay_] = clock_;
            return false;
        }
        const std::uint32_t set =
            static_cast<std::uint32_t>(lineAddr & (sets_ - 1));
        const std::uint64_t tag = lineAddr >> setShift_;
        const std::size_t base =
            static_cast<std::size_t>(set) * cfg_.ways;

        std::size_t victim = base;
        for (std::size_t w = base; w < base + cfg_.ways; ++w) {
            if (tags_[w] == tag) {
                stamps_[w] = clock_;
                lastLine_ = lineAddr;
                lastWay_ = w;
                return false; // hit
            }
            if (stamps_[w] < stamps_[victim])
                victim = w;
        }
        ++misses_;
        tags_[victim] = tag;
        stamps_[victim] = clock_;
        lastLine_ = lineAddr;
        lastWay_ = victim;
        return true;
    }

    ICacheConfig cfg_;
    std::uint32_t sets_;
    /** log2(lineBytes) / log2(sets_): the divisions as shifts. */
    std::uint32_t lineShift_ = 0;
    std::uint32_t setShift_ = 0;
    /** tags_[set * ways + way]; ~0 = invalid. */
    std::vector<std::uint64_t> tags_;
    /** LRU stamps parallel to tags_. */
    std::vector<std::uint64_t> stamps_;
    /**
     * MRU shortcut: the line of the previous access and the way it
     * occupies. An access repeating the previous line is a
     * guaranteed hit (nothing was evicted in between) and only
     * refreshes the LRU stamp — identical counters to the full scan.
     */
    std::uint64_t lastLine_ = ~std::uint64_t{0};
    std::size_t lastWay_ = 0;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace rsel

#endif // RSEL_RUNTIME_ICACHE_HPP
