/**
 * @file
 * Instruction-cache model over the code-cache layout.
 *
 * The paper's central motivation for better region selection is
 * instruction-fetch locality: "Separation degrades performance
 * because it reduces locality of execution — and therefore
 * instruction cache performance — as control jumps between distant
 * traces." Region transitions are the paper's proxy; this model
 * measures the effect directly. Regions are laid out contiguously
 * in the code cache in selection order (each trailing its exit
 * stubs, as DynamoRIO does), and every instruction fetched from the
 * cache is run through a set-associative I-cache.
 *
 * The default geometry (4 KiB, 2-way, 64-byte lines) is scaled down
 * ~8x from a typical 32 KiB L1I to match the synthetic workloads'
 * ~100x-smaller code footprints; benches can sweep it.
 */

#ifndef RSEL_RUNTIME_ICACHE_HPP
#define RSEL_RUNTIME_ICACHE_HPP

#include <cstdint>
#include <vector>

#include "isa/types.hpp"

namespace rsel {

/** Geometry of the modelled instruction cache. */
struct ICacheConfig
{
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 4096;
    /** Line size in bytes. */
    std::uint32_t lineBytes = 64;
    /** Associativity (ways per set). */
    std::uint32_t ways = 2;
};

/** A set-associative, LRU instruction cache fed by byte ranges. */
class ICacheModel
{
  public:
    explicit ICacheModel(ICacheConfig cfg = {});

    /**
     * Fetch `bytes` bytes starting at `addr`: one access per line
     * touched. @return the number of misses incurred.
     */
    std::uint32_t fetchRange(Addr addr, std::uint32_t bytes);

    /** Line accesses so far. */
    std::uint64_t accesses() const { return accesses_; }

    /** Line misses so far. */
    std::uint64_t misses() const { return misses_; }

    /** Miss rate in [0, 1]; 0 when nothing was fetched. */
    double missRate() const;

    /** The geometry in use. */
    const ICacheConfig &config() const { return cfg_; }

  private:
    /** One line access. @return true on miss. */
    bool accessLine(std::uint64_t lineAddr);

    ICacheConfig cfg_;
    std::uint32_t sets_;
    /** tags_[set * ways + way]; ~0 = invalid. */
    std::vector<std::uint64_t> tags_;
    /** LRU stamps parallel to tags_. */
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace rsel

#endif // RSEL_RUNTIME_ICACHE_HPP
