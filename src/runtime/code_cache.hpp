/**
 * @file
 * The software code cache: regions indexed by entry address.
 *
 * Unbounded by default, per the paper's methodology (Section 2.3).
 * A capacity limit with an eviction policy can be configured to
 * study the effect the paper defers to future work: bounded caches
 * must evict and later *regenerate* hot regions, and algorithms
 * that cache less code regenerate less. Keeps the running totals
 * the metrics layer needs: instructions and bytes copied (code
 * expansion), exit stubs created, and eviction/regeneration counts.
 */

#ifndef RSEL_RUNTIME_CODE_CACHE_HPP
#define RSEL_RUNTIME_CODE_CACHE_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "runtime/region.hpp"

namespace rsel {

/** Capacity and eviction configuration of a CodeCache. */
struct CacheLimits
{
    /** How to make room when the capacity is exceeded. */
    enum class Policy : std::uint8_t {
        /**
         * Dynamo's preemptive flush: empty the whole cache. Cheap
         * to implement in a real system (no unlinking bookkeeping)
         * and surprisingly effective at phase changes.
         */
        FullFlush,
        /** Evict the oldest live region until the insert fits. */
        Fifo,
    };

    /** Capacity in estimated bytes; 0 = unbounded (the default). */
    std::uint64_t capacityBytes = 0;
    /** Eviction policy for bounded caches. */
    Policy policy = Policy::FullFlush;
    /** Bytes charged per exit stub (paper Section 4.3.4 model). */
    std::uint64_t stubBytes = 10;
};

/** A code cache of single-entry regions, optionally bounded. */
class CodeCache
{
  public:
    /** Why a live region left the lookup structures. */
    enum class DropReason : std::uint8_t {
        Evicted,     ///< capacity-pressure eviction (FIFO policy)
        Invalidated, ///< invalidate()/invalidateBlock()
        Flushed,     ///< part of a flushAll() (policy or explicit)
    };

    /**
     * Observer of structural cache mutations. The multi-tenant
     * service layers a shared physical arena under many logical
     * caches by mirroring these notifications; they fire only on
     * the rare structural events (insert / evict / invalidate /
     * flush), never on the per-event lookup path, so an attached
     * listener costs the hot loop nothing.
     *
     * Re-entrancy contract: a callback runs *inside* a cache
     * mutation, with the cache's internal structures mid-update.
     * It must not call back into any mutating CodeCache method on
     * the same cache (insert / invalidate / invalidateBlock /
     * flushAll) — the cache asserts against it at runtime. It MAY
     * call into other locked subsystems; that is exactly what the
     * service's mirror does, which is why the arena methods it
     * reaches (`ShardedCodeCache::admit`/`release`) are annotated
     * `RSEL_EXCLUDES(registry_)`: a listener fires with the
     * tenant's session capability held, so anything it calls must
     * be lower in the lock hierarchy than the locks already held
     * (see docs/ANALYSIS.md).
     */
    class Listener
    {
      public:
        virtual ~Listener() = default;

        /**
         * A region became live. `bytes` is its estimated footprint
         * under the configured byte model (code bytes + stub
         * charge) — the same figure a later onRegionDropped for the
         * region reports, so listener-side accounting closes.
         */
        virtual void onRegionInserted(const Region &region,
                                      std::uint64_t bytes) = 0;

        /** A live region was dropped from the lookup structures. */
        virtual void onRegionDropped(const Region &region,
                                     std::uint64_t bytes,
                                     DropReason reason) = 0;
    };

    /**
     * Attach (or detach, with nullptr) the structural-mutation
     * observer. The listener must outlive the cache or be detached
     * first. At most one listener is supported.
     */
    void setListener(Listener *listener) { listener_ = listener; }

    /** @param limits capacity/eviction config; default unbounded. */
    explicit CodeCache(CacheLimits limits = {});
    /**
     * Insert a region built by a selector. The region id must have
     * been obtained from nextRegionId(). No live region may already
     * exist at the same entry address. In a bounded cache the insert
     * first makes room per the eviction policy; the new region is
     * always live afterwards, even if it alone exceeds the capacity.
     * @return the region's id.
     */
    RegionId insert(Region region);

    /** Id the next inserted region will get. */
    RegionId nextRegionId() const
    {
        return static_cast<RegionId>(regions_.size());
    }

    /**
     * The live region whose entry is exactly `addr`, or nullptr.
     * This is the "HASH-LOOKUP(code cache, tgt)" of the paper's
     * pseudocode. Evicted regions do not hit.
     */
    const Region *lookup(Addr addr) const;

    /**
     * The live region whose entry block is exactly `block`, or
     * nullptr. Equivalent to lookup(blockStartAddr) — a region's
     * entry address is its entry block's start address — but served
     * from a dense block-id-indexed table, so the hot dispatch loop
     * pays one bounds check and one load instead of an address hash.
     */
    const Region *
    lookupEntry(BlockId block) const
    {
        if (block >= entryIndex_.size())
            return nullptr;
        const RegionId id = entryIndex_[block];
        return id == invalidRegion ? nullptr : &regions_[id];
    }

    /**
     * A region by id — including evicted ones, whose objects stay
     * alive so in-flight execution and post-run statistics keep
     * working. Check isLive() to distinguish.
     */
    const Region &region(RegionId id) const { return regions_.at(id); }

    /** True if the region has not been evicted. */
    bool isLive(RegionId id) const { return live_.count(id) != 0; }

    /**
     * All regions, in selection order. Stored in a deque so that
     * references and pointers to regions stay valid across inserts
     * (selectors and the driver hold them across cache growth).
     */
    const std::deque<Region> &regions() const { return regions_; }

    /** Number of regions selected. */
    std::size_t regionCount() const { return regions_.size(); }

    /** Total guest instructions copied into the cache (expansion). */
    std::uint64_t totalInstsCopied() const { return totalInsts_; }

    /** Total guest code bytes copied into the cache. */
    std::uint64_t totalBytesCopied() const { return totalBytes_; }

    /** Total exit stubs across all regions. */
    std::uint64_t totalExitStubs() const { return totalStubs_; }

    /**
     * Estimated cache size in bytes using the paper's model
     * (Section 4.3.4): copied instruction bytes plus `stubBytes`
     * per exit stub (default 10, DynamoRIO's conservative figure).
     * For a bounded cache this still reports the cumulative copied
     * footprint (the optimizer's work); see liveBytes() for
     * occupancy.
     */
    std::uint64_t estimatedSizeBytes(std::uint64_t stubBytes = 10) const
    {
        return totalBytes_ + totalStubs_ * stubBytes;
    }

    /** Current occupancy in estimated bytes (live regions only). */
    std::uint64_t liveBytes() const { return liveBytes_; }

    /** Number of live regions. */
    std::size_t liveRegionCount() const { return live_.size(); }

    /**
     * Invalidate one live region (self-modifying-code model): the
     * region stops hitting lookup() and its entry may be re-cached.
     * The Region object stays alive for in-flight execution, exactly
     * as with eviction. A non-live id (already evicted or already
     * invalidated) is a no-op so eviction races with invalidation
     * resolve safely. @return true if a live region was dropped.
     */
    bool invalidate(RegionId id);

    /**
     * Invalidate every live region containing `block` — the unit of
     * a self-modifying-code event: a store into a block's bytes
     * makes every translation that copied them stale. Victims are
     * processed in ascending region-id order (determinism).
     * @return the number of live regions dropped.
     */
    std::size_t invalidateBlock(BlockId block);

    /**
     * Evict every live region (a capacity-pressure flush storm, or
     * an explicit Dynamo-style preemptive flush). Counts one flush
     * plus one eviction per region, like policy-driven full flushes.
     */
    void flushAll();

    /** Regions evicted so far (every region of a flush counts). */
    std::uint64_t evictions() const { return evictions_; }

    /** Full-cache flushes performed. */
    std::uint64_t flushes() const { return flushes_; }

    /** Regions dropped by invalidate()/invalidateBlock(). */
    std::uint64_t invalidations() const { return invalidations_; }

    /**
     * Re-translations: inserts at an entry address whose previous
     * region was *invalidated* (as opposed to evicted) — the work a
     * real system pays to re-translate self-modified code. Disjoint
     * accounting from regenerations(): an insert can count as both
     * (entry seen before → regeneration; last drop was an
     * invalidation → retranslation).
     */
    std::uint64_t retranslations() const { return retranslations_; }

    /**
     * Regenerations: inserts at an entry address that was cached
     * before and evicted — the re-translation work a bounded cache
     * pays (the effect the paper says its algorithms reduce).
     */
    std::uint64_t regenerations() const { return regenerations_; }

    /** The configured limits. */
    const CacheLimits &limits() const { return limits_; }

    /**
     * Change the capacity bound mid-run (the service layer's
     * memory-pressure squeeze). If the cache is now over the new
     * bound, room is made immediately under the configured policy —
     * FullFlush storms everything, Fifo evicts oldest-first until it
     * fits. Like makeRoom(), the evictions are policy-driven and are
     * NOT reported to the selector as disruptions. 0 = unbounded.
     */
    void setCapacity(std::uint64_t capacityBytes);

  private:
    /** Estimated footprint of one region under the byte model. */
    std::uint64_t estimateOf(const Region &r) const
    {
        return r.byteSize() + r.exitStubCount() * limits_.stubBytes;
    }

    /** Evict one region / flush per policy to make room. */
    void makeRoom(std::uint64_t incomingBytes);

    /** Drop a live region from the lookup structures. @pre live. */
    void removeLive(RegionId id, DropReason reason);

    /** Evict a specific live region. */
    void evict(RegionId id);

    CacheLimits limits_;
    Listener *listener_ = nullptr;
    /** True while flushAll() drains, so per-region evictions inside
     *  a flush notify the listener as Flushed, not Evicted. */
    bool flushing_ = false;
    /** True while a listener callback is on the stack; the mutating
     *  entry points assert it is clear, turning a re-entrant
     *  listener (contract violation above) into an immediate panic
     *  instead of silent structure corruption. */
    bool notifying_ = false;
    std::deque<Region> regions_;
    std::unordered_map<Addr, RegionId> byEntry_;
    /** Live region id per entry-block id (dense lookupEntry probe);
     *  invalidRegion = no live region enters at that block. Grown on
     *  demand and kept exactly in sync with byEntry_. */
    std::vector<RegionId> entryIndex_;
    std::unordered_set<RegionId> live_;
    /** Live region ids in insertion order (FIFO eviction). */
    std::deque<RegionId> fifo_;
    /** Entry addresses that were cached at some point. */
    std::unordered_set<Addr> everCached_;
    /** Entries whose most recent drop was an invalidation. */
    std::unordered_set<Addr> invalidatedEntries_;
    std::uint64_t totalInsts_ = 0;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t totalStubs_ = 0;
    std::uint64_t liveBytes_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t regenerations_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t retranslations_ = 0;
};

} // namespace rsel

#endif // RSEL_RUNTIME_CODE_CACHE_HPP
