#include "runtime/region.hpp"

#include "support/error.hpp"

namespace rsel {

Region::Region(Kind kind, RegionId id,
               std::vector<const BasicBlock *> blocks)
    : kind_(kind), id_(id), blocks_(std::move(blocks))
{
    RSEL_ASSERT(!blocks_.empty(), "a region needs at least one block");
    entryAddr_ = blocks_.front()->startAddr();
    blockIds_.reserve(blocks_.size());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const BasicBlock *b = blocks_[i];
        blockIds_.push_back(b->id());
        const bool inserted =
            memberIndex_.emplace(b->id(), i).second;
        RSEL_ASSERT(inserted, "duplicate block in region");
        addrIndex_.emplace(b->startAddr(), i);
    }
    computeFootprint();
    if (kind_ == Kind::Trace)
        computeTraceStubs();
    else
        computeMultiPathStubs();
}

Region
Region::makeTrace(RegionId id, std::vector<const BasicBlock *> path)
{
    return Region(Kind::Trace, id, std::move(path));
}

Region
Region::makeMultiPath(RegionId id,
                      std::vector<const BasicBlock *> blocks)
{
    return Region(Kind::MultiPath, id, std::move(blocks));
}

bool
Region::containsBlockAddr(Addr addr) const
{
    return addrIndex_.count(addr) != 0;
}

void
Region::computeFootprint()
{
    for (const BasicBlock *b : blocks_) {
        instCount_ += b->instCount();
        byteSize_ += b->sizeBytes();
    }
}

void
Region::computeTraceStubs()
{
    // A trace keeps control along the recorded path (block i to
    // block i+1) and along any direct branch back to its top (the
    // link that spans a cycle). Every other potential continuation
    // needs an exit stub. Indirect transfers always need one stub
    // for the mispredicted-target path, even when the recorded
    // target is the next trace block.
    const Addr top = entryAddr();
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        const BasicBlock *b = blocks_[i];
        const BasicBlock *next =
            i + 1 < blocks_.size() ? blocks_[i + 1] : nullptr;

        auto needStubFor = [&](Addr target) {
            if (target == top) {
                spansCycle_ = true;
                return false; // linked back to the trace head
            }
            if (next != nullptr && target == next->startAddr())
                return false; // the recorded path, laid out inline
            return true;
        };

        switch (b->terminator()) {
          case BranchKind::CondDirect:
            if (needStubFor(b->takenTarget()))
                ++exitStubs_;
            if (needStubFor(b->fallThroughAddr()))
                ++exitStubs_;
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            if (needStubFor(b->takenTarget()))
                ++exitStubs_;
            break;
          case BranchKind::None:
            if (needStubFor(b->fallThroughAddr()))
                ++exitStubs_;
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
          case BranchKind::Return:
            ++exitStubs_;
            break;
          case BranchKind::Halt:
            break;
        }
    }
}

void
Region::computeMultiPathStubs()
{
    // A multi-path region keeps control for any transfer whose
    // target block is a member: exits targeting member blocks were
    // replaced by edges (Figure 13, line 16). Stubs remain for
    // targets outside the region and for indirect misses.
    for (const BasicBlock *b : blocks_) {
        auto needStubFor = [&](Addr target) {
            if (containsBlockAddr(target)) {
                if (target == entryAddr())
                    spansCycle_ = true;
                return false;
            }
            return true;
        };

        switch (b->terminator()) {
          case BranchKind::CondDirect:
            if (needStubFor(b->takenTarget()))
                ++exitStubs_;
            if (needStubFor(b->fallThroughAddr()))
                ++exitStubs_;
            break;
          case BranchKind::Jump:
          case BranchKind::Call:
            if (needStubFor(b->takenTarget()))
                ++exitStubs_;
            break;
          case BranchKind::None:
            if (needStubFor(b->fallThroughAddr()))
                ++exitStubs_;
            break;
          case BranchKind::IndirectJump:
          case BranchKind::IndirectCall:
          case BranchKind::Return:
            ++exitStubs_;
            break;
          case BranchKind::Halt:
            break;
        }
    }
}

} // namespace rsel
