#include "runtime/code_cache.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"

namespace rsel {

CodeCache::CodeCache(CacheLimits limits)
    : limits_(limits)
{}

void
CodeCache::removeLive(RegionId id, DropReason reason)
{
    RSEL_ASSERT(live_.count(id) != 0, "removing a non-live region");
    const Region &r = regions_[id];
    const std::uint64_t bytes = estimateOf(r);
    live_.erase(id);
    byEntry_.erase(r.entryAddr());
    entryIndex_[r.entryBlock().id()] = invalidRegion;
    liveBytes_ -= bytes;
    if (listener_ != nullptr) {
        // The re-entrancy sentinel brackets the callback; the
        // mutating entry points assert it is clear.
        notifying_ = true;
        listener_->onRegionDropped(r, bytes, reason);
        notifying_ = false;
    }
}

void
CodeCache::evict(RegionId id)
{
    const Addr entry = regions_[id].entryAddr();
    removeLive(id, flushing_ ? DropReason::Flushed
                             : DropReason::Evicted);
    ++evictions_;
    // The entry's stale translation is gone with it: a later
    // re-insert is a plain regeneration, not a re-translation.
    invalidatedEntries_.erase(entry);
}

bool
CodeCache::invalidate(RegionId id)
{
    RSEL_ASSERT(!notifying_,
                "listener re-entered invalidate() mid-mutation");
    if (live_.count(id) == 0)
        return false; // already evicted or invalidated: no-op
    const Addr entry = regions_[id].entryAddr();
    removeLive(id, DropReason::Invalidated);
    ++invalidations_;
    invalidatedEntries_.insert(entry);
    return true;
}

std::size_t
CodeCache::invalidateBlock(BlockId block)
{
    RSEL_ASSERT(!notifying_,
                "listener re-entered invalidateBlock() mid-mutation");
    std::vector<RegionId> victims;
    for (const RegionId id : live_)
        if (regions_[id].containsBlock(block))
            victims.push_back(id);
    std::sort(victims.begin(), victims.end());
    for (const RegionId id : victims)
        invalidate(id);
    return victims.size();
}

void
CodeCache::flushAll()
{
    RSEL_ASSERT(!notifying_,
                "listener re-entered flushAll() mid-mutation");
    if (live_.empty())
        return;
    ++flushes_;
    flushing_ = true;
    while (!fifo_.empty()) {
        if (live_.count(fifo_.front()) != 0)
            evict(fifo_.front());
        fifo_.pop_front();
    }
    flushing_ = false;
}

void
CodeCache::setCapacity(std::uint64_t capacityBytes)
{
    RSEL_ASSERT(!notifying_,
                "listener re-entered setCapacity() mid-mutation");
    limits_.capacityBytes = capacityBytes;
    if (capacityBytes == 0 || liveBytes_ <= capacityBytes)
        return;
    // Over the new bound: make room now, exactly as an insert would
    // (policy storm or oldest-first evictions, selector-silent).
    makeRoom(0);
}

void
CodeCache::makeRoom(std::uint64_t incomingBytes)
{
    if (limits_.capacityBytes == 0)
        return; // unbounded
    if (liveBytes_ + incomingBytes <= limits_.capacityBytes)
        return;

    if (limits_.policy == CacheLimits::Policy::FullFlush) {
        // Dynamo's preemptive flush: everything goes at once.
        flushAll();
        return;
    }

    // FIFO: evict oldest live regions until the insert fits (or the
    // cache is empty — a region larger than the capacity is allowed
    // to live alone).
    while (liveBytes_ + incomingBytes > limits_.capacityBytes &&
           !fifo_.empty()) {
        const RegionId victim = fifo_.front();
        fifo_.pop_front();
        if (live_.count(victim) != 0)
            evict(victim);
    }
}

RegionId
CodeCache::insert(Region region)
{
    RSEL_ASSERT(!notifying_,
                "listener re-entered insert() mid-mutation");
    RSEL_ASSERT(region.id() == regions_.size(),
                "region id must come from nextRegionId()");
    RSEL_ASSERT(byEntry_.count(region.entryAddr()) == 0,
                "a live region already exists at this entry address");

    makeRoom(estimateOf(region));

    const RegionId id = region.id();
    totalInsts_ += region.instCount();
    totalBytes_ += region.byteSize();
    totalStubs_ += region.exitStubCount();
    liveBytes_ += estimateOf(region);
    if (!everCached_.insert(region.entryAddr()).second)
        ++regenerations_; // this entry was cached and evicted before
    if (invalidatedEntries_.erase(region.entryAddr()) != 0)
        ++retranslations_; // re-translating self-modified code
    byEntry_.emplace(region.entryAddr(), id);
    const BlockId entryBlock = region.entryBlock().id();
    if (entryBlock >= entryIndex_.size())
        entryIndex_.resize(entryBlock + 1, invalidRegion);
    entryIndex_[entryBlock] = id;
    live_.insert(id);
    fifo_.push_back(id);
    regions_.push_back(std::move(region));
    if (listener_ != nullptr) {
        notifying_ = true;
        listener_->onRegionInserted(regions_.back(),
                                    estimateOf(regions_.back()));
        notifying_ = false;
    }
    return id;
}

const Region *
CodeCache::lookup(Addr addr) const
{
    auto it = byEntry_.find(addr);
    if (it == byEntry_.end())
        return nullptr;
    return &regions_[it->second];
}

} // namespace rsel
