/**
 * @file
 * Code-cache regions: linear traces and combined multi-path regions.
 *
 * A region is a single-entry unit of cached, optimized code. Two
 * kinds exist, mirroring the paper:
 *
 *  - `Trace`: an interprocedural superblock — one path of basic
 *    blocks laid out consecutively. Control stays inside only along
 *    the recorded path, or by branching back to the trace top
 *    (spanning a cycle). Every other potential continuation needs an
 *    exit stub.
 *  - `MultiPath`: a trace-combination region — a single-entry CFG of
 *    blocks with split and join points. Control stays inside for any
 *    transfer whose target block is a member; exits targeting member
 *    blocks have been replaced by edges (paper Figure 13, line 16).
 */

#ifndef RSEL_RUNTIME_REGION_HPP
#define RSEL_RUNTIME_REGION_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/basic_block.hpp"
#include "support/error.hpp"

namespace rsel {

class Program;

/** Index of a region in its CodeCache, in selection order. */
using RegionId = std::uint32_t;

/** Sentinel for "no region". */
constexpr RegionId invalidRegion =
    std::numeric_limits<RegionId>::max();

/** Result of advancing execution by one block inside a region. */
enum class RegionStep : std::uint8_t {
    Internal,     ///< Control stays in the region.
    CycleRestart, ///< Control branched back to the region top.
    Exit,         ///< Control left the region.
};

/**
 * An immutable code-cache region. Construction precomputes the
 * instruction/byte footprint, the exit-stub count, and whether the
 * region statically spans a cycle.
 */
class Region
{
  public:
    enum class Kind : std::uint8_t { Trace, MultiPath };

    /**
     * Build a linear trace from a recorded path.
     * @param id     region id assigned by the cache.
     * @param path   blocks in recorded execution order; non-empty,
     *               no duplicates.
     */
    static Region makeTrace(RegionId id,
                            std::vector<const BasicBlock *> path);

    /**
     * Build a multi-path region.
     * @param id     region id assigned by the cache.
     * @param blocks member blocks; the first is the region entry.
     */
    static Region makeMultiPath(RegionId id,
                                std::vector<const BasicBlock *> blocks);

    /** Region kind. */
    Kind kind() const { return kind_; }

    /** Region id (selection order). */
    RegionId id() const { return id_; }

    /** Guest address of the region entry (cached at build time). */
    Addr entryAddr() const { return entryAddr_; }

    /** The entry block. */
    const BasicBlock &entryBlock() const { return *blocks_.front(); }

    /**
     * Member blocks. For a trace: in recorded path order. For a
     * multi-path region: entry first, rest unordered.
     */
    const std::vector<const BasicBlock *> &blocks() const
    {
        return blocks_;
    }

    /** True if the block is a member of the region. */
    bool containsBlock(BlockId id) const
    {
        return memberIndex_.count(id) != 0;
    }

    /**
     * Member block ids, parallel to blocks(): a contiguous stripe so
     * the execution fast path compares ids without chasing the
     * per-block pointers.
     */
    const std::vector<BlockId> &blockIds() const { return blockIds_; }

    /** True if a block starting at `addr` is a member. */
    bool containsBlockAddr(Addr addr) const;

    /**
     * Advance execution within the region.
     *
     * @param pos   in/out: index into blocks() of the current block.
     *              Reset to 0 on CycleRestart; unchanged on Exit.
     * @param next  the block that executed next in the real stream.
     * @param taken whether it was reached by a taken branch.
     */
    RegionStep
    step(std::size_t &pos, const BasicBlock &next, bool taken) const
    {
        // Defined inline: this is the once-per-cached-block decision
        // of the simulation's hottest loop, and the trace fast path
        // is two compares against precomputed values.
        RSEL_ASSERT(pos < blocks_.size(),
                    "region position out of range");

        if (kind_ == Kind::Trace) {
            // Branch back to the top: the spanned-cycle link.
            if (taken && next.startAddr() == entryAddr_) {
                pos = 0;
                return RegionStep::CycleRestart;
            }
            // The recorded path, laid out consecutively.
            if (pos + 1 < blockIds_.size() &&
                next.id() == blockIds_[pos + 1]) {
                ++pos;
                return RegionStep::Internal;
            }
            return RegionStep::Exit;
        }

        // MultiPath: any transfer to a member block stays inside.
        auto it = memberIndex_.find(next.id());
        if (it == memberIndex_.end())
            return RegionStep::Exit;
        if (next.startAddr() == entryAddr_) {
            pos = 0;
            return RegionStep::CycleRestart;
        }
        pos = it->second;
        return RegionStep::Internal;
    }

    /** Number of guest instructions copied into this region. */
    std::uint64_t instCount() const { return instCount_; }

    /** Guest code bytes copied into this region. */
    std::uint64_t byteSize() const { return byteSize_; }

    /** Number of exit stubs the region requires. */
    std::uint32_t exitStubCount() const { return exitStubs_; }

    /**
     * True if the region includes a branch to its own top, i.e. it
     * statically spans a cycle (paper's spanned-cycle metric).
     */
    bool spansCycle() const { return spansCycle_; }

  private:
    Region(Kind kind, RegionId id,
           std::vector<const BasicBlock *> blocks);

    void computeFootprint();
    void computeTraceStubs();
    void computeMultiPathStubs();

    Kind kind_;
    RegionId id_;
    std::vector<const BasicBlock *> blocks_;
    /** Ids of blocks_, same order (fast-path compare stripe). */
    std::vector<BlockId> blockIds_;
    /** block id -> index into blocks_. */
    std::unordered_map<BlockId, std::size_t> memberIndex_;
    std::unordered_map<Addr, std::size_t> addrIndex_;
    Addr entryAddr_ = invalidAddr;
    std::uint64_t instCount_ = 0;
    std::uint64_t byteSize_ = 0;
    std::uint32_t exitStubs_ = 0;
    bool spansCycle_ = false;
};

} // namespace rsel

#endif // RSEL_RUNTIME_REGION_HPP
