#include "runtime/icache.hpp"

#include <limits>

#include "support/error.hpp"

namespace rsel {

namespace {

constexpr std::uint64_t invalidTag =
    std::numeric_limits<std::uint64_t>::max();

bool
isPowerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

ICacheModel::ICacheModel(ICacheConfig cfg)
    : cfg_(cfg)
{
    RSEL_ASSERT(isPowerOfTwo(cfg_.lineBytes),
                "line size must be a power of two");
    RSEL_ASSERT(cfg_.ways >= 1, "need at least one way");
    RSEL_ASSERT(cfg_.sizeBytes >= cfg_.lineBytes * cfg_.ways,
                "cache must hold at least one set");
    sets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    RSEL_ASSERT(isPowerOfTwo(sets_),
                "set count must be a power of two");
    tags_.assign(static_cast<std::size_t>(sets_) * cfg_.ways,
                 invalidTag);
    stamps_.assign(tags_.size(), 0);
}

bool
ICacheModel::accessLine(std::uint64_t lineAddr)
{
    ++accesses_;
    ++clock_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(lineAddr & (sets_ - 1));
    const std::uint64_t tag = lineAddr / sets_;
    const std::size_t base =
        static_cast<std::size_t>(set) * cfg_.ways;

    std::size_t victim = base;
    for (std::size_t w = base; w < base + cfg_.ways; ++w) {
        if (tags_[w] == tag) {
            stamps_[w] = clock_;
            return false; // hit
        }
        if (stamps_[w] < stamps_[victim])
            victim = w;
    }
    ++misses_;
    tags_[victim] = tag;
    stamps_[victim] = clock_;
    return true;
}

std::uint32_t
ICacheModel::fetchRange(Addr addr, std::uint32_t bytes)
{
    if (bytes == 0)
        return 0;
    const std::uint64_t first = addr / cfg_.lineBytes;
    const std::uint64_t last = (addr + bytes - 1) / cfg_.lineBytes;
    std::uint32_t missCount = 0;
    for (std::uint64_t line = first; line <= last; ++line)
        missCount += accessLine(line) ? 1 : 0;
    return missCount;
}

double
ICacheModel::missRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) /
           static_cast<double>(accesses_);
}

} // namespace rsel
