#include "runtime/icache.hpp"

#include <bit>
#include <limits>

#include "support/error.hpp"

namespace rsel {

namespace {

constexpr std::uint64_t invalidTag =
    std::numeric_limits<std::uint64_t>::max();

bool
isPowerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

ICacheModel::ICacheModel(ICacheConfig cfg)
    : cfg_(cfg)
{
    RSEL_ASSERT(isPowerOfTwo(cfg_.lineBytes),
                "line size must be a power of two");
    RSEL_ASSERT(cfg_.ways >= 1, "need at least one way");
    RSEL_ASSERT(cfg_.sizeBytes >= cfg_.lineBytes * cfg_.ways,
                "cache must hold at least one set");
    sets_ = cfg_.sizeBytes / (cfg_.lineBytes * cfg_.ways);
    RSEL_ASSERT(isPowerOfTwo(sets_),
                "set count must be a power of two");
    lineShift_ =
        static_cast<std::uint32_t>(std::countr_zero(cfg_.lineBytes));
    setShift_ = static_cast<std::uint32_t>(std::countr_zero(sets_));
    tags_.assign(static_cast<std::size_t>(sets_) * cfg_.ways,
                 invalidTag);
    stamps_.assign(tags_.size(), 0);
}

double
ICacheModel::missRate() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) /
           static_cast<double>(accesses_);
}

} // namespace rsel
