/**
 * @file
 * Umbrella header for the rselect library.
 *
 * Pulls in the full public API: program construction, execution,
 * the simulated dynamic optimization system, every shipped
 * region-selection algorithm, the metric stack, and the synthetic
 * workload suite. Include this when prototyping; production code
 * should include the specific headers it needs.
 */

#ifndef RSEL_RSELECT_HPP
#define RSEL_RSELECT_HPP

// Guest ISA and program model.
#include "isa/basic_block.hpp"
#include "isa/types.hpp"
#include "program/behavior.hpp"
#include "program/executor.hpp"
#include "program/program.hpp"
#include "program/program_builder.hpp"

// Code-cache runtime.
#include "runtime/code_cache.hpp"
#include "runtime/region.hpp"

// Region-selection algorithms.
#include "selection/boa_selector.hpp"
#include "selection/compact_trace.hpp"
#include "selection/history_buffer.hpp"
#include "selection/lei_selector.hpp"
#include "selection/net_selector.hpp"
#include "selection/observed_store.hpp"
#include "selection/path_profile.hpp"
#include "selection/region_cfg.hpp"
#include "selection/selector.hpp"
#include "selection/wrs_selector.hpp"

// Fault injection and graceful degradation.
#include "resilience/fault_injector.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/recovery_stats.hpp"

// Simulator and metrics.
#include "dynopt/dynopt_system.hpp"
#include "driver/sweep_runner.hpp"
#include "driver/thread_pool.hpp"
#include "metrics/metrics_collector.hpp"
#include "metrics/region_quality.hpp"
#include "metrics/sim_result.hpp"

// Synthetic workload suite and the paper's scenario programs.
#include "workloads/scenarios.hpp"
#include "workloads/workload_kit.hpp"
#include "workloads/workload_motifs.hpp"
#include "workloads/workloads.hpp"

// Support utilities.
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/exit_codes.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

#endif // RSEL_RSELECT_HPP
