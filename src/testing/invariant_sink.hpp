/**
 * @file
 * Per-event invariant checking around a DynOptSystem.
 *
 * The InvariantSink interposes between an event source (Executor or
 * TraceReplayer) and a DynOptSystem and asserts, on every event and
 * at finish(), the three invariant families of the testing
 * subsystem:
 *
 *  - Transparency: the block stream the optimized system executes —
 *    interpreter steps plus code-cache steps — equals the raw
 *    architectural stream block-for-block. Checked via the system's
 *    StepTrace probe: when a block executes from the cache, the
 *    region's block at the reported position must be exactly the
 *    architectural block.
 *  - Conservation: instructions split exactly between interpreter
 *    and cache; the sink's independent event/instruction counts
 *    must equal the finished SimResult's, and the result's internal
 *    identities (SimResult::conservationError) must close.
 *  - Region legality: every region a selector emits must be
 *    CFG-legal — trace blocks form a connected path of real edges
 *    with no duplicate blocks, multi-path members are reachable
 *    from the region entry through member-only real edges — and the
 *    incoming stream itself must follow real CFG edges with
 *    consistent taken/fall-through annotations.
 *
 * Violations throw InvariantViolation naming the invariant, the
 * event index, and the offending blocks.
 */

#ifndef RSEL_TESTING_INVARIANT_SINK_HPP
#define RSEL_TESTING_INVARIANT_SINK_HPP

#include <stdexcept>
#include <string>

#include "dynopt/dynopt_system.hpp"
#include "testing/cfg_oracle.hpp"

namespace rsel {
namespace testing {

/** Thrown when a checked invariant fails. */
class InvariantViolation : public std::runtime_error
{
  public:
    explicit InvariantViolation(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** FNV-1a initial basis, the stream-hash seed. */
constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;

/** Fold one byte into an FNV-1a hash. */
inline std::uint64_t
fnvByte(std::uint64_t h, std::uint8_t b)
{
    return (h ^ b) * 0x100000001b3ull;
}

/** Fold one (block id, taken) event into an FNV-1a hash. */
inline std::uint64_t
fnvEvent(std::uint64_t h, BlockId id, bool taken)
{
    h = fnvByte(h, static_cast<std::uint8_t>(id));
    h = fnvByte(h, static_cast<std::uint8_t>(id >> 8));
    h = fnvByte(h, static_cast<std::uint8_t>(id >> 16));
    h = fnvByte(h, static_cast<std::uint8_t>(id >> 24));
    return fnvByte(h, taken ? 1 : 0);
}

/** The checking sink. Forwards every event to the wrapped system. */
class InvariantSink : public ExecutionSink
{
  public:
    /**
     * @param prog   program being run.
     * @param system the system under test; must outlive the sink and
     *               must not receive events from elsewhere.
     */
    InvariantSink(const Program &prog, DynOptSystem &system);

    /** Check, forward, check again. @throws InvariantViolation. */
    bool onEvent(const ExecEvent &event) override;

    /**
     * Finish the wrapped system, cross-check its SimResult against
     * this sink's independent accounting, and return the result.
     * @throws InvariantViolation on any mismatch.
     */
    SimResult finish();

    /** Events observed. */
    std::uint64_t events() const { return events_; }

    /** Instructions observed (sum of block sizes). */
    std::uint64_t totalInsts() const { return insts_; }

    /** FNV-1a hash over the (block id, taken) event stream. */
    std::uint64_t streamHash() const { return hash_; }

  private:
    [[noreturn]] void violate(const std::string &invariant,
                              const std::string &detail) const;

    /** Stream legality: CFG edge + annotation consistency. */
    void checkStream(const ExecEvent &ev) const;

    /** Transparency of the system's disposition of `ev`. */
    void checkDisposition(const ExecEvent &ev);

    /** Validate regions installed since the last event. */
    void checkNewRegions();
    void checkRegion(const Region &region) const;

    const Program &prog_;
    DynOptSystem &system_;
    CfgOracle oracle_;
    const BasicBlock *prev_ = nullptr;
    bool prevHalted_ = false;
    std::uint64_t events_ = 0;
    std::uint64_t insts_ = 0;
    std::uint64_t cachedInsts_ = 0;
    std::uint64_t interpretedInsts_ = 0;
    std::uint64_t hash_ = fnvOffset;
    std::size_t checkedRegions_ = 0;
};

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_INVARIANT_SINK_HPP
