/**
 * @file
 * Independent CFG legality oracle for dynamic block streams.
 *
 * Recomputes, from the static Program alone, which block-to-block
 * transfers are architecturally possible. The InvariantSink uses it
 * to validate both the raw executor stream and the block paths of
 * every region a selector emits — independently of the Executor's
 * and Region's own logic, so a bug in either is caught rather than
 * mirrored.
 */

#ifndef RSEL_TESTING_CFG_ORACLE_HPP
#define RSEL_TESTING_CFG_ORACLE_HPP

#include <unordered_set>

#include "program/program.hpp"

namespace rsel {
namespace testing {

/** Answers "can control transfer from block A to block B?". */
class CfgOracle
{
  public:
    explicit CfgOracle(const Program &prog);

    /**
     * True if the guest can legally transfer from `from` to `to`:
     * fall-through adjacency, a static branch target, a declared
     * indirect target, or a return to any call site's fall-through.
     */
    bool legalEdge(const BasicBlock &from, const BasicBlock &to) const;

    /** True if `addr` is the fall-through of some call block. */
    bool isReturnTarget(Addr addr) const
    {
        return returnTargets_.count(addr) != 0;
    }

  private:
    const Program &prog_;
    /** Fall-through addresses of every Call / IndirectCall block. */
    std::unordered_set<Addr> returnTargets_;
};

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_CFG_ORACLE_HPP
