#include "testing/gen_spec.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/random.hpp"

namespace rsel {
namespace testing {

namespace {

/** Field table: one row per knob, so toString/parse/== cannot drift. */
struct FieldDef
{
    const char *key;
    std::uint64_t GenSpec::*wide;
    std::uint32_t GenSpec::*narrow;
};

const FieldDef fieldTable[] = {
    {"funcs", nullptr, &GenSpec::funcs},
    {"blocks", nullptr, &GenSpec::blocks},
    {"loop", nullptr, &GenSpec::pLoop},
    {"cond", nullptr, &GenSpec::pCond},
    {"unbiased", nullptr, &GenSpec::pUnbiased},
    {"phased", nullptr, &GenSpec::pPhased},
    {"phases", nullptr, &GenSpec::phases},
    {"indirect", nullptr, &GenSpec::pIndirect},
    {"itargets", nullptr, &GenSpec::indirectTargets},
    {"call", nullptr, &GenSpec::pCall},
    {"jump", nullptr, &GenSpec::pJump},
    {"recurse", nullptr, &GenSpec::pRecurse},
    {"deadfn", nullptr, &GenSpec::pDeadFn},
    {"trips", nullptr, &GenSpec::tripMax},
    {"events", &GenSpec::events, nullptr},
    {"cachekb", &GenSpec::cacheKb, nullptr},
    {"bseed", &GenSpec::buildSeed, nullptr},
    {"xseed", &GenSpec::execSeed, nullptr},
};

std::uint64_t
getField(const GenSpec &s, const FieldDef &f)
{
    return f.wide ? s.*(f.wide) : s.*(f.narrow);
}

void
setField(GenSpec &s, const FieldDef &f, std::uint64_t v)
{
    if (f.wide)
        s.*(f.wide) = v;
    else
        s.*(f.narrow) = static_cast<std::uint32_t>(v);
}

void
clampPct(std::uint32_t &v)
{
    v = std::min<std::uint32_t>(v, 100);
}

} // namespace

void
GenSpec::clamp()
{
    funcs = std::max<std::uint32_t>(1, std::min<std::uint32_t>(funcs, 16));
    blocks = std::max<std::uint32_t>(2, std::min<std::uint32_t>(blocks, 32));
    clampPct(pLoop);
    clampPct(pCond);
    clampPct(pUnbiased);
    clampPct(pPhased);
    clampPct(pIndirect);
    clampPct(pCall);
    clampPct(pJump);
    clampPct(pRecurse);
    clampPct(pDeadFn);
    phases = std::max<std::uint32_t>(1, std::min<std::uint32_t>(phases, 8));
    indirectTargets = std::max<std::uint32_t>(
        2, std::min<std::uint32_t>(indirectTargets, 8));
    tripMax = std::max<std::uint32_t>(1, std::min<std::uint32_t>(tripMax, 64));
    events = std::max<std::uint64_t>(100, std::min<std::uint64_t>(
                                              events, 5'000'000));
}

std::string
GenSpec::toString() const
{
    std::ostringstream os;
    os << "v1";
    for (const FieldDef &f : fieldTable)
        os << "," << f.key << "=" << getField(*this, f);
    return os.str();
}

GenSpec
GenSpec::parse(const std::string &text)
{
    std::istringstream is(text);
    std::string part;
    if (!std::getline(is, part, ',') || part != "v1")
        fatal("bad spec string: expected leading \"v1\", got \"" + text +
              "\"");

    GenSpec spec;
    while (std::getline(is, part, ',')) {
        const std::size_t eq = part.find('=');
        if (eq == std::string::npos)
            fatal("bad spec field \"" + part + "\" (expected key=value)");
        const std::string key = part.substr(0, eq);
        const std::string val = part.substr(eq + 1);
        const FieldDef *def = nullptr;
        for (const FieldDef &f : fieldTable)
            if (key == f.key)
                def = &f;
        if (!def)
            fatal("unknown spec field \"" + key + "\"");
        std::uint64_t v = 0;
        try {
            std::size_t used = 0;
            v = std::stoull(val, &used);
            if (used != val.size())
                throw std::invalid_argument(val);
        } catch (const std::exception &) {
            fatal("bad value \"" + val + "\" for spec field \"" + key +
                  "\"");
        }
        setField(spec, *def, v);
    }
    spec.clamp();
    return spec;
}

GenSpec
GenSpec::fromSeed(std::uint64_t seed)
{
    Rng rng(seed ^ 0xf5a7c15e9e3779b9ull);
    GenSpec s;
    s.funcs = static_cast<std::uint32_t>(rng.nextRange(1, 5));
    s.blocks = static_cast<std::uint32_t>(rng.nextRange(2, 9));
    s.pLoop = static_cast<std::uint32_t>(rng.nextRange(20, 70));
    s.pCond = static_cast<std::uint32_t>(rng.nextRange(20, 60));
    s.pUnbiased = static_cast<std::uint32_t>(rng.nextRange(0, 60));
    s.pPhased = static_cast<std::uint32_t>(rng.nextRange(0, 50));
    s.phases = static_cast<std::uint32_t>(rng.nextRange(1, 4));
    s.pIndirect = static_cast<std::uint32_t>(rng.nextRange(0, 40));
    s.indirectTargets = static_cast<std::uint32_t>(rng.nextRange(2, 4));
    s.pCall = static_cast<std::uint32_t>(rng.nextRange(0, 50));
    s.pJump = static_cast<std::uint32_t>(rng.nextRange(0, 25));
    s.tripMax = static_cast<std::uint32_t>(rng.nextRange(2, 24));
    s.events = rng.nextRange(10'000, 40'000);
    // Mostly unbounded (the paper's methodology); occasionally a
    // small bounded cache to exercise eviction and regeneration.
    if (rng.nextBool(0.25)) {
        static const std::uint64_t sizesKb[] = {4, 16, 64};
        s.cacheKb = sizesKb[rng.nextBelow(3)];
    } else {
        s.cacheKb = 0;
    }
    s.buildSeed = seed;
    s.execSeed = seed * 0x9e3779b97f4a7c15ull + 1;
    // Appended after the original draw sequence so the earlier knob
    // values of a given seed stay what they always were.
    s.pRecurse = static_cast<std::uint32_t>(rng.nextRange(0, 40));
    s.pDeadFn = static_cast<std::uint32_t>(rng.nextRange(0, 30));
    s.clamp();
    return s;
}

bool
GenSpec::operator==(const GenSpec &other) const
{
    for (const FieldDef &f : fieldTable)
        if (getField(*this, f) != getField(other, f))
            return false;
    return true;
}

} // namespace testing
} // namespace rsel
