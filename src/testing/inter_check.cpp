#include "testing/inter_check.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/analysis_manager.hpp"
#include "dynopt/dynopt_system.hpp"
#include "program/executor.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace testing {

namespace {

/** Small dense bitset over FuncIds. */
class FuncSet
{
  public:
    explicit FuncSet(std::uint32_t width)
        : words_((width + 63u) / 64u, 0)
    {
    }

    void set(FuncId f) { words_[f / 64u] |= 1ull << (f % 64u); }

    bool test(FuncId f) const
    {
        return (words_[f / 64u] >> (f % 64u)) & 1u;
    }

    std::uint32_t count() const
    {
        std::uint32_t n = 0;
        for (const std::uint64_t w : words_)
            n += static_cast<std::uint32_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    std::vector<std::uint64_t> words_;
};

/**
 * Counting sink: reconstructs dynamic call behaviour with a shadow
 * call stack of call-site indices. The stream is produced by a fresh
 * Executor, so the shadow stack mirrors the executor's own stack
 * exactly — any disagreement is a violated claim, not noise.
 */
class CallCountSink : public ExecutionSink
{
  public:
    CallCountSink(const Program &prog, const analysis::CallGraph &cg,
                  InterValidation &val)
        : cg_(cg), val_(val),
          called_(static_cast<std::uint32_t>(prog.functions().size())),
          observed_(cg.sites.size(),
                    FuncSet(static_cast<std::uint32_t>(
                        prog.functions().size())))
    {
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(cg.sites.size()); ++i)
            siteOfBlock_.emplace(cg.sites[i].block, i);
        val_.siteCalls.assign(cg_.sites.size(), 0);
    }

    bool onEvent(const ExecEvent &event) override
    {
        ++val_.streamEvents;
        const BasicBlock *prev = prev_;
        prev_ = event.block;
        if (prev == nullptr || !event.takenBranch)
            return true;
        const BranchKind kind = prev->terminator();
        if (kind == BranchKind::Call ||
            kind == BranchKind::IndirectCall)
            onCall(*prev, *event.block);
        else if (kind == BranchKind::Return)
            onReturn(*event.block);
        // Keep replaying after a violation: the first error is what
        // gets reported, and the totals stay comparable.
        return true;
    }

    const FuncSet &calledFuncs() const { return called_; }

    const FuncSet &observedAt(std::uint32_t site) const
    {
        return observed_[site];
    }

    std::size_t shadowDepth() const { return shadow_.size(); }

  private:
    void
    onCall(const BasicBlock &caller, const BasicBlock &landing)
    {
        const auto it = siteOfBlock_.find(caller.id());
        if (it == siteOfBlock_.end()) {
            fail("call transfer from block " +
                 std::to_string(caller.id()) +
                 " has no call site in the call graph");
            return;
        }
        const std::uint32_t site = it->second;
        ++val_.callTransfers;
        ++val_.siteCalls[site];
        const FuncId callee = landing.func();
        const std::vector<FuncId> &callees =
            cg_.sites[site].callees;
        if (!std::binary_search(callees.begin(), callees.end(),
                                callee))
            fail("call at block " + std::to_string(caller.id()) +
                 " landed in function " + std::to_string(callee) +
                 ", outside its static callee set");
        called_.set(callee);
        observed_[site].set(callee);
        shadow_.push_back(site);
        val_.maxDynamicDepth =
            std::max<std::uint64_t>(val_.maxDynamicDepth,
                                    shadow_.size());
    }

    void
    onReturn(const BasicBlock &landing)
    {
        ++val_.returnTransfers;
        if (shadow_.empty()) {
            fail("return delivered with an empty call stack");
            return;
        }
        const std::uint32_t site = shadow_.back();
        shadow_.pop_back();
        if (landing.id() != cg_.sites[site].returnBlock)
            fail("return landed at block " +
                 std::to_string(landing.id()) +
                 ", not the fall-through block " +
                 std::to_string(cg_.sites[site].returnBlock) +
                 " of the call at block " +
                 std::to_string(cg_.sites[site].block));
    }

    void
    fail(const std::string &msg)
    {
        if (val_.error.empty())
            val_.error = "interprocedural: " + msg;
    }

    const analysis::CallGraph &cg_;
    InterValidation &val_;
    const BasicBlock *prev_ = nullptr;
    std::vector<std::uint32_t> shadow_;
    std::unordered_map<BlockId, std::uint32_t> siteOfBlock_;
    FuncSet called_;
    std::vector<FuncSet> observed_;
};

} // namespace

InterValidation
validateInterprocedural(const Program &prog, std::uint64_t events,
                        std::uint64_t seed)
{
    InterValidation val;
    analysis::AnalysisManager mgr;
    const analysis::InterFacts &inf = mgr.interFacts(prog);
    const analysis::CallGraph &cg = inf.callGraph;
    const analysis::OpportunityReport opp =
        analysis::analyzeInlineOpportunities(inf);

    // Replay the deterministic stream once, counting.
    CallCountSink sink(prog, cg, val);
    Executor exec(prog, seed);
    exec.run(events, sink);
    val.dynCalledFuncs = sink.calledFuncs().count();

    // Per-site bound chain: observed-callee mass <= static callee
    // mass <= duplication-growth bound, over executed sites.
    std::vector<std::uint64_t> boundOf(cg.sites.size(), 0);
    for (const analysis::InlineOpportunity &op : opp.ranked)
        boundOf[op.site] = op.dupGrowthBoundInsts;
    const std::uint32_t nFuncs =
        static_cast<std::uint32_t>(prog.functions().size());
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(cg.sites.size()); ++s) {
        if (val.siteCalls[s] == 0)
            continue;
        ++val.sitesExecuted;
        std::uint64_t observed = 0, stat = 0;
        for (FuncId g = 0; g < nFuncs; ++g)
            if (sink.observedAt(s).test(g))
                observed += inf.summaries[g].insts;
        for (const FuncId g : cg.sites[s].callees)
            if (g < nFuncs)
                stat += inf.summaries[g].insts;
        val.observedCalleeInsts += observed;
        val.staticCalleeInsts += stat;
        val.dupGrowthBoundInsts += boundOf[s];
        if (val.error.empty() && observed > stat)
            val.error = "interprocedural: site at block " +
                        std::to_string(cg.sites[s].block) +
                        ": observed callee mass " +
                        std::to_string(observed) +
                        " exceeds static callee mass " +
                        std::to_string(stat);
        if (val.error.empty() && stat > boundOf[s])
            val.error = "interprocedural: site at block " +
                        std::to_string(cg.sites[s].block) +
                        ": static callee mass " +
                        std::to_string(stat) +
                        " exceeds duplication bound " +
                        std::to_string(boundOf[s]);
    }

    // Heuristic tightness: share of dynamic calls flowing through
    // the top quartile of the ranked table (report-only).
    if (val.callTransfers > 0 && !opp.ranked.empty()) {
        const std::size_t quartile =
            std::max<std::size_t>(1, (opp.ranked.size() + 3) / 4);
        std::uint64_t topCalls = 0;
        for (std::size_t i = 0; i < quartile; ++i)
            topCalls += val.siteCalls[opp.ranked[i].site];
        val.topQuartileCallShare =
            static_cast<double>(topCalls) /
            static_cast<double>(val.callTransfers);
    }

    // Cross-tie: the stream is selector-independent, so every
    // shipped selector must have consumed exactly the counted
    // number of events in an unbounded, fault-free run.
    for (const Algorithm algo : allSelectors) {
        SimOptions opts;
        opts.maxEvents = events;
        opts.seed = seed;
        SimResult res = simulate(prog, algo, opts);
        if (val.error.empty() && res.events != val.streamEvents)
            val.error = "interprocedural: selector " +
                        algorithmName(algo) + " consumed " +
                        std::to_string(res.events) +
                        " events, counting replay delivered " +
                        std::to_string(val.streamEvents);
        val.measured.push_back(std::move(res));
    }
    return val;
}

std::string
checkSpecInterprocedural(const GenSpec &spec)
{
    try {
        const Program prog = generateProgram(spec);
        return validateInterprocedural(prog, spec.events,
                                       spec.execSeed)
            .error;
    } catch (const std::exception &e) {
        return std::string("interprocedural: harness fault: ") +
               e.what();
    }
}

} // namespace testing
} // namespace rsel
