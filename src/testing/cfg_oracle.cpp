#include "testing/cfg_oracle.hpp"

#include <algorithm>

namespace rsel {
namespace testing {

CfgOracle::CfgOracle(const Program &prog) : prog_(prog)
{
    for (const BasicBlock &b : prog.blocks()) {
        if (b.terminator() == BranchKind::Call ||
            b.terminator() == BranchKind::IndirectCall)
            returnTargets_.insert(b.fallThroughAddr());
    }
}

bool
CfgOracle::legalEdge(const BasicBlock &from, const BasicBlock &to) const
{
    switch (from.terminator()) {
    case BranchKind::None:
        return to.startAddr() == from.fallThroughAddr();
    case BranchKind::CondDirect:
        return to.startAddr() == from.takenTarget() ||
               to.startAddr() == from.fallThroughAddr();
    case BranchKind::Jump:
    case BranchKind::Call:
        return to.startAddr() == from.takenTarget();
    case BranchKind::IndirectJump:
    case BranchKind::IndirectCall: {
        const IndirectBehavior &ib = prog_.indirectBehavior(from.id());
        return std::find(ib.targets.begin(), ib.targets.end(),
                         to.id()) != ib.targets.end();
    }
    case BranchKind::Return:
        return isReturnTarget(to.startAddr());
    case BranchKind::Halt:
        return false;
    }
    return false;
}

} // namespace testing
} // namespace rsel
