#include "testing/differential.hpp"

#include <memory>
#include <sstream>

#include "analysis/program_verifier.hpp"
#include "analysis/region_verifier.hpp"
#include "dynopt/dynopt_system.hpp"
#include "program/trace_io.hpp"
#include "selection/lei_selector.hpp"
#include "selection/net_selector.hpp"
#include "support/error.hpp"
#include "testing/cfg_oracle.hpp"
#include "testing/invariant_sink.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace testing {

const char *
brokenModeName(BrokenMode mode)
{
    switch (mode) {
    case BrokenMode::None:
        return "none";
    case BrokenMode::Disconnect:
        return "disconnect";
    case BrokenMode::Resubmit:
        return "resubmit";
    case BrokenMode::Alias:
        return "alias";
    case BrokenMode::Noncyclic:
        return "noncyclic";
    }
    return "none";
}

BrokenMode
parseBrokenMode(const std::string &text)
{
    if (text == "none")
        return BrokenMode::None;
    if (text == "disconnect")
        return BrokenMode::Disconnect;
    if (text == "resubmit")
        return BrokenMode::Resubmit;
    if (text == "alias")
        return BrokenMode::Alias;
    if (text == "noncyclic")
        return BrokenMode::Noncyclic;
    fatal("unknown --break-selector mode \"" + text +
          "\" (expected none, disconnect, resubmit, alias or "
          "noncyclic)");
}

namespace {

/**
 * A deliberately buggy selector: NET with a test-only mutation, used
 * to prove the invariant oracle rejects bad selectors instead of
 * rubber-stamping everything.
 */
class BrokenSelector : public RegionSelector
{
  public:
    BrokenSelector(const Program &prog, const CodeCache &cache,
                   BrokenMode mode)
        : oracle_(prog), prog_(prog), cache_(cache), mode_(mode)
    {
        if (mode_ == BrokenMode::Noncyclic)
            // The point of this mode is a bad LEI trace, so the
            // sabotaged inner selector must be LEI itself.
            inner_ = std::make_unique<LeiSelector>(prog, cache,
                                                   leiCfg_);
        else
            inner_ = std::make_unique<NetSelector>(prog, cache,
                                                   NetConfig{});
        if (mode_ == BrokenMode::Alias)
            clone_ = prog;
    }

    std::optional<RegionSpec>
    onInterpreted(const SelectorEvent &event) override
    {
        if (mode_ == BrokenMode::Resubmit && pendingResubmit_) {
            pendingResubmit_ = false;
            return lastSpec_;
        }
        std::optional<RegionSpec> spec = inner_->onInterpreted(event);
        if (spec)
            sabotage(*spec);
        return spec;
    }

    std::optional<RegionSpec>
    onCacheEnter(const BasicBlock &entry) override
    {
        std::optional<RegionSpec> spec = inner_->onCacheEnter(entry);
        if (spec)
            sabotage(*spec);
        return spec;
    }

    std::size_t
    maxLiveCounters() const override
    {
        return inner_->maxLiveCounters();
    }

    std::string
    name() const override
    {
        // Noncyclic masquerades as a buggy LEI: the lei-cyclicity
        // pass only applies to traces claiming to come from LEI.
        if (mode_ == BrokenMode::Noncyclic)
            return "LEI";
        return std::string("BROKEN-") + brokenModeName(mode_);
    }

    /** Trace-size limit of the sabotaged LEI (Noncyclic mode). */
    std::uint32_t maxTraceInsts() const { return leiCfg_.maxTraceInsts; }

  private:
    void
    sabotage(RegionSpec &spec)
    {
        switch (mode_) {
        case BrokenMode::None:
            break;
        case BrokenMode::Resubmit:
            lastSpec_ = spec;
            pendingResubmit_ = true;
            break;
        case BrokenMode::Disconnect:
            sabotageDisconnect(spec);
            break;
        case BrokenMode::Alias:
            // Swap every member for the same-id block of a private
            // program copy. Ids, addresses and sizes all match, so
            // the simulated execution is bit-identical and the
            // dynamic oracle sees nothing; only the static
            // region-members pass (object identity against the real
            // program) rejects it.
            for (const BasicBlock *&b : spec.blocks)
                b = &clone_.block(b->id());
            break;
        case BrokenMode::Noncyclic:
            sabotageNoncyclic(spec);
            break;
        }
    }

    void
    sabotageDisconnect(RegionSpec &spec)
    {
        // Append a block that is neither a member nor a legal CFG
        // successor of the trace tail. Region construction does not
        // validate connectivity, so only the testing oracle's
        // region-legality invariant can catch this.
        if (spec.kind != Region::Kind::Trace || spec.blocks.empty())
            return;
        const BasicBlock &tail = *spec.blocks.back();
        for (const BasicBlock &cand : prog_.blocks()) {
            bool member = false;
            for (const BasicBlock *b : spec.blocks)
                if (b->id() == cand.id())
                    member = true;
            if (member || oracle_.legalEdge(tail, cand))
                continue;
            spec.blocks.push_back(&cand);
            return;
        }
    }

    void
    sabotageNoncyclic(RegionSpec &spec)
    {
        // Truncate the LEI trace to a proper prefix that the
        // lei-cyclicity pass cannot excuse: acyclic, tail can fall
        // through, no cached successor, under the size limit. Such a
        // prefix is still a connected, single-entrance, perfectly
        // executable trace — the dynamic oracle accepts it — but it
        // violates LEI's cyclicity guarantee (paper Figures 5/6).
        // The static pass itself is the cheapest way to find one.
        if (spec.kind != Region::Kind::Trace || spec.blocks.size() < 2)
            return;
        analysis::RegionVerifier verifier(mgr_);
        for (std::size_t len = spec.blocks.size() - 1; len >= 1;
             --len) {
            RegionSpec cand;
            cand.kind = Region::Kind::Trace;
            cand.blocks.assign(spec.blocks.begin(),
                               spec.blocks.begin() + len);
            analysis::RegionVerifyContext ctx;
            ctx.prog = &prog_;
            ctx.cache = &cache_;
            ctx.selector = "LEI";
            ctx.maxTraceInsts = leiCfg_.maxTraceInsts;
            ctx.id = cache_.nextRegionId();
            analysis::DiagnosticEngine diag;
            verifier.runOnSpec(cand, ctx, diag);
            for (const analysis::Diagnostic &d : diag.diagnostics()) {
                if (d.pass == "lei-cyclicity" &&
                    d.severity == analysis::Severity::Error) {
                    spec = std::move(cand);
                    return;
                }
            }
        }
        // Every prefix is excused (e.g. a two-block trace stopped by
        // history gaps); emit the honest trace this time.
    }

    std::unique_ptr<RegionSelector> inner_;
    CfgOracle oracle_;
    const Program &prog_;
    const CodeCache &cache_;
    Program clone_;
    analysis::AnalysisManager mgr_;
    LeiConfig leiCfg_;
    BrokenMode mode_;
    RegionSpec lastSpec_;
    bool pendingResubmit_ = false;
};

/** Reference sink: records the trace and the stream facts. */
class RefSink : public ExecutionSink
{
  public:
    RefSink(std::ostream &os, const Program &prog) : writer_(os, prog)
    {
    }

    bool
    onEvent(const ExecEvent &ev) override
    {
        hash_ = fnvEvent(hash_, ev.block->id(), ev.takenBranch);
        ++events_;
        insts_ += ev.block->instCount();
        return writer_.onEvent(ev);
    }

    void finish() { writer_.finish(); }

    std::uint64_t events_ = 0;
    std::uint64_t insts_ = 0;
    std::uint64_t hash_ = fnvOffset;

  private:
    TraceWriter writer_;
};

SimOptions
makeOptions(const GenSpec &spec)
{
    SimOptions opts;
    opts.maxEvents = spec.events;
    opts.seed = spec.execSeed;
    opts.cache.capacityBytes = spec.cacheKb * 1024;
    return opts;
}

/** First line where two fingerprints differ ("live | replay"). */
std::string
firstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    while (true) {
        const bool ga = static_cast<bool>(std::getline(sa, la));
        const bool gb = static_cast<bool>(std::getline(sb, lb));
        if (!ga && !gb)
            return "(no difference found)";
        if (!ga || !gb || la != lb)
            return (ga ? la : "<end>") + " | " + (gb ? lb : "<end>");
    }
}

} // namespace

std::string
resultFingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << "selector=" << r.selector << "\n"
       << "events=" << r.events << "\n"
       << "totalInsts=" << r.totalInsts << "\n"
       << "cachedInsts=" << r.cachedInsts << "\n"
       << "interpretedInsts=" << r.interpretedInsts << "\n"
       << "regionCount=" << r.regionCount << "\n"
       << "expansionInsts=" << r.expansionInsts << "\n"
       << "expansionBytes=" << r.expansionBytes << "\n"
       << "exitStubs=" << r.exitStubs << "\n"
       << "estimatedCacheBytes=" << r.estimatedCacheBytes << "\n"
       << "icacheAccesses=" << r.icacheAccesses << "\n"
       << "icacheMisses=" << r.icacheMisses << "\n"
       << "cacheCapacityBytes=" << r.cacheCapacityBytes << "\n"
       << "cacheEvictions=" << r.cacheEvictions << "\n"
       << "cacheFlushes=" << r.cacheFlushes << "\n"
       << "cacheRegenerations=" << r.cacheRegenerations << "\n"
       << "cacheLiveBytes=" << r.cacheLiveBytes << "\n"
       << "regionTransitions=" << r.regionTransitions << "\n"
       << "interRegionLinks=" << r.interRegionLinks << "\n"
       << "regionExecutions=" << r.regionExecutions << "\n"
       << "cycleTerminations=" << r.cycleTerminations << "\n"
       << "spanningRegions=" << r.spanningRegions << "\n"
       << "coverSet90=" << r.coverSet90 << "\n"
       << "coverSetSaturated=" << r.coverSetSaturated << "\n"
       << "maxLiveCounters=" << r.maxLiveCounters << "\n"
       << "peakObservedTraceBytes=" << r.peakObservedTraceBytes
       << "\n"
       << "markSweepRegions=" << r.markSweepRegions << "\n"
       << "markSweepMultiIterRegions=" << r.markSweepMultiIterRegions
       << "\n"
       << "exitDominatedRegions=" << r.exitDominatedRegions << "\n"
       << "exitDominatedDupInsts=" << r.exitDominatedDupInsts << "\n"
       << "duplicatedInsts=" << r.duplicatedInsts << "\n"
       << "regionsWithInternalCycle=" << r.regionsWithInternalCycle
       << "\n"
       << "licmCapableRegions=" << r.licmCapableRegions << "\n"
       << "dualSplitRegions=" << r.dualSplitRegions << "\n"
       << "joinBlocksTotal=" << r.joinBlocksTotal << "\n"
       << "faultsInjected=" << r.recovery.faultsInjected << "\n"
       << "translationFailures=" << r.recovery.translationFailures
       << "\n"
       << "blockInvalidations=" << r.recovery.blockInvalidations
       << "\n"
       << "regionsInvalidated=" << r.recovery.regionsInvalidated
       << "\n"
       << "flushStorms=" << r.recovery.flushStorms << "\n"
       << "selectorResets=" << r.recovery.selectorResets << "\n"
       << "retries=" << r.recovery.retries << "\n"
       << "backoffSuppressed=" << r.recovery.backoffSuppressed << "\n"
       << "blacklistSuppressed=" << r.recovery.blacklistSuppressed
       << "\n"
       << "blacklistedEntrances=" << r.recovery.blacklistedEntrances
       << "\n"
       << "retranslations=" << r.recovery.retranslations << "\n";
    for (const RegionStats &s : r.regions)
        os << "region" << s.id << "="
           << (s.kind == Region::Kind::Trace ? "T" : "M") << ","
           << s.blockCount << "," << s.instCount << "," << s.byteSize
           << "," << s.exitStubs << "," << s.spansCycle << ","
           << s.executedInsts << "," << s.executions << ","
           << s.cycleEnds << "\n";
    return os.str();
}

DiffReport
runDifferential(const GenSpec &rawSpec, BrokenMode broken, bool verify,
                const resilience::FaultPlan &rawFaults)
{
    GenSpec spec = rawSpec;
    spec.clamp();
    resilience::FaultPlan faults = rawFaults;
    faults.clamp();
    // Alias and Noncyclic are invisible to the dynamic oracle by
    // construction; they only make sense with the static verifier on.
    const bool staticOnlyBug = broken == BrokenMode::Alias ||
                               broken == BrokenMode::Noncyclic;
    DiffReport report;
    try {
        // 1. Generator determinism and save/load round trip.
        const Program prog = generateProgram(spec);
        report.programBlocks =
            static_cast<std::uint32_t>(prog.blocks().size());

        // Every generated program must satisfy the static program
        // verifier. Lint warnings (unreachable blocks, dead
        // functions) are legitimate in random programs and pass;
        // an error diagnostic invalidates the whole matrix.
        {
            analysis::AnalysisManager mgr;
            analysis::DiagnosticEngine diag;
            analysis::ProgramVerifier(mgr).run(prog, diag);
            if (diag.hasErrors()) {
                report.error = "program verifier: " +
                               diag.firstError();
                return report;
            }
        }
        std::ostringstream text1, text2;
        saveProgram(prog, text1);
        {
            const Program again = generateProgram(spec);
            saveProgram(again, text2);
        }
        if (text1.str() != text2.str()) {
            report.error = "generator is not deterministic: two "
                           "builds of the same spec differ";
            return report;
        }
        {
            std::istringstream in(text1.str());
            const Program loaded = loadProgram(in);
            std::ostringstream text3;
            saveProgram(loaded, text3);
            if (text1.str() != text3.str()) {
                report.error = "save/load round trip changed the "
                               "program text";
                return report;
            }
        }

        // 2. Reference architectural run, recorded.
        std::ostringstream traceOs;
        RefSink ref(traceOs, prog);
        {
            Executor exec(prog, spec.execSeed);
            exec.run(spec.events, ref);
            ref.finish();
        }
        const std::string trace = traceOs.str();
        const SimOptions opts = makeOptions(spec);

        if (broken != BrokenMode::None) {
            // Only the sabotaged selector: prove the oracle catches
            // it. An empty report here means it was NOT caught.
            DynOptSystem sys(prog); // unbounded, so Resubmit asserts
            sys.useCustom([broken](const Program &p,
                                   const CodeCache &c) {
                return std::make_unique<BrokenSelector>(p, c, broken);
            });
            if (verify || staticOnlyBug)
                sys.enableVerifyOnSubmit();
            if (broken == BrokenMode::Noncyclic)
                sys.setLeiTraceLimitHint(
                    static_cast<const BrokenSelector &>(
                        sys.selector()).maxTraceInsts());
            InvariantSink inv(prog, sys);
            try {
                Executor exec(prog, spec.execSeed);
                exec.run(spec.events, inv);
                inv.finish();
            } catch (const std::exception &e) {
                report.error = std::string("broken selector (") +
                               brokenModeName(broken) +
                               ") caught: " + e.what();
            }
            return report;
        }

        // 3-5. The live + replay matrix over every selector.
        bool haveCross = false;
        std::uint64_t crossInsts = 0;
        for (const Algorithm algo : allSelectors) {
            const std::string name = algorithmName(algo);
            SimResult live;
            try {
                Executor exec(prog, spec.execSeed);
                DynOptSystem sys(prog, opts.cache, opts.icache);
                attachAlgorithm(sys, algo, opts);
                if (verify)
                    sys.enableVerifyOnSubmit();
                sys.armFaults(faults);
                InvariantSink inv(prog, sys);
                exec.run(spec.events, inv);
                live = inv.finish();
                if (inv.events() != ref.events_ ||
                    inv.streamHash() != ref.hash_) {
                    report.error =
                        name + ": architectural stream diverged "
                               "from the raw executor (transparency)";
                    return report;
                }
            } catch (const std::exception &e) {
                report.error = name + " live run: " + e.what();
                return report;
            }

            SimResult replayed;
            try {
                std::istringstream is(trace);
                TraceReplayer replayer(prog, is);
                DynOptSystem sys(prog, opts.cache, opts.icache);
                attachAlgorithm(sys, algo, opts);
                if (verify)
                    sys.enableVerifyOnSubmit();
                sys.armFaults(faults);
                InvariantSink inv(prog, sys);
                replayer.run(spec.events, inv);
                replayed = inv.finish();
            } catch (const std::exception &e) {
                report.error = name + " replay run: " + e.what();
                return report;
            }

            const std::string fpLive = resultFingerprint(live);
            const std::string fpReplay = resultFingerprint(replayed);
            if (fpLive != fpReplay) {
                report.error =
                    name + ": record->replay round trip diverged: " +
                    firstDiff(fpLive, fpReplay);
                return report;
            }

            // Batched dispatch legs: the same simulation driven
            // through EventBatch deliveries must be byte-identical to
            // the per-event run. A prime batch size guarantees batch
            // boundaries land mid-region and mid-trace-formation.
            constexpr std::size_t batchedLegSize = 509;
            SimResult batchedLive;
            try {
                Executor exec(prog, spec.execSeed);
                DynOptSystem sys(prog, opts.cache, opts.icache);
                attachAlgorithm(sys, algo, opts);
                if (verify)
                    sys.enableVerifyOnSubmit();
                sys.armFaults(faults);
                exec.runBatched(spec.events, sys, batchedLegSize);
                batchedLive = sys.finish();
            } catch (const std::exception &e) {
                report.error = name + " batched live run: " + e.what();
                return report;
            }
            if (const std::string fp = resultFingerprint(batchedLive);
                fp != fpLive) {
                report.error =
                    name + ": batched dispatch diverged from the "
                           "per-event run: " + firstDiff(fpLive, fp);
                return report;
            }

            SimResult batchedReplay;
            try {
                std::istringstream is(trace);
                TraceReplayer replayer(prog, is);
                DynOptSystem sys(prog, opts.cache, opts.icache);
                attachAlgorithm(sys, algo, opts);
                if (verify)
                    sys.enableVerifyOnSubmit();
                sys.armFaults(faults);
                replayer.runBatched(spec.events, sys, batchedLegSize);
                batchedReplay = sys.finish();
            } catch (const std::exception &e) {
                report.error =
                    name + " batched replay run: " + e.what();
                return report;
            }
            if (const std::string fp =
                    resultFingerprint(batchedReplay);
                fp != fpLive) {
                report.error =
                    name + ": batched replay diverged from the "
                           "per-event run: " + firstDiff(fpLive, fp);
                return report;
            }
            if (!haveCross) {
                haveCross = true;
                crossInsts = live.totalInsts;
            } else if (live.totalInsts != crossInsts) {
                report.error =
                    name + ": architectural instruction count "
                           "disagrees across selectors (" +
                    std::to_string(live.totalInsts) + " vs " +
                    std::to_string(crossInsts) + ")";
                return report;
            }
            if (live.events != ref.events_) {
                report.error = name + ": event count disagrees with "
                                      "the reference run";
                return report;
            }
        }
    } catch (const std::exception &e) {
        report.error = std::string("unexpected failure: ") + e.what();
    }
    return report;
}

} // namespace testing
} // namespace rsel
