#include "testing/invariant_sink.hpp"

#include <deque>
#include <unordered_set>

namespace rsel {
namespace testing {

namespace {

std::string
blockDesc(const BasicBlock *b)
{
    if (!b)
        return "<none>";
    return "block " + std::to_string(b->id()) + " (" +
           branchKindName(b->terminator()) + ")";
}

} // namespace

InvariantSink::InvariantSink(const Program &prog, DynOptSystem &system)
    : prog_(prog), system_(system), oracle_(prog)
{
}

void
InvariantSink::violate(const std::string &invariant,
                       const std::string &detail) const
{
    throw InvariantViolation("invariant \"" + invariant +
                             "\" violated at event " +
                             std::to_string(events_) + ": " + detail);
}

void
InvariantSink::checkStream(const ExecEvent &ev) const
{
    const BasicBlock &cur = *ev.block;
    if (prevHalted_)
        violate("stream-legality",
                "event delivered after a Halt block");
    if (!prev_) {
        if (cur.id() != prog_.entry())
            violate("stream-legality",
                    "stream does not start at the program entry (got " +
                        blockDesc(&cur) + ")");
        if (ev.takenBranch)
            violate("stream-legality",
                    "first event flagged as a taken branch");
        return;
    }
    if (!oracle_.legalEdge(*prev_, cur))
        violate("stream-legality",
                blockDesc(prev_) + " -> " + blockDesc(&cur) +
                    " is not a CFG edge");
    if (ev.takenBranch) {
        if (ev.branchAddr != prev_->lastInstAddr())
            violate("stream-legality",
                    "taken-branch address does not name the previous "
                    "block's terminator (" +
                        blockDesc(prev_) + " -> " + blockDesc(&cur) +
                        ")");
    } else {
        if (cur.startAddr() != prev_->fallThroughAddr())
            violate("stream-legality",
                    "not-taken event does not land on the previous "
                    "block's fall-through (" +
                        blockDesc(prev_) + " -> " + blockDesc(&cur) +
                        ")");
    }
}

void
InvariantSink::checkDisposition(const ExecEvent &ev)
{
    const StepTrace &st = system_.lastStep();
    if (st.where == StepTrace::Where::Interpreted) {
        interpretedInsts_ += ev.block->instCount();
        return;
    }
    const CodeCache &cache = system_.cache();
    if (st.region >= cache.regionCount())
        violate("transparency", "cached step names unknown region " +
                                    std::to_string(st.region));
    const Region &r = cache.region(st.region);
    if (st.pos >= r.blocks().size())
        violate("transparency",
                "cached step position " + std::to_string(st.pos) +
                    " out of range for region " +
                    std::to_string(st.region));
    if (r.blocks()[st.pos] != ev.block)
        violate("transparency",
                "region " + std::to_string(st.region) + " executed " +
                    blockDesc(r.blocks()[st.pos]) +
                    " where the architectural stream has " +
                    blockDesc(ev.block));
    if (st.enteredRegion && st.pos != 0)
        violate("transparency",
                "region entry did not start at the region top");
    cachedInsts_ += ev.block->instCount();
}

void
InvariantSink::checkRegion(const Region &region) const
{
    const std::vector<const BasicBlock *> &blocks = region.blocks();
    if (blocks.empty())
        violate("region-legality", "region " +
                                       std::to_string(region.id()) +
                                       " has no blocks");
    std::unordered_set<BlockId> seen;
    for (const BasicBlock *b : blocks)
        if (!seen.insert(b->id()).second)
            violate("region-legality",
                    "region " + std::to_string(region.id()) +
                        " contains " + blockDesc(b) + " twice");

    if (region.kind() == Region::Kind::Trace) {
        // A trace must be one connected path of real CFG edges.
        for (std::size_t i = 0; i + 1 < blocks.size(); ++i)
            if (!oracle_.legalEdge(*blocks[i], *blocks[i + 1]))
                violate("region-legality",
                        "trace region " + std::to_string(region.id()) +
                            " breaks between " + blockDesc(blocks[i]) +
                            " and " + blockDesc(blocks[i + 1]));
        return;
    }

    // Multi-path: every member must be reachable from the entry
    // through CFG edges that stay within the member set.
    std::unordered_set<BlockId> reached{blocks.front()->id()};
    std::deque<const BasicBlock *> frontier{blocks.front()};
    while (!frontier.empty()) {
        const BasicBlock *from = frontier.front();
        frontier.pop_front();
        for (const BasicBlock *to : blocks) {
            if (reached.count(to->id()))
                continue;
            if (oracle_.legalEdge(*from, *to)) {
                reached.insert(to->id());
                frontier.push_back(to);
            }
        }
    }
    for (const BasicBlock *b : blocks)
        if (!reached.count(b->id()))
            violate("region-legality",
                    "multi-path region " + std::to_string(region.id()) +
                        ": " + blockDesc(b) +
                        " unreachable from the region entry");
}

void
InvariantSink::checkNewRegions()
{
    const CodeCache &cache = system_.cache();
    while (checkedRegions_ < cache.regionCount())
        checkRegion(cache.region(
            static_cast<RegionId>(checkedRegions_++)));
}

bool
InvariantSink::onEvent(const ExecEvent &ev)
{
    checkStream(ev);
    hash_ = fnvEvent(hash_, ev.block->id(), ev.takenBranch);
    ++events_;
    insts_ += ev.block->instCount();

    const bool keep = system_.onEvent(ev);

    checkDisposition(ev);
    checkNewRegions();
    prev_ = ev.block;
    prevHalted_ = ev.block->terminator() == BranchKind::Halt;
    return keep;
}

SimResult
InvariantSink::finish()
{
    SimResult res = system_.finish();
    auto expect = [this](const char *what, std::uint64_t got,
                         std::uint64_t want) {
        if (got != want)
            violate("conservation",
                    std::string(what) + ": result has " +
                        std::to_string(got) +
                        ", independent count is " +
                        std::to_string(want));
    };
    expect("events", res.events, events_);
    expect("total instructions", res.totalInsts, insts_);
    expect("cached instructions", res.cachedInsts, cachedInsts_);
    expect("interpreted instructions", res.interpretedInsts,
           interpretedInsts_);
    const std::string closure = res.conservationError();
    if (!closure.empty())
        violate("conservation", closure);
    return res;
}

} // namespace testing
} // namespace rsel
