/**
 * @file
 * The cross-selector differential oracle.
 *
 * One differential check takes a GenSpec and runs the full matrix:
 *
 *  1. Generator determinism — the spec must yield a byte-identical
 *     program twice, and the program must survive a save → load →
 *     save round trip unchanged.
 *  2. A reference architectural run (raw Executor, no optimizer)
 *     records the trace and the stream hash.
 *  3. Every shipped selection algorithm (allSelectors) runs live
 *     under an InvariantSink; its architectural stream must equal
 *     the reference bit-for-bit (transparency across selectors).
 *  4. Each algorithm then replays the recorded trace; the replayed
 *     SimResult must be field-for-field identical to the live one
 *     (record → replay round trip).
 *  5. All selectors must agree on the architectural facts (events,
 *     total instructions) even while disagreeing on regions.
 *
 * Optionally an intentionally broken selector joins the matrix
 * (BrokenMode) to prove the oracle actually rejects bad selectors.
 */

#ifndef RSEL_TESTING_DIFFERENTIAL_HPP
#define RSEL_TESTING_DIFFERENTIAL_HPP

#include <string>

#include "metrics/sim_result.hpp"
#include "resilience/fault_plan.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/**
 * Test-only selector sabotage, for validating the oracle itself.
 *
 * Disconnect and Resubmit are caught by the dynamic invariant
 * oracle. Alias and Noncyclic are *dynamically invisible* — the
 * simulated execution is bit-identical — and only the static
 * verifier (analysis::RegionVerifier) rejects them, so those two
 * modes always run with verify-on-submit enabled.
 */
enum class BrokenMode : std::uint8_t {
    None,       ///< No sabotage.
    Disconnect, ///< Append a CFG-disconnected block to each trace.
    Resubmit,   ///< Re-emit an already-installed region spec.
    Alias,      ///< Swap members for same-id blocks of a program copy.
    Noncyclic,  ///< Truncate LEI traces to an inexcusably acyclic prefix.
};

/** Mode name as accepted by --break-selector. */
const char *brokenModeName(BrokenMode mode);

/** Parse a --break-selector argument. @throws FatalError. */
BrokenMode parseBrokenMode(const std::string &text);

/**
 * Deterministic text fingerprint of a SimResult: every counter the
 * record→replay round trip must preserve, one "key=value" line each.
 * Two runs are considered identical iff their fingerprints match.
 */
std::string resultFingerprint(const SimResult &result);

/** Outcome of one differential check. */
struct DiffReport
{
    /** Empty = all oracles passed; else the first failure. */
    std::string error;
    /** Static block count of the generated program. */
    std::uint32_t programBlocks = 0;
};

/**
 * Run the full differential matrix for `spec`. Never throws: all
 * failures (including FatalError / PanicError / InvariantViolation
 * from any layer) are captured in the report.
 *
 * The generated program is always linted by the static
 * ProgramVerifier first; an error diagnostic fails the check. With
 * `verify` set, every live and replay system additionally runs with
 * verify-on-submit, so each emitted region passes the static
 * RegionVerifier before it is cached.
 *
 * An armed `faults` plan is injected into every live and replay
 * system (the reference architectural run stays fault-free): the
 * whole oracle matrix — transparency, conservation, record→replay
 * fingerprint equality — must hold under the faulted runs too, which
 * is exactly the graceful-degradation guarantee.
 */
DiffReport runDifferential(const GenSpec &spec,
                           BrokenMode broken = BrokenMode::None,
                           bool verify = false,
                           const resilience::FaultPlan &faults = {});

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_DIFFERENTIAL_HPP
