/**
 * @file
 * The deterministic fuzzing harness.
 *
 * Drives the differential oracle over a corpus of seeds: each seed
 * maps to a GenSpec (GenSpec::fromSeed), each spec to a generated
 * program and a full cross-selector differential check. Checks run
 * in parallel on a thread pool, but results are reported in seed
 * order and shrinking is serial, so the summary is identical for
 * any job count — determinism is part of the contract.
 *
 * On failure the harness greedily shrinks the spec and emits a
 * complete reproducer: the minimal spec string, the failure, the
 * generated program text, and the rselect-fuzz command line that
 * replays it.
 */

#ifndef RSEL_TESTING_FUZZ_HARNESS_HPP
#define RSEL_TESTING_FUZZ_HARNESS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "testing/differential.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/** Configuration of one fuzz run. */
struct FuzzOptions
{
    /** Number of consecutive seeds to fuzz. */
    std::uint64_t seeds = 25;
    /** First seed. */
    std::uint64_t startSeed = 1;
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    std::size_t jobs = 0;
    /** Override events per run (0 = keep each spec's own). */
    std::uint64_t events = 0;
    /** Optional selector sabotage (oracle self-test). */
    BrokenMode broken = BrokenMode::None;
    /** Run the static verifier on every emitted region (--verify). */
    bool verify = false;
    /**
     * After a clean differential, additionally validate the static
     * region-quality predictions against measured unbounded-cache
     * runs of every selector (--analyze).
     */
    bool analyze = false;
    /**
     * After a clean differential, additionally validate the
     * interprocedural analysis (call-graph soundness, return-edge
     * layout, duplication bounds) against the counted dynamic call
     * behaviour of every seed (--interprocedural).
     */
    bool interprocedural = false;
    /** Shrink failing specs and build reproducers. */
    bool shrink = true;
    /** Shrink at most this many failures (the rest report as-is). */
    std::uint32_t maxShrinks = 3;
    /**
     * Fault-fuzzing mode: pair every seed with its own fault plan
     * (FaultPlan::fromSeed of the same seed) and run the whole
     * differential matrix under injected faults.
     */
    bool faultFuzz = false;
    /** Fixed fault plan applied to every seed (when armed). */
    resilience::FaultPlan faults;
};

/** One failing seed, with its reproducer. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    /** The spec derived from the seed. */
    GenSpec spec;
    /** Failure at the original spec. */
    std::string error;
    /** Fault plan active for this seed (disarmed when fault-free). */
    resilience::FaultPlan faults;
    /** True if the shrinker ran for this failure. */
    bool shrunk = false;
    /** Minimal still-failing spec. */
    GenSpec shrunkSpec;
    /** Failure at the minimal spec. */
    std::string shrunkError;
    /** Static block count of the minimal spec's program. */
    std::uint32_t shrunkBlocks = 0;
    /** saveProgram text of the minimal program. */
    std::string reproProgram;
    /** Command line that replays the minimal failure. */
    std::string cliLine;
};

/** Outcome of a fuzz run; identical for any job count. */
struct FuzzSummary
{
    std::uint64_t seedsRun = 0;
    std::uint64_t failures = 0;
    std::vector<FuzzFailure> detail;
};

/** The rselect-fuzz command line replaying `spec` under `mode`. */
std::string fuzzCliLine(const GenSpec &spec, BrokenMode mode,
                        bool verify = false,
                        const resilience::FaultPlan &faults = {},
                        bool analyze = false,
                        bool interprocedural = false);

/** Run the corpus described by `opts`. */
FuzzSummary runFuzz(const FuzzOptions &opts);

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_FUZZ_HARNESS_HPP
