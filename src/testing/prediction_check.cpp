#include "testing/prediction_check.hpp"

#include "analysis/analysis_manager.hpp"
#include "dynopt/dynopt_system.hpp"
#include "testing/random_program.hpp"

namespace rsel {
namespace testing {

PredictionValidation
validatePredictions(const Program &prog, std::uint64_t events,
                    std::uint64_t seed)
{
    PredictionValidation val;
    analysis::AnalysisManager mgr;
    val.report = analysis::computeStaticReport(mgr, prog);

    for (const Algorithm algo : allSelectors) {
        const std::string name = algorithmName(algo);
        const analysis::SelectorPrediction *pred =
            analysis::findPrediction(val.report, name);
        if (pred == nullptr) {
            // A selector the predictor does not model: a wiring bug,
            // reported as a violation rather than silently skipped.
            if (val.error.empty())
                val.error = "static-prediction: selector " + name +
                            ": no formation model";
            continue;
        }

        SelectorValidation sv;
        sv.prediction = *pred;
        SimOptions opts; // default cache is unbounded, faults off
        opts.maxEvents = events;
        opts.seed = seed;
        sv.measured = simulate(prog, algo, opts);
        sv.violations =
            analysis::checkPrediction(sv.prediction, sv.measured);
        if (val.error.empty() && !sv.violations.empty())
            val.error = "static-prediction: selector " + name + ": " +
                        sv.violations.front();
        val.selectors.push_back(std::move(sv));
    }
    return val;
}

std::string
checkSpecPredictions(const GenSpec &spec)
{
    try {
        const Program prog = generateProgram(spec);
        return validatePredictions(prog, spec.events, spec.execSeed)
            .error;
    } catch (const std::exception &e) {
        return std::string("static-prediction: harness fault: ") +
               e.what();
    }
}

} // namespace testing
} // namespace rsel
