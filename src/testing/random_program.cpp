#include "testing/random_program.hpp"

#include <algorithm>
#include <vector>

#include "program/program_builder.hpp"
#include "support/random.hpp"

namespace rsel {
namespace testing {

namespace {

/** A taken probability near 0.5 (unbiased) or near 0/1 (biased). */
double
drawTakenProb(Rng &rng, bool unbiased)
{
    if (unbiased)
        return 0.35 + 0.3 * rng.nextDouble();
    if (rng.nextBool(0.5))
        return 0.85 + 0.13 * rng.nextDouble();
    return 0.02 + 0.13 * rng.nextDouble();
}

CondBehavior
drawCondBehavior(Rng &rng, const GenSpec &spec)
{
    const bool unbiased = rng.nextBool(spec.pUnbiased / 100.0);
    const bool phased =
        spec.phases > 1 && rng.nextBool(spec.pPhased / 100.0);
    if (!phased)
        return CondBehavior::bernoulli(drawTakenProb(rng, unbiased));
    std::vector<double> probs;
    probs.reserve(spec.phases);
    for (std::uint32_t p = 0; p < spec.phases; ++p)
        probs.push_back(drawTakenProb(rng, unbiased));
    return CondBehavior::phased(std::move(probs));
}

/** Sample up to `want` distinct entries from `pool` (consumed). */
std::vector<BlockId>
sampleDistinct(Rng &rng, std::vector<BlockId> pool, std::size_t want)
{
    std::vector<BlockId> out;
    while (out.size() < want && !pool.empty()) {
        const std::size_t i = rng.nextBelow(pool.size());
        out.push_back(pool[i]);
        pool.erase(pool.begin() +
                   static_cast<std::ptrdiff_t>(i));
    }
    return out;
}

IndirectBehavior
drawIndirectBehavior(Rng &rng, const GenSpec &spec,
                     std::vector<BlockId> pool)
{
    std::vector<BlockId> targets = sampleDistinct(
        rng, std::move(pool),
        std::max<std::size_t>(1, spec.indirectTargets));
    const bool phased =
        spec.phases > 1 && rng.nextBool(spec.pPhased / 100.0);
    const std::uint32_t nphases = phased ? spec.phases : 1;
    IndirectBehavior b;
    b.targets = std::move(targets);
    for (std::uint32_t p = 0; p < nphases; ++p) {
        std::vector<double> w;
        w.reserve(b.targets.size());
        for (std::size_t t = 0; t < b.targets.size(); ++t)
            w.push_back(0.05 + rng.nextDouble());
        b.weightsByPhase.push_back(std::move(w));
    }
    return b;
}

} // namespace

Program
generateProgram(const GenSpec &rawSpec)
{
    GenSpec spec = rawSpec;
    spec.clamp();

    Rng rng(spec.buildSeed ^ 0xc0ffee1234567890ull);
    ProgramBuilder b(spec.buildSeed);

    // Pass 1: create every function and block up front so indirect
    // branches can target any block program-wide. The entry function
    // is created LAST: callees then sit at lower addresses and every
    // call is a backward transfer, giving the interprocedural-cycle
    // shape (paper Figure 2) that distinguishes NET from LEI.
    std::vector<std::vector<BlockId>> funcBlocks(spec.funcs);
    std::vector<BlockId> allBlocks;
    for (std::uint32_t f = 0; f < spec.funcs; ++f) {
        const bool isEntry = f + 1 == spec.funcs;
        b.beginFunction(isEntry ? "main" : "f" + std::to_string(f));
        const std::uint32_t nb = static_cast<std::uint32_t>(
            rng.nextRange(2, spec.blocks));
        for (std::uint32_t k = 0; k < nb; ++k) {
            const BlockId id = b.block(
                static_cast<unsigned>(rng.nextRange(1, 8)));
            funcBlocks[f].push_back(id);
            allBlocks.push_back(id);
        }
    }

    // Dead functions: statically unreachable callees. A dead
    // function is excluded from every call and indirect-jump target
    // pool below, so nothing outside it can enter it — the
    // interprocedural-reachability and dead-function lints get real
    // corpus coverage. The entry function is always live.
    std::vector<std::uint8_t> dead(spec.funcs, 0);
    for (std::uint32_t f = 0; f + 1 < spec.funcs; ++f)
        dead[f] = rng.nextBool(spec.pDeadFn / 100.0) ? 1 : 0;
    std::vector<BlockId> liveBlocks;
    for (std::uint32_t f = 0; f < spec.funcs; ++f)
        if (!dead[f])
            liveBlocks.insert(liveBlocks.end(), funcBlocks[f].begin(),
                              funcBlocks[f].end());

    // Pass 2: terminators and behaviours. Blocks 0..nb-2 of each
    // function get random terminators (their fall-through successor
    // always exists); the last block returns — or halts in the entry
    // function.
    for (std::uint32_t f = 0; f < spec.funcs; ++f) {
        const bool isEntry = f + 1 == spec.funcs;
        const std::vector<BlockId> &bl = funcBlocks[f];
        const std::uint32_t nb = static_cast<std::uint32_t>(bl.size());
        bool hasBackEdge = false;

        // Guarded recursion: a non-entry function may plant one
        // recursive call — to itself, or forward to a higher
        // non-entry function (whose own backward pCall edges then
        // close a mutual-recursion ring). The call block is fronted
        // by a guard branch that skips it with probability 0.6, so
        // dynamic recursion depth is geometric, and the executor's
        // call-depth tripwire sits above the event budget anyway
        // (see Executor::maxCallDepth).
        std::uint32_t recurseAt = invalidBlock;
        FuncId recurseTarget = invalidFunc;
        if (!isEntry && nb >= 4 &&
            rng.nextBool(spec.pRecurse / 100.0)) {
            std::vector<FuncId> candidates{f};
            for (std::uint32_t g = f + 1; g + 1 < spec.funcs; ++g)
                if (dead[f] || !dead[g])
                    candidates.push_back(g);
            recurseTarget = candidates[rng.nextBelow(candidates.size())];
            recurseAt = static_cast<std::uint32_t>(
                rng.nextRange(0, nb - 3));
        }

        for (std::uint32_t k = 0; k + 1 < nb; ++k) {
            const BlockId src = bl[k];

            if (k == recurseAt) {
                // Guard: taken arm hops over the recursive call.
                b.condTo(src, bl[k + 2], CondBehavior::bernoulli(0.6));
                continue;
            }
            if (recurseAt != invalidBlock && k == recurseAt + 1) {
                b.callTo(src, recurseTarget);
                continue;
            }

            // The entry function's last assignable block is always a
            // driver latch back to its top: usually with a huge trip
            // count, so the program re-executes its structure until
            // the event budget instead of halting after one pass
            // (hot-threshold selectors need repetition). A minority
            // of seeds keep a short trip count so early program halt
            // stays covered too.
            if (isEntry && k + 2 == nb) {
                const std::uint32_t trips =
                    rng.nextBool(0.9)
                        ? 1'000'000'000
                        : static_cast<std::uint32_t>(
                              rng.nextRange(1, spec.tripMax));
                b.loopTo(src, bl[0], trips, trips);
                continue;
            }

            // Give every function of 3+ blocks at least one loop so
            // selectors have hot cycles to find: if we reach the last
            // assignable block without a back edge, force a latch.
            if (k + 2 == nb && nb >= 3 && !hasBackEdge) {
                const std::uint32_t tmin = static_cast<std::uint32_t>(
                    rng.nextRange(1, spec.tripMax));
                const std::uint32_t tmax = static_cast<std::uint32_t>(
                    rng.nextRange(tmin, spec.tripMax));
                b.loopTo(src, bl[0], tmin, tmax);
                hasBackEdge = true;
                continue;
            }

            const std::uint64_t roll = rng.nextBelow(100);
            std::uint64_t acc = spec.pLoop;
            if (roll < acc && k >= 1) {
                const BlockId head =
                    bl[rng.nextBelow(k)]; // strictly earlier block
                const std::uint32_t tmin = static_cast<std::uint32_t>(
                    rng.nextRange(1, spec.tripMax));
                const std::uint32_t tmax = static_cast<std::uint32_t>(
                    rng.nextRange(tmin, spec.tripMax));
                b.loopTo(src, head, tmin, tmax);
                hasBackEdge = true;
                continue;
            }
            acc += spec.pCond;
            if (roll < acc) {
                // Any block except the fall-through successor: a
                // taken target equal to the fall-through would make
                // recorded streams ambiguous under replay.
                std::uint32_t t = static_cast<std::uint32_t>(
                    rng.nextBelow(nb - 1));
                if (t >= k + 1)
                    ++t;
                b.condTo(src, bl[t], drawCondBehavior(rng, spec));
                hasBackEdge = hasBackEdge || t <= k;
                continue;
            }
            acc += spec.pIndirect;
            if (roll < acc) {
                // Target pools exclude dead functions so they stay
                // genuinely unreachable (a dead caller may target
                // anything: its edges never execute).
                std::vector<BlockId> entries;
                for (std::uint32_t g = 0; g < f; ++g)
                    if (dead[f] || !dead[g])
                        entries.push_back(funcBlocks[g][0]);
                if (!entries.empty() && rng.nextBool(0.5)) {
                    // Indirect call to earlier function entries.
                    b.indirectCall(src, drawIndirectBehavior(
                                            rng, spec,
                                            std::move(entries)));
                } else {
                    b.indirectJump(src,
                                   drawIndirectBehavior(
                                       rng, spec,
                                       dead[f] ? allBlocks
                                               : liveBlocks));
                }
                continue;
            }
            acc += spec.pCall;
            if (roll < acc && f > 0) {
                // Direct call to an earlier (lower-address) live
                // function: backward transfers give the
                // interprocedural-cycle shape of paper Figure 2,
                // and together with the forward recursion edges
                // above they close mutual-recursion rings.
                std::vector<FuncId> callees;
                for (std::uint32_t g = 0; g < f; ++g)
                    if (dead[f] || !dead[g])
                        callees.push_back(g);
                if (!callees.empty()) {
                    b.callTo(src,
                             callees[rng.nextBelow(callees.size())]);
                    continue;
                }
            }
            acc += spec.pJump;
            if (roll < acc && k + 2 < nb) {
                const std::uint32_t t = static_cast<std::uint32_t>(
                    rng.nextRange(k + 2, nb - 1));
                b.jumpTo(src, bl[t]);
                continue;
            }
            // Fall through (BranchKind::None): nothing to set.
        }
        if (f + 1 == spec.funcs)
            b.halt(bl[nb - 1]);
        else
            b.ret(bl[nb - 1]);
    }

    b.setEntry(b.functionEntry(spec.funcs - 1));
    if (spec.phases > 1) {
        std::vector<std::uint64_t> lengths;
        for (std::uint32_t p = 0; p < spec.phases; ++p)
            lengths.push_back(rng.nextRange(400, 2500));
        b.setPhaseLengths(std::move(lengths));
    }
    return b.build();
}

} // namespace testing
} // namespace rsel
