#include "testing/fuzz_harness.hpp"

#include <sstream>

#include "driver/thread_pool.hpp"
#include "program/trace_io.hpp"
#include "testing/random_program.hpp"
#include "testing/shrinker.hpp"

namespace rsel {
namespace testing {

std::string
fuzzCliLine(const GenSpec &spec, BrokenMode mode, bool verify,
            const resilience::FaultPlan &faults)
{
    std::string line = "rselect-fuzz --spec '" + spec.toString() + "'";
    if (mode != BrokenMode::None)
        line += std::string(" --break-selector ") +
                brokenModeName(mode);
    if (verify)
        line += " --verify";
    if (faults.armed())
        line += " --fault-spec '" + faults.toString() + "'";
    return line;
}

FuzzSummary
runFuzz(const FuzzOptions &opts)
{
    // Specs (and their fault plans) derive serially from the seeds
    // so the corpus is fixed before any parallelism starts.
    std::vector<GenSpec> specs;
    std::vector<resilience::FaultPlan> plans;
    specs.reserve(opts.seeds);
    plans.reserve(opts.seeds);
    for (std::uint64_t i = 0; i < opts.seeds; ++i) {
        const std::uint64_t seed = opts.startSeed + i;
        GenSpec spec = GenSpec::fromSeed(seed);
        if (opts.events != 0)
            spec.events = opts.events;
        spec.clamp();
        specs.push_back(spec);
        resilience::FaultPlan plan =
            opts.faultFuzz ? resilience::FaultPlan::fromSeed(seed)
                           : opts.faults;
        plan.clamp();
        plans.push_back(plan);
    }

    // Fan the checks out; results land in per-seed slots, so the
    // collected outcome is independent of scheduling and job count.
    std::vector<DiffReport> reports(specs.size());
    if (opts.jobs == 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            reports[i] = runDifferential(specs[i], opts.broken,
                                         opts.verify, plans[i]);
    } else {
        ThreadPool pool(opts.jobs == 0 ? ThreadPool::hardwareWorkers()
                                       : opts.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            pool.submit([&specs, &plans, &reports, &opts, i] {
                // runDifferential never throws (pool contract).
                reports[i] = runDifferential(specs[i], opts.broken,
                                             opts.verify, plans[i]);
            });
        }
        pool.wait();
    }

    FuzzSummary summary;
    summary.seedsRun = specs.size();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (reports[i].error.empty())
            continue;
        ++summary.failures;

        FuzzFailure failure;
        failure.seed = opts.startSeed + i;
        failure.spec = specs[i];
        failure.error = reports[i].error;
        failure.faults = plans[i];
        failure.shrunkSpec = specs[i];
        failure.shrunkError = reports[i].error;
        failure.shrunkBlocks = reports[i].programBlocks;

        if (opts.shrink &&
            static_cast<std::uint32_t>(summary.detail.size()) <
                opts.maxShrinks) {
            const ShrinkOutcome shrunk =
                shrinkSpec(specs[i], opts.broken, reports[i].error,
                           opts.verify, plans[i]);
            failure.shrunk = true;
            failure.shrunkSpec = shrunk.spec;
            failure.shrunkError = shrunk.error;
            failure.shrunkBlocks = shrunk.programBlocks;
        }

        try {
            std::ostringstream os;
            saveProgram(generateProgram(failure.shrunkSpec), os);
            failure.reproProgram = os.str();
        } catch (const std::exception &e) {
            failure.reproProgram =
                std::string("<program generation failed: ") +
                e.what() + ">";
        }
        failure.cliLine = fuzzCliLine(failure.shrunkSpec, opts.broken,
                                      opts.verify, plans[i]);
        summary.detail.push_back(std::move(failure));
    }
    return summary;
}

} // namespace testing
} // namespace rsel
