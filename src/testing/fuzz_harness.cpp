#include "testing/fuzz_harness.hpp"

#include <sstream>

#include "driver/thread_pool.hpp"
#include "program/trace_io.hpp"
#include "testing/inter_check.hpp"
#include "testing/prediction_check.hpp"
#include "testing/random_program.hpp"
#include "testing/shrinker.hpp"

namespace rsel {
namespace testing {

std::string
fuzzCliLine(const GenSpec &spec, BrokenMode mode, bool verify,
            const resilience::FaultPlan &faults, bool analyze,
            bool interprocedural)
{
    std::string line = "rselect-fuzz --spec '" + spec.toString() + "'";
    if (mode != BrokenMode::None)
        line += std::string(" --break-selector ") +
                brokenModeName(mode);
    if (verify)
        line += " --verify";
    if (analyze)
        line += " --analyze";
    if (interprocedural)
        line += " --interprocedural";
    if (faults.armed())
        line += " --fault-spec '" + faults.toString() + "'";
    return line;
}

namespace {

/** True for failures the differential-based shrinker cannot
 *  reproduce (static-prediction checks run outside the oracle). */
bool
isAnalyzeFailure(const std::string &error)
{
    return error.rfind("static-prediction:", 0) == 0 ||
           error.rfind("interprocedural:", 0) == 0;
}

/** One seed's full check: the differential oracle, then (when
 *  requested and clean) the static-prediction validation. */
DiffReport
runSeedCheck(const GenSpec &spec, const FuzzOptions &opts,
             const resilience::FaultPlan &plan)
{
    DiffReport report =
        runDifferential(spec, opts.broken, opts.verify, plan);
    // Prediction bounds assume fault-free runs; a fault plan only
    // affects the differential leg, never the analyze leg.
    if (report.error.empty() && opts.analyze)
        report.error = checkSpecPredictions(spec);
    if (report.error.empty() && opts.interprocedural)
        report.error = checkSpecInterprocedural(spec);
    return report;
}

} // namespace

FuzzSummary
runFuzz(const FuzzOptions &opts)
{
    // Specs (and their fault plans) derive serially from the seeds
    // so the corpus is fixed before any parallelism starts.
    std::vector<GenSpec> specs;
    std::vector<resilience::FaultPlan> plans;
    specs.reserve(opts.seeds);
    plans.reserve(opts.seeds);
    for (std::uint64_t i = 0; i < opts.seeds; ++i) {
        const std::uint64_t seed = opts.startSeed + i;
        GenSpec spec = GenSpec::fromSeed(seed);
        if (opts.events != 0)
            spec.events = opts.events;
        spec.clamp();
        specs.push_back(spec);
        resilience::FaultPlan plan =
            opts.faultFuzz ? resilience::FaultPlan::fromSeed(seed)
                           : opts.faults;
        plan.clamp();
        plans.push_back(plan);
    }

    // Fan the checks out; results land in per-seed slots, so the
    // collected outcome is independent of scheduling and job count.
    std::vector<DiffReport> reports(specs.size());
    if (opts.jobs == 1 || specs.size() <= 1) {
        for (std::size_t i = 0; i < specs.size(); ++i)
            reports[i] = runSeedCheck(specs[i], opts, plans[i]);
    } else {
        ThreadPool pool(opts.jobs == 0 ? ThreadPool::hardwareWorkers()
                                       : opts.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            pool.submit([&specs, &plans, &reports, &opts, i] {
                // runSeedCheck never throws (pool contract).
                reports[i] = runSeedCheck(specs[i], opts, plans[i]);
            });
        }
        pool.wait();
    }

    FuzzSummary summary;
    summary.seedsRun = specs.size();
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (reports[i].error.empty())
            continue;
        ++summary.failures;

        FuzzFailure failure;
        failure.seed = opts.startSeed + i;
        failure.spec = specs[i];
        failure.error = reports[i].error;
        failure.faults = plans[i];
        failure.shrunkSpec = specs[i];
        failure.shrunkError = reports[i].error;
        failure.shrunkBlocks = reports[i].programBlocks;

        // Static-prediction failures are found outside the
        // differential predicate, so the shrinker cannot reproduce
        // them; report the original spec as the reproducer instead.
        if (opts.shrink && !isAnalyzeFailure(reports[i].error) &&
            static_cast<std::uint32_t>(summary.detail.size()) <
                opts.maxShrinks) {
            const ShrinkOutcome shrunk =
                shrinkSpec(specs[i], opts.broken, reports[i].error,
                           opts.verify, plans[i]);
            failure.shrunk = true;
            failure.shrunkSpec = shrunk.spec;
            failure.shrunkError = shrunk.error;
            failure.shrunkBlocks = shrunk.programBlocks;
        }

        try {
            std::ostringstream os;
            saveProgram(generateProgram(failure.shrunkSpec), os);
            failure.reproProgram = os.str();
        } catch (const std::exception &e) {
            failure.reproProgram =
                std::string("<program generation failed: ") +
                e.what() + ">";
        }
        failure.cliLine =
            fuzzCliLine(failure.shrunkSpec, opts.broken, opts.verify,
                        plans[i], opts.analyze,
                        opts.interprocedural);
        summary.detail.push_back(std::move(failure));
    }
    return summary;
}

} // namespace testing
} // namespace rsel
