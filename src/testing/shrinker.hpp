/**
 * @file
 * Greedy spec shrinker for failing differential checks.
 *
 * Because program generation is a pure function of the GenSpec,
 * minimizing the *spec* minimizes the reproducer: the shrinker
 * repeatedly tries structure-reducing spec edits (fewer functions,
 * fewer blocks, fewer events, features switched off), keeps any
 * edit under which the differential check still fails, and stops at
 * a fixpoint. The result is a small failing spec whose program —
 * typically a handful of blocks — ships as the reproducer.
 */

#ifndef RSEL_TESTING_SHRINKER_HPP
#define RSEL_TESTING_SHRINKER_HPP

#include "testing/differential.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/** Result of shrinking one failing spec. */
struct ShrinkOutcome
{
    /** The minimal still-failing spec found. */
    GenSpec spec;
    /** Failure message at that spec. */
    std::string error;
    /** Static block count of the minimal spec's program. */
    std::uint32_t programBlocks = 0;
    /** Differential checks evaluated while shrinking. */
    std::uint32_t attempts = 0;
};

/**
 * Greedily minimize `failing` (a spec for which runDifferential
 * reports a failure under `broken`, with the static verifier on when
 * `verify` is set and the fault plan `faults` armed). `origError` is
 * that failure, kept if no candidate shrinks. The fault plan itself
 * is held fixed — only the program spec shrinks, so the reproducer
 * pairs the minimal program with the original plan. Deterministic;
 * bounded by `maxAttempts` differential evaluations.
 */
ShrinkOutcome shrinkSpec(const GenSpec &failing, BrokenMode broken,
                         const std::string &origError,
                         bool verify = false,
                         const resilience::FaultPlan &faults = {},
                         std::uint32_t maxAttempts = 300);

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_SHRINKER_HPP
