/**
 * @file
 * Interprocedural-analysis-vs-simulator validation: replay the
 * deterministic block stream, reconstruct the dynamic call behaviour
 * with a shadow call stack, and check every *sound* claim of the
 * call-graph layer (src/analysis/call_graph, inter_facts,
 * inline_opportunity) against it:
 *
 *  - every dynamic call transfer at a site lands in a function of
 *    the site's static callee set (one-step callee soundness; with
 *    the closure-transitivity unit test this makes the call closure
 *    a sound bound on call-chain reachability);
 *  - every dynamic return lands exactly at the fall-through block of
 *    the site on top of the shadow stack (the return-edge /
 *    call-site-layout claim of the call-graph-consistency pass);
 *  - dynamically observed per-site callee instruction mass never
 *    exceeds the static callee mass, which never exceeds the
 *    inlining-opportunity duplication-growth bound;
 *  - the counted stream cross-ties to every shipped selector's
 *    SimResult (the stream is selector-independent, so all 7 runs
 *    must have consumed exactly the counted number of events).
 *
 * Opportunity *scores* are heuristics; their tightness (bound over
 * measured, top-ranked call share) is reported for the bench table,
 * never gated on.
 */

#ifndef RSEL_TESTING_INTER_CHECK_HPP
#define RSEL_TESTING_INTER_CHECK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/inline_opportunity.hpp"
#include "analysis/inter_facts.hpp"
#include "metrics/sim_result.hpp"
#include "program/program.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/** Dynamic call-behaviour ground truth plus the check outcome. */
struct InterValidation
{
    /** First violated sound claim ("interprocedural: ..."), or "". */
    std::string error;

    /** Events the counting replay delivered. */
    std::uint64_t streamEvents = 0;
    /** Dynamic call transfers (direct + indirect). */
    std::uint64_t callTransfers = 0;
    /** Dynamic return transfers. */
    std::uint64_t returnTransfers = 0;
    /** Deepest shadow-stack depth observed. */
    std::uint64_t maxDynamicDepth = 0;
    /** Distinct functions entered via a call transfer. */
    std::uint32_t dynCalledFuncs = 0;
    /** Call sites that fired at least once. */
    std::uint32_t sitesExecuted = 0;
    /** Dynamic calls per call site (CallGraph::sites order). */
    std::vector<std::uint64_t> siteCalls;

    /** Σ over executed sites of observed-callee instruction mass. */
    std::uint64_t observedCalleeInsts = 0;
    /** Σ over executed sites of static callee instruction mass. */
    std::uint64_t staticCalleeInsts = 0;
    /** Σ over executed sites of the duplication-growth bound. */
    std::uint64_t dupGrowthBoundInsts = 0;
    /** Fraction of dynamic calls through the top quartile of the
     *  ranked opportunity table (heuristic tightness, report-only). */
    double topQuartileCallShare = 0.0;

    /** Per-selector measured runs (cross-tie legs). */
    std::vector<SimResult> measured;
};

/**
 * Replay `prog` deterministically (`events` block events, executor
 * seed `seed`), check every sound interprocedural claim, and
 * cross-tie the stream against all shipped selectors.
 */
InterValidation validateInterprocedural(const Program &prog,
                                        std::uint64_t events,
                                        std::uint64_t seed);

/**
 * Fuzz-harness form: generate the spec's program and validate with
 * the spec's own events/execSeed. Returns the first violation
 * ("interprocedural: ..."), or "" when every claim held.
 */
std::string checkSpecInterprocedural(const GenSpec &spec);

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_INTER_CHECK_HPP
