/**
 * @file
 * The generator specification for random guest programs.
 *
 * A GenSpec is the entire input of the deterministic fuzzer: a small
 * vector of integer knobs plus two seeds. Program generation is a
 * pure function of the spec, so a spec string is a complete, portable
 * reproducer — the shrinker minimizes specs, and the rselect-fuzz
 * driver accepts them back via --spec.
 */

#ifndef RSEL_TESTING_GEN_SPEC_HPP
#define RSEL_TESTING_GEN_SPEC_HPP

#include <cstdint>
#include <string>

namespace rsel {
namespace testing {

/**
 * Knobs of the random program generator. All probabilities are in
 * percent so specs round-trip exactly through their text form.
 */
struct GenSpec
{
    /** Number of functions (>= 1); the last one is the entry. */
    std::uint32_t funcs = 2;
    /** Maximum blocks per function (>= 2; actual count is random). */
    std::uint32_t blocks = 6;
    /** % chance an eligible block becomes a loop latch. */
    std::uint32_t pLoop = 40;
    /** % chance of a Bernoulli conditional branch. */
    std::uint32_t pCond = 30;
    /** Of those, % that are unbiased (taken prob near 0.5). */
    std::uint32_t pUnbiased = 30;
    /** % of cond/indirect behaviours that vary across phases. */
    std::uint32_t pPhased = 25;
    /** Phase count (1 = unphased). */
    std::uint32_t phases = 1;
    /** % chance of an indirect jump/call. */
    std::uint32_t pIndirect = 15;
    /** Targets per indirect branch (>= 2). */
    std::uint32_t indirectTargets = 3;
    /** % chance of a direct call to an earlier (lower) function. */
    std::uint32_t pCall = 30;
    /** % chance of a direct forward jump. */
    std::uint32_t pJump = 10;
    /** % chance a non-entry function plants a guarded recursive
     *  call (self or forward — forward targets close mutual rings
     *  with the backward pCall edges). */
    std::uint32_t pRecurse = 0;
    /** % chance a non-entry function is dead: excluded from every
     *  call/jump target pool, so it is statically unreachable. */
    std::uint32_t pDeadFn = 0;
    /** Loop trip counts drawn from [1, tripMax]. */
    std::uint32_t tripMax = 12;
    /** Dynamic block events per simulated run. */
    std::uint64_t events = 30000;
    /** Code-cache capacity in KiB (0 = unbounded). */
    std::uint64_t cacheKb = 0;
    /** Program-synthesis seed. */
    std::uint64_t buildSeed = 1;
    /** Executor (branch-resolution) seed. */
    std::uint64_t execSeed = 1;

    /** Clamp every knob into its legal range. */
    void clamp();

    /** Compact one-line text form ("v1,funcs=2,blocks=6,..."). */
    std::string toString() const;

    /**
     * Parse the text form produced by toString().
     * @throws FatalError on malformed input.
     */
    static GenSpec parse(const std::string &text);

    /**
     * Derive a randomized spec from a fuzz seed. This is the
     * seed-to-program-space mapping: function counts, loop nests,
     * unbiased and phased branches, indirect targets and
     * interprocedural call structure all vary with the seed.
     */
    static GenSpec fromSeed(std::uint64_t seed);

    bool operator==(const GenSpec &other) const;
    bool operator!=(const GenSpec &other) const
    {
        return !(*this == other);
    }
};

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_GEN_SPEC_HPP
