#include "testing/shrinker.hpp"

#include <vector>

#include "testing/random_program.hpp"

namespace rsel {
namespace testing {

namespace {

/**
 * Candidate edits, most aggressive first so the common case (the
 * bug does not need the feature) collapses in one step.
 */
std::vector<GenSpec>
candidates(const GenSpec &cur)
{
    std::vector<GenSpec> out;
    auto push = [&](GenSpec c) {
        c.clamp();
        if (c != cur)
            out.push_back(c);
    };

    GenSpec c = cur;
    c.funcs = 1;
    push(c);
    c = cur;
    c.funcs = cur.funcs / 2;
    push(c);
    c = cur;
    c.blocks = 2;
    push(c);
    c = cur;
    c.blocks = cur.blocks / 2;
    push(c);
    c = cur;
    c.blocks = cur.blocks - 1;
    push(c);
    c = cur;
    c.events = 2000;
    push(c);
    c = cur;
    c.events = cur.events / 2;
    push(c);
    c = cur;
    c.pIndirect = 0;
    push(c);
    c = cur;
    c.pCall = 0;
    push(c);
    c = cur;
    c.pRecurse = 0;
    push(c);
    c = cur;
    c.pDeadFn = 0;
    push(c);
    c = cur;
    c.phases = 1;
    c.pPhased = 0;
    push(c);
    c = cur;
    c.pUnbiased = 0;
    push(c);
    c = cur;
    c.pJump = 0;
    push(c);
    c = cur;
    c.pCond = 0;
    push(c);
    c = cur;
    c.cacheKb = 0;
    push(c);
    c = cur;
    c.tripMax = 2;
    push(c);
    c = cur;
    c.indirectTargets = 2;
    push(c);
    return out;
}

std::uint32_t
blockCountOf(const GenSpec &spec)
{
    try {
        return static_cast<std::uint32_t>(
            generateProgram(spec).blocks().size());
    } catch (const std::exception &) {
        return 0;
    }
}

} // namespace

ShrinkOutcome
shrinkSpec(const GenSpec &failing, BrokenMode broken,
           const std::string &origError, bool verify,
           const resilience::FaultPlan &faults,
           std::uint32_t maxAttempts)
{
    ShrinkOutcome out;
    out.spec = failing;
    out.spec.clamp();
    out.error = origError;
    out.programBlocks = blockCountOf(out.spec);

    bool improved = true;
    while (improved && out.attempts < maxAttempts) {
        improved = false;
        for (const GenSpec &cand : candidates(out.spec)) {
            if (out.attempts >= maxAttempts)
                break;
            ++out.attempts;
            const DiffReport rep = runDifferential(cand, broken,
                                                   verify, faults);
            if (rep.error.empty())
                continue;
            out.spec = cand;
            out.error = rep.error;
            out.programBlocks = rep.programBlocks;
            improved = true;
            break; // restart from the shrunk spec
        }
    }
    return out;
}

} // namespace testing
} // namespace rsel
