/**
 * @file
 * Prediction-vs-measured validation: run every shipped selector on a
 * program and check the measured SimResult against the static
 * predictor's *bounds* (src/analysis/static_predictor).
 *
 * The measured runs are always unbounded-cache and fault-free — the
 * only regime the bounds are sound for (bounded caches re-select
 * evicted entrances, breaking the single-entrance argument the
 * bounds rest on). A spec's own cacheKb is deliberately ignored.
 */

#ifndef RSEL_TESTING_PREDICTION_CHECK_HPP
#define RSEL_TESTING_PREDICTION_CHECK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static_predictor.hpp"
#include "metrics/sim_result.hpp"
#include "program/program.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/** One selector's measured run against its static prediction. */
struct SelectorValidation
{
    analysis::SelectorPrediction prediction;
    SimResult measured;
    /** checkPrediction() messages; empty = every bound held. */
    std::vector<std::string> violations;
};

/** Whole-program validation across every shipped selector. */
struct PredictionValidation
{
    analysis::StaticReport report;
    std::vector<SelectorValidation> selectors;
    /**
     * First violation as a fuzz-harness error string
     * ("static-prediction: selector NAME: MESSAGE"), or empty.
     */
    std::string error;
};

/**
 * Run all shipped selectors on `prog` (unbounded cache, no faults,
 * `events` block events, executor seed `seed`) and check each
 * measured result against the static bounds.
 */
PredictionValidation validatePredictions(const Program &prog,
                                         std::uint64_t events,
                                         std::uint64_t seed);

/**
 * Fuzz-harness form: generate the spec's program, validate with the
 * spec's own events/execSeed, and return the first violation ("" if
 * every bound held for every selector).
 */
std::string checkSpecPredictions(const GenSpec &spec);

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_PREDICTION_CHECK_HPP
