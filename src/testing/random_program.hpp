/**
 * @file
 * Seeded random guest-program generator.
 *
 * Maps a GenSpec deterministically onto a Program via the regular
 * ProgramBuilder, sweeping the structural space region selection
 * cares about: function counts, loop nests, biased / unbiased /
 * phased conditional branches, indirect jumps and calls with
 * weighted target sets, and interprocedural cycles (callees placed
 * at lower addresses, so calls are backward transfers — the
 * paper's Figure 2 shape that separates NET from LEI).
 *
 * Two invariants matter for the differential oracle:
 *
 *  - Generation is a pure function of the spec: the same GenSpec
 *    always yields a byte-identical program (saveProgram text).
 *  - No conditional branch targets its own fall-through block, so a
 *    recorded block stream has exactly one legal annotation and
 *    record→replay reproduces the live stream bit-for-bit.
 */

#ifndef RSEL_TESTING_RANDOM_PROGRAM_HPP
#define RSEL_TESTING_RANDOM_PROGRAM_HPP

#include "program/program.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace testing {

/**
 * Generate the program described by `spec` (clamped first).
 * Deterministic in the spec. @throws FatalError only on builder
 * inconsistencies, which would be generator bugs.
 */
Program generateProgram(const GenSpec &spec);

} // namespace testing
} // namespace rsel

#endif // RSEL_TESTING_RANDOM_PROGRAM_HPP
