/**
 * @file
 * Parallel sweep engine for (workload × algorithm × config) grids.
 *
 * Every experiment in this repo — rselect-sim, all bench harnesses —
 * boils down to the same shape: run a grid of independent,
 * deterministic simulations and tabulate the SimResults. Each cell
 * is embarrassingly parallel (its own Program, Executor and
 * DynOptSystem; no shared mutable state), so the SweepRunner fans
 * the grid out over a fixed-size ThreadPool and collects results in
 * grid order, making parallel output byte-identical to a serial run.
 *
 * Determinism contract:
 *  - A cell's executor seed and build seed are fixed at grid
 *    construction time (see SeedPolicy), never derived from
 *    scheduling, thread identity or completion order.
 *  - Each cell rebuilds its Program from the workload's deterministic
 *    builder, so no cross-cell state exists at all.
 *  - run() stores each result at the cell's grid index; callers see
 *    suite order regardless of which worker finished first.
 */

#ifndef RSEL_DRIVER_SWEEP_RUNNER_HPP
#define RSEL_DRIVER_SWEEP_RUNNER_HPP

#include <cstdint>
#include <vector>

#include "dynopt/dynopt_system.hpp"
#include "metrics/sim_result.hpp"
#include "workloads/workloads.hpp"

namespace rsel {

/**
 * How makeGrid assigns each cell's executor seed.
 *
 * Both policies pin the seed into the cell before any thread runs,
 * which is what makes parallel and serial sweeps byte-identical.
 */
enum class SeedPolicy {
    /**
     * Every cell uses the base seed unchanged. This is the paper's
     * methodology (and the historical behaviour of every harness
     * here): all algorithms on a workload must consume the identical
     * dynamic block stream for the comparison to be fair.
     */
    Shared,
    /**
     * Each workload gets a seed splitmix-derived from (base seed,
     * workload grid row), shared by all algorithms on that workload
     * so cross-algorithm comparisons stay stream-identical, while
     * workloads are decorrelated from each other.
     */
    PerWorkload,
};

/** One fully resolved simulation cell. */
struct SweepCell
{
    /** Workload to build and run. Never null in a grid. */
    const WorkloadInfo *workload = nullptr;
    /** Selection algorithm for this cell. */
    Algorithm algo = Algorithm::Net;
    /** Program-synthesis seed for this cell's private build. */
    std::uint64_t buildSeed = 42;
    /**
     * Simulation options with maxEvents and seed already resolved
     * (workload default applied, seed policy applied).
     */
    SimOptions opts;
};

/**
 * Mix a base seed with a cell index into an independent 64-bit
 * seed (one splitmix64 step). Deterministic and order-free.
 */
std::uint64_t mixSeed(std::uint64_t base, std::uint64_t index);

/** Runs SweepCell grids serially or across a thread pool. */
class SweepRunner
{
  public:
    /**
     * @param jobs worker threads; 0 = hardware concurrency, 1 =
     *             legacy serial path (no pool, runs on the calling
     *             thread).
     */
    explicit SweepRunner(std::size_t jobs = 0);

    /** The worker count actually in effect. */
    std::size_t jobs() const { return jobs_; }

    /**
     * Build the (workload × algorithm) grid, workload-major — the
     * exact order the historical serial loops iterated in.
     *
     * @param workloads grid rows; all pointers must outlive run().
     * @param algos     grid columns.
     * @param base      shared options; base.maxEvents == 0 means
     *                  "use each workload's default event count",
     *                  base.seed is the base executor seed.
     * @param buildSeed program-synthesis seed for every cell.
     * @param policy    executor-seed assignment (see SeedPolicy).
     */
    static std::vector<SweepCell>
    makeGrid(const std::vector<const WorkloadInfo *> &workloads,
             const std::vector<Algorithm> &algos, const SimOptions &base,
             std::uint64_t buildSeed,
             SeedPolicy policy = SeedPolicy::Shared);

    /**
     * Run every cell and return SimResults in grid order, each with
     * SimResult::workload filled in. With jobs == 1 the cells run
     * inline on the calling thread; otherwise they are fanned out
     * over a ThreadPool. A FatalError/PanicError thrown by a cell is
     * rethrown (the earliest-grid-index failure) after all cells
     * finish, so no worker is abandoned mid-run.
     */
    std::vector<SimResult> run(const std::vector<SweepCell> &cells) const;

    /** Build, simulate and label one cell (the per-worker body). */
    static SimResult runCell(const SweepCell &cell);

  private:
    std::size_t jobs_;
};

} // namespace rsel

#endif // RSEL_DRIVER_SWEEP_RUNNER_HPP
