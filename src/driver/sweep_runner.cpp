#include "driver/sweep_runner.hpp"

#include <algorithm>

#include "driver/thread_pool.hpp"
#include "support/error.hpp"

namespace rsel {

std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t index)
{
    // One splitmix64 step over base + index·golden-gamma: adjacent
    // indices yield uncorrelated seeds (same mixer Rng seeding uses).
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

SweepRunner::SweepRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::hardwareWorkers() : jobs)
{}

std::vector<SweepCell>
SweepRunner::makeGrid(const std::vector<const WorkloadInfo *> &workloads,
                      const std::vector<Algorithm> &algos,
                      const SimOptions &base, std::uint64_t buildSeed,
                      SeedPolicy policy)
{
    RSEL_ASSERT(!algos.empty(), "sweep grid needs at least one algorithm");
    std::vector<SweepCell> cells;
    cells.reserve(workloads.size() * algos.size());
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const WorkloadInfo *w = workloads[wi];
        RSEL_ASSERT(w != nullptr, "sweep grid got a null workload");
        for (Algorithm algo : algos) {
            SweepCell cell;
            cell.workload = w;
            cell.algo = algo;
            cell.buildSeed = buildSeed;
            cell.opts = base;
            if (cell.opts.maxEvents == 0)
                cell.opts.maxEvents = w->defaultEvents;
            if (policy == SeedPolicy::PerWorkload)
                cell.opts.seed = mixSeed(base.seed, wi);
            cells.push_back(cell);
        }
    }
    return cells;
}

SimResult
SweepRunner::runCell(const SweepCell &cell)
{
    RSEL_ASSERT(cell.workload != nullptr, "sweep cell has no workload");
    // A private Program per cell: builders are deterministic, so
    // rebuilding costs a little CPU but removes every cross-thread
    // dependency (and any aliasing question about sharing one
    // Program across concurrent simulations).
    Program prog = cell.workload->build(cell.buildSeed);
    SimResult r = simulate(prog, cell.algo, cell.opts);
    r.workload = cell.workload->name;
    return r;
}

std::vector<SimResult>
SweepRunner::run(const std::vector<SweepCell> &cells) const
{
    std::vector<SimResult> results(cells.size());
    if (jobs_ <= 1 || cells.size() <= 1) {
        // Legacy serial path: identical iteration to the historical
        // per-harness loops, no pool machinery involved.
        for (std::size_t i = 0; i < cells.size(); ++i)
            results[i] = runCell(cells[i]);
        return results;
    }

    // Fail fast on a broken cell: the pool captures the first
    // exception, cancels every cell still queued, and wait()
    // rethrows it here on the submitting thread.
    //
    // Concurrency contract: cells share no mutable state — each
    // task writes only results[i] for its own i, and the slots are
    // distinct objects, so no lock (and no capability annotation)
    // is needed here; pool.wait() is the happens-before edge that
    // publishes every slot to this thread. That disjoint-index
    // pattern is the sanctioned lock-free idiom (docs/ANALYSIS.md);
    // anything fancier belongs behind rsel::Mutex.
    ThreadPool pool(std::min(jobs_, cells.size()));
    for (std::size_t i = 0; i < cells.size(); ++i) {
        pool.submit([&cells, &results, i] {
            results[i] = SweepRunner::runCell(cells[i]);
        });
    }
    pool.wait();
    return results;
}

} // namespace rsel
