/**
 * @file
 * Fixed-size thread pool for the sweep driver.
 *
 * A deliberately small pool: a fixed set of workers created up
 * front, a FIFO task queue, and a wait() barrier. Simulation cells
 * are coarse (milliseconds to seconds each), so queue contention is
 * negligible and no work-stealing is needed. Tasks must not throw;
 * the sweep runner wraps each cell so exceptions are captured and
 * rethrown on the submitting thread after wait().
 */

#ifndef RSEL_DRIVER_THREAD_POOL_HPP
#define RSEL_DRIVER_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rsel {

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Spawn `workers` threads. @pre workers >= 1. A pool of one
     * worker is legal but rarely useful: callers wanting serial
     * execution should simply not use a pool.
     */
    explicit ThreadPool(std::size_t workers);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. Tasks must not throw — a throwing task
     * terminates the process. May be called from worker threads.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished (queue
     * empty and no task running). Tasks submitted by other threads
     * while waiting extend the wait.
     */
    void wait();

    /** Number of worker threads. */
    std::size_t workerCount() const { return threads_.size(); }

    /**
     * The default worker count: std::thread::hardware_concurrency,
     * clamped to at least 1 (the standard allows it to report 0).
     */
    static std::size_t hardwareWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    /** Signalled when a task is queued or the pool shuts down. */
    std::condition_variable workReady_;
    /** Signalled when the pool may have become idle. */
    std::condition_variable idle_;
    /** Tasks currently executing in a worker. */
    std::size_t running_ = 0;
    bool stop_ = false;
};

} // namespace rsel

#endif // RSEL_DRIVER_THREAD_POOL_HPP
