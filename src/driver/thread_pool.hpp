/**
 * @file
 * Fixed-size thread pool for the sweep driver.
 *
 * A deliberately small pool: a fixed set of workers created up
 * front, a FIFO task queue, and a wait() barrier. Simulation cells
 * are coarse (milliseconds to seconds each), so queue contention is
 * negligible and no work-stealing is needed. A throwing task does
 * not take the process down: the first exception is captured, the
 * pending queue is cancelled, and wait() rethrows it on the
 * submitting thread.
 *
 * Concurrency contract (checked by the `analyze` preset, see
 * docs/ANALYSIS.md): `mutex_` is the single capability; it guards
 * the queue, the running-task count, the captured exception and the
 * stop flag. Both condition variables wait under it, and their wait
 * predicates are stated as `RSEL_REQUIRES(mutex_)` methods so a
 * predicate evaluated without the lock is a compile error, not a
 * latent lost-wakeup.
 */

#ifndef RSEL_DRIVER_THREAD_POOL_HPP
#define RSEL_DRIVER_THREAD_POOL_HPP

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace rsel {

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Spawn `workers` threads. @pre workers >= 1. A pool of one
     * worker is legal but rarely useful: callers wanting serial
     * execution should simply not use a pool.
     */
    explicit ThreadPool(std::size_t workers);

    /**
     * Drains the queue, then joins all workers. An exception
     * captured but never collected by wait() is discarded —
     * destructors must not throw.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. May be called from worker threads. If a task
     * throws, the first exception is captured, every task still
     * queued is cancelled (dropped unexecuted), and the exception is
     * rethrown from the next wait(). Tasks already running on other
     * workers complete normally.
     */
    void submit(std::function<void()> task) RSEL_EXCLUDES(mutex_);

    /**
     * Block until every task submitted so far has finished or been
     * cancelled (queue empty and no task running). Tasks submitted
     * by other threads while waiting extend the wait. If any task
     * threw since the last wait(), rethrows the first captured
     * exception (and clears it, so the pool is reusable).
     */
    void wait() RSEL_EXCLUDES(mutex_);

    /**
     * Drop every task still queued without running it; tasks
     * already executing complete normally. Returns the number of
     * tasks dropped. Used by overload control to shed queued work
     * on a fail-fast path; a captured exception is left in place
     * for the next wait() to rethrow.
     */
    std::size_t cancelPending() RSEL_EXCLUDES(mutex_);

    /** Number of worker threads. */
    std::size_t workerCount() const { return threads_.size(); }

    /**
     * The default worker count: std::thread::hardware_concurrency,
     * clamped to at least 1 (the standard allows it to report 0).
     */
    static std::size_t hardwareWorkers();

  private:
    friend struct TsaTestProbe; // negative-compile battery only

    void workerLoop() RSEL_EXCLUDES(mutex_);

    /** workReady_ wait predicate: a task to run, or shutting down. */
    bool
    wakeWorkerLocked() const RSEL_REQUIRES(mutex_)
    {
        return stop_ || !queue_.empty();
    }

    /** idle_ wait predicate: nothing queued and nothing running. */
    bool
    idleLocked() const RSEL_REQUIRES(mutex_)
    {
        return queue_.empty() && running_ == 0;
    }

    std::vector<std::thread> threads_;
    Mutex mutex_;
    std::deque<std::function<void()>> queue_ RSEL_GUARDED_BY(mutex_);
    /** Signalled when a task is queued or the pool shuts down. */
    CondVar workReady_;
    /** Signalled when the pool may have become idle. */
    CondVar idle_;
    /** Tasks currently executing in a worker. */
    std::size_t running_ RSEL_GUARDED_BY(mutex_) = 0;
    /** First exception thrown by a task since the last wait(). */
    std::exception_ptr firstError_ RSEL_GUARDED_BY(mutex_);
    bool stop_ RSEL_GUARDED_BY(mutex_) = false;
};

} // namespace rsel

#endif // RSEL_DRIVER_THREAD_POOL_HPP
