#include "driver/thread_pool.hpp"

#include "support/error.hpp"

namespace rsel {

ThreadPool::ThreadPool(std::size_t workers)
{
    RSEL_ASSERT(workers >= 1, "thread pool needs at least one worker");
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    workReady_.notifyAll();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mutex_);
        RSEL_ASSERT(!stop_, "submit on a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    workReady_.notifyOne();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    while (!idleLocked())
        idle_.wait(mutex_);
    if (firstError_) {
        // Hand the captured failure to the submitting thread and
        // reset, so the pool can be reused for another batch.
        std::exception_ptr err = std::move(firstError_);
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

std::size_t
ThreadPool::cancelPending()
{
    std::size_t dropped = 0;
    bool nowIdle = false;
    {
        MutexLock lock(mutex_);
        dropped = queue_.size();
        queue_.clear();
        // Clearing the queue may have satisfied waiters' idle
        // predicate (queue empty, nothing running) — wake them, or
        // a wait() racing this cancel blocks forever.
        nowIdle = idleLocked();
    }
    if (nowIdle)
        idle_.notifyAll();
    return dropped;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!wakeWorkerLocked())
                workReady_.wait(mutex_);
            if (queue_.empty()) {
                // stop_ is set and no work is left; drain-and-join
                // semantics: stop only takes effect on an empty
                // queue.
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            MutexLock lock(mutex_);
            if (error) {
                // Keep only the first failure and cancel everything
                // still pending — later tasks of the batch likely
                // depend on state the failed one did not produce.
                if (!firstError_)
                    firstError_ = std::move(error);
                queue_.clear();
            }
            --running_;
            if (idleLocked())
                idle_.notifyAll();
        }
    }
}

std::size_t
ThreadPool::hardwareWorkers()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

} // namespace rsel
