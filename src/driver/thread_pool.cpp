#include "driver/thread_pool.hpp"

#include "support/error.hpp"

namespace rsel {

ThreadPool::ThreadPool(std::size_t workers)
{
    RSEL_ASSERT(workers >= 1, "thread pool needs at least one worker");
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RSEL_ASSERT(!stop_, "submit on a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this] { return queue_.empty() && running_ == 0; });
    if (firstError_) {
        // Hand the captured failure to the submitting thread and
        // reset, so the pool can be reused for another batch.
        std::exception_ptr err = std::move(firstError_);
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(
            lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stop_ is set and no work is left; drain-and-join
            // semantics: stop only takes effect on an empty queue.
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++running_;
        lock.unlock();
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error) {
            // Keep only the first failure and cancel everything
            // still pending — later tasks of the batch likely
            // depend on state the failed one did not produce.
            if (!firstError_)
                firstError_ = std::move(error);
            queue_.clear();
        }
        --running_;
        if (queue_.empty() && running_ == 0)
            idle_.notify_all();
    }
}

std::size_t
ThreadPool::hardwareWorkers()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

} // namespace rsel
