#include "service/tenant_spec.hpp"

#include <istream>
#include <iterator>
#include <sstream>

#include "support/error.hpp"

namespace rsel {
namespace service {

namespace {

/** Parse "alg=NET" etc.; @return algorithm matching `name`. */
Algorithm
parseAlgorithm(const std::string &name)
{
    for (const Algorithm a : allSelectors)
        if (algorithmName(a) == name)
            return a;
    fatal("unknown tenant algorithm '" + name +
          "' (try NET, LEI, NET+comb, LEI+comb, Mojo, BOA, WRS)");
}

} // namespace

std::string
TenantSpec::toString() const
{
    std::string out = "name=" + name + "|alg=" + algorithmName(algo) +
                      "|spec=" + program.toString();
    if (faults.armed())
        out += "|faults=" + faults.toString();
    return out;
}

TenantSpec
TenantSpec::parse(const std::string &text)
{
    TenantSpec spec;
    bool sawAlg = false;
    bool sawSpec = false;
    std::stringstream ss(text);
    std::string field;
    while (std::getline(ss, field, '|')) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos)
            fatal("malformed tenant field '" + field +
                  "' (expected key=value)");
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "name") {
            if (value.empty())
                fatal("tenant name must not be empty");
            spec.name = value;
        } else if (key == "alg") {
            spec.algo = parseAlgorithm(value);
            sawAlg = true;
        } else if (key == "spec") {
            spec.program = testing::GenSpec::parse(value);
            sawSpec = true;
        } else if (key == "faults") {
            spec.faults = resilience::FaultPlan::parse(value);
        } else {
            fatal("unknown tenant field '" + key +
                  "' (expected name, alg, spec or faults)");
        }
    }
    if (!sawAlg || !sawSpec)
        fatal("tenant spec '" + text +
              "' must carry at least alg= and spec=");
    return spec;
}

TenantSpec
TenantSpec::fromSeed(std::uint64_t seed)
{
    TenantSpec spec;
    spec.name = "t" + std::to_string(seed);
    spec.algo = allSelectors[seed % std::size(allSelectors)];
    spec.program = testing::GenSpec::fromSeed(seed);
    return spec;
}

bool
TenantSpec::operator==(const TenantSpec &other) const
{
    return name == other.name && algo == other.algo &&
           program == other.program && faults == other.faults;
}

SimOptions
tenantSimOptions(const TenantSpec &spec)
{
    SimOptions opts;
    opts.maxEvents = spec.program.events;
    opts.seed = spec.program.execSeed;
    return opts;
}

std::vector<TenantSpec>
loadTenantSpecs(std::istream &in)
{
    std::vector<TenantSpec> specs;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Strip a trailing CR (files written on other platforms)
        // and skip blanks / comments.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        try {
            specs.push_back(TenantSpec::parse(line.substr(first)));
        } catch (const FatalError &e) {
            fatal("tenant spec file line " + std::to_string(lineNo) +
                  ": " + e.what());
        }
    }
    if (specs.empty())
        fatal("tenant spec file holds no tenants");
    return specs;
}

} // namespace service
} // namespace rsel
