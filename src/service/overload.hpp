/**
 * @file
 * The service overload controller: per-tenant health tracking,
 * bounded admission, slice budgets — and the TenantConductor that
 * drives one tenant through both the overload machine and its
 * ChaosSchedule.
 *
 * Health state machine (see docs/RESILIENCE.md for the diagram):
 *
 *     HEALTHY ──pressure──► DEGRADED ──streak──► SHED ──► BLACKLISTED
 *        ▲                      │                  │       (terminal)
 *        └──────clean slice─────┘◄───clean slice───┘
 *
 * "Pressure" is the tenant's own recovery-signal delta per slice
 * (translation failures, backoff/blacklist suppressions, retries —
 * the counters RecoveryStats already maintains), so the machine is
 * a pure function of the tenant's stream: deterministic at any
 * worker count, reproducible by the solo reference leg. SHED defers
 * a deterministic fraction of the tenant's slices (round-robin by
 * its own offer clock — no events are ever dropped, transparency
 * holds); BLACKLISTED is terminal and degrades the tenant to pure
 * interpretation, after which it drains its remaining budget
 * interpreted. A slice budget (deadline analogue) forces the same
 * terminal state when a tenant exceeds its allotted slices.
 *
 * The conductor is the single implementation of the chaos+overload
 * slice loop: runService drives one per tenant, and the solo
 * reference leg (soloTenantChaosRun) drives the same class against
 * a private arena — so the oracle and the service cannot drift.
 */

#ifndef RSEL_SERVICE_OVERLOAD_HPP
#define RSEL_SERVICE_OVERLOAD_HPP

#include <cstdint>
#include <memory>

#include "service/chaos.hpp"
#include "service/tenant_session.hpp"

namespace rsel {
namespace service {

/** Per-tenant health as seen by the overload controller. */
enum class TenantHealth : std::uint8_t {
    Healthy,
    Degraded,
    Shed,
    Blacklisted,
};

/** Stable uppercase name ("HEALTHY", ... — JSON/report form). */
const char *healthName(TenantHealth health);

/** Knobs of the overload controller. Default-constructed = off. */
struct OverloadConfig
{
    /** Max tenants granted a slice per scheduling round (bounded
     *  admission); 0 = unbounded (free-running scheduler). */
    std::size_t maxInflight = 0;
    /** Slices a tenant may consume before it is degraded to
     *  interpretation (deadline analogue); 0 = no budget. */
    std::uint64_t sliceBudget = 0;
    /** Master switch of the health state machine. */
    bool healthEnabled = false;
    /** Recovery-signal delta per slice that counts as pressure. */
    std::uint32_t degradePressure = 1;
    /** Consecutive pressured slices before DEGRADED becomes SHED. */
    std::uint32_t shedAfter = 3;
    /** Consecutive pressured slices before BLACKLISTED. */
    std::uint32_t blacklistAfter = 8;
    /** In SHED, every shedStride-th offer runs, the rest are shed
     *  (<= 1 disables shedding). */
    std::uint32_t shedStride = 2;

    /** True if any overload mechanism can engage. */
    bool
    enabled() const
    {
        return maxInflight != 0 || sliceBudget != 0 || healthEnabled;
    }
};

/**
 * The per-tenant health state machine. Pure: its state is a
 * function of the pressure-delta sequence fed to observe(), nothing
 * else, which is what lets the solo reference leg replay it.
 */
class TenantHealthMachine
{
  public:
    explicit TenantHealthMachine(const OverloadConfig &cfg)
        : cfg_(cfg)
    {
    }

    /**
     * Feed one completed slice's recovery-signal delta; returns the
     * new state. A pressured slice escalates (per the streak
     * thresholds); a clean slice clears the streak and steps the
     * state down one level. BLACKLISTED is absorbing.
     */
    TenantHealth observe(std::uint64_t pressureDelta);

    /** Force the terminal state (slice-budget exhaustion). */
    void
    blacklist()
    {
        state_ = TenantHealth::Blacklisted;
    }

    /** Warm restart: the replacement session starts with a clean
     *  bill of health. */
    void
    reset()
    {
        state_ = TenantHealth::Healthy;
        streak_ = 0;
    }

    TenantHealth state() const { return state_; }

  private:
    OverloadConfig cfg_;
    TenantHealth state_ = TenantHealth::Healthy;
    std::uint32_t streak_ = 0;
};

/** Why one scheduling offer to a conductor ended. */
enum class OfferOutcome : std::uint8_t {
    Ran,      ///< a slice executed (optimized or degraded drain)
    Shed,     ///< deferred (SHED stride or admission bound)
    Finished, ///< the tenant was already done/aborted
};

/** The conductor's per-tenant accounting (the report's chaos and
 *  overload counters; `scheduled == shed + completed + blacklisted`
 *  is the slice-accounting identity the fuzz oracle checks). */
struct ConductorCounters
{
    /** Offers while pending (granted or shed). */
    std::uint64_t scheduledSlices = 0;
    /** Offers deferred: SHED-stride plus admission-bound sheds. */
    std::uint64_t shedSlices = 0;
    /** Slices run while not degraded. */
    std::uint64_t completedSlices = 0;
    /** Slices run in the degraded (interpret-only) drain. */
    std::uint64_t blacklistedSlices = 0;
    std::uint64_t restarts = 0;
    /** Replay position of the (single) warm restart. */
    std::uint64_t restartFromEvent = 0;
    std::uint64_t quarantinesTriggered = 0;
    std::uint64_t squeezesApplied = 0;
    bool aborted = false;
    bool budgetExhausted = false;
};

/**
 * Drives ONE tenant through its ChaosSchedule and the overload
 * controller, slice by slice. All chaos triggers key off the
 * tenant's own run-slice clock (`slicesRun`), so the whole
 * trajectory — faults, health transitions, sheds — is a pure
 * function of (spec, limits, schedule, overload config), identical
 * at any worker count and reproducible solo.
 *
 * Threading: like TenantSession, a conductor has one owner at a
 * time; the scheduler only re-offers it after the previous offer
 * returned.
 */
class TenantConductor
{
  public:
    /**
     * Registers the tenant with the arena and builds its session.
     * @param squeezedCapacityBytes logical-cache capacity while the
     *        memory-pressure squeeze is active (computed by the
     *        service through the limitsFor() partition; 0 =
     *        unbounded, making the squeeze a no-op).
     */
    TenantConductor(const TenantSpec &spec, CacheLimits limits,
                    std::uint64_t squeezedCapacityBytes,
                    ShardedCodeCache &arena,
                    std::uint64_t sliceEvents,
                    std::uint64_t eventsOverride,
                    const ChaosSchedule &schedule,
                    const OverloadConfig &overload);

    /** Lifts any still-pending quarantine; the session tears itself
     *  down via its own destructor if teardown() never ran. */
    ~TenantConductor();

    TenantConductor(const TenantConductor &) = delete;
    TenantConductor &operator=(const TenantConductor &) = delete;

    /**
     * One scheduling opportunity: fire due chaos triggers, then
     * either shed (SHED stride) or run one slice and feed the
     * health machine. The scheduler keeps offering until done().
     */
    OfferOutcome offer();

    /**
     * The bounded-admission scheduler denied this round's offer:
     * account it as scheduled-and-shed without touching the slice
     * clock (chaos triggers stay keyed to run slices, so the solo
     * leg — which has no admission bound — replays identically).
     */
    void recordAdmissionShed();

    /** True once the tenant completed, was aborted, or stopped. */
    bool done() const;

    /** Close the run. @pre done() && !aborted. */
    SimResult finish();

    /** Tear down session and any chaos residue. Idempotent. */
    void teardown();

    /** Current health (reports; BLACKLISTED once degraded). */
    TenantHealth health() const;

    const ConductorCounters &counters() const { return counters_; }

    /** The arena id of the *current* session (the restarted id
     *  after a crash; the retired id after an abort). */
    TenantId tenantId() const { return id_; }

    const TenantSpec &spec() const { return spec_; }

  private:
    void applyChaosPreSlice();
    void restartTenant();
    void abortTenant();
    void liftQuarantineIfPending();
    /** Sum of the recovery counters the health machine listens
     *  to. */
    std::uint64_t pressureSignals() const;

    TenantSpec spec_;
    CacheLimits limits_;
    std::uint64_t squeezedCapacityBytes_;
    ShardedCodeCache &arena_;
    std::uint64_t sliceEvents_;
    std::uint64_t eventsOverride_;
    ChaosSchedule schedule_;
    OverloadConfig overload_;

    TenantId id_ = 0;
    std::unique_ptr<TenantSession> session_;
    TenantHealthMachine machine_;
    ConductorCounters counters_;

    /** Run slices so far — the chaos/budget clock. */
    std::uint64_t slicesRun_ = 0;
    /** Offers seen while in SHED (the stride clock). */
    std::uint64_t shedTick_ = 0;
    std::uint64_t lastSignals_ = 0;
    bool degraded_ = false;
    bool crashed_ = false;
    /** The replacement session runs chaos- and overload-free: its
     *  oracle is a plain fresh solo run from the replay position. */
    bool postRestart_ = false;
    bool squeezeOn_ = false;
    bool squeezeDone_ = false;
    bool quarFired_ = false;
    bool quarActive_ = false;
    std::size_t quarShard_ = 0;
    std::uint64_t quarLiftAt_ = 0;
};

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_OVERLOAD_HPP
