/**
 * @file
 * The multi-tenant selection service: N concurrent guest streams
 * (tenants) multiplexed over one shared, bounded, sharded code
 * cache by the PR-1 ThreadPool, driven through the PR-6 batched
 * event path.
 *
 * The load-bearing contract: each tenant's SimResult fingerprint is
 * byte-identical to a solo single-tenant run of the same spec and
 * quota-derived limits, at any concurrency, for every selector,
 * including under fault plans. soloTenantRun() is the reference
 * leg; verifyServiceDeterminism() is the oracle the test battery
 * and `rselect-fuzz --tenants` drive.
 */

#ifndef RSEL_SERVICE_SELECTION_SERVICE_HPP
#define RSEL_SERVICE_SELECTION_SERVICE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "service/sharded_cache.hpp"
#include "service/tenant_spec.hpp"

namespace rsel {
namespace service {

/** Configuration of one service run. */
struct ServiceConfig
{
    /** The tenant set (>= 1 tenant). */
    std::vector<TenantSpec> tenants;
    /** Pool workers: 0 = hardware concurrency, 1 = serial. */
    std::size_t jobs = 0;
    /**
     * Global code-cache bound in KiB, partitioned into equal
     * per-tenant quotas; 0 = unbounded arena, in which case each
     * tenant honours its own spec's cacheKb (the differential
     * oracle's mapping).
     */
    std::uint64_t cacheKb = 0;
    /** Arena shard count. */
    std::size_t shards = 16;
    /** Eviction policy applied within each tenant's quota. */
    CacheLimits::Policy policy = CacheLimits::Policy::FullFlush;
    /** Events per scheduling slice (bounds tenant latency skew). */
    std::uint64_t sliceEvents = 4096;
    /** Non-zero overrides every tenant's event budget. */
    std::uint64_t eventsOverride = 0;
};

/** One tenant's outcome. */
struct TenantReport
{
    std::string name;
    std::string selector;
    SimResult result;
    /** testing::resultFingerprint of the result — the determinism
     *  contract's unit of comparison. */
    std::string fingerprint;
    /** Physical-arena accounting at finish time (before
     *  teardown). */
    TenantCacheStats cache;
};

/** Outcome of one service run. */
struct ServiceReport
{
    std::vector<TenantReport> tenants;
    /** Arena accounting after all tenants finished, before
     *  teardown (liveBytes = Σ per-tenant residency). */
    ArenaStats arena;
    /** Per-tenant quota in effect (0 = unbounded / per-spec). */
    std::uint64_t quotaBytes = 0;
    std::size_t jobs = 0;
    double seconds = 0;
    /** Sustained dynamic events per second across the whole run. */
    double eventsPerSec = 0;
    /** Global hit rate: Σ cached insts / Σ total insts. */
    double globalHitRate = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalInsts = 0;
    std::uint64_t cachedInsts = 0;
};

/**
 * The logical-cache limits tenant `spec` runs with under `config`:
 * the arena quota partition when the service is bounded, the spec's
 * own cacheKb otherwise. The solo reference leg must use the same
 * limits — that IS the determinism contract's definition of "the
 * corresponding solo run".
 */
CacheLimits tenantLimitsFor(const ServiceConfig &config,
                            const TenantSpec &spec);

/**
 * Run the whole tenant set to completion and report. Tenants are
 * interleaved slice-by-slice over the worker pool (FIFO
 * round-robin); per-tenant results are independent of worker count
 * and interleaving by construction. A throwing tenant fail-fasts
 * the run (ThreadPool's first-exception contract).
 * @throws FatalError on an empty tenant set.
 */
ServiceReport runService(const ServiceConfig &config);

/**
 * The solo reference leg: run one tenant alone — no arena, plain
 * DynOptSystem + batched Executor — under `limits`. The service's
 * per-tenant results must match this byte-for-byte.
 */
SimResult soloTenantRun(const TenantSpec &spec, CacheLimits limits,
                        std::uint64_t eventsOverride = 0);

/**
 * The multi-tenant determinism oracle: run `config` through the
 * service, then each tenant solo, and compare fingerprints.
 * @return empty on success, else a description of the first
 * mismatch (never throws; failures from any layer are captured).
 */
std::string verifyServiceDeterminism(const ServiceConfig &config);

/**
 * Write the report as JSON (rselect-serve --json): run-level
 * aggregates plus one compact record per tenant (fingerprints are
 * folded to an FNV-1a hash so 4096-tenant reports stay small).
 */
void writeServiceReportJson(std::ostream &os,
                            const ServiceConfig &config,
                            const ServiceReport &report);

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_SELECTION_SERVICE_HPP
