/**
 * @file
 * The multi-tenant selection service: N concurrent guest streams
 * (tenants) multiplexed over one shared, bounded, sharded code
 * cache by the PR-1 ThreadPool, driven through the PR-6 batched
 * event path.
 *
 * The load-bearing contract: each tenant's SimResult fingerprint is
 * byte-identical to a solo single-tenant run of the same spec and
 * quota-derived limits, at any concurrency, for every selector,
 * including under fault plans. soloTenantRun() is the reference
 * leg; verifyServiceDeterminism() is the oracle the test battery
 * and `rselect-fuzz --tenants` drive.
 */

#ifndef RSEL_SERVICE_SELECTION_SERVICE_HPP
#define RSEL_SERVICE_SELECTION_SERVICE_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "service/chaos.hpp"
#include "service/overload.hpp"
#include "service/sharded_cache.hpp"
#include "service/tenant_spec.hpp"

namespace rsel {
namespace service {

/** Configuration of one service run. */
struct ServiceConfig
{
    /** The tenant set (>= 1 tenant). */
    std::vector<TenantSpec> tenants;
    /** Pool workers: 0 = hardware concurrency, 1 = serial. */
    std::size_t jobs = 0;
    /**
     * Global code-cache bound in KiB, partitioned into equal
     * per-tenant quotas; 0 = unbounded arena, in which case each
     * tenant honours its own spec's cacheKb (the differential
     * oracle's mapping).
     */
    std::uint64_t cacheKb = 0;
    /** Arena shard count. */
    std::size_t shards = 16;
    /** Eviction policy applied within each tenant's quota. */
    CacheLimits::Policy policy = CacheLimits::Policy::FullFlush;
    /** Events per scheduling slice (bounds tenant latency skew). */
    std::uint64_t sliceEvents = 4096;
    /** Non-zero overrides every tenant's event budget. */
    std::uint64_t eventsOverride = 0;
    /** Service-level fault plan (default: disarmed). */
    ChaosPlan chaos;
    /** Overload controller (default: off). */
    OverloadConfig overload;
};

/** One tenant's outcome. */
struct TenantReport
{
    std::string name;
    std::string selector;
    SimResult result;
    /** testing::resultFingerprint of the result — the determinism
     *  contract's unit of comparison. Empty for aborted tenants. */
    std::string fingerprint;
    /** Physical-arena accounting at finish time (before teardown;
     *  for crashed tenants, under the post-restart arena id). */
    TenantCacheStats cache;
    /** Final health per the overload controller. */
    TenantHealth health = TenantHealth::Healthy;
    /** Chaos/overload accounting (scheduled == shed + completed +
     *  blacklisted is the per-tenant slice identity). */
    ConductorCounters chaos;
    /** True if the chaos plan aborted the tenant: result and
     *  fingerprint are empty, only accounting is meaningful. */
    bool aborted = false;
};

/** Run-level chaos/overload roll-up (sums of TenantReport.chaos). */
struct ServiceChaosTotals
{
    std::uint64_t aborts = 0;
    std::uint64_t restarts = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t squeezes = 0;
    std::uint64_t scheduledSlices = 0;
    std::uint64_t shedSlices = 0;
    std::uint64_t completedSlices = 0;
    std::uint64_t blacklistedSlices = 0;
    /** Tenants whose final health is not HEALTHY. */
    std::uint64_t degradedTenants = 0;
    /** Tenants that ended BLACKLISTED (incl. budget exhaustion). */
    std::uint64_t blacklistedTenants = 0;
};

/** Outcome of one service run. */
struct ServiceReport
{
    std::vector<TenantReport> tenants;
    /** Arena accounting after all tenants finished, before
     *  teardown (liveBytes = Σ per-tenant residency). */
    ArenaStats arena;
    /** Per-tenant quota in effect (0 = unbounded / per-spec). */
    std::uint64_t quotaBytes = 0;
    std::size_t jobs = 0;
    double seconds = 0;
    /** Sustained dynamic events per second across the whole run. */
    double eventsPerSec = 0;
    /** Global hit rate: Σ cached insts / Σ total insts (surviving
     *  tenants only). */
    double globalHitRate = 0;
    std::uint64_t totalEvents = 0;
    std::uint64_t totalInsts = 0;
    std::uint64_t cachedInsts = 0;
    /** Chaos/overload roll-up (all zero on a chaos-free run). */
    ServiceChaosTotals chaos;
};

/**
 * The logical-cache limits tenant `spec` runs with under `config`:
 * the arena quota partition when the service is bounded, the spec's
 * own cacheKb otherwise. The solo reference leg must use the same
 * limits — that IS the determinism contract's definition of "the
 * corresponding solo run".
 */
CacheLimits tenantLimitsFor(const ServiceConfig &config,
                            const TenantSpec &spec);

/**
 * Run the whole tenant set to completion and report. Tenants are
 * interleaved slice-by-slice over the worker pool (FIFO
 * round-robin); per-tenant results are independent of worker count
 * and interleaving by construction. A throwing tenant fail-fasts
 * the run (ThreadPool's first-exception contract).
 * @throws FatalError on an empty tenant set.
 */
ServiceReport runService(const ServiceConfig &config);

/**
 * The solo reference leg: run one tenant alone — no arena, plain
 * DynOptSystem + batched Executor — under `limits`. The service's
 * per-tenant results must match this byte-for-byte. `skipEvents`
 * fast-forwards the guest stream before the system sees any event —
 * the warm-restart oracle's "fresh solo run from the same
 * position" (the skipped events still count against the budget).
 */
SimResult soloTenantRun(const TenantSpec &spec, CacheLimits limits,
                        std::uint64_t eventsOverride = 0,
                        std::uint64_t skipEvents = 0);

/**
 * The logical-cache capacity in effect while `config.chaos`'s
 * memory-pressure squeeze is active for tenant `spec`: the quota a
 * population `factor` times larger would get (computed through the
 * same limitsFor() partition), or the spec's own bound divided by
 * `factor` when the arena is unbounded. 0 (fully unbounded tenant)
 * makes the squeeze a no-op.
 */
std::uint64_t squeezedCapacityFor(const ServiceConfig &config,
                                  const TenantSpec &spec,
                                  std::uint32_t factor);

/**
 * The chaos-aware solo reference leg: drive tenant `tenantIndex` of
 * `config` through its own TenantConductor — same schedule, same
 * overload machine, same slice size — against a private arena.
 * Reproduces squeezes and health-driven degradation exactly; used
 * by verifyServiceChaos for tenants the chaos plan or overload
 * controller semantically touched. @pre the tenant survives its
 * schedule (a scheduled abort it never reaches is fine).
 */
SimResult soloTenantChaosRun(const ServiceConfig &config,
                             std::size_t tenantIndex);

/**
 * The multi-tenant determinism oracle: run `config` through the
 * service, then each tenant solo, and compare fingerprints.
 * @return empty on success, else a description of the first
 * mismatch (never throws; failures from any layer are captured).
 */
std::string verifyServiceDeterminism(const ServiceConfig &config);

/**
 * The chaos oracle (rselect-fuzz --chaos-fuzz, --verify-solo under
 * chaos). Runs the service once, then per tenant:
 *  - aborted tenants: the schedule must call for the abort, and the
 *    tenant must leave zero physical residue;
 *  - crashed tenants: the post-restart fingerprint must equal a
 *    fresh solo run fast-forwarded to the replay position;
 *  - tenants semantically touched by a squeeze or by overload
 *    degradation: fingerprint must equal the conductor-driven solo
 *    chaos leg (soloTenantChaosRun);
 *  - untouched tenants: fingerprint must equal the plain chaos-free
 *    solo run — the isolation half of the oracle.
 * Plus the accounting identities: per tenant and globally,
 * admissions == releases + liveEntries, and scheduled == shed +
 * completed + blacklisted.
 * @return empty on success, else a description of the first
 * failure.
 */
std::string verifyServiceChaos(const ServiceConfig &config);

/**
 * Write the report as JSON (rselect-serve --json): run-level
 * aggregates plus one compact record per tenant (fingerprints are
 * folded to an FNV-1a hash so 4096-tenant reports stay small).
 */
void writeServiceReportJson(std::ostream &os,
                            const ServiceConfig &config,
                            const ServiceReport &report);

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_SELECTION_SERVICE_HPP
