/**
 * @file
 * The sharded, bounded, concurrent code cache shared by every
 * tenant of the selection service.
 *
 * Architecture (see docs/SERVICE.md): each tenant keeps its own
 * *logical* CodeCache — region ids, counters and eviction decisions
 * stay a pure function of that tenant's event stream and its
 * quota-derived CacheLimits, which is what makes per-tenant
 * SimResult fingerprints byte-identical to solo runs at any
 * concurrency. This class is the *physical* substrate underneath:
 * every logical insert / evict / invalidate / flush is mirrored
 * here (via CodeCache::Listener), keyed by entrance address into a
 * fixed set of shards, each guarded by its own mutex, with
 * per-tenant and global byte accounting.
 *
 * The global eviction policy is quota partitioning: a global
 * capacity C over N tenants grants each tenant C/N bytes, and the
 * configured policy (FullFlush or Fifo) is applied *within* each
 * tenant's quota by its logical cache. The arena never chooses
 * cross-tenant victims — doing so would make one tenant's hit rate
 * depend on its neighbours' schedules and break the determinism
 * contract — so its job is admission bookkeeping, isolation
 * enforcement (a tenant must be registered and alive to admit, and
 * two tenants can never alias one physical entry), and the global
 * occupancy bound Σ_t live_t ≤ C (+ the same single-oversized-
 * region overshoot CodeCache itself permits per tenant).
 *
 * Shards are keyed by entrance-address *hash only* — deliberately
 * not by tenant — so tenants whose guest programs share an address
 * range (all generated programs do) genuinely contend on the same
 * shard mutexes. The tsan stress battery hammers exactly that.
 *
 * Concurrency contract (checked by the `analyze` preset, see
 * docs/ANALYSIS.md for the full capability map):
 *
 *  - `registry_` guards the account table's *growth*
 *    (registerTenant); established accounts are then read lock-free
 *    through the `accountCount_` publication count.
 *  - `Shard::mu` guards that shard's entry map, and nothing else.
 *  - Lock hierarchy: `registry_` ≺ `shard.mu`, encoded with
 *    `RSEL_ACQUIRED_AFTER` on every shard mutex — acquiring the
 *    registry while holding a shard is a compile error under the
 *    analyze gate (the inversion TSan could only hope to trip).
 *    Methods on the admit/release path additionally carry
 *    `RSEL_EXCLUDES(registry_)`: they are callable from under a
 *    tenant's logical-cache mutation (the CodeCache::Listener
 *    mirror), so they must never wait on the registry.
 *  - All cross-shard accounting is atomic with a declared role tag
 *    (see support/sync.hpp's atomics discipline).
 */

#ifndef RSEL_SERVICE_SHARDED_CACHE_HPP
#define RSEL_SERVICE_SHARDED_CACHE_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "runtime/code_cache.hpp"
#include "support/sync.hpp"

namespace rsel {
namespace service {

/** Dense id of one registered tenant. */
using TenantId = std::uint32_t;

/** Configuration of the shared arena. */
struct ArenaConfig
{
    /** Global capacity in estimated bytes; 0 = unbounded. */
    std::uint64_t capacityBytes = 0;
    /** Number of shards (clamped to >= 1). */
    std::size_t shardCount = 16;
    /** Eviction policy applied within each tenant's quota. */
    CacheLimits::Policy policy = CacheLimits::Policy::FullFlush;
    /** Bytes charged per exit stub (the CodeCache byte model). */
    std::uint64_t stubBytes = 10;
};

/** Why a physical entry was released (mirrors CodeCache drops). */
enum class ReleaseReason : std::uint8_t {
    Eviction,     ///< capacity eviction in the tenant's logical cache
    Invalidation, ///< self-modifying-code invalidation
    Flush,        ///< tenant-local flush (policy storm or teardown)
};

/** Per-tenant accounting snapshot (disjoint by release kind). */
struct TenantCacheStats
{
    std::uint64_t liveBytes = 0;      ///< current physical residency
    std::uint64_t highWaterBytes = 0; ///< peak physical residency
    std::uint64_t admissions = 0;     ///< regions admitted
    std::uint64_t evictionReleases = 0;
    std::uint64_t invalidationReleases = 0;
    std::uint64_t flushReleases = 0;
    /** Entries currently resident, closing the O(1) accounting
     *  identity admissions == Σ releases + liveEntries. */
    std::uint64_t liveEntries = 0;
};

/** Global accounting snapshot. */
struct ArenaStats
{
    std::uint64_t liveBytes = 0;
    std::uint64_t highWaterBytes = 0;
    std::uint64_t admissions = 0;
    std::uint64_t releases = 0;
    /** Admissions/releases that found their shard mutex held — the
     *  cross-tenant contention the sharding exists to dilute. */
    std::uint64_t shardContention = 0;
    /** Entries currently resident (admissions == releases +
     *  liveEntries is the global accounting identity). */
    std::uint64_t liveEntries = 0;
    /** quarantineShard() calls (chaos plan triggers). */
    std::uint64_t quarantines = 0;
    /** Admissions that arrived at a quarantined shard and were
     *  parked until the lift. */
    std::uint64_t quarantinedAdmissions = 0;
    std::size_t shardCount = 0;
    std::size_t tenantsRegistered = 0;
    std::size_t tenantsActive = 0;
};

/**
 * The shared physical code cache. All methods are thread-safe; a
 * single tenant's calls must be serialized by its session (they
 * are — a session runs one slice at a time, and TenantSession's
 * session capability enforces it), but different tenants call
 * concurrently from any pool worker.
 */
class ShardedCodeCache
{
  public:
    explicit ShardedCodeCache(ArenaConfig cfg);
    ~ShardedCodeCache();

    ShardedCodeCache(const ShardedCodeCache &) = delete;
    ShardedCodeCache &operator=(const ShardedCodeCache &) = delete;

    /**
     * Register a tenant and return its fresh dense id. Ids are
     * never reused: a torn-down tenant's id stays dead forever,
     * which is one half of the no-resurrection guarantee (the
     * other half is that releaseAll() empties its shard entries).
     *
     * Safe to call concurrently with admit()/release() traffic —
     * warm tenant restart registers a fresh id while neighbours are
     * mid-slice. The account table is a fixed array of
     * atomically-published chunk pointers: established accounts
     * never move, chunks are allocated under `registry_` and read
     * lock-free through the accountCount_ publication protocol.
     */
    TenantId registerTenant() RSEL_EXCLUDES(registry_);

    /**
     * Per-tenant quota under the global policy: capacityBytes / N
     * (0 = unbounded when the arena is unbounded). @pre N >= 1.
     */
    std::uint64_t tenantQuotaBytes(std::size_t tenantCount) const;

    /** The CacheLimits a tenant's logical cache must run with so
     *  the quota partition holds (policy and stub model ride
     *  along). */
    CacheLimits tenantLimits(std::size_t tenantCount) const
    {
        return limitsFor(cfg_, tenantCount);
    }

    /** tenantLimits() without an arena: the one place the quota
     *  partition is computed, shared with the solo reference leg so
     *  service and solo limits cannot drift apart. */
    static CacheLimits limitsFor(const ArenaConfig &cfg,
                                 std::size_t tenantCount);

    /**
     * Admit one region of `bytes` estimated bytes entering at
     * `entry`. @pre the tenant is registered and active, and holds
     * no live entry at `entry` (its logical cache guarantees both).
     * Callable from under a tenant's logical-cache mutation (the
     * Listener mirror), hence must never touch the registry.
     */
    void admit(TenantId tenant, Addr entry, std::uint64_t bytes)
        RSEL_EXCLUDES(registry_);

    /**
     * Release the entry admitted at `entry`. The byte figure must
     * match the admission (CodeCache reports the same estimate on
     * both sides, so listener-driven mirrors always do). Same
     * re-entrancy contract as admit().
     */
    void release(TenantId tenant, Addr entry, std::uint64_t bytes,
                 ReleaseReason reason) RSEL_EXCLUDES(registry_);

    /**
     * Drop every live entry of `tenant` (teardown sweep), then
     * deactivate the id: further admissions from it are rejected
     * loudly, so a dead tenant's regions can never resurrect.
     * @return bytes released.
     */
    std::uint64_t releaseAll(TenantId tenant) RSEL_EXCLUDES(registry_);

    /**
     * Final teardown check: @pre releaseAll() ran (or the tenant
     * emptied its cache through the flush machinery) — a tenant
     * with residual live bytes is a service bug and panics.
     */
    void unregisterTenant(TenantId tenant);

    /**
     * Quarantine one shard (chaos fault): until the matching lift,
     * admissions hashing to it are *parked* — accounted as admitted
     * (the logical cache has already committed to the region; the
     * mirror must not diverge) but held in a side pen, modelling an
     * arena segment taken out of service. Purely physical: no
     * logical result can change. Nests; each quarantine needs one
     * lift. @pre shard < shardCount.
     */
    void quarantineShard(std::size_t shard) RSEL_EXCLUDES(registry_);

    /**
     * Lift one quarantine of `shard`; when the last nested
     * quarantine lifts, parked entries merge back into the live
     * map. @pre the shard is quarantined.
     */
    void liftShardQuarantine(std::size_t shard)
        RSEL_EXCLUDES(registry_);

    /** Shard index serving `entry` (test probe). */
    std::size_t
    shardOf(Addr entry) const
    {
        // splitmix64-style finalizer: entrance addresses are
        // sequential and small, so raw modulo would put every
        // tenant of a program family in shard 0.
        std::uint64_t h = entry;
        h ^= h >> 33;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return static_cast<std::size_t>(h % shards_.size());
    }

    /** Accounting snapshot of one tenant. */
    TenantCacheStats tenantStats(TenantId tenant) const;

    /** Global accounting snapshot. */
    ArenaStats stats() const;

    /** Live physical entries of one tenant (test probe; O(shards +
     *  entries)). */
    std::size_t liveEntryCount(TenantId tenant) const;

    /** The configured arena parameters. */
    const ArenaConfig &config() const { return cfg_; }

    /**
     * Lock-order probes for the negative-compile battery and the
     * service_stress_test shim (tests/negative_compile/): the two
     * capabilities of shard `shard` in their declared order. The
     * first IS `registry_` (each shard re-names the registry lock so
     * the `RSEL_ACQUIRED_AFTER` relation is expressible per shard);
     * acquiring them through these probes in the inverted order is
     * exactly the registry-vs-shard deadlock, and the analyze gate
     * rejects it at compile time.
     */
    Mutex &
    shardOrderFirst(std::size_t shard) const
        RSEL_RETURN_CAPABILITY(shards_[shard].registry)
    {
        return shards_[shard].registry;
    }

    /** The shard's own mutex (second in the declared order). */
    Mutex &
    shardOrderSecond(std::size_t shard) const
        RSEL_RETURN_CAPABILITY(shards_[shard].mu)
    {
        return shards_[shard].mu;
    }

  private:
    friend struct TsaTestProbe; // negative-compile battery only

    /** One shard: a mutex plus the (tenant, entry) -> bytes map. */
    struct Shard
    {
        explicit Shard(Mutex &registryLock) : registry(registryLock) {}

        /**
         * The owning arena's `registry_`, re-named into shard scope
         * so the lock order `registry_` ≺ `mu` is expressible as an
         * attribute on `mu` (TSA resolves `acquired_after` against
         * members of the same object).
         */
        Mutex &registry;
        mutable Mutex mu RSEL_ACQUIRED_AFTER(registry);
        /** Key = tenant-qualified entrance address (see keyOf). */
        std::unordered_map<std::uint64_t, std::uint64_t> entries
            RSEL_GUARDED_BY(mu);
        /** Admissions parked while the shard is quarantined; merged
         *  back into `entries` when the last quarantine lifts. */
        std::unordered_map<std::uint64_t, std::uint64_t> parked
            RSEL_GUARDED_BY(mu);
        /** Nested quarantine count; admissions park while > 0. */
        std::uint32_t quarantineDepth RSEL_GUARDED_BY(mu) = 0;
    };

    /** Per-tenant account; atomics because a tenant's entries span
     *  shards and snapshots race with other tenants' traffic. Role
     *  tags per the support/sync.hpp atomics discipline. */
    struct Account
    {
        /** role: gauge (relaxed) — mirrors the shard maps, whose
         *  consistency the shard mutexes already provide. */
        std::atomic<std::uint64_t> liveBytes{0};
        /** role: high-water (relaxed CAS). */
        std::atomic<std::uint64_t> highWaterBytes{0};
        /** role: counter (relaxed). */
        std::atomic<std::uint64_t> admissions{0};
        /** role: counter (relaxed). */
        std::atomic<std::uint64_t> evictionReleases{0};
        /** role: counter (relaxed). */
        std::atomic<std::uint64_t> invalidationReleases{0};
        /** role: counter (relaxed). */
        std::atomic<std::uint64_t> flushReleases{0};
        /** role: gauge (relaxed) — resident entry count, the O(1)
         *  side of admissions == Σ releases + liveEntries. */
        std::atomic<std::uint64_t> liveEntries{0};
        /** role: flag (release/acquire) — deactivation publishes the
         *  teardown sweep that preceded it. */
        std::atomic<bool> active{true};
    };

    /** Accounts live in fixed-size chunks so established elements
     *  never move while the table grows mid-traffic. */
    static constexpr std::size_t kAccountsPerChunk = 256;
    static constexpr std::size_t kMaxAccountChunks = 4096;

    struct AccountChunk
    {
        Account slots[kAccountsPerChunk];
    };

    /**
     * Tenant-qualified map key: two tenants' guest programs live
     * in the same synthetic address range, so the physical map
     * must never let one tenant's entry satisfy (or collide with)
     * another's. Entrance addresses in generated programs stay
     * well below 2^40; the assert in admit() enforces it.
     */
    static std::uint64_t
    keyOf(TenantId tenant, Addr entry)
    {
        return (static_cast<std::uint64_t>(tenant) << 40) ^ entry;
    }

    /**
     * Look up an established account without the registry lock.
     * Sound by the accountCount_ publication protocol: the bound
     * check loads accountCount_ with acquire, which synchronizes
     * with registerTenant's release store made after the element's
     * chunk was constructed; the chunk pointer itself is loaded
     * with acquire for readers that raced past a fresher count.
     */
    Account &account(TenantId tenant);
    const Account &account(TenantId tenant) const;

    /** Raise the high-water mark to at least `value`. */
    static void raiseHighWater(std::atomic<std::uint64_t> &mark,
                               std::uint64_t value);

    ArenaConfig cfg_;
    /** Serializes registerTenant calls with each other and guards
     *  the account table's growth. First in the lock hierarchy:
     *  declared before shards_ so each Shard can bind it. */
    mutable Mutex registry_;
    /** Deque: Shard is immovable (mutex + reference member). */
    std::deque<Shard> shards_;
    /**
     * Fixed table of atomically-published chunk pointers: accounts
     * never move, and registerTenant can grow the table while other
     * tenants' admit/release traffic reads it lock-free (warm
     * restart registers ids mid-run). Chunks are allocated under
     * registry_, published with release, read with acquire, and
     * owned until destruction (role: publication pointer).
     */
    std::array<std::atomic<AccountChunk *>, kMaxAccountChunks>
        chunks_{};
    /** role: publication count (release/acquire) — publishes the
     *  construction of accounts [0..n) to lock-free readers. */
    std::atomic<std::size_t> accountCount_{0};
    /** role: gauge (relaxed). */
    std::atomic<std::uint64_t> liveBytes_{0};
    /** role: high-water (relaxed CAS). */
    std::atomic<std::uint64_t> highWaterBytes_{0};
    /** role: counter (relaxed). */
    std::atomic<std::uint64_t> admissions_{0};
    /** role: counter (relaxed). */
    std::atomic<std::uint64_t> releases_{0};
    /** role: gauge (relaxed). */
    std::atomic<std::uint64_t> liveEntries_{0};
    /** role: counter (relaxed). */
    std::atomic<std::uint64_t> quarantines_{0};
    /** role: counter (relaxed). */
    std::atomic<std::uint64_t> quarantinedAdmissions_{0};
    /** role: counter (relaxed). */
    mutable std::atomic<std::uint64_t> contention_{0};
};

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_SHARDED_CACHE_HPP
