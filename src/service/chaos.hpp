/**
 * @file
 * The service chaos plan: a compact, seeded description of every
 * service-level failure a multi-tenant run will face.
 *
 * A ChaosPlan is to the service layer what a FaultPlan is to a
 * single DynOptSystem: the *entire* input of the failure model. Its
 * faults fire at fixed per-tenant slice indices — never from wall
 * clock, thread identity or scheduling order — so a chaos run is a
 * pure function of (tenant specs, plan) and `--jobs 1` and
 * `--jobs 8` are byte-identical. The one-line codec
 * ("c1,abort=120,crash=250,...") rides the shared plan codec
 * (resilience/plan_codec.hpp) and travels on rselect-serve
 * --chaos-spec and rselect-fuzz reproducer lines.
 *
 * Fault kinds (see docs/RESILIENCE.md, "Service chaos & overload"):
 *  - tenant abort: the session is torn down mid-run and produces no
 *    result; its physical residue must drain to zero.
 *  - tenant crash + warm restart: teardown through the flush
 *    machinery, then a fresh session rebuilt from the TenantSpec
 *    fast-forwarded to the replay position. Oracle: the restarted
 *    tenant's fingerprint equals a fresh solo run from that
 *    position.
 *  - shard quarantine: one arena shard parks admissions for K
 *    slices. Purely physical — logical results cannot change.
 *  - memory-pressure squeeze: every tenant's logical cache capacity
 *    is temporarily divided by `squeezeDiv`, driving mass eviction
 *    through the same limitsFor() partition the service already
 *    uses; capacity is restored after `squeezeSlices` slices.
 */

#ifndef RSEL_SERVICE_CHAOS_HPP
#define RSEL_SERVICE_CHAOS_HPP

#include <cstdint>
#include <string>

namespace rsel {
namespace service {

/**
 * What the plan resolved to for ONE tenant: which faults fire and at
 * which of the tenant's own slice indices. Produced by
 * ChaosPlan::scheduleFor as a pure function of (plan seed, tenant
 * index) — nothing about jobs, shards or neighbours enters.
 */
struct ChaosSchedule
{
    /** Tear the tenant down at `abortSlice`; no result. */
    bool abort = false;
    std::uint64_t abortSlice = 0;

    /** Crash at `crashSlice`, then warm-restart from the replay
     *  position. Mutually exclusive with abort by construction. */
    bool crash = false;
    std::uint64_t crashSlice = 0;

    /** Quarantine shard (quarShardSalt % shardCount) for
     *  `quarSlices` of this tenant's slices starting at
     *  `quarSlice`. */
    bool quarantine = false;
    std::uint64_t quarSlice = 0;
    std::uint64_t quarSlices = 0;
    std::uint64_t quarShardSalt = 0;

    /** Divide the logical cache capacity by `squeezeFactor` for
     *  `squeezeSlices` slices starting at `squeezeSlice`. */
    bool squeeze = false;
    std::uint64_t squeezeSlice = 0;
    std::uint64_t squeezeSlices = 0;
    std::uint32_t squeezeFactor = 1;

    /** True if any fault touches this tenant. */
    bool
    any() const
    {
        return abort || crash || quarantine || squeeze;
    }
};

/**
 * Knobs of the deterministic service chaos injector. Per-tenant
 * fault odds are expressed in permille (0..1000) so small rates
 * round-trip exactly; slice positions/windows count the tenant's
 * own slice indices.
 */
struct ChaosPlan
{
    /** ‰ of tenants aborted mid-run (no result produced). */
    std::uint32_t abortPermille = 0;
    /** ‰ of tenants crashed and warm-restarted. */
    std::uint32_t crashPermille = 0;
    /** ‰ of tenants that trigger a shard quarantine. */
    std::uint32_t quarPermille = 0;
    /** Quarantine duration in triggering-tenant slices. */
    std::uint32_t quarSlices = 8;
    /** Capacity divisor of the global squeeze (0/1 = no squeeze). */
    std::uint32_t squeezeDiv = 0;
    /** Slice index at which the squeeze lands (every tenant). */
    std::uint32_t squeezeSlice = 4;
    /** Squeeze duration in slices. */
    std::uint32_t squeezeSlices = 8;
    /** Abort/crash/quarantine triggers land in slices
     *  [1, windowSlices]. */
    std::uint32_t windowSlices = 16;
    /** Chaos seed (independent of program/fault seeds). */
    std::uint64_t seed = 1;

    /** True if any service fault can ever fire. */
    bool
    armed() const
    {
        return abortPermille != 0 || crashPermille != 0 ||
               quarPermille != 0 || squeezeDiv > 1;
    }

    /** Clamp every knob into its legal range. */
    void clamp();

    /** Compact one-line text form ("c1,abort=120,crash=250,..."). */
    std::string toString() const;

    /**
     * Parse the text form produced by toString().
     * @throws FatalError on malformed input.
     */
    static ChaosPlan parse(const std::string &text);

    /**
     * Derive a randomized, always-armed plan from a fuzz seed (the
     * seed-to-chaos-space mapping of --chaos-fuzz).
     */
    static ChaosPlan fromSeed(std::uint64_t seed);

    /**
     * Resolve the plan for one tenant. Pure: depends only on the
     * plan's knobs/seed and `tenantIndex` (the tenant's position in
     * the service config), so every jobs/shard count — and the solo
     * reference leg — sees the identical schedule.
     */
    ChaosSchedule scheduleFor(std::size_t tenantIndex) const;

    bool operator==(const ChaosPlan &other) const;
    bool operator!=(const ChaosPlan &other) const
    {
        return !(*this == other);
    }
};

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_CHAOS_HPP
