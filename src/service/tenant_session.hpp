/**
 * @file
 * One tenant of the selection service: a guest program, an
 * Executor, and a DynOptSystem, driven in bounded slices so a small
 * worker pool can multiplex thousands of tenants.
 *
 * The session is the bridge between the tenant's *logical* cache
 * (its DynOptSystem's CodeCache, whose behaviour is a pure function
 * of the tenant spec and quota-derived limits) and the *physical*
 * ShardedCodeCache: it implements CodeCache::Listener and mirrors
 * every structural mutation into the arena under the tenant's id.
 *
 * Threading contract: at most one thread runs a given session at a
 * time (the service's slice scheduler guarantees it by only
 * resubmitting a session after its current slice returns); distinct
 * sessions run concurrently and meet only inside the arena.
 * requestStop() may be called from any thread.
 *
 * That single-owner contract is now a capability, `sessionMu_`:
 * every slice-state field is `RSEL_GUARDED_BY(sessionMu_)`, the
 * mutating entry points acquire it through `MutexSoleLock` — which
 * *panics* on contention, because a second concurrent owner is a
 * scheduler bug, not a queueing situation — and the analyze preset
 * rejects any new code path that touches slice state without it.
 * Lock hierarchy: `sessionMu_` is held across the logical-cache
 * mutations that re-enter the arena, so it sits strictly *before*
 * `Shard::mu` (and never meets `registry_`, which only
 * registerTenant takes); see docs/ANALYSIS.md.
 */

#ifndef RSEL_SERVICE_TENANT_SESSION_HPP
#define RSEL_SERVICE_TENANT_SESSION_HPP

#include <atomic>
#include <cstdint>

#include "dynopt/dynopt_system.hpp"
#include "service/sharded_cache.hpp"
#include "service/tenant_spec.hpp"
#include "support/sync.hpp"

namespace rsel {
namespace service {

/** One tenant's live state inside the service. */
class TenantSession : public CodeCache::Listener
{
  public:
    /**
     * @param id       arena id from ShardedCodeCache::registerTenant.
     * @param spec     the tenant's spec (copied).
     * @param limits   quota-derived logical-cache limits (must come
     *                 from the arena's tenantLimits so the global
     *                 partition holds).
     * @param arena    shared physical cache; must outlive the
     *                 session.
     * @param eventsOverride non-zero replaces the spec's own event
     *                 budget.
     * @param startEvents fast-forward: discard this many leading
     *                 events of the guest stream before slicing
     *                 begins, leaving `budget - startEvents` to run.
     *                 This is the warm-restart replay position — a
     *                 crashed tenant's replacement session starts
     *                 where the guest actually was, with a cold
     *                 system. Must not exceed the budget or lie
     *                 beyond the guest's halt.
     */
    TenantSession(TenantId id, const TenantSpec &spec,
                  CacheLimits limits, ShardedCodeCache &arena,
                  std::uint64_t eventsOverride = 0,
                  std::uint64_t startEvents = 0);

    ~TenantSession() override;

    TenantSession(const TenantSession &) = delete;
    TenantSession &operator=(const TenantSession &) = delete;

    /**
     * Run up to `maxEvents` further events through the system.
     * @return true while the tenant has work left; false once the
     * budget is exhausted, the guest halted, or a stop was
     * requested. Never call concurrently on the same session (the
     * session capability panics if two threads try).
     */
    bool runSlice(std::uint64_t maxEvents) RSEL_EXCLUDES(sessionMu_);

    /** Ask the session to stop at the next slice boundary (safe
     *  from any thread; used by concurrent-teardown paths). */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    /** True once runSlice() reported completion (or never had
     *  events to run). */
    bool
    done() const RSEL_EXCLUDES(sessionMu_)
    {
        MutexLock lock(sessionMu_);
        return done_;
    }

    /**
     * Close the run and return its metrics (workload field set to
     * the tenant name). May be called once, after runSlice()
     * reported completion. The result is byte-identical to a solo
     * single-tenant run of the same spec and limits — the service's
     * determinism contract.
     */
    SimResult finish() RSEL_EXCLUDES(sessionMu_);

    /**
     * Tear the tenant down: flush its logical cache through the
     * disruption machinery (the listener mirrors the drops out of
     * the arena), sweep any residue, and retire the arena id for
     * good. Idempotent. Works on finished and aborted sessions
     * alike; an aborted session simply never produces a SimResult.
     */
    void teardown() RSEL_EXCLUDES(sessionMu_);

    /** The arena id. */
    TenantId tenantId() const { return id_; }

    /** The spec this session runs. */
    const TenantSpec &spec() const { return spec_; }

    /** Events consumed so far. */
    std::uint64_t
    eventsRun() const RSEL_EXCLUDES(sessionMu_)
    {
        MutexLock lock(sessionMu_);
        return eventsRun_;
    }

    /** The tenant's logical cache (test probe). */
    const CodeCache &cache() const { return sys_.cache(); }

    /**
     * Apply a new logical-cache capacity (the chaos squeeze /
     * restore). Over-bound occupancy is evicted immediately under
     * the configured policy; the listener mirrors the drops out of
     * the arena. Caller contract is the same as runSlice: only the
     * session's sole owner, between slices.
     */
    void applyCacheCapacity(std::uint64_t capacityBytes)
        RSEL_EXCLUDES(sessionMu_);

    /**
     * Overload terminal state: flush the cache (mirrored out of the
     * arena) and interpret every remaining event. Irreversible; the
     * session still drains its budget through runSlice.
     */
    void degradeToInterpretation() RSEL_EXCLUDES(sessionMu_);

    /**
     * The tenant's recovery counters so far — the overload
     * controller's health signal. Same sole-owner caller contract
     * as runSlice (read between this session's slices).
     */
    const resilience::RecoveryStats &
    recoveryStats() const
    {
        return sys_.recoveryStats();
    }

    // CodeCache::Listener — the logical->physical mirror. Fired
    // from inside sys_ while the owning slice (or teardown) holds
    // sessionMu_; they touch only id_/arena_, never slice state, so
    // they carry no capability requirement of their own.
    void onRegionInserted(const Region &region,
                          std::uint64_t bytes) override;
    void onRegionDropped(const Region &region, std::uint64_t bytes,
                         CodeCache::DropReason reason) override;

  private:
    friend struct TsaTestProbe; // negative-compile battery only

    TenantId id_;
    TenantSpec spec_;
    ShardedCodeCache &arena_;
    Program prog_;
    /**
     * The session capability: models "one thread owns this session
     * at a time". Uncontended in a correct service; MutexSoleLock
     * turns contention into a panic. mutable so const probes
     * (done, eventsRun) can take it.
     */
    mutable Mutex sessionMu_;
    /** The simulated system and its driver are slice state too —
     *  sys_/exec_ are mutated by every slice — but stay unannotated
     *  because the constructor must pass sys_ to attachAlgorithm
     *  and the accessors expose them const; the guarded fields
     *  below are the ones a scheduler could plausibly race on. */
    DynOptSystem sys_;
    Executor exec_;
    EventBatch batch_ RSEL_GUARDED_BY(sessionMu_);
    std::uint64_t remaining_ RSEL_GUARDED_BY(sessionMu_);
    std::uint64_t eventsRun_ RSEL_GUARDED_BY(sessionMu_) = 0;
    /** role: flag (release/acquire) — publishes "stop requested"
     *  across threads; the only cross-thread member by design. */
    std::atomic<bool> stop_{false};
    bool done_ RSEL_GUARDED_BY(sessionMu_) = false;
    bool finished_ RSEL_GUARDED_BY(sessionMu_) = false;
    bool tornDown_ RSEL_GUARDED_BY(sessionMu_) = false;
};

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_TENANT_SESSION_HPP
