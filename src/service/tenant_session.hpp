/**
 * @file
 * One tenant of the selection service: a guest program, an
 * Executor, and a DynOptSystem, driven in bounded slices so a small
 * worker pool can multiplex thousands of tenants.
 *
 * The session is the bridge between the tenant's *logical* cache
 * (its DynOptSystem's CodeCache, whose behaviour is a pure function
 * of the tenant spec and quota-derived limits) and the *physical*
 * ShardedCodeCache: it implements CodeCache::Listener and mirrors
 * every structural mutation into the arena under the tenant's id.
 *
 * Threading contract: at most one thread runs a given session at a
 * time (the service's slice scheduler guarantees it by only
 * resubmitting a session after its current slice returns); distinct
 * sessions run concurrently and meet only inside the arena.
 * requestStop() may be called from any thread.
 */

#ifndef RSEL_SERVICE_TENANT_SESSION_HPP
#define RSEL_SERVICE_TENANT_SESSION_HPP

#include <atomic>
#include <cstdint>

#include "dynopt/dynopt_system.hpp"
#include "service/sharded_cache.hpp"
#include "service/tenant_spec.hpp"

namespace rsel {
namespace service {

/** One tenant's live state inside the service. */
class TenantSession : public CodeCache::Listener
{
  public:
    /**
     * @param id       arena id from ShardedCodeCache::registerTenant.
     * @param spec     the tenant's spec (copied).
     * @param limits   quota-derived logical-cache limits (must come
     *                 from the arena's tenantLimits so the global
     *                 partition holds).
     * @param arena    shared physical cache; must outlive the
     *                 session.
     * @param eventsOverride non-zero replaces the spec's own event
     *                 budget.
     */
    TenantSession(TenantId id, const TenantSpec &spec,
                  CacheLimits limits, ShardedCodeCache &arena,
                  std::uint64_t eventsOverride = 0);

    ~TenantSession() override;

    TenantSession(const TenantSession &) = delete;
    TenantSession &operator=(const TenantSession &) = delete;

    /**
     * Run up to `maxEvents` further events through the system.
     * @return true while the tenant has work left; false once the
     * budget is exhausted, the guest halted, or a stop was
     * requested. Never call concurrently on the same session.
     */
    bool runSlice(std::uint64_t maxEvents);

    /** Ask the session to stop at the next slice boundary (safe
     *  from any thread; used by concurrent-teardown paths). */
    void requestStop() { stop_.store(true, std::memory_order_release); }

    /** True once runSlice() reported completion (or never had
     *  events to run). */
    bool done() const { return done_; }

    /**
     * Close the run and return its metrics (workload field set to
     * the tenant name). May be called once, after runSlice()
     * reported completion. The result is byte-identical to a solo
     * single-tenant run of the same spec and limits — the service's
     * determinism contract.
     */
    SimResult finish();

    /**
     * Tear the tenant down: flush its logical cache through the
     * disruption machinery (the listener mirrors the drops out of
     * the arena), sweep any residue, and retire the arena id for
     * good. Idempotent. Works on finished and aborted sessions
     * alike; an aborted session simply never produces a SimResult.
     */
    void teardown();

    /** The arena id. */
    TenantId tenantId() const { return id_; }

    /** The spec this session runs. */
    const TenantSpec &spec() const { return spec_; }

    /** Events consumed so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** The tenant's logical cache (test probe). */
    const CodeCache &cache() const { return sys_.cache(); }

    // CodeCache::Listener — the logical->physical mirror.
    void onRegionInserted(const Region &region,
                          std::uint64_t bytes) override;
    void onRegionDropped(const Region &region, std::uint64_t bytes,
                         CodeCache::DropReason reason) override;

  private:
    TenantId id_;
    TenantSpec spec_;
    ShardedCodeCache &arena_;
    Program prog_;
    DynOptSystem sys_;
    Executor exec_;
    EventBatch batch_;
    std::uint64_t remaining_;
    std::uint64_t eventsRun_ = 0;
    std::atomic<bool> stop_{false};
    bool done_ = false;
    bool finished_ = false;
    bool tornDown_ = false;
};

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_TENANT_SESSION_HPP
