/**
 * @file
 * The tenant specification: one guest stream of the multi-tenant
 * selection service.
 *
 * A TenantSpec is the entire input of one tenant, exactly as a
 * GenSpec is the entire input of the program generator: the guest
 * program family (a GenSpec), the selection algorithm, and an
 * optional fault plan. Everything a tenant does is a pure function
 * of its spec plus its quota-derived cache limits, which is what
 * makes the service's determinism contract testable — a tenant's
 * SimResult fingerprint must be byte-identical to a solo
 * single-tenant run of the same spec at any concurrency.
 *
 * The one-line codec uses '|'-separated fields so the comma-bearing
 * GenSpec and FaultPlan codecs nest verbatim:
 *
 *   name=t7|alg=NET|spec=v1,funcs=2,...|faults=f1,tfail=10,...
 *
 * Spec files (rselect-serve --spec-file) hold one tenant per line;
 * blank lines and '#' comments are skipped.
 */

#ifndef RSEL_SERVICE_TENANT_SPEC_HPP
#define RSEL_SERVICE_TENANT_SPEC_HPP

#include <iosfwd>
#include <string>
#include <vector>

#include "dynopt/dynopt_system.hpp"
#include "resilience/fault_plan.hpp"
#include "testing/gen_spec.hpp"

namespace rsel {
namespace service {

/** Everything one tenant of the selection service runs. */
struct TenantSpec
{
    /** Display name; auto-derived ("t<seed>") by fromSeed(). */
    std::string name = "tenant";
    /** Selection algorithm driving this tenant. */
    Algorithm algo = Algorithm::Net;
    /** Guest-program family (generation is pure in the spec). */
    testing::GenSpec program;
    /** Fault plan; disarmed by default. */
    resilience::FaultPlan faults;

    /** Compact one-line text form (see file comment). */
    std::string toString() const;

    /**
     * Parse the text form produced by toString().
     * @throws FatalError on malformed input.
     */
    static TenantSpec parse(const std::string &text);

    /**
     * Derive a tenant deterministically from a fuzz seed: the
     * program family is GenSpec::fromSeed(seed) and the selector
     * cycles through every shipped algorithm, so a contiguous seed
     * range covers all seven. Faults stay disarmed; the service
     * CLI arms them separately (--fault-spec / --fault-fuzz).
     */
    static TenantSpec fromSeed(std::uint64_t seed);

    bool operator==(const TenantSpec &other) const;
    bool operator!=(const TenantSpec &other) const
    {
        return !(*this == other);
    }
};

/**
 * Load a tenant-spec file: one TenantSpec::parse line per tenant,
 * blank lines and '#' comments skipped. @throws FatalError on any
 * malformed line (naming its 1-based line number) or when the file
 * yields no tenants.
 */
std::vector<TenantSpec> loadTenantSpecs(std::istream &in);

/**
 * The SimOptions a tenant's selector thresholds run with. This is
 * the differential oracle's GenSpec -> SimOptions mapping (budget
 * and seed from the spec, every threshold at its default), shared
 * by the service session and the solo reference leg so their
 * fingerprints compare meaningfully.
 */
SimOptions tenantSimOptions(const TenantSpec &spec);

} // namespace service
} // namespace rsel

#endif // RSEL_SERVICE_TENANT_SPEC_HPP
