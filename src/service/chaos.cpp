#include "service/chaos.hpp"

#include <algorithm>

#include "resilience/plan_codec.hpp"
#include "support/random.hpp"

namespace rsel {
namespace service {

namespace {

using resilience::PlanField;

/** Field table: one row per knob, so toString/parse/== cannot
 *  drift (shared codec machinery lives in plan_codec.hpp). */
const PlanField<ChaosPlan> fieldTable[] = {
    {"abort", nullptr, &ChaosPlan::abortPermille},
    {"crash", nullptr, &ChaosPlan::crashPermille},
    {"quar", nullptr, &ChaosPlan::quarPermille},
    {"quarlen", nullptr, &ChaosPlan::quarSlices},
    {"sqdiv", nullptr, &ChaosPlan::squeezeDiv},
    {"sqat", nullptr, &ChaosPlan::squeezeSlice},
    {"sqlen", nullptr, &ChaosPlan::squeezeSlices},
    {"window", nullptr, &ChaosPlan::windowSlices},
    {"seed", &ChaosPlan::seed, nullptr},
};

} // namespace

void
ChaosPlan::clamp()
{
    abortPermille = std::min<std::uint32_t>(abortPermille, 1000);
    crashPermille = std::min<std::uint32_t>(crashPermille, 1000);
    // A tenant draws one die for abort-vs-crash; the two bands must
    // fit in it together.
    if (abortPermille + crashPermille > 1000)
        crashPermille = 1000 - abortPermille;
    quarPermille = std::min<std::uint32_t>(quarPermille, 1000);
    quarSlices = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(quarSlices, 1024));
    squeezeDiv = std::min<std::uint32_t>(squeezeDiv, 64);
    squeezeSlice = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(squeezeSlice, 1024));
    squeezeSlices = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(squeezeSlices, 1024));
    windowSlices = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(windowSlices, 1024));
}

std::string
ChaosPlan::toString() const
{
    return resilience::planToString(*this, "c1", fieldTable);
}

ChaosPlan
ChaosPlan::parse(const std::string &text)
{
    ChaosPlan plan = resilience::planParse(text, "c1", "chaos",
                                           fieldTable);
    plan.clamp();
    return plan;
}

ChaosPlan
ChaosPlan::fromSeed(std::uint64_t seed)
{
    Rng rng(seed ^ 0x8f14e45fceea167aull);
    ChaosPlan p;
    p.abortPermille =
        rng.nextBool(0.35)
            ? static_cast<std::uint32_t>(rng.nextRange(40, 250))
            : 0;
    p.crashPermille =
        rng.nextBool(0.7)
            ? static_cast<std::uint32_t>(rng.nextRange(100, 400))
            : 0;
    p.quarPermille =
        rng.nextBool(0.5)
            ? static_cast<std::uint32_t>(rng.nextRange(100, 500))
            : 0;
    p.quarSlices = static_cast<std::uint32_t>(rng.nextRange(2, 12));
    if (rng.nextBool(0.6)) {
        p.squeezeDiv = static_cast<std::uint32_t>(rng.nextRange(2, 8));
        p.squeezeSlice =
            static_cast<std::uint32_t>(rng.nextRange(1, 8));
        p.squeezeSlices =
            static_cast<std::uint32_t>(rng.nextRange(2, 12));
    }
    p.windowSlices = static_cast<std::uint32_t>(rng.nextRange(4, 24));
    // Always armed: a seed that drew nothing still crashes tenants.
    if (!p.armed())
        p.crashPermille =
            static_cast<std::uint32_t>(rng.nextRange(150, 450));
    p.seed = seed * 0xd1342543de82ef95ull + 1;
    p.clamp();
    return p;
}

ChaosSchedule
ChaosPlan::scheduleFor(std::size_t tenantIndex) const
{
    ChaosSchedule s;
    if (!armed())
        return s;

    // Per-tenant stream: the same plan gives every tenant its own
    // independent — but fixed — draw, keyed only by its index.
    Rng rng(seed ^
            ((static_cast<std::uint64_t>(tenantIndex) + 1) *
             0x9e3779b97f4a7c15ull));

    // One die decides abort vs crash vs neither: the two fates are
    // mutually exclusive per tenant.
    const std::uint64_t fate = rng.nextBelow(1000);
    const std::uint64_t fateSlice = rng.nextRange(1, windowSlices);
    if (fate < abortPermille) {
        s.abort = true;
        s.abortSlice = fateSlice;
    } else if (fate < abortPermille + crashPermille) {
        s.crash = true;
        s.crashSlice = fateSlice;
    }

    // Independent quarantine draw; the salt picks the shard once the
    // arena's shard count is known.
    const std::uint64_t quarDie = rng.nextBelow(1000);
    const std::uint64_t quarAt = rng.nextRange(1, windowSlices);
    const std::uint64_t salt = rng.next();
    if (quarDie < quarPermille) {
        s.quarantine = true;
        s.quarSlice = quarAt;
        s.quarSlices = quarSlices;
        s.quarShardSalt = salt;
    }

    // The squeeze is global: every tenant applies it at the same
    // slice index of its own stream.
    if (squeezeDiv > 1) {
        s.squeeze = true;
        s.squeezeSlice = squeezeSlice;
        s.squeezeSlices = squeezeSlices;
        s.squeezeFactor = squeezeDiv;
    }
    return s;
}

bool
ChaosPlan::operator==(const ChaosPlan &other) const
{
    return resilience::planEquals(*this, other, fieldTable);
}

} // namespace service
} // namespace rsel
