#include "service/overload.hpp"

#include "support/error.hpp"

namespace rsel {
namespace service {

const char *
healthName(TenantHealth health)
{
    switch (health) {
      case TenantHealth::Healthy:
        return "HEALTHY";
      case TenantHealth::Degraded:
        return "DEGRADED";
      case TenantHealth::Shed:
        return "SHED";
      case TenantHealth::Blacklisted:
        return "BLACKLISTED";
    }
    return "?";
}

TenantHealth
TenantHealthMachine::observe(std::uint64_t pressureDelta)
{
    if (state_ == TenantHealth::Blacklisted)
        return state_; // absorbing
    if (pressureDelta >= cfg_.degradePressure) {
        ++streak_;
        if (cfg_.blacklistAfter != 0 && streak_ >= cfg_.blacklistAfter)
            state_ = TenantHealth::Blacklisted;
        else if (cfg_.shedAfter != 0 && streak_ >= cfg_.shedAfter)
            state_ = TenantHealth::Shed;
        else
            state_ = TenantHealth::Degraded;
    } else {
        streak_ = 0;
        // Recover one level per clean slice, not straight to
        // HEALTHY: a tenant oscillating around the threshold walks,
        // it does not teleport.
        state_ = state_ == TenantHealth::Shed ? TenantHealth::Degraded
                                              : TenantHealth::Healthy;
    }
    return state_;
}

TenantConductor::TenantConductor(const TenantSpec &spec,
                                 CacheLimits limits,
                                 std::uint64_t squeezedCapacityBytes,
                                 ShardedCodeCache &arena,
                                 std::uint64_t sliceEvents,
                                 std::uint64_t eventsOverride,
                                 const ChaosSchedule &schedule,
                                 const OverloadConfig &overload)
    : spec_(spec), limits_(limits),
      squeezedCapacityBytes_(squeezedCapacityBytes), arena_(arena),
      sliceEvents_(sliceEvents), eventsOverride_(eventsOverride),
      schedule_(schedule), overload_(overload),
      id_(arena.registerTenant()),
      session_(std::make_unique<TenantSession>(id_, spec_, limits_,
                                               arena_,
                                               eventsOverride_)),
      machine_(overload)
{
}

TenantConductor::~TenantConductor()
{
    liftQuarantineIfPending();
}

std::uint64_t
TenantConductor::pressureSignals() const
{
    const resilience::RecoveryStats &r = session_->recoveryStats();
    return r.translationFailures + r.retries + r.backoffSuppressed +
           r.blacklistSuppressed + r.blacklistedEntrances;
}

void
TenantConductor::liftQuarantineIfPending()
{
    if (!quarActive_)
        return;
    quarActive_ = false;
    arena_.liftShardQuarantine(quarShard_);
}

void
TenantConductor::restartTenant()
{
    crashed_ = true;
    const std::uint64_t consumed = session_->eventsRun();
    ++counters_.restarts;
    counters_.restartFromEvent = consumed;
    // Crash: the old session's state dies entirely — teardown
    // through the flush machinery retires its arena id for good.
    session_->teardown();
    session_.reset();
    // Warm restart: a fresh session from the TenantSpec,
    // fast-forwarded to the replay position, under a fresh arena id
    // (ids are never reused). It runs chaos- and overload-free from
    // here: the restart oracle is a plain fresh solo run from the
    // same position.
    id_ = arena_.registerTenant();
    session_ = std::make_unique<TenantSession>(
        id_, spec_, limits_, arena_, eventsOverride_, consumed);
    postRestart_ = true;
    degraded_ = false;
    squeezeOn_ = false;
    squeezeDone_ = true;
    machine_.reset();
    lastSignals_ = 0;
}

void
TenantConductor::abortTenant()
{
    counters_.aborted = true;
    session_->teardown();
    session_.reset();
    liftQuarantineIfPending();
}

void
TenantConductor::applyChaosPreSlice()
{
    if (postRestart_)
        return; // the replacement session is chaos-free
    // Lift first: the quarantine window is closed-open
    // [quarSlice, quarSlice + quarSlices) on the run-slice clock.
    if (quarActive_ && slicesRun_ >= quarLiftAt_)
        liftQuarantineIfPending();
    if (schedule_.squeeze && !squeezeDone_) {
        if (squeezeOn_ && slicesRun_ >= schedule_.squeezeSlice +
                                            schedule_.squeezeSlices) {
            session_->applyCacheCapacity(limits_.capacityBytes);
            squeezeOn_ = false;
            squeezeDone_ = true;
        } else if (!squeezeOn_ &&
                   slicesRun_ >= schedule_.squeezeSlice) {
            session_->applyCacheCapacity(squeezedCapacityBytes_);
            squeezeOn_ = true;
            ++counters_.squeezesApplied;
        }
    }
    if (schedule_.quarantine && !quarFired_ &&
        slicesRun_ >= schedule_.quarSlice) {
        quarFired_ = true;
        quarActive_ = true;
        quarShard_ = static_cast<std::size_t>(
            schedule_.quarShardSalt % arena_.config().shardCount);
        quarLiftAt_ = slicesRun_ + schedule_.quarSlices;
        arena_.quarantineShard(quarShard_);
        ++counters_.quarantinesTriggered;
    }
    if (schedule_.crash && !crashed_ &&
        slicesRun_ >= schedule_.crashSlice)
        restartTenant();
    if (schedule_.abort && !counters_.aborted &&
        slicesRun_ >= schedule_.abortSlice)
        abortTenant();
}

bool
TenantConductor::done() const
{
    return counters_.aborted || session_->done();
}

OfferOutcome
TenantConductor::offer()
{
    if (done())
        return OfferOutcome::Finished;
    applyChaosPreSlice();
    if (done()) {
        liftQuarantineIfPending();
        return OfferOutcome::Finished;
    }
    ++counters_.scheduledSlices;

    // SHED: every shedStride-th offer runs, the rest defer. Pure
    // deferral — the slice clock does not advance, so chaos
    // triggers and the solo replay stay aligned.
    if (!postRestart_ && !degraded_ &&
        machine_.state() == TenantHealth::Shed &&
        overload_.shedStride > 1) {
        ++shedTick_;
        if (shedTick_ % overload_.shedStride != 0) {
            ++counters_.shedSlices;
            return OfferOutcome::Shed;
        }
    }

    // Slice budget (deadline analogue): past it, the tenant is
    // degraded to interpretation and drains the rest of its stream
    // in the terminal graceful state.
    if (!postRestart_ && !degraded_ && overload_.sliceBudget != 0 &&
        slicesRun_ >= overload_.sliceBudget) {
        counters_.budgetExhausted = true;
        machine_.blacklist();
        session_->degradeToInterpretation();
        degraded_ = true;
    }

    session_->runSlice(sliceEvents_);
    ++slicesRun_;
    if (degraded_)
        ++counters_.blacklistedSlices;
    else
        ++counters_.completedSlices;

    if (!postRestart_ && !degraded_ && overload_.healthEnabled) {
        const std::uint64_t now = pressureSignals();
        const TenantHealth h = machine_.observe(now - lastSignals_);
        lastSignals_ = now;
        if (h == TenantHealth::Blacklisted) {
            session_->degradeToInterpretation();
            degraded_ = true;
        }
    }

    if (session_->done())
        liftQuarantineIfPending();
    return OfferOutcome::Ran;
}

void
TenantConductor::recordAdmissionShed()
{
    ++counters_.scheduledSlices;
    ++counters_.shedSlices;
}

SimResult
TenantConductor::finish()
{
    RSEL_ASSERT(!counters_.aborted,
                "finish() on an aborted tenant");
    return session_->finish();
}

void
TenantConductor::teardown()
{
    liftQuarantineIfPending();
    if (session_)
        session_->teardown();
}

TenantHealth
TenantConductor::health() const
{
    if (degraded_)
        return TenantHealth::Blacklisted;
    return machine_.state();
}

} // namespace service
} // namespace rsel
