#include "service/sharded_cache.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rsel {
namespace service {

ShardedCodeCache::ShardedCodeCache(ArenaConfig cfg) : cfg_(cfg)
{
    const std::size_t count = std::max<std::size_t>(cfg.shardCount, 1);
    // Deque, not vector: Shard is immovable (mutex + the registry
    // reference that names the lock order), so the container must
    // construct in place and never relocate.
    for (std::size_t i = 0; i < count; ++i)
        shards_.emplace_back(registry_);
    cfg_.shardCount = shards_.size();
}

TenantId
ShardedCodeCache::registerTenant()
{
    MutexLock lock(registry_);
    accounts_.emplace_back();
    // Publish only after the Account is fully constructed: readers
    // go through accountCount_ (acquire) instead of the registry
    // lock, so the per-admission path never serializes on it.
    accountCount_.store(accounts_.size(), std::memory_order_release);
    return static_cast<TenantId>(accounts_.size() - 1);
}

std::uint64_t
ShardedCodeCache::tenantQuotaBytes(std::size_t tenantCount) const
{
    return limitsFor(cfg_, tenantCount).capacityBytes;
}

CacheLimits
ShardedCodeCache::limitsFor(const ArenaConfig &cfg,
                            std::size_t tenantCount)
{
    RSEL_ASSERT(tenantCount >= 1, "quota of an empty tenant set");
    CacheLimits limits;
    // Equal shares, floored; at least one byte so a bounded arena
    // stays bounded (a 1-byte quota means "one region at a time",
    // the same single-oversized-region semantics CodeCache has).
    // An unbounded arena (capacity 0) grants unbounded tenants.
    if (cfg.capacityBytes != 0)
        limits.capacityBytes = std::max<std::uint64_t>(
            cfg.capacityBytes / tenantCount, 1);
    limits.policy = cfg.policy;
    limits.stubBytes = cfg.stubBytes;
    return limits;
}

ShardedCodeCache::Account &
ShardedCodeCache::account(TenantId tenant)
{
    RSEL_ASSERT(tenant <
                    accountCount_.load(std::memory_order_acquire),
                "unregistered tenant id");
    return accounts_[tenant];
}

const ShardedCodeCache::Account &
ShardedCodeCache::account(TenantId tenant) const
{
    RSEL_ASSERT(tenant <
                    accountCount_.load(std::memory_order_acquire),
                "unregistered tenant id");
    return accounts_[tenant];
}

void
ShardedCodeCache::raiseHighWater(std::atomic<std::uint64_t> &mark,
                                 std::uint64_t value)
{
    std::uint64_t seen = mark.load(std::memory_order_relaxed);
    while (seen < value &&
           !mark.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

void
ShardedCodeCache::admit(TenantId tenant, Addr entry,
                        std::uint64_t bytes)
{
    RSEL_ASSERT(entry < (1ULL << 40),
                "entrance address exceeds the tenant-key range");
    Account &acct = account(tenant);
    RSEL_ASSERT(acct.active.load(std::memory_order_acquire),
                "admission from a torn-down tenant");
    Shard &shard = shards_[shardOf(entry)];
    {
        MutexLock lock(shard.mu, contention_);
        const bool inserted =
            shard.entries.emplace(keyOf(tenant, entry), bytes)
                .second;
        RSEL_ASSERT(inserted,
                    "tenant admitted a second region at a live "
                    "entrance");
    }
    acct.admissions.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t tenantLive =
        acct.liveBytes.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    raiseHighWater(acct.highWaterBytes, tenantLive);
    admissions_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t globalLive =
        liveBytes_.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    raiseHighWater(highWaterBytes_, globalLive);
}

void
ShardedCodeCache::release(TenantId tenant, Addr entry,
                          std::uint64_t bytes, ReleaseReason reason)
{
    Account &acct = account(tenant);
    Shard &shard = shards_[shardOf(entry)];
    {
        MutexLock lock(shard.mu, contention_);
        auto it = shard.entries.find(keyOf(tenant, entry));
        RSEL_ASSERT(it != shard.entries.end(),
                    "releasing an entry the arena never admitted");
        RSEL_ASSERT(it->second == bytes,
                    "release byte figure disagrees with admission");
        shard.entries.erase(it);
    }
    switch (reason) {
      case ReleaseReason::Eviction:
        acct.evictionReleases.fetch_add(1,
                                        std::memory_order_relaxed);
        break;
      case ReleaseReason::Invalidation:
        acct.invalidationReleases.fetch_add(
            1, std::memory_order_relaxed);
        break;
      case ReleaseReason::Flush:
        acct.flushReleases.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    acct.liveBytes.fetch_sub(bytes, std::memory_order_relaxed);
    releases_.fetch_add(1, std::memory_order_relaxed);
    liveBytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t
ShardedCodeCache::releaseAll(TenantId tenant)
{
    Account &acct = account(tenant);
    // Deactivate first: a racing admission from a buggy concurrent
    // use of the same session would be rejected rather than leak.
    acct.active.store(false, std::memory_order_release);
    std::uint64_t released = 0;
    std::uint64_t count = 0;
    for (Shard &shard : shards_) {
        MutexLock lock(shard.mu, contention_);
        for (auto it = shard.entries.begin();
             it != shard.entries.end();) {
            // Recover the tenant from the key's high bits; the
            // XOR folding keeps them intact for sub-2^40 entries.
            if ((it->first >> 40) == tenant) {
                released += it->second;
                ++count;
                it = shard.entries.erase(it);
            } else {
                ++it;
            }
        }
    }
    acct.flushReleases.fetch_add(count, std::memory_order_relaxed);
    acct.liveBytes.fetch_sub(released, std::memory_order_relaxed);
    releases_.fetch_add(count, std::memory_order_relaxed);
    liveBytes_.fetch_sub(released, std::memory_order_relaxed);
    return released;
}

void
ShardedCodeCache::unregisterTenant(TenantId tenant)
{
    Account &acct = account(tenant);
    // Relaxed is enough (gauge role): the zero being asserted was
    // produced either on this thread (teardown calls releaseAll
    // first) or before the teardown task was handed to this worker,
    // and the pool's queue transfer is the happens-before edge.
    RSEL_ASSERT(acct.liveBytes.load(std::memory_order_relaxed) == 0,
                "unregistering a tenant with live physical bytes");
    acct.active.store(false, std::memory_order_release);
}

TenantCacheStats
ShardedCodeCache::tenantStats(TenantId tenant) const
{
    const Account &acct = account(tenant);
    TenantCacheStats out;
    out.liveBytes = acct.liveBytes.load(std::memory_order_relaxed);
    out.highWaterBytes =
        acct.highWaterBytes.load(std::memory_order_relaxed);
    out.admissions =
        acct.admissions.load(std::memory_order_relaxed);
    out.evictionReleases =
        acct.evictionReleases.load(std::memory_order_relaxed);
    out.invalidationReleases =
        acct.invalidationReleases.load(std::memory_order_relaxed);
    out.flushReleases =
        acct.flushReleases.load(std::memory_order_relaxed);
    return out;
}

ArenaStats
ShardedCodeCache::stats() const
{
    ArenaStats out;
    out.liveBytes = liveBytes_.load(std::memory_order_relaxed);
    out.highWaterBytes =
        highWaterBytes_.load(std::memory_order_relaxed);
    out.admissions = admissions_.load(std::memory_order_relaxed);
    out.releases = releases_.load(std::memory_order_relaxed);
    out.shardContention =
        contention_.load(std::memory_order_relaxed);
    out.shardCount = shards_.size();
    const std::size_t count =
        accountCount_.load(std::memory_order_acquire);
    out.tenantsRegistered = count;
    // Route the element reads through account(): it owns the
    // publication-protocol escape hatch for lock-free access to
    // accounts_ (the acquire above covers construction of [0..n)).
    for (std::size_t i = 0; i < count; ++i)
        if (account(static_cast<TenantId>(i))
                .active.load(std::memory_order_relaxed))
            ++out.tenantsActive;
    return out;
}

std::size_t
ShardedCodeCache::liveEntryCount(TenantId tenant) const
{
    std::size_t count = 0;
    for (const Shard &shard : shards_) {
        MutexLock lock(shard.mu, contention_);
        for (const auto &entry : shard.entries)
            if ((entry.first >> 40) == tenant)
                ++count;
    }
    return count;
}

} // namespace service
} // namespace rsel
