#include "service/sharded_cache.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rsel {
namespace service {

ShardedCodeCache::ShardedCodeCache(ArenaConfig cfg) : cfg_(cfg)
{
    const std::size_t count = std::max<std::size_t>(cfg.shardCount, 1);
    // Deque, not vector: Shard is immovable (mutex + the registry
    // reference that names the lock order), so the container must
    // construct in place and never relocate.
    for (std::size_t i = 0; i < count; ++i)
        shards_.emplace_back(registry_);
    cfg_.shardCount = shards_.size();
}

ShardedCodeCache::~ShardedCodeCache()
{
    for (std::atomic<AccountChunk *> &chunk : chunks_)
        delete chunk.load(std::memory_order_relaxed);
}

TenantId
ShardedCodeCache::registerTenant()
{
    MutexLock lock(registry_);
    const std::size_t id =
        accountCount_.load(std::memory_order_relaxed);
    RSEL_ASSERT(id < kAccountsPerChunk * kMaxAccountChunks,
                "tenant id space exhausted");
    const std::size_t chunk = id / kAccountsPerChunk;
    if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
        // Publish the chunk before the count that makes any of its
        // slots reachable; concurrent readers load the pointer with
        // acquire in account().
        chunks_[chunk].store(new AccountChunk,
                             std::memory_order_release);
    }
    // Publish only after the Account is fully constructed: readers
    // go through accountCount_ (acquire) instead of the registry
    // lock, so the per-admission path never serializes on it —
    // which is what lets warm restart register fresh ids while
    // neighbours' admit/release traffic is in flight.
    accountCount_.store(id + 1, std::memory_order_release);
    return static_cast<TenantId>(id);
}

std::uint64_t
ShardedCodeCache::tenantQuotaBytes(std::size_t tenantCount) const
{
    return limitsFor(cfg_, tenantCount).capacityBytes;
}

CacheLimits
ShardedCodeCache::limitsFor(const ArenaConfig &cfg,
                            std::size_t tenantCount)
{
    RSEL_ASSERT(tenantCount >= 1, "quota of an empty tenant set");
    CacheLimits limits;
    // Equal shares, floored; at least one byte so a bounded arena
    // stays bounded (a 1-byte quota means "one region at a time",
    // the same single-oversized-region semantics CodeCache has).
    // An unbounded arena (capacity 0) grants unbounded tenants.
    if (cfg.capacityBytes != 0)
        limits.capacityBytes = std::max<std::uint64_t>(
            cfg.capacityBytes / tenantCount, 1);
    limits.policy = cfg.policy;
    limits.stubBytes = cfg.stubBytes;
    return limits;
}

ShardedCodeCache::Account &
ShardedCodeCache::account(TenantId tenant)
{
    RSEL_ASSERT(tenant <
                    accountCount_.load(std::memory_order_acquire),
                "unregistered tenant id");
    AccountChunk *chunk = chunks_[tenant / kAccountsPerChunk].load(
        std::memory_order_acquire);
    return chunk->slots[tenant % kAccountsPerChunk];
}

const ShardedCodeCache::Account &
ShardedCodeCache::account(TenantId tenant) const
{
    RSEL_ASSERT(tenant <
                    accountCount_.load(std::memory_order_acquire),
                "unregistered tenant id");
    const AccountChunk *chunk =
        chunks_[tenant / kAccountsPerChunk].load(
            std::memory_order_acquire);
    return chunk->slots[tenant % kAccountsPerChunk];
}

void
ShardedCodeCache::raiseHighWater(std::atomic<std::uint64_t> &mark,
                                 std::uint64_t value)
{
    std::uint64_t seen = mark.load(std::memory_order_relaxed);
    while (seen < value &&
           !mark.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

void
ShardedCodeCache::admit(TenantId tenant, Addr entry,
                        std::uint64_t bytes)
{
    RSEL_ASSERT(entry < (1ULL << 40),
                "entrance address exceeds the tenant-key range");
    Account &acct = account(tenant);
    RSEL_ASSERT(acct.active.load(std::memory_order_acquire),
                "admission from a torn-down tenant");
    Shard &shard = shards_[shardOf(entry)];
    bool parked = false;
    {
        MutexLock lock(shard.mu, contention_);
        const std::uint64_t key = keyOf(tenant, entry);
        RSEL_ASSERT(shard.parked.count(key) == 0,
                    "tenant admitted a second region at a parked "
                    "entrance");
        if (shard.quarantineDepth != 0) {
            // Quarantined shard: the logical cache has already
            // committed to the region, so the mirror must record
            // the admission — but it is parked out of the live map
            // until the lift.
            parked = true;
            shard.parked.emplace(key, bytes);
        } else {
            const bool inserted =
                shard.entries.emplace(key, bytes).second;
            RSEL_ASSERT(inserted,
                        "tenant admitted a second region at a live "
                        "entrance");
        }
    }
    if (parked)
        quarantinedAdmissions_.fetch_add(1,
                                         std::memory_order_relaxed);
    acct.liveEntries.fetch_add(1, std::memory_order_relaxed);
    liveEntries_.fetch_add(1, std::memory_order_relaxed);
    acct.admissions.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t tenantLive =
        acct.liveBytes.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    raiseHighWater(acct.highWaterBytes, tenantLive);
    admissions_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t globalLive =
        liveBytes_.fetch_add(bytes, std::memory_order_relaxed) +
        bytes;
    raiseHighWater(highWaterBytes_, globalLive);
}

void
ShardedCodeCache::release(TenantId tenant, Addr entry,
                          std::uint64_t bytes, ReleaseReason reason)
{
    Account &acct = account(tenant);
    Shard &shard = shards_[shardOf(entry)];
    {
        MutexLock lock(shard.mu, contention_);
        const std::uint64_t key = keyOf(tenant, entry);
        auto it = shard.entries.find(key);
        if (it == shard.entries.end()) {
            // An entry admitted during a quarantine window can be
            // dropped by its logical cache before the lift.
            it = shard.parked.find(key);
            RSEL_ASSERT(it != shard.parked.end(),
                        "releasing an entry the arena never "
                        "admitted");
            RSEL_ASSERT(it->second == bytes,
                        "release byte figure disagrees with "
                        "admission");
            shard.parked.erase(it);
        } else {
            RSEL_ASSERT(it->second == bytes,
                        "release byte figure disagrees with "
                        "admission");
            shard.entries.erase(it);
        }
    }
    acct.liveEntries.fetch_sub(1, std::memory_order_relaxed);
    liveEntries_.fetch_sub(1, std::memory_order_relaxed);
    switch (reason) {
      case ReleaseReason::Eviction:
        acct.evictionReleases.fetch_add(1,
                                        std::memory_order_relaxed);
        break;
      case ReleaseReason::Invalidation:
        acct.invalidationReleases.fetch_add(
            1, std::memory_order_relaxed);
        break;
      case ReleaseReason::Flush:
        acct.flushReleases.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    acct.liveBytes.fetch_sub(bytes, std::memory_order_relaxed);
    releases_.fetch_add(1, std::memory_order_relaxed);
    liveBytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::uint64_t
ShardedCodeCache::releaseAll(TenantId tenant)
{
    Account &acct = account(tenant);
    // Deactivate first: a racing admission from a buggy concurrent
    // use of the same session would be rejected rather than leak.
    acct.active.store(false, std::memory_order_release);
    std::uint64_t released = 0;
    std::uint64_t count = 0;
    for (Shard &shard : shards_) {
        MutexLock lock(shard.mu, contention_);
        // Sweep the live map and the quarantine pen alike: a
        // torn-down tenant leaves no residue anywhere.
        for (auto *map : {&shard.entries, &shard.parked}) {
            for (auto it = map->begin(); it != map->end();) {
                // Recover the tenant from the key's high bits; the
                // XOR folding keeps them intact for sub-2^40
                // entries.
                if ((it->first >> 40) == tenant) {
                    released += it->second;
                    ++count;
                    it = map->erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    acct.flushReleases.fetch_add(count, std::memory_order_relaxed);
    acct.liveBytes.fetch_sub(released, std::memory_order_relaxed);
    acct.liveEntries.fetch_sub(count, std::memory_order_relaxed);
    releases_.fetch_add(count, std::memory_order_relaxed);
    liveBytes_.fetch_sub(released, std::memory_order_relaxed);
    liveEntries_.fetch_sub(count, std::memory_order_relaxed);
    return released;
}

void
ShardedCodeCache::unregisterTenant(TenantId tenant)
{
    Account &acct = account(tenant);
    // Relaxed is enough (gauge role): the zero being asserted was
    // produced either on this thread (teardown calls releaseAll
    // first) or before the teardown task was handed to this worker,
    // and the pool's queue transfer is the happens-before edge.
    RSEL_ASSERT(acct.liveBytes.load(std::memory_order_relaxed) == 0,
                "unregistering a tenant with live physical bytes");
    acct.active.store(false, std::memory_order_release);
}

void
ShardedCodeCache::quarantineShard(std::size_t shard)
{
    RSEL_ASSERT(shard < shards_.size(),
                "quarantine of a shard the arena does not have");
    Shard &s = shards_[shard];
    {
        MutexLock lock(s.mu, contention_);
        ++s.quarantineDepth;
    }
    quarantines_.fetch_add(1, std::memory_order_relaxed);
}

void
ShardedCodeCache::liftShardQuarantine(std::size_t shard)
{
    RSEL_ASSERT(shard < shards_.size(),
                "lift of a shard the arena does not have");
    Shard &s = shards_[shard];
    MutexLock lock(s.mu, contention_);
    RSEL_ASSERT(s.quarantineDepth != 0,
                "lifting a shard that is not quarantined");
    if (--s.quarantineDepth != 0)
        return;
    // Last lift: the pen's survivors rejoin the live map.
    for (const auto &entry : s.parked) {
        const bool inserted =
            s.entries.emplace(entry.first, entry.second).second;
        RSEL_ASSERT(inserted,
                    "parked entry collides with a live entry at "
                    "quarantine lift");
    }
    s.parked.clear();
}

TenantCacheStats
ShardedCodeCache::tenantStats(TenantId tenant) const
{
    const Account &acct = account(tenant);
    TenantCacheStats out;
    out.liveBytes = acct.liveBytes.load(std::memory_order_relaxed);
    out.highWaterBytes =
        acct.highWaterBytes.load(std::memory_order_relaxed);
    out.admissions =
        acct.admissions.load(std::memory_order_relaxed);
    out.evictionReleases =
        acct.evictionReleases.load(std::memory_order_relaxed);
    out.invalidationReleases =
        acct.invalidationReleases.load(std::memory_order_relaxed);
    out.flushReleases =
        acct.flushReleases.load(std::memory_order_relaxed);
    out.liveEntries =
        acct.liveEntries.load(std::memory_order_relaxed);
    return out;
}

ArenaStats
ShardedCodeCache::stats() const
{
    ArenaStats out;
    out.liveBytes = liveBytes_.load(std::memory_order_relaxed);
    out.highWaterBytes =
        highWaterBytes_.load(std::memory_order_relaxed);
    out.admissions = admissions_.load(std::memory_order_relaxed);
    out.releases = releases_.load(std::memory_order_relaxed);
    out.shardContention =
        contention_.load(std::memory_order_relaxed);
    out.liveEntries = liveEntries_.load(std::memory_order_relaxed);
    out.quarantines = quarantines_.load(std::memory_order_relaxed);
    out.quarantinedAdmissions =
        quarantinedAdmissions_.load(std::memory_order_relaxed);
    out.shardCount = shards_.size();
    const std::size_t count =
        accountCount_.load(std::memory_order_acquire);
    out.tenantsRegistered = count;
    // Route the element reads through account(): it owns the
    // publication-protocol escape hatch for lock-free access to
    // accounts_ (the acquire above covers construction of [0..n)).
    for (std::size_t i = 0; i < count; ++i)
        if (account(static_cast<TenantId>(i))
                .active.load(std::memory_order_relaxed))
            ++out.tenantsActive;
    return out;
}

std::size_t
ShardedCodeCache::liveEntryCount(TenantId tenant) const
{
    std::size_t count = 0;
    for (const Shard &shard : shards_) {
        MutexLock lock(shard.mu, contention_);
        for (const auto *map : {&shard.entries, &shard.parked})
            for (const auto &entry : *map)
                if ((entry.first >> 40) == tenant)
                    ++count;
    }
    return count;
}

} // namespace service
} // namespace rsel
